"""Persistent-pool contract tests: residency, state, and failure modes.

The resident pool must amortize spawn cost (same worker PIDs across
batches, attach state intact) while keeping ``ProcessBackend``'s "no
failure mode hangs" guarantee — plus session survival: any worker
failure fails at most the in-flight batch, and the pool respawns and
re-attaches dead ranks automatically before the next one.
"""

import time

import pytest

from repro.errors import ConfigurationError, PipelineError, ServiceError, WorkerError
from repro.parallel import PersistentPool
from repro.parallel.worker import (
    resident_attach,
    resident_crash,
    resident_echo,
    resident_exit,
    resident_sleep,
)


@pytest.fixture()
def pool():
    p = PersistentPool(2, timeout=60.0)
    p.attach(resident_attach, ["state-a", "state-b"])
    yield p
    p.close()


def test_attach_reports_and_batches_in_rank_order(pool):
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]
    assert res.n_workers == 2
    assert res.respawned == 0
    assert res.makespan == max(res.wall_times)


def test_workers_stay_resident_across_batches(pool):
    """Same PIDs, same attach state, across three consecutive batches."""
    pids = pool.worker_pids()
    for i in range(3):
        res = pool.run_batch(resident_echo, [f"p{i}", f"q{i}"])
        # Echo carries (rank, state_payload, payload, attach_pid, now_pid):
        # the attach-time PID equals the batch-time PID equals the
        # master-visible PID — nobody was respawned.
        for rank, report in enumerate(res.results):
            assert report[1] == ("state-a", "state-b")[rank]
            assert report[3] == report[4] == pids[rank]
        assert res.respawned == 0
    assert pool.worker_pids() == pids
    assert pool.respawn_total == 0


def test_raise_mid_batch_fails_batch_keeps_worker(pool):
    """A raising batch surfaces WorkerError; the worker stays resident."""
    pids = pool.worker_pids()
    with pytest.raises(WorkerError, match="deliberate resident crash on rank 1"):
        pool.run_batch(resident_crash, [1, 1])
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert res.respawned == 0  # raising is not dying
    assert pool.worker_pids() == pids
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]


def test_death_mid_batch_surfaces_then_respawns(pool):
    """os._exit mid-batch → WorkerError with the exit code; the next
    batch runs on a respawned, re-attached worker."""
    pids = pool.worker_pids()
    with pytest.raises(WorkerError, match="exit code 21"):
        pool.run_batch(resident_exit, [0, 0])
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert res.respawned == 1
    # Rank 0 is a fresh process with replayed attach state; rank 1 kept.
    assert res.results[0][1] == "state-a"
    assert res.results[0][3] != pids[0]
    assert res.results[1][3] == pids[1]


def test_death_between_batches_is_invisible_to_the_caller(pool):
    """A worker killed while idle is respawned + re-attached before the
    next batch — the batch succeeds, only the stats show the respawn."""
    pool.run_batch(resident_echo, ["x", "y"])
    victim = pool._channels[1].proc
    victim.terminate()
    victim.join()
    res = pool.run_batch(resident_echo, ["p", "q"])
    assert res.respawned == 1
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "p"),
        (1, "state-b", "q"),
    ]


def test_deadline_mid_batch_kills_straggler_session_survives():
    pool = PersistentPool(2, timeout=3.0)
    try:
        pool.attach(resident_attach, ["a", "b"])
        t0 = time.monotonic()
        with pytest.raises(WorkerError, match="deadline"):
            pool.run_batch(resident_sleep, [120.0, 0.0])
        assert time.monotonic() - t0 < 60.0
        res = pool.run_batch(resident_echo, ["x", "y"])
        assert res.respawned == 1  # the killed straggler came back
        assert [r[:3] for r in res.results] == [
            (0, "a", "x"),
            (1, "b", "y"),
        ]
    finally:
        pool.close()


def test_multi_worker_failure_surfaces_lowest_rank(pool):
    """When every worker fails a batch, the surfaced error names the
    lowest rank deterministically, not whichever reply arrived first."""
    with pytest.raises(WorkerError, match="worker 0 raised"):
        pool.run_batch(resident_crash, [0, 1])
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]


def test_unpicklable_payload_cannot_desync_the_pipes(pool):
    """A send-time pickling failure aborts the scatter without leaving
    already-dispatched workers' replies to poison the next round."""
    with pytest.raises(Exception) as excinfo:
        pool.run_batch(resident_echo, ["fine", lambda: None])
    assert "pickle" in str(excinfo.value).lower()
    # The next batch must see ITS payloads, not round-1 leftovers.
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]


def test_double_close_and_commands_after_close(pool):
    pool.close()
    pool.close()  # idempotent
    assert pool.closed
    with pytest.raises(ServiceError, match="closed"):
        pool.run_batch(resident_echo, ["x", "y"])
    with pytest.raises(ServiceError, match="closed"):
        pool.attach(resident_attach, ["a", "b"])


def test_dispatch_collect_split_round(pool):
    """The non-blocking halves compose to exactly run_batch's result,
    and the master can work between them while the workers compute."""
    handle = pool.dispatch(resident_sleep, [0.2, 0.2])
    assert handle.pending
    assert handle.scatter_bytes > 0
    overlap_work = sum(range(1000))  # master-side work during the round
    res = handle.collect()
    assert not handle.pending
    assert res.results == [0.2, 0.2]
    assert res.scatter_bytes == handle.scatter_bytes
    assert overlap_work == 499500
    # The pipe is free again for ordinary blocking rounds.
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]
    assert res.scatter_bytes > 0


def test_single_round_on_the_pipe(pool):
    """A second dispatch before collect raises PipelineError and leaves
    the in-flight round collectable."""
    handle = pool.dispatch(resident_echo, ["x", "y"])
    with pytest.raises(PipelineError, match="already on the pipe"):
        pool.dispatch(resident_echo, ["p", "q"])
    res = handle.collect()
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]
    with pytest.raises(PipelineError, match="already collected"):
        handle.collect()


def test_shared_payload_pickled_once(pool):
    """One payload object for every rank costs one pickle: the scatter
    bytes equal n_workers x a single buffer, so a batch with a shared
    command is half the bytes of one with two distinct-but-equal
    payloads plus exactly the same results."""
    shared = {"task": "t", "blob": "x" * 4096}
    res_shared = pool.run_batch(resident_echo, [shared, shared])
    distinct = [{"task": "t", "blob": "x" * 4096} for _ in range(2)]
    res_distinct = pool.run_batch(resident_echo, distinct)
    assert [r[2] for r in res_shared.results] == [shared, shared]
    assert res_shared.scatter_bytes == res_distinct.scatter_bytes
    assert res_shared.scatter_bytes % 2 == 0  # two sends of one buffer
    # ... and the per-send buffer really carries the payload.
    assert res_shared.scatter_bytes > 2 * 4096


def test_death_between_dispatch_and_collect(pool):
    """A worker killed while its round is on the pipe fails collect()
    with WorkerError; the next round respawns and is correct."""
    handle = pool.dispatch(resident_sleep, [30.0, 0.0])
    pool._channels[0].proc.terminate()
    with pytest.raises(WorkerError, match="died mid-batch"):
        handle.collect()
    res = pool.run_batch(resident_echo, ["x", "y"])
    assert res.respawned == 1
    assert [r[:3] for r in res.results] == [
        (0, "state-a", "x"),
        (1, "state-b", "y"),
    ]


def test_close_with_uncollected_round_never_hangs():
    """close() while a round is dispatched but not being collected
    aborts it: close returns promptly and collect() raises instead of
    hanging on terminated workers."""
    pool = PersistentPool(2, timeout=60.0)
    pool.attach(resident_attach, ["a", "b"])
    handle = pool.dispatch(resident_sleep, [30.0, 30.0])
    t0 = time.monotonic()
    pool.close()
    assert time.monotonic() - t0 < 30.0
    with pytest.raises(PipelineError, match="closed while this round"):
        handle.collect()
    with pytest.raises(ServiceError, match="closed"):
        pool.dispatch(resident_echo, ["x", "y"])


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PersistentPool(0)
    with pytest.raises(ConfigurationError):
        PersistentPool(1, timeout=0.0)
    with pytest.raises(ConfigurationError):
        PersistentPool(1, start_method="teleport")
    pool = PersistentPool(2, timeout=30.0)
    try:
        with pytest.raises(ConfigurationError):
            pool.attach(resident_attach, ["only-one"])
        with pytest.raises(ConfigurationError):
            pool.run_batch(resident_echo, ["only-one"])
    finally:
        pool.close()
