"""Tests for the Chunk / Cyclic / Random partition policies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import Grouping
from repro.core.partition import (
    POLICIES,
    ChunkPolicy,
    CyclicPolicy,
    PartitionAssignment,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigurationError, PartitionError


def grouping_of(sizes):
    sizes = np.asarray(sizes, dtype=np.int64)
    return Grouping(order=np.arange(sizes.sum(), dtype=np.int64), group_sizes=sizes)


GROUPINGS = st.lists(st.integers(min_value=1, max_value=25), min_size=0, max_size=30)
RANKS = st.integers(min_value=1, max_value=16)


def test_chunk_contiguous():
    g = grouping_of([10])
    a = ChunkPolicy().assign(g, 3)
    assert a.rank_of.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_chunk_sizes_differ_by_at_most_one():
    g = grouping_of([7, 6])
    counts = ChunkPolicy().assign(g, 4).counts()
    assert counts.max() - counts.min() <= 1


def test_cyclic_round_robin():
    g = grouping_of([6])
    a = CyclicPolicy().assign(g, 3)
    assert a.rank_of.tolist() == [0, 1, 2, 0, 1, 2]


def test_cyclic_counts_near_equal():
    g = grouping_of([5, 3, 9])
    counts = CyclicPolicy().assign(g, 4).counts()
    assert counts.max() - counts.min() <= 1


def test_random_deterministic_under_seed():
    g = grouping_of([8, 8, 8])
    a = RandomPolicy(seed=3).assign(g, 4)
    b = RandomPolicy(seed=3).assign(g, 4)
    assert np.array_equal(a.rank_of, b.rank_of)


def test_random_seed_changes_assignment():
    g = grouping_of([8, 8, 8, 8])
    a = RandomPolicy(seed=3).assign(g, 4)
    b = RandomPolicy(seed=4).assign(g, 4)
    assert not np.array_equal(a.rank_of, b.rank_of)


def test_single_rank_all_zero():
    g = grouping_of([4, 4])
    for name in POLICIES:
        a = make_policy(name).assign(g, 1)
        assert np.all(a.rank_of == 0)


def test_policy_names():
    assert ChunkPolicy().assign(grouping_of([2]), 2).policy_name == "chunk"
    assert CyclicPolicy().assign(grouping_of([2]), 2).policy_name == "cyclic"
    assert RandomPolicy().assign(grouping_of([2]), 2).policy_name == "random"


def test_make_policy_unknown_rejected():
    with pytest.raises(ConfigurationError, match="unknown policy"):
        make_policy("roundrobin")


def test_members_and_counts_consistent():
    g = grouping_of([9, 5])
    a = CyclicPolicy().assign(g, 4)
    total = 0
    for r in range(4):
        members = a.members(r)
        assert np.all(a.rank_of[members] == r)
        total += members.size
    assert total == 14


def test_members_bad_rank_rejected():
    a = ChunkPolicy().assign(grouping_of([4]), 2)
    with pytest.raises(ConfigurationError):
        a.members(2)


def test_assignment_validation():
    with pytest.raises(PartitionError):
        PartitionAssignment(
            rank_of=np.array([0, 5], dtype=np.int32), n_ranks=2, policy_name="x"
        )
    with pytest.raises(ConfigurationError):
        PartitionAssignment(
            rank_of=np.array([0], dtype=np.int32), n_ranks=0, policy_name="x"
        )


def test_per_group_spread_chunk_vs_cyclic():
    """Chunk keeps groups on few ranks; Cyclic spreads each group."""
    g = grouping_of([16, 16, 16, 16])
    p = 4
    chunk_spread = ChunkPolicy().assign(g, p).per_group_spread(g)
    cyclic_spread = CyclicPolicy().assign(g, p).per_group_spread(g)
    assert cyclic_spread.mean() > chunk_spread.mean()
    assert np.all(cyclic_spread == p)  # every group touches all ranks


def test_count_imbalance_zero_for_cyclic_balanced():
    g = grouping_of([8, 8])
    a = CyclicPolicy().assign(g, 4)
    assert a.count_imbalance() == 0.0


@given(GROUPINGS, RANKS, st.sampled_from(sorted(POLICIES)))
@settings(max_examples=80)
def test_disjoint_cover_property(sizes, p, name):
    """Every policy assigns each item exactly one rank in [0, p)."""
    g = grouping_of(sizes)
    a = make_policy(name, seed=11).assign(g, p)
    assert a.rank_of.size == g.n_sequences
    assert int(a.counts().sum()) == g.n_sequences
    if a.rank_of.size:
        assert a.rank_of.min() >= 0
        assert a.rank_of.max() < p


@given(GROUPINGS, RANKS)
@settings(max_examples=60)
def test_cyclic_global_balance_property(sizes, p):
    """Cyclic per-rank counts differ by at most one."""
    g = grouping_of(sizes)
    counts = CyclicPolicy().assign(g, p).counts()
    assert counts.max() - counts.min() <= 1


@given(GROUPINGS, RANKS)
@settings(max_examples=60)
def test_random_within_group_balance_property(sizes, p):
    """Random splits every group into near-equal rank shares."""
    g = grouping_of(sizes)
    a = RandomPolicy(seed=5).assign(g, p)
    bounds = g.group_bounds()
    for gi in range(g.n_groups):
        ranks = a.rank_of[bounds[gi] : bounds[gi + 1]]
        counts = np.bincount(ranks, minlength=p)
        assert counts.max() - counts.min() <= 1


@given(GROUPINGS, RANKS)
@settings(max_examples=60)
def test_cyclic_within_group_round_robin(sizes, p):
    """Within any group, cyclic assigns consecutive distinct ranks."""
    g = grouping_of(sizes)
    a = CyclicPolicy().assign(g, p)
    bounds = g.group_bounds()
    for gi in range(g.n_groups):
        ranks = a.rank_of[bounds[gi] : bounds[gi + 1]].astype(int)
        for i in range(1, len(ranks)):
            assert ranks[i] == (ranks[i - 1] + 1) % p
