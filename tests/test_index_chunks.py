"""Tests for the shared-memory chunked index (paper Fig. 1 scheme)."""

import numpy as np
import pytest

from repro.chem.fragments import fragment_mzs
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.chunks import ChunkedIndex, ChunkingConfig
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.spectra.model import Spectrum
from repro.constants import PROTON

PEPTIDES = [
    Peptide("GGGGK"),        # light
    Peptide("AAAGGGK"),
    Peptide("CCDDEEK"),
    Peptide("MMNNQQRK"),
    Peptide("WWYYFFKK"),     # heavy
    Peptide("WWWWYYYYK"),
]

SETTINGS = SLMIndexSettings(shared_peak_threshold=2)


def spectrum_of(peptide, charge=2):
    mzs = fragment_mzs(peptide)
    return Spectrum(
        scan_id=1,
        precursor_mz=(peptide.mass + charge * PROTON) / charge,
        charge=charge,
        mzs=mzs,
        intensities=np.ones_like(mzs),
    )


def test_chunk_count():
    ci = ChunkedIndex(PEPTIDES, SETTINGS, ChunkingConfig(max_peptides_per_chunk=2))
    assert ci.n_chunks == 3
    assert len(ci) == 6


def test_chunks_sorted_by_mass():
    ci = ChunkedIndex(PEPTIDES, SETTINGS, ChunkingConfig(max_peptides_per_chunk=2))
    ranges = ci.chunk_mass_ranges
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 <= lo2 + 1e-9
        assert lo1 <= hi1


def test_filter_ids_in_input_space():
    """Chunked filtration must agree with one flat index, id-for-id."""
    ci = ChunkedIndex(PEPTIDES, SETTINGS, ChunkingConfig(max_peptides_per_chunk=2))
    flat = SLMIndex(PEPTIDES, SETTINGS)
    for target in range(len(PEPTIDES)):
        q = spectrum_of(PEPTIDES[target])
        a = ci.filter(q)
        b = flat.filter(q)
        assert np.array_equal(np.sort(a.candidates), np.sort(b.candidates))
        da = dict(zip(a.candidates.tolist(), a.shared_peaks.tolist()))
        db = dict(zip(b.candidates.tolist(), b.shared_peaks.tolist()))
        assert da == db


def test_open_search_visits_all_chunks():
    ci = ChunkedIndex(PEPTIDES, SETTINGS, ChunkingConfig(max_peptides_per_chunk=2))
    assert ci.chunks_for(spectrum_of(PEPTIDES[0])) == [0, 1, 2]


def test_windowed_search_prunes_chunks():
    windowed = SLMIndexSettings(shared_peak_threshold=2, precursor_tolerance=1.0)
    ci = ChunkedIndex(PEPTIDES, windowed, ChunkingConfig(max_peptides_per_chunk=2))
    # The lightest peptide's window should not touch the heaviest chunk.
    visited = ci.chunks_for(spectrum_of(PEPTIDES[0]))
    assert 0 in visited
    assert len(visited) < ci.n_chunks


def test_windowed_counters_smaller_than_open():
    windowed = SLMIndexSettings(shared_peak_threshold=2, precursor_tolerance=1.0)
    open_s = SLMIndexSettings(shared_peak_threshold=2)
    q = spectrum_of(PEPTIDES[0])
    cfg = ChunkingConfig(max_peptides_per_chunk=2)
    ions_windowed = ChunkedIndex(PEPTIDES, windowed, cfg).filter(q).ions_scanned
    ions_open = ChunkedIndex(PEPTIDES, open_s, cfg).filter(q).ions_scanned
    assert ions_windowed <= ions_open


def test_invalid_chunking_rejected():
    with pytest.raises(ConfigurationError):
        ChunkingConfig(max_peptides_per_chunk=0)
