"""Process-backend contract tests: results, timings, and failure modes.

The backend must mirror ``run_spmd``'s guarantees on real processes:
per-rank results in rank order, and *no failure mode that hangs* — a
raising worker surfaces its remote traceback, a dying worker surfaces
its exit code, and a stuck pool hits the deadline.
"""

import time

import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.parallel.pool import ProcessBackend
from repro.parallel.worker import (
    crash_worker,
    echo_worker,
    exit_worker,
    sleep_worker,
    unpicklable_result_worker,
)


def test_results_arrive_in_rank_order():
    backend = ProcessBackend(3, timeout=120.0)
    res = backend.run(echo_worker, ["a", "b", "c"])
    assert res.results == [(0, 3, "a"), (1, 3, "b"), (2, 3, "c")]
    assert res.n_workers == 3
    assert len(res.wall_times) == 3 and len(res.cpu_times) == 3
    assert all(w >= 0.0 for w in res.wall_times)
    assert res.makespan == max(res.wall_times)


def test_single_worker_runs():
    res = ProcessBackend(1, timeout=120.0).run(echo_worker, [42])
    assert res.results == [(0, 1, 42)]


def test_raising_worker_reports_remote_traceback():
    backend = ProcessBackend(2, timeout=120.0)
    with pytest.raises(WorkerError, match="deliberate crash on rank 1"):
        backend.run(crash_worker, [1, 1])


def test_dying_worker_reports_exit_code_not_hang():
    backend = ProcessBackend(2, timeout=120.0)
    t0 = time.monotonic()
    with pytest.raises(WorkerError, match="exit code 13"):
        backend.run(exit_worker, [0, 0])
    assert time.monotonic() - t0 < 60.0  # well under the deadline


def test_deadline_expiry_terminates_pool():
    backend = ProcessBackend(1, timeout=3.0)
    with pytest.raises(WorkerError, match="deadline"):
        backend.run(sleep_worker, [120.0])


def test_unpicklable_fn_raises_the_real_error():
    """A start()-time failure re-raises its own error — not an
    AssertionError from cleaning up never-started processes."""
    backend = ProcessBackend(2, timeout=60.0)
    with pytest.raises(Exception) as excinfo:
        backend.run(lambda rank, size, payload: rank)
    assert not isinstance(excinfo.value, AssertionError)
    assert "pickle" in str(excinfo.value).lower()


def test_unpicklable_result_reports_cause():
    backend = ProcessBackend(1, timeout=60.0)
    with pytest.raises(WorkerError, match="while sending the result"):
        backend.run(unpicklable_result_worker, [None])


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ProcessBackend(0)
    with pytest.raises(ConfigurationError):
        ProcessBackend(1, timeout=0.0)
    with pytest.raises(ConfigurationError):
        ProcessBackend(1, start_method="teleport")
    with pytest.raises(ConfigurationError):
        ProcessBackend(2).run(echo_worker, ["only-one"])
