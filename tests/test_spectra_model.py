"""Tests for the Spectrum value type."""

import numpy as np
import pytest

from repro.constants import PROTON
from repro.errors import InvalidSpectrumError
from repro.spectra.model import Spectrum


def make(mzs, intens, **kw):
    defaults = dict(scan_id=1, precursor_mz=500.0, charge=2)
    defaults.update(kw)
    return Spectrum(mzs=np.asarray(mzs, float), intensities=np.asarray(intens, float), **defaults)


def test_basic_construction():
    s = make([100.0, 200.0], [1.0, 0.5])
    assert s.n_peaks == 2
    assert s.charge == 2


def test_neutral_mass():
    s = make([100.0], [1.0], precursor_mz=500.0, charge=2)
    assert np.isclose(s.neutral_mass, 500.0 * 2 - 2 * PROTON)


def test_unsorted_peaks_sorted_on_construction():
    s = make([300.0, 100.0, 200.0], [3.0, 1.0, 2.0])
    assert np.array_equal(s.mzs, [100.0, 200.0, 300.0])
    assert np.array_equal(s.intensities, [1.0, 2.0, 3.0])


def test_mismatched_arrays_rejected():
    with pytest.raises(InvalidSpectrumError, match="differ"):
        make([100.0, 200.0], [1.0])


def test_2d_arrays_rejected():
    with pytest.raises(InvalidSpectrumError, match="one-dimensional"):
        Spectrum(1, 500.0, 2, np.ones((2, 2)), np.ones((2, 2)))


def test_zero_charge_rejected():
    with pytest.raises(InvalidSpectrumError, match="charge"):
        make([100.0], [1.0], charge=0)


def test_negative_precursor_rejected():
    with pytest.raises(InvalidSpectrumError, match="precursor"):
        make([100.0], [1.0], precursor_mz=-1.0)


def test_nonpositive_mz_rejected():
    with pytest.raises(InvalidSpectrumError, match="positive"):
        make([0.0, 100.0], [1.0, 1.0])


def test_negative_intensity_rejected():
    with pytest.raises(InvalidSpectrumError, match="non-negative"):
        make([100.0, 200.0], [1.0, -1.0])


def test_empty_spectrum_allowed():
    s = make([], [])
    assert s.n_peaks == 0


def test_copy_is_deep():
    s = make([100.0], [1.0], true_peptide=3)
    c = s.copy()
    c.mzs[0] = 999.0
    assert s.mzs[0] == 100.0
    assert c.true_peptide == 3


def test_true_peptide_default_none():
    assert make([100.0], [1.0]).true_peptide is None
