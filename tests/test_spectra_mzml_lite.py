"""Tests for the mzML-lite XML spectra format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.spectra.model import Spectrum
from repro.spectra.mzml_lite import read_mzml_lite, write_mzml_lite


def spectrum(scan=1, true_peptide=None):
    return Spectrum(
        scan_id=scan,
        precursor_mz=523.7712345,
        charge=2,
        mzs=np.array([147.11302, 204.13455, 761.38001]),
        intensities=np.array([0.4, 1.0, 0.7]),
        true_peptide=true_peptide,
    )


def test_roundtrip_binary_exact(tmp_path):
    path = tmp_path / "run.mzml"
    original = [spectrum(scan=i, true_peptide=i * 3) for i in range(1, 6)]
    assert write_mzml_lite(path, original) == 5
    loaded = read_mzml_lite(path)
    assert len(loaded) == 5
    for a, b in zip(original, loaded):
        assert a.scan_id == b.scan_id
        assert a.charge == b.charge
        assert a.true_peptide == b.true_peptide
        # base64 float64 encoding is bit-exact, unlike text formats
        assert np.array_equal(a.mzs, b.mzs)
        assert np.array_equal(a.intensities, b.intensities)


def test_precursor_precision(tmp_path):
    path = tmp_path / "p.mzml"
    write_mzml_lite(path, [spectrum()])
    loaded = read_mzml_lite(path)
    assert loaded[0].precursor_mz == pytest.approx(523.7712345, abs=1e-7)


def test_true_peptide_optional(tmp_path):
    path = tmp_path / "t.mzml"
    write_mzml_lite(path, [spectrum()])
    assert read_mzml_lite(path)[0].true_peptide is None


def test_empty_run(tmp_path):
    path = tmp_path / "empty.mzml"
    write_mzml_lite(path, [])
    assert read_mzml_lite(path) == []


def test_empty_spectrum(tmp_path):
    path = tmp_path / "es.mzml"
    s = Spectrum(1, 500.0, 2, np.array([]), np.array([]))
    write_mzml_lite(path, [s])
    loaded = read_mzml_lite(path)
    assert loaded[0].n_peaks == 0


def test_not_xml_rejected(tmp_path):
    path = tmp_path / "bad.mzml"
    path.write_text("this is not xml <")
    with pytest.raises(FormatError, match="well-formed"):
        read_mzml_lite(path)


def test_wrong_root_rejected(tmp_path):
    path = tmp_path / "wrong.mzml"
    path.write_text("<notMzML/>")
    with pytest.raises(FormatError, match="root element"):
        read_mzml_lite(path)


def test_missing_attrs_rejected(tmp_path):
    path = tmp_path / "attrs.mzml"
    path.write_text('<mzMLLite><run><spectrum scan="1"/></run></mzMLLite>')
    with pytest.raises(FormatError, match="attributes"):
        read_mzml_lite(path)


def test_bad_base64_rejected(tmp_path):
    path = tmp_path / "b64.mzml"
    path.write_text(
        '<mzMLLite><run><spectrum scan="1" precursorMz="500" charge="2">'
        "<mzArray>!!notb64!!</mzArray><intensityArray></intensityArray>"
        "</spectrum></run></mzMLLite>"
    )
    with pytest.raises(FormatError, match="base64"):
        read_mzml_lite(path)


def test_length_mismatch_rejected(tmp_path):
    import base64

    one = base64.b64encode(np.array([1.0]).tobytes()).decode()
    two = base64.b64encode(np.array([1.0, 2.0]).tobytes()).decode()
    path = tmp_path / "mm.mzml"
    path.write_text(
        f'<mzMLLite><run><spectrum scan="1" precursorMz="500" charge="2">'
        f"<mzArray>{one}</mzArray><intensityArray>{two}</intensityArray>"
        f"</spectrum></run></mzMLLite>"
    )
    with pytest.raises(FormatError, match="mismatch"):
        read_mzml_lite(path)


def test_interoperates_with_search(tmp_path, tiny_db, tiny_spectra):
    """Spectra loaded from mzML-lite search identically to in-memory."""
    from repro.search.serial import SerialSearchEngine

    path = tmp_path / "run.mzml"
    write_mzml_lite(path, tiny_spectra)
    loaded = read_mzml_lite(path)
    engine = SerialSearchEngine(tiny_db)
    a = engine.run(tiny_spectra)
    b = engine.run(loaded)
    for x, y in zip(a.spectra, b.spectra):
        assert x.n_candidates == y.n_candidates
        assert [(p.entry_id, p.score) for p in x.psms] == [
            (p.entry_id, p.score) for p in y.psms
        ]
