"""Distributed == serial under non-default index settings.

The main equivalence tests run the paper's open-search defaults; these
cover the other corners of the settings space: precursor-windowed
("closed") search, multi-charge fragmentation, b-only indexes, and
coarser resolutions — partitioning must stay semantics-free in all of
them.
"""

import pytest

from repro.chem.fragments import FragmentationSettings
from repro.index.slm import SLMIndexSettings
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.serial import SerialSearchEngine

SETTINGS_MATRIX = {
    "windowed": SLMIndexSettings(precursor_tolerance=3.0),
    "charges12": SLMIndexSettings(
        fragmentation=FragmentationSettings(charges=(1, 2))
    ),
    "b_only": SLMIndexSettings(
        fragmentation=FragmentationSettings(include_y=False),
        shared_peak_threshold=2,
    ),
    "coarse": SLMIndexSettings(resolution=0.1, fragment_tolerance=0.2),
}


@pytest.mark.parametrize("name", sorted(SETTINGS_MATRIX))
def test_distributed_equals_serial_under_settings(tiny_db, tiny_spectra, name):
    settings = SETTINGS_MATRIX[name]
    serial = SerialSearchEngine(tiny_db, settings).run(tiny_spectra)
    dist = DistributedSearchEngine(
        tiny_db, EngineConfig(n_ranks=3, policy="cyclic", index=settings)
    ).run(tiny_spectra)
    for a, b in zip(serial.spectra, dist.spectra):
        assert a.n_candidates == b.n_candidates, name
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ], name


def test_windowed_distributed_fewer_candidates(tiny_db, tiny_spectra):
    open_res = DistributedSearchEngine(
        tiny_db, EngineConfig(n_ranks=3)
    ).run(tiny_spectra)
    win_res = DistributedSearchEngine(
        tiny_db,
        EngineConfig(n_ranks=3, index=SLMIndexSettings(precursor_tolerance=3.0)),
    ).run(tiny_spectra)
    assert win_res.total_cpsms < open_res.total_cpsms


def test_charge2_index_has_more_ions(tiny_db):
    from repro.index.slm import SLMIndex

    s1 = SLMIndex(tiny_db.entries[:50], SLMIndexSettings())
    s2 = SLMIndex(
        tiny_db.entries[:50],
        SLMIndexSettings(fragmentation=FragmentationSettings(charges=(1, 2))),
    )
    assert s2.n_ions == 2 * s1.n_ions


def test_top_k_one(tiny_db, tiny_spectra):
    """top_k=1 keeps only the best PSM and it matches the default
    run's best PSM."""
    default = DistributedSearchEngine(
        tiny_db, EngineConfig(n_ranks=2, top_k=5)
    ).run(tiny_spectra)
    top1 = DistributedSearchEngine(
        tiny_db, EngineConfig(n_ranks=2, top_k=1)
    ).run(tiny_spectra)
    for a, b in zip(default.spectra, top1.spectra):
        assert len(b.psms) <= 1
        if a.psms:
            assert b.psms[0].entry_id == a.psms[0].entry_id
