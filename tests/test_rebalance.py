"""Elastic rebalancing: policy windows, live migration, bit-identity.

The acceptance bar from the issue: with ``rebalance_li`` armed, a
session under a sustained per-rank slowdown migrates its plan between
rounds (and can grow the pool) while every batch — before, during and
after every migration and resize — stays bit-identical to the serial
engine, across {sequential, pipelined} x {2, 3} workers, sharded and
unsharded.  The decision layer (:class:`RebalancePolicy`) is unit
tested without processes; the satellites (recurring ``slow`` faults,
windowed gauge watermarks, retry-of-retry during re-attach) ride
along.
"""

import json
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs import Gauge, JsonlTracer, MetricsRegistry, validate_trace_file
from repro.parallel.faults import FaultPlan, FaultSpec, maybe_inject
from repro.search.serial import SerialSearchEngine
from repro.service import (
    RebalanceConfig,
    RebalanceDecision,
    RebalancePolicy,
    SearchService,
    ServiceConfig,
    ShardedSearchService,
)


def assert_same_results(serial, service_results):
    assert len(serial.spectra) == len(service_results.spectra)
    for a, b in zip(serial.spectra, service_results.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def batches(tiny_spectra):
    return [list(tiny_spectra), list(tiny_spectra[:7]), list(tiny_spectra[5:])]


@pytest.fixture(scope="module")
def serial_refs(tiny_db, batches):
    engine = SerialSearchEngine(tiny_db)
    return [engine.run(batch) for batch in batches]


#: Recurring straggler: rank 0 runs every command body 3x slower —
#: the heterogeneous-host model the elastic session exists to absorb.
def _slow_rank0_plan(scale=2.0):
    return FaultPlan(
        [
            FaultSpec(
                kind="slow",
                stage="reply",
                rank=0,
                every_batch=True,
                scale=scale,
            )
        ]
    )


# -- RebalanceConfig ---------------------------------------------------


def test_rebalance_config_validation():
    with pytest.raises(ConfigurationError):
        RebalanceConfig(li_threshold=-0.1)
    with pytest.raises(ConfigurationError):
        RebalanceConfig(window=0)
    with pytest.raises(ConfigurationError):
        RebalanceConfig(cooldown=-1)
    with pytest.raises(ConfigurationError):
        RebalanceConfig(min_workers=0)
    with pytest.raises(ConfigurationError):
        RebalanceConfig(min_workers=4, max_workers=2)
    with pytest.raises(ConfigurationError):
        RebalanceConfig(slow_rank_speed=1.0)


def test_rebalance_config_clamp():
    cfg = RebalanceConfig(min_workers=2, max_workers=4)
    assert cfg.clamp(1) == 2
    assert cfg.clamp(3) == 3
    assert cfg.clamp(9) == 4
    unbounded = RebalanceConfig()
    assert unbounded.clamp(7) == 7
    assert unbounded.clamp(0) == 1


def test_service_config_validates_rebalance_knobs_eagerly():
    with pytest.raises(ConfigurationError):
        ServiceConfig(n_workers=2, rebalance_li=0.3, rebalance_window=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(n_workers=2, rebalance_li=-1.0)
    # Unarmed: the elastic knobs are not even constructed.
    assert ServiceConfig(n_workers=2).rebalance_config() is None


# -- RebalancePolicy windows -------------------------------------------


def _skewed(policy, n=2, slow=3.0):
    """One skewed observation: rank 0 at ``slow``, the rest at 1.0."""
    walls = tuple([slow] + [1.0] * (n - 1))
    return policy.observe(walls, walls)


def test_policy_decides_only_on_full_windows():
    policy = RebalancePolicy(RebalanceConfig(li_threshold=0.3, window=3), 2)
    assert _skewed(policy) is None
    assert _skewed(policy) is None
    decision = _skewed(policy)
    assert isinstance(decision, RebalanceDecision)
    assert decision.reason == "li"
    assert decision.n_workers == 2
    assert decision.window_li == pytest.approx(0.5)
    # Speeds are unit-mean, slow rank below the fast one.
    assert np.mean(decision.speeds) == pytest.approx(1.0)
    assert decision.speeds[0] < decision.speeds[1]
    assert policy.trigger_total == 1


def test_policy_balanced_window_is_quiet():
    policy = RebalancePolicy(RebalanceConfig(li_threshold=0.3, window=2), 2)
    assert policy.observe((1.0, 1.0), (1.0, 1.0)) is None
    assert policy.observe((1.0, 1.0), (1.0, 1.0)) is None
    assert policy.trigger_total == 0


def test_policy_discards_vectors_straddling_a_resize():
    policy = RebalancePolicy(RebalanceConfig(li_threshold=0.3, window=2), 2)
    assert _skewed(policy) is None
    # A 3-wide vector (pool already resized, policy not yet told)
    # is stale — dropped, not accumulated.
    assert policy.observe((3.0, 1.0, 1.0), (3.0, 1.0, 1.0)) is None
    assert _skewed(policy) is not None  # second 2-wide completes it


def test_policy_cooldown_swallows_first_window_after_migration():
    policy = RebalancePolicy(
        RebalanceConfig(li_threshold=0.3, window=1, cooldown=1), 2
    )
    assert _skewed(policy) is not None
    policy.rebalanced(2, np.array([0.5, 1.5]))
    # First full post-migration window: still skewed but inside the
    # cooldown — judged only after an untainted window elapses.
    assert _skewed(policy) is None
    assert _skewed(policy) is not None


def test_policy_slow_rank_gated_on_residual_imbalance():
    """A compensated slow host keeps a low inferred speed forever;
    with the walls balanced that must NOT re-trigger."""
    policy = RebalancePolicy(
        RebalanceConfig(li_threshold=0.5, window=1, cooldown=0),
        2,
        work_shares=np.array([0.2, 0.8]),
    )
    # Equal walls under a 0.2/0.8 split: inferred speeds ~ (0.4, 1.6),
    # min well below slow_rank_speed=0.5 — but LI = 0, so quiet.
    assert policy.observe((1.0, 1.0), (1.0, 1.0)) is None
    # Residual imbalance above half the threshold re-arms the tripwire
    # even though the aggregate LI (1/3) stays below it: rank 0 runs
    # 2x wall on a fifth of the work — chronically slow.
    decision = policy.observe((2.0, 1.0), (2.0, 1.0))
    assert decision is not None and decision.reason == "slow_rank"


def test_policy_escalates_to_growth_on_second_consecutive_trip():
    policy = RebalancePolicy(
        RebalanceConfig(li_threshold=0.3, window=1, cooldown=0, max_workers=3),
        2,
    )
    first = _skewed(policy)
    assert first.reason == "li" and first.n_workers == 2
    second = _skewed(policy)
    assert second.reason == "escalate_grow" and second.n_workers == 3
    # A calm window resets the streak: the next trip is back to "li".
    assert policy.observe((1.0, 1.0), (1.0, 1.0)) is None
    assert _skewed(policy).reason == "li"


def test_policy_escalation_respects_max_workers():
    policy = RebalancePolicy(
        RebalanceConfig(li_threshold=0.3, window=1, cooldown=0, max_workers=2),
        2,
    )
    assert _skewed(policy).n_workers == 2
    second = _skewed(policy)
    assert second.n_workers == 2 and second.reason == "li"


# -- satellite: recurring slow faults ----------------------------------


def test_fault_spec_every_batch_and_scale_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="crash", stage="query", every_batch=True)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="raise", stage="query", scale=1.0)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="slow", stage="attach", every_batch=True)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="slow", stage="reply", scale=-1.0)
    # The legal shape: a batch-bearing stage, slow kind.
    FaultSpec(kind="slow", stage="reply", every_batch=True, scale=2.0)


def test_recurring_slow_fault_fires_on_every_batch():
    plan = FaultPlan(
        [FaultSpec(kind="slow", stage="reply", rank=0, every_batch=True,
                   seconds=0.02)]
    )
    start = time.perf_counter()
    for batch in range(3):
        maybe_inject(plan, 0, "reply", batch)
    elapsed = time.perf_counter() - start
    assert elapsed >= 0.05  # all three fired, no once-only ledger
    # ... and scale stretches the observed command body.
    scaled = FaultPlan(
        [FaultSpec(kind="slow", stage="reply", rank=0, every_batch=True,
                   scale=2.0)]
    )
    start = time.perf_counter()
    maybe_inject(scaled, 0, "reply", 0, work_s=0.02)
    assert time.perf_counter() - start >= 0.035
    # Wrong rank: nothing fires.
    start = time.perf_counter()
    maybe_inject(scaled, 1, "reply", 0, work_s=5.0)
    assert time.perf_counter() - start < 1.0


# -- satellite: windowed gauge watermarks ------------------------------


def test_gauge_windowed_watermarks_reset_independently_of_lifetime():
    g = Gauge("service.batch_li_wall")
    assert g.read_watermarks() == {"min": 0.0, "max": 0.0, "n_updates": 0}
    for v in (0.4, 0.9, 0.2):
        g.set(v)
    first = g.read_watermarks(reset=True)
    assert first == {"min": 0.2, "max": 0.9, "n_updates": 3}
    # Window cleared; lifetime watermarks untouched.
    assert g.read_watermarks() == {"min": 0.0, "max": 0.0, "n_updates": 0}
    assert g.as_dict()["max"] == 0.9 and g.as_dict()["n_updates"] == 3
    g.set(0.5)
    assert g.read_watermarks(reset=False) == {
        "min": 0.5, "max": 0.5, "n_updates": 1,
    }
    # reset=False peeked without clearing.
    assert g.read_watermarks()["n_updates"] == 1


# -- live sessions: automatic migration, bit-identity ------------------


@pytest.mark.parametrize("n_workers", [2, 3])
def test_auto_migration_bit_identical_sequential(
    tiny_db, batches, serial_refs, n_workers
):
    """Sustained 3x slowdown on rank 0: the armed session migrates at
    least once and every batch stays bit-identical to serial."""
    config = ServiceConfig(
        n_workers=n_workers,
        fault_plan=_slow_rank0_plan(),
        max_retries=1,
        rebalance_li=0.3,
        rebalance_window=1,
        rebalance_cooldown=1,
    )
    stream = (batches * 2)[:5]
    refs = (serial_refs * 2)[:5]
    with SearchService(tiny_db, config) as service:
        for batch, reference in zip(stream, refs):
            results, stats = service.submit(batch)
            assert_same_results(reference, results)
            assert results.n_ranks == n_workers
            # The policy's food: master-observed per-rank round walls.
            assert len(stats.round_wall_s) == n_workers
            assert all(w > 0 for w in stats.round_wall_s)
        assert service.rebalance_total >= 1
        assert service.n_workers == n_workers  # no bounds: size pinned


def test_auto_migration_bit_identical_pipelined(tiny_db, batches, serial_refs):
    config = ServiceConfig(
        n_workers=2,
        max_pending=3,
        fault_plan=_slow_rank0_plan(),
        max_retries=1,
        rebalance_li=0.3,
        rebalance_window=1,
        rebalance_cooldown=1,
    )
    stream = (batches * 2)[:6]
    refs = (serial_refs * 2)[:6]
    with SearchService(tiny_db, config) as service:
        outcomes = list(service.stream(iter(stream)))
        migrations = service.rebalance_total
    assert len(outcomes) == len(stream)
    for (results, _), reference in zip(outcomes, refs):
        assert_same_results(reference, results)
    assert migrations >= 1


def test_auto_grow_with_bounds_under_sustained_imbalance(
    tiny_db, batches, serial_refs
):
    """Escalation end-to-end: when re-weighting cannot calm the LI
    window, the session grows the pool — within max_workers — and
    results never change."""
    config = ServiceConfig(
        n_workers=2,
        fault_plan=_slow_rank0_plan(scale=4.0),
        max_retries=1,
        rebalance_li=0.05,  # trips every window
        rebalance_window=1,
        rebalance_cooldown=0,
        max_workers=3,
    )
    stream = (batches * 3)[:8]
    refs = (serial_refs * 3)[:8]
    with SearchService(tiny_db, config) as service:
        for batch, reference in zip(stream, refs):
            results, _ = service.submit(batch)
            assert_same_results(reference, results)
        grown = service.n_workers
        assert service.rebalance_total >= 1
    assert grown == 3


# -- explicit rebalance(): resize + re-plan ----------------------------


def test_explicit_grow_shrink_replan_bit_identical(
    tiny_db, batches, serial_refs
):
    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        results, _ = service.submit(batches[0])
        assert_same_results(serial_refs[0], results)

        summary = service.rebalance(n_workers=3)
        assert summary["migrated"] is True
        assert summary["n_workers"] == 3
        assert service.n_workers == 3
        results, _ = service.submit(batches[1])
        assert_same_results(serial_refs[1], results)
        assert results.n_ranks == 3

        summary = service.rebalance(n_workers=2, speeds=[1.0, 2.0])
        assert summary["n_workers"] == 2 and service.n_workers == 2
        results, _ = service.submit(batches[2])
        assert_same_results(serial_refs[2], results)
        assert results.n_ranks == 2

        # Same size, equal speeds: a plain re-plan — possibly a no-op,
        # but never a changed answer.
        summary = service.rebalance(reason="manual")
        assert summary["n_workers"] == 2
        results, _ = service.submit(batches[0])
        assert_same_results(serial_refs[0], results)
        assert service.rebalance_total >= 2


def test_explicit_rebalance_validation_and_clamping(tiny_db, batches):
    config = ServiceConfig(n_workers=2, min_workers=2, max_workers=3)
    with SearchService(tiny_db, config) as service:
        service.submit(batches[0])
        with pytest.raises(ConfigurationError):
            service.rebalance(n_workers=0)
        with pytest.raises(ConfigurationError):
            service.rebalance(n_workers=2, speeds=[1.0, -1.0])
        with pytest.raises(ConfigurationError):
            service.rebalance(n_workers=2, speeds=[1.0, 1.0, 1.0])
        # Out-of-bounds targets are clamped, not rejected.
        summary = service.rebalance(n_workers=9)
        assert summary["n_workers"] == 3 and service.n_workers == 3
        summary = service.rebalance(n_workers=1)
        assert summary["n_workers"] == 2 and service.n_workers == 2
    with pytest.raises(ServiceError):
        service.rebalance(n_workers=2)  # closed session


# -- satellite: retry-of-retry during re-attach ------------------------


def test_worker_dies_during_reattach_after_respawn(
    tiny_db, batches, serial_refs
):
    """Open-time double fault: rank 1 crashes in ATTACH, its respawned
    replacement crashes in the re-attach too; the second respawn
    heals.  The session then serves bit-identical batches."""
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="attach", rank=1),
        FaultSpec(kind="crash", stage="attach", rank=1, exit_code=23),
    )
    config = ServiceConfig(
        n_workers=2, max_retries=2, retry_backoff_s=0.01, fault_plan=plan
    )
    with SearchService(tiny_db, config) as service:
        assert service.respawn_total >= 2
        for batch, reference in zip(batches, serial_refs):
            results, _ = service.submit(batch)
            assert_same_results(reference, results)


def test_fresh_rank_crashes_during_migration_attach(
    tiny_db, batches, serial_refs
):
    """Migration-time retry: growing 2 -> 3 spawns rank 2, whose very
    first ATTACH (inside reconfigure) crashes.  The per-rank retry
    respawns it and the migration completes; results never change."""
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="attach", rank=2),
    )
    config = ServiceConfig(
        n_workers=2, max_retries=2, retry_backoff_s=0.01, fault_plan=plan
    )
    with SearchService(tiny_db, config) as service:
        results, _ = service.submit(batches[0])
        assert_same_results(serial_refs[0], results)
        assert service.respawn_total == 0  # rank 2 does not exist yet

        summary = service.rebalance(n_workers=3)
        assert summary["migrated"] is True and summary["n_workers"] == 3
        assert service.respawn_total >= 1  # the crash happened and healed

        for batch, reference in zip(batches, serial_refs):
            results, _ = service.submit(batch)
            assert_same_results(reference, results)
            assert results.n_ranks == 3


# -- sharded tier ------------------------------------------------------


def test_sharded_fleet_rebalances_per_shard_bit_identical(
    tiny_db, batches, serial_refs
):
    """Each shard runs its own policy off the same frozen config; the
    fleet view aggregates migrations and resident workers."""
    config = ServiceConfig(
        n_workers=2,
        fault_plan=_slow_rank0_plan(),
        max_retries=1,
        rebalance_li=0.3,
        rebalance_window=1,
        rebalance_cooldown=1,
    )
    stream = (batches * 2)[:5]
    refs = (serial_refs * 2)[:5]
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        for batch, reference in zip(stream, refs):
            results, _ = svc.submit(batch)
            assert_same_results(reference, results)
        # Rank 0 of EVERY shard pool is slow: both policies trip.
        assert svc.rebalance_total >= 2
        assert svc.n_workers_total == 4


# -- observability -----------------------------------------------------


def test_rebalance_trace_events_are_schema_valid(
    tiny_db, batches, serial_refs, tmp_path
):
    trace = tmp_path / "trace.jsonl"
    tracer = JsonlTracer(trace)
    config = ServiceConfig(
        n_workers=2,
        tracer=tracer,
        metrics=MetricsRegistry(),
        fault_plan=_slow_rank0_plan(),
        max_retries=1,
        rebalance_li=0.3,
        rebalance_window=1,
        rebalance_cooldown=1,
    )
    stream = (batches * 2)[:4]
    refs = (serial_refs * 2)[:4]
    with SearchService(tiny_db, config) as service:
        for batch, reference in zip(stream, refs):
            results, _ = service.submit(batch)
            assert_same_results(reference, results)
        service.rebalance(n_workers=3)  # forces a pool.resize record
        auto_migrations = service.rebalance_total
    tracer.close()

    n, errors = validate_trace_file(trace)
    assert errors == [] and n > 0
    records = [
        json.loads(line) for line in trace.read_text().splitlines()
    ]
    events = [r for r in records if r.get("type") == "event"]
    names = [r["kind"] for r in events]
    assert names.count("rebalance.migrate") >= auto_migrations >= 2
    assert "rebalance.trigger" in names  # at least one automatic trigger
    migrate = next(r for r in events if r["kind"] == "rebalance.migrate")
    assert {"reason", "n_from", "n_to", "changed_ranks"} <= set(migrate)
    resize = next(r for r in events if r["kind"] == "pool.resize")
    assert resize["n_from"] == 2 and resize["n_to"] == 3
