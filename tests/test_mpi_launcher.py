"""Tests for the SPMD launcher."""

import pytest

from repro.errors import CommunicatorError
from repro.mpi.launcher import run_spmd
from repro.mpi.simtime import CommCostModel

FAST = CommCostModel(latency=0.0, seconds_per_byte=0.0)


def test_results_in_rank_order():
    res = run_spmd(lambda comm: comm.rank * 2, 5, cost_model=FAST)
    assert res.results == [0, 2, 4, 6, 8]
    assert res.n_ranks == 5


def test_single_rank_runs_inline():
    res = run_spmd(lambda comm: comm.rank, 1, cost_model=FAST)
    assert res.results == [0]


def test_clock_times_collected():
    def prog(comm):
        comm.charge_compute(comm.rank + 1.0)

    res = run_spmd(prog, 3, cost_model=FAST)
    assert res.clock_times == pytest.approx([1.0, 2.0, 3.0])
    assert res.makespan == pytest.approx(3.0)
    assert res.total_cpu_time == pytest.approx(6.0)


def test_exception_propagates():
    def prog(comm):
        if comm.rank == 1:
            raise ValueError("boom on rank 1")

    with pytest.raises(ValueError, match="boom on rank 1"):
        run_spmd(prog, 3, cost_model=FAST)


def test_root_cause_preferred_over_timeouts():
    """A crash on one rank must surface, not its peers' timeouts."""

    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("root cause")
        comm.barrier()  # would block forever without the abort

    with pytest.raises(RuntimeError, match="root cause"):
        run_spmd(prog, 3, cost_model=FAST, timeout=5.0)


def test_exception_in_single_rank_mode():
    with pytest.raises(ZeroDivisionError):
        run_spmd(lambda comm: 1 // 0, 1, cost_model=FAST)


def test_empty_makespan():
    res = run_spmd(lambda comm: None, 2, cost_model=FAST)
    assert res.makespan == 0.0
