"""Shared fixtures: small deterministic workloads reused across tests.

Session scope keeps the suite fast: building a database and its
fragment cache once is enough because everything downstream is
read-only with respect to these objects.
"""

from __future__ import annotations

import pytest

from repro.db.proteome import ProteomeConfig
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.spectra.synthetic import SyntheticRunConfig, generate_run


@pytest.fixture(scope="session")
def small_db() -> IndexedDatabase:
    """~8k-entry database: big enough for realistic candidate sets."""
    return IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=8, seed=101),
            max_variants_per_peptide=6,
        )
    )


@pytest.fixture(scope="session")
def tiny_db() -> IndexedDatabase:
    """~1k-entry database for the heavier equivalence tests."""
    return IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=2, seed=77),
            max_variants_per_peptide=3,
        )
    )


@pytest.fixture(scope="session")
def small_spectra(small_db):
    """25 synthetic query spectra drawn from ``small_db``."""
    return generate_run(
        small_db.entries, SyntheticRunConfig(n_spectra=25, seed=55)
    )


@pytest.fixture(scope="session")
def tiny_spectra(tiny_db):
    """12 synthetic query spectra drawn from ``tiny_db``."""
    return generate_run(
        tiny_db.entries, SyntheticRunConfig(n_spectra=12, seed=56)
    )
