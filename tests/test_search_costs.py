"""Tests for the virtual cost models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.index.slm import FilterResult
from repro.search.costs import QueryCostModel, SerialCostModel
from repro.search.scoring import ScoringOutcome


def fres(buckets=10, ions=100):
    return FilterResult(
        candidates=np.empty(0, dtype=np.int32),
        shared_peaks=np.empty(0, dtype=np.int32),
        buckets_scanned=buckets,
        ions_scanned=ions,
    )


def outcome(cands=5, residues=60):
    return ScoringOutcome(
        scores=np.zeros(cands),
        n_matched=np.zeros(cands, dtype=np.int32),
        candidates_scored=cands,
        residues_scored=residues,
    )


def test_filter_cost_linear_in_counters():
    m = QueryCostModel(per_bucket=1.0, per_ion=10.0)
    assert m.filter_cost(fres(3, 7)) == pytest.approx(3 + 70)


def test_scoring_cost_linear():
    m = QueryCostModel(per_candidate=1.0, per_residue=0.5)
    assert m.scoring_cost(outcome(4, 10)) == pytest.approx(4 + 5)


def test_build_cost():
    m = QueryCostModel(per_index_entry=2.0, per_index_ion=0.5)
    assert m.build_cost(10, 100) == pytest.approx(20 + 50)


def test_preprocess_cost():
    m = QueryCostModel(per_spectrum_preprocess=0.25)
    assert m.preprocess_cost(8) == 2.0


def test_prep_cost_components():
    m = SerialCostModel(
        per_entry_read=1.0, per_base_group=2.0, per_entry_map=3.0,
        per_psm_merge=0.0, fixed_startup=10.0,
    )
    assert m.prep_cost(5, 2) == pytest.approx(10 + 5 + 4 + 15)


def test_merge_cost():
    m = SerialCostModel(per_psm_merge=0.5)
    assert m.merge_cost(10) == 5.0


def test_grouping_excluded_by_default():
    """The paper's grouping runs offline; default charge is zero."""
    assert SerialCostModel().per_base_group == 0.0


def test_negative_costs_rejected():
    with pytest.raises(ConfigurationError):
        QueryCostModel(per_ion=-1.0)
    with pytest.raises(ConfigurationError):
        SerialCostModel(fixed_startup=-1.0)


def test_defaults_positive():
    q = QueryCostModel()
    assert q.per_ion > 0 and q.per_candidate > 0 and q.per_index_ion > 0
    s = SerialCostModel()
    assert s.fixed_startup > 0 and s.per_entry_read > 0
