"""Cross-component determinism: same seeds — same artifacts, bit for bit.

The reproduction's claims rest on determinism (DESIGN.md §5); these
tests pin it end-to-end, including through file serialization, so a
regression anywhere in the seed plumbing fails loudly.
"""

import io

import numpy as np

from repro.bench.workloads import WorkloadConfig, make_workload
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.report import write_psm_report


def _report_text(workload, config):
    engine = DistributedSearchEngine(workload.database, config)
    results = engine.run(workload.spectra)
    buf = io.StringIO()
    write_psm_report(buf, results, workload.database.entries)
    return buf.getvalue(), results


def test_full_pipeline_bitwise_deterministic():
    cfg = EngineConfig(n_ranks=4, policy="random", policy_seed=5)
    wl_a = make_workload(WorkloadConfig(size_m=0.8, n_spectra=10, seed=3))
    wl_b = make_workload(WorkloadConfig(size_m=0.8, n_spectra=10, seed=3))
    text_a, res_a = _report_text(wl_a, cfg)
    text_b, res_b = _report_text(wl_b, cfg)
    assert text_a == text_b
    assert res_a.query_times == res_b.query_times
    assert res_a.phase_times == res_b.phase_times


def test_seed_isolation_between_components():
    """Changing only the spectra seed must not change the database."""
    wl_a = make_workload(WorkloadConfig(size_m=0.8, n_spectra=10, seed=3))
    wl_b = make_workload(WorkloadConfig(size_m=0.8, n_spectra=10, seed=4))
    # different master seed -> different db (sanity that seed matters)
    assert wl_a.n_entries != wl_b.n_entries or [
        p.sequence for p in wl_a.database.base_peptides
    ] != [p.sequence for p in wl_b.database.base_peptides]


def test_policy_seed_isolated_from_results():
    """The Random policy's seed changes placement and timing, never
    the merged PSMs."""
    wl = make_workload(WorkloadConfig(size_m=0.8, n_spectra=10, seed=3))
    runs = [
        DistributedSearchEngine(
            wl.database,
            EngineConfig(n_ranks=4, policy="random", policy_seed=s),
        ).run(wl.spectra)
        for s in (1, 2)
    ]
    placements = [
        tuple(rs.n_entries for rs in run.rank_stats) for run in runs
    ]
    assert placements[0] != placements[1]
    for a, b in zip(runs[0].spectra, runs[1].spectra):
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score) for p in a.psms] == [
            (p.entry_id, p.score) for p in b.psms
        ]


def test_threaded_execution_does_not_affect_virtual_time():
    """Repeated runs interleave threads differently; virtual clocks
    must not notice (5 repetitions)."""
    wl = make_workload(WorkloadConfig(size_m=0.8, n_spectra=8, seed=6))
    cfg = EngineConfig(n_ranks=6, policy="cyclic")
    baseline = None
    for _ in range(5):
        res = DistributedSearchEngine(wl.database, cfg).run(wl.spectra)
        times = tuple(res.query_times) + (res.execution_time,)
        if baseline is None:
            baseline = times
        else:
            assert times == baseline


def test_mapping_tables_identical_across_runs():
    wl = make_workload(WorkloadConfig(size_m=0.8, n_spectra=8, seed=6))
    a = DistributedSearchEngine(
        wl.database, EngineConfig(n_ranks=5, policy="random", policy_seed=9)
    ).plan.mapping
    b = DistributedSearchEngine(
        wl.database, EngineConfig(n_ranks=5, policy="random", policy_seed=9)
    ).plan.mapping
    assert np.array_equal(a.table, b.table)
    assert np.array_equal(a.offsets, b.offsets)
