"""Process-backend engine vs serial reference: exact equivalence.

The acceptance bar for the real-process backend is the same one the
simulated engine carries: for every partition policy and worker
count, search results — candidate counts, PSM identities, scores,
tie-breaking — are *bit-identical* to the serial engine's.  Real
parallelism must change where the work runs, never what it computes.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import ParallelEngineConfig, ParallelSearchEngine
from repro.search.serial import SerialSearchEngine


def assert_same_results(serial, parallel):
    assert len(serial.spectra) == len(parallel.spectra)
    for a, b in zip(serial.spectra, parallel.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def serial_reference(tiny_db, tiny_spectra):
    return SerialSearchEngine(tiny_db).run(tiny_spectra)


@pytest.mark.parametrize("policy", ["cyclic", "chunk"])
@pytest.mark.parametrize("n_workers", [2, 3])
def test_process_backend_equals_serial(
    tiny_db, tiny_spectra, serial_reference, policy, n_workers
):
    engine = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=n_workers, policy=policy)
    )
    res = engine.run(tiny_spectra)
    assert_same_results(serial_reference, res)
    assert res.n_ranks == n_workers
    assert res.policy_name == policy


def test_rank_stats_cover_all_work(tiny_db, tiny_spectra, serial_reference):
    res = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    ).run(tiny_spectra)
    assert sum(s.n_entries for s in res.rank_stats) == tiny_db.n_entries
    assert (
        sum(s.candidates_scored for s in res.rank_stats)
        == serial_reference.total_cpsms
    )


def test_phase_times_are_real_and_positive(tiny_db, tiny_spectra):
    res = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    ).run(tiny_spectra)
    for key in ("build", "query", "query_cpu", "parallel_wall", "total"):
        assert res.phase_times[key] > 0.0
    # Worker phases are bounded by the master-observed parallel section.
    assert res.phase_times["query"] <= res.phase_times["parallel_wall"]
    for stats in res.rank_stats:
        assert stats.query_time > 0.0
        assert stats.query_cpu_time > 0.0


def test_plan_partitions_all_entries(tiny_db):
    engine = ParallelSearchEngine(tiny_db, ParallelEngineConfig(n_workers=3))
    assert int(engine.plan.partition_sizes().sum()) == tiny_db.n_entries


def test_engine_reuses_spilled_store(tiny_db, tiny_spectra):
    engine = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    )
    a = engine.run(tiny_spectra)
    store_dir = engine._store.directory
    b = engine.run(tiny_spectra)
    assert engine._store.directory == store_dir
    assert_same_results(a, b)
    # The second run's spill phase is a cache hit.
    assert b.phase_times["spill"] <= a.phase_times["spill"]


def test_explicit_store_dir_is_kept_and_reused(tiny_db, tiny_spectra, tmp_path):
    store_dir = tmp_path / "spill"
    config = ParallelEngineConfig(
        n_workers=2, policy="cyclic", store_dir=store_dir
    )
    first = ParallelSearchEngine(tiny_db, config)
    res_a = first.run(tiny_spectra)
    assert (store_dir / "mzs.npy").is_file()
    spilled_mtime = (store_dir / "mzs.npy").stat().st_mtime_ns
    # A second engine attaches to the existing spill instead of
    # rewriting it (rewriting could tear live memmaps).
    second = ParallelSearchEngine(tiny_db, config)
    res_b = second.run(tiny_spectra)
    assert (store_dir / "mzs.npy").stat().st_mtime_ns == spilled_mtime
    assert_same_results(res_a, res_b)


def test_mismatched_store_dir_rejected(tiny_db, small_db, tiny_spectra, tmp_path):
    store_dir = tmp_path / "spill"
    ParallelSearchEngine(
        tiny_db,
        ParallelEngineConfig(n_workers=2, store_dir=store_dir),
    ).run(tiny_spectra)
    other = ParallelSearchEngine(
        small_db, ParallelEngineConfig(n_workers=2, store_dir=store_dir)
    )
    with pytest.raises(ConfigurationError, match="refusing to reuse"):
        other._ensure_store()


def test_workers_see_only_their_partition(tiny_db, tiny_spectra):
    """Per-worker index sizes match the plan (no replicated database)."""
    engine = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=3, policy="cyclic")
    )
    res = engine.run(tiny_spectra)
    expected = engine.plan.partition_sizes()
    got = np.array([s.n_entries for s in res.rank_stats], dtype=np.int64)
    assert np.array_equal(expected, got)


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        ParallelEngineConfig(n_workers=0)
    with pytest.raises(ConfigurationError):
        ParallelEngineConfig(top_k=0)
    with pytest.raises(ConfigurationError):
        ParallelEngineConfig(timeout=-1.0)


# -- shared spill cache (one tmpdir spill per arena) -------------------


def test_engines_over_same_database_share_one_spill(tiny_db, tiny_spectra):
    """Two engines over one database attach to the same tmpdir spill
    (no second spill), and results stay bit-identical."""
    a = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    )
    b = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=3, policy="chunk")
    )
    res_a = a.run(tiny_spectra)
    mtime = (a._store.directory / "mzs.npy").stat().st_mtime_ns
    res_b = b.run(tiny_spectra)
    assert b._store.directory == a._store.directory
    # Attached, not re-spilled (rewriting could tear live memmaps).
    assert (b._store.directory / "mzs.npy").stat().st_mtime_ns == mtime
    assert_same_results(res_a, res_b)


def test_first_engine_death_does_not_remove_shared_spill(tiny_db, tiny_spectra):
    """The spill is refcounted: it outlives any single engine and is
    removed only when the last holder is garbage-collected."""
    import gc

    a = ParallelSearchEngine(tiny_db, ParallelEngineConfig(n_workers=2))
    b = ParallelSearchEngine(tiny_db, ParallelEngineConfig(n_workers=2))
    a.run(tiny_spectra)
    b._ensure_store()
    directory = a._store.directory
    del a
    gc.collect()
    assert directory.is_dir()  # b still maps it
    assert_same_results(
        ParallelSearchEngine(
            tiny_db, ParallelEngineConfig(n_workers=2)
        ).run(tiny_spectra),
        b.run(tiny_spectra),
    )
    del b
    gc.collect()
    assert not directory.exists()  # last holder gone -> tmpdir gone


# -- stale-store sweep (hard-crash leak window) ------------------------


def test_sweep_removes_stale_dirs_and_keeps_live_ones(tmp_path):
    from repro.parallel import sweep_stale_stores

    torn = tmp_path / "repro-arena-torn"  # crashed between mkdtemp and spill
    torn.mkdir()
    orphan = tmp_path / "repro-spectra-orphan"  # complete but long dead
    orphan.mkdir()
    (orphan / "spectra_manifest.json").write_text("{}")
    live = tmp_path / "repro-arena-live"  # complete and recent
    live.mkdir()
    (live / "arena_manifest.json").write_text("{}")
    unrelated = tmp_path / "other-dir"
    unrelated.mkdir()

    removed = sweep_stale_stores(
        tmp_path, incomplete_age_s=0.0, complete_age_s=0.0
    )
    assert removed == 3  # with age 0 even "live" qualifies ...
    assert not torn.exists() and not orphan.exists() and not live.exists()
    assert unrelated.is_dir()  # ... but foreign dirs are never touched

    # With realistic thresholds a fresh complete store survives.
    fresh = tmp_path / "repro-arena-fresh"
    fresh.mkdir()
    (fresh / "arena_manifest.json").write_text("{}")
    assert sweep_stale_stores(tmp_path) == 0
    assert fresh.is_dir()


def test_sweep_never_touches_stores_with_a_live_owner(tmp_path):
    """An owner.pid of a living process vetoes removal regardless of
    age — an idle long-running session must survive any sweep."""
    from repro.parallel import sweep_stale_stores, write_owner_marker

    live = tmp_path / "repro-spectra-session"
    live.mkdir()
    write_owner_marker(live)  # this test process is the live owner
    dead = tmp_path / "repro-spectra-orphan"
    dead.mkdir()
    (dead / "owner.pid").write_text("999999999\n")  # no such process

    removed = sweep_stale_stores(
        tmp_path, incomplete_age_s=0.0, complete_age_s=0.0
    )
    assert removed == 1
    assert live.is_dir() and not dead.exists()
