"""Process-backend engine vs serial reference: exact equivalence.

The acceptance bar for the real-process backend is the same one the
simulated engine carries: for every partition policy and worker
count, search results — candidate counts, PSM identities, scores,
tie-breaking — are *bit-identical* to the serial engine's.  Real
parallelism must change where the work runs, never what it computes.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import ParallelEngineConfig, ParallelSearchEngine
from repro.search.serial import SerialSearchEngine


def assert_same_results(serial, parallel):
    assert len(serial.spectra) == len(parallel.spectra)
    for a, b in zip(serial.spectra, parallel.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def serial_reference(tiny_db, tiny_spectra):
    return SerialSearchEngine(tiny_db).run(tiny_spectra)


@pytest.mark.parametrize("policy", ["cyclic", "chunk"])
@pytest.mark.parametrize("n_workers", [2, 3])
def test_process_backend_equals_serial(
    tiny_db, tiny_spectra, serial_reference, policy, n_workers
):
    engine = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=n_workers, policy=policy)
    )
    res = engine.run(tiny_spectra)
    assert_same_results(serial_reference, res)
    assert res.n_ranks == n_workers
    assert res.policy_name == policy


def test_rank_stats_cover_all_work(tiny_db, tiny_spectra, serial_reference):
    res = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    ).run(tiny_spectra)
    assert sum(s.n_entries for s in res.rank_stats) == tiny_db.n_entries
    assert (
        sum(s.candidates_scored for s in res.rank_stats)
        == serial_reference.total_cpsms
    )


def test_phase_times_are_real_and_positive(tiny_db, tiny_spectra):
    res = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    ).run(tiny_spectra)
    for key in ("build", "query", "query_cpu", "parallel_wall", "total"):
        assert res.phase_times[key] > 0.0
    # Worker phases are bounded by the master-observed parallel section.
    assert res.phase_times["query"] <= res.phase_times["parallel_wall"]
    for stats in res.rank_stats:
        assert stats.query_time > 0.0
        assert stats.query_cpu_time > 0.0


def test_plan_partitions_all_entries(tiny_db):
    engine = ParallelSearchEngine(tiny_db, ParallelEngineConfig(n_workers=3))
    assert int(engine.plan.partition_sizes().sum()) == tiny_db.n_entries


def test_engine_reuses_spilled_store(tiny_db, tiny_spectra):
    engine = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=2, policy="cyclic")
    )
    a = engine.run(tiny_spectra)
    store_dir = engine._store.directory
    b = engine.run(tiny_spectra)
    assert engine._store.directory == store_dir
    assert_same_results(a, b)
    # The second run's spill phase is a cache hit.
    assert b.phase_times["spill"] <= a.phase_times["spill"]


def test_explicit_store_dir_is_kept_and_reused(tiny_db, tiny_spectra, tmp_path):
    store_dir = tmp_path / "spill"
    config = ParallelEngineConfig(
        n_workers=2, policy="cyclic", store_dir=store_dir
    )
    first = ParallelSearchEngine(tiny_db, config)
    res_a = first.run(tiny_spectra)
    assert (store_dir / "mzs.npy").is_file()
    spilled_mtime = (store_dir / "mzs.npy").stat().st_mtime_ns
    # A second engine attaches to the existing spill instead of
    # rewriting it (rewriting could tear live memmaps).
    second = ParallelSearchEngine(tiny_db, config)
    res_b = second.run(tiny_spectra)
    assert (store_dir / "mzs.npy").stat().st_mtime_ns == spilled_mtime
    assert_same_results(res_a, res_b)


def test_mismatched_store_dir_rejected(tiny_db, small_db, tiny_spectra, tmp_path):
    store_dir = tmp_path / "spill"
    ParallelSearchEngine(
        tiny_db,
        ParallelEngineConfig(n_workers=2, store_dir=store_dir),
    ).run(tiny_spectra)
    other = ParallelSearchEngine(
        small_db, ParallelEngineConfig(n_workers=2, store_dir=store_dir)
    )
    with pytest.raises(ConfigurationError, match="refusing to reuse"):
        other._ensure_store()


def test_workers_see_only_their_partition(tiny_db, tiny_spectra):
    """Per-worker index sizes match the plan (no replicated database)."""
    engine = ParallelSearchEngine(
        tiny_db, ParallelEngineConfig(n_workers=3, policy="cyclic")
    )
    res = engine.run(tiny_spectra)
    expected = engine.plan.partition_sizes()
    got = np.array([s.n_entries for s in res.rank_stats], dtype=np.int64)
    assert np.array_equal(expected, got)


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        ParallelEngineConfig(n_workers=0)
    with pytest.raises(ConfigurationError):
        ParallelEngineConfig(top_k=0)
    with pytest.raises(ConfigurationError):
        ParallelEngineConfig(timeout=-1.0)
