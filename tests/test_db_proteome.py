"""Tests for the synthetic proteome generator."""

import pytest

from repro.constants import ALPHABET_SET
from repro.db.proteome import ProteomeConfig, generate_proteome
from repro.errors import ConfigurationError


def test_deterministic_under_seed():
    a = generate_proteome(ProteomeConfig(n_families=5, seed=1))
    b = generate_proteome(ProteomeConfig(n_families=5, seed=1))
    assert [r.sequence for r in a.records] == [r.sequence for r in b.records]


def test_different_seeds_differ():
    a = generate_proteome(ProteomeConfig(n_families=5, seed=1))
    b = generate_proteome(ProteomeConfig(n_families=5, seed=2))
    assert [r.sequence for r in a.records] != [r.sequence for r in b.records]


def test_family_extension_is_prefix_stable():
    """Adding families must not reshuffle existing ones (sweep-friendly)."""
    small = generate_proteome(ProteomeConfig(n_families=3, seed=9))
    large = generate_proteome(ProteomeConfig(n_families=6, seed=9))
    small_seqs = [r.sequence for r in small.records]
    assert [r.sequence for r in large.records][: len(small_seqs)] == small_seqs


def test_canonical_alphabet_only():
    prot = generate_proteome(ProteomeConfig(n_families=4, seed=3))
    for rec in prot.records:
        assert set(rec.sequence) <= ALPHABET_SET


def test_every_family_has_founder():
    prot = generate_proteome(ProteomeConfig(n_families=10, seed=4))
    founders = [r for r in prot.records if r.header.endswith("V0")]
    assert len(founders) == 10


def test_family_of_alignment():
    prot = generate_proteome(ProteomeConfig(n_families=6, seed=5))
    assert len(prot.family_of) == len(prot.records)
    for rec, fam in zip(prot.records, prot.family_of):
        assert rec.header.startswith(f"syn|F{fam}V")


def test_variants_are_homologous():
    """Variants should share most residues with their founder."""
    prot = generate_proteome(
        ProteomeConfig(n_families=8, seed=6, mutation_rate=0.02, indel_rate=0.0)
    )
    by_family = {}
    for rec, fam in zip(prot.records, prot.family_of):
        by_family.setdefault(fam, []).append(rec.sequence)
    checked = 0
    for seqs in by_family.values():
        founder = seqs[0]
        for variant in seqs[1:]:
            assert len(variant) == len(founder)  # no indels configured
            same = sum(a == b for a, b in zip(founder, variant))
            assert same / len(founder) > 0.9
            checked += 1
    assert checked > 0


def test_lengths_plausible():
    prot = generate_proteome(ProteomeConfig(n_families=20, seed=7))
    lengths = [len(r.sequence) for r in prot.records]
    assert min(lengths) >= 50
    assert max(lengths) <= 5000
    mean = sum(lengths) / len(lengths)
    assert 150 < mean < 900


def test_total_residues():
    prot = generate_proteome(ProteomeConfig(n_families=3, seed=8))
    assert prot.total_residues() == sum(len(r.sequence) for r in prot.records)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_families": 0},
        {"family_size_mean": 0.5},
        {"mutation_rate": 1.5},
        {"indel_rate": -0.1},
        {"protein_length_mean": 5},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        ProteomeConfig(**kwargs)


def test_mismatched_metadata_rejected():
    prot = generate_proteome(ProteomeConfig(n_families=2, seed=1))
    from repro.db.proteome import SyntheticProteome

    with pytest.raises(ConfigurationError):
        SyntheticProteome(prot.records, prot.family_of[:-1], prot.config)
