"""Tests for the simulated communicator's p2p and collective semantics."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi.comm import Communicator, Fabric
from repro.mpi.launcher import run_spmd
from repro.mpi.simtime import CommCostModel

FAST = CommCostModel(latency=1e-6, seconds_per_byte=1e-9)


def test_rank_and_size():
    def prog(comm):
        assert comm.Get_rank() == comm.rank
        assert comm.Get_size() == comm.size == 3
        return comm.rank

    res = run_spmd(prog, 3, cost_model=FAST)
    assert res.results == [0, 1, 2]


def test_is_master():
    def prog(comm):
        return comm.is_master

    assert run_spmd(prog, 3, cost_model=FAST).results == [True, False, False]


def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"x": 41}, dest=1, tag=7)
            return comm.recv(source=1, tag=8)
        data = comm.recv(source=0, tag=7)
        comm.send(data["x"] + 1, dest=0, tag=8)
        return None

    res = run_spmd(prog, 2, cost_model=FAST)
    assert res.results[0] == 42


def test_channel_fifo_order():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(i, dest=1)
            return None
        return [comm.recv(source=0) for _ in range(5)]

    assert run_spmd(prog, 2, cost_model=FAST).results[1] == [0, 1, 2, 3, 4]


def test_bcast():
    def prog(comm):
        return comm.bcast("payload" if comm.is_master else None)

    assert run_spmd(prog, 4, cost_model=FAST).results == ["payload"] * 4


def test_scatter_gather_identity():
    def prog(comm):
        data = comm.scatter(
            [i * i for i in range(comm.size)] if comm.is_master else None
        )
        return comm.gather(data)

    res = run_spmd(prog, 4, cost_model=FAST)
    assert res.results[0] == [0, 1, 4, 9]
    assert res.results[1:] == [None] * 3


def test_scatter_wrong_length_rejected():
    def prog(comm):
        return comm.scatter([1] if comm.is_master else None)

    with pytest.raises(CommunicatorError, match="exactly"):
        run_spmd(prog, 2, cost_model=FAST)


def test_allgather():
    def prog(comm):
        return comm.allgather(comm.rank * 10)

    res = run_spmd(prog, 3, cost_model=FAST)
    assert res.results == [[0, 10, 20]] * 3


def test_allreduce_sum():
    def prog(comm):
        return comm.allreduce(comm.rank + 1)

    assert run_spmd(prog, 4, cost_model=FAST).results == [10, 10, 10, 10]


def test_reduce_custom_op():
    def prog(comm):
        return comm.reduce(comm.rank + 1, op=lambda a, b: a * b)

    res = run_spmd(prog, 4, cost_model=FAST)
    assert res.results[0] == 24
    assert res.results[1:] == [None] * 3


def test_barrier_synchronizes_clocks():
    def prog(comm):
        comm.charge_compute(float(comm.rank))  # rank r works r seconds
        comm.barrier()
        return comm.clock.now

    res = run_spmd(prog, 4, cost_model=CommCostModel(latency=0.0, seconds_per_byte=0.0))
    assert all(t == pytest.approx(3.0) for t in res.results)


def test_recv_syncs_clock_to_arrival():
    model = CommCostModel(latency=1.0, seconds_per_byte=0.0)

    def prog(comm):
        if comm.rank == 0:
            comm.charge_compute(10.0)
            comm.send("x", dest=1)
            return comm.clock.now
        comm.recv(source=0)
        return comm.clock.now

    res = run_spmd(prog, 2, cost_model=model)
    assert res.results[0] == pytest.approx(11.0)  # 10 compute + 1 send
    assert res.results[1] == pytest.approx(11.0)  # synced to arrival


def test_numpy_payloads():
    def prog(comm):
        arr = comm.bcast(np.arange(50) if comm.is_master else None)
        total = comm.allreduce(int(arr.sum()))
        return total

    assert run_spmd(prog, 3, cost_model=FAST).results == [3 * 1225] * 3


def test_peer_out_of_range_rejected():
    def prog(comm):
        comm.send("x", dest=5)

    with pytest.raises(CommunicatorError, match="peer rank"):
        run_spmd(prog, 2, cost_model=FAST)


def test_recv_timeout_raises():
    fabric = Fabric(2, FAST, timeout=0.05)
    comm = Communicator(fabric, 0)
    with pytest.raises(CommunicatorError, match="timed out"):
        comm.recv(source=1)


def test_bad_fabric_rank_rejected():
    fabric = Fabric(2, FAST)
    with pytest.raises(CommunicatorError):
        Communicator(fabric, 2)


def test_tags_isolate_channels():
    def prog(comm):
        if comm.rank == 0:
            comm.send("a", dest=1, tag=1)
            comm.send("b", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(prog, 2, cost_model=FAST).results[1] == ("a", "b")
