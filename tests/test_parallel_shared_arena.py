"""Shared-arena store tests: spill → memmap reopen must be bit-exact.

The whole point of the store is that a worker's memmap view of the
arena is indistinguishable (bit-for-bit) from the master's in-memory
arrays — including the cached bucket quantizations and bucket-major
sort orders — while rejecting writes, so N workers can safely share
one physical copy.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FormatError
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.parallel.shared_arena import SharedArenaStore
from repro.search.rank import build_rank_index

RES = SLMIndexSettings().resolution
RES_COARSE = 0.5


@pytest.fixture(scope="module")
def master_arena(tiny_db):
    arena = tiny_db.arena_for()
    # Two cached resolutions, one with a sort order, to exercise the
    # manifest's partial-cache representation.
    arena.buckets_for(RES)
    arena.sort_order_for(RES)
    arena.buckets_for(RES_COARSE)
    return arena


@pytest.fixture(scope="module")
def store(master_arena, tmp_path_factory):
    return SharedArenaStore.spill(
        master_arena, tmp_path_factory.mktemp("arena-store")
    )


@pytest.fixture(scope="module")
def reopened(store):
    return SharedArenaStore.open(store.directory).load()


def test_roundtrip_flat_arrays_bit_identical(master_arena, reopened):
    assert np.array_equal(master_arena.mzs, reopened.mzs)
    assert np.array_equal(master_arena.offsets, reopened.offsets)
    assert np.array_equal(master_arena.lengths, reopened.lengths)
    assert np.array_equal(master_arena.masses, reopened.masses)
    assert reopened.masses.dtype == np.float32
    assert reopened.offsets.dtype == np.int64


def test_roundtrip_caches_bit_identical(master_arena, reopened):
    assert set(reopened._bucket_cache) == {RES, RES_COARSE}
    assert set(reopened._order_cache) == {RES}
    for res in (RES, RES_COARSE):
        assert np.array_equal(
            master_arena._bucket_cache[res], reopened._bucket_cache[res]
        )
    assert np.array_equal(
        master_arena._order_cache[RES], reopened._order_cache[RES]
    )


def test_reopened_views_are_read_only(reopened):
    for arr in (reopened.mzs, reopened.offsets, reopened.masses):
        with pytest.raises(ValueError):
            arr[0] = 1


def test_store_reports_footprint(store, master_arena):
    files = store.file_bytes()
    assert "mzs.npy" in files and "offsets.npy" in files
    # One shared copy on disk covers at least the fragment payload.
    assert store.nbytes() >= master_arena.mzs.nbytes
    assert store.n_entries == master_arena.n_entries
    assert store.n_ions == master_arena.n_ions


def test_partial_index_over_memmap_matches_master(master_arena, reopened):
    """A worker building from the memmap store gets the master's index."""
    ids = np.arange(0, master_arena.n_entries, 3, dtype=np.int64)
    settings = SLMIndexSettings()
    _, from_master = build_rank_index(master_arena, ids, settings)
    _, from_store = build_rank_index(reopened, ids, settings)
    assert np.array_equal(from_master.ion_parents, from_store.ion_parents)
    assert np.array_equal(from_master.bucket_offsets, from_store.bucket_offsets)
    assert np.array_equal(from_master.masses, from_store.masses)


def test_spill_without_caches_loads_empty_caches(tiny_db, tmp_path):
    arena = tiny_db.arena_for()
    bare = SharedArenaStore.spill(
        type(arena)(arena.mzs, arena.offsets), tmp_path / "bare"
    )
    loaded = SharedArenaStore.open(bare.directory).load()
    assert loaded._bucket_cache == {} and loaded._order_cache == {}
    assert loaded.lengths is None and loaded.masses is None


def test_open_missing_store_raises(tmp_path):
    with pytest.raises(FormatError):
        SharedArenaStore.open(tmp_path / "nowhere")


def test_load_rejects_writable_modes(store):
    with pytest.raises(ConfigurationError):
        store.load(mmap_mode="r+")


def test_load_missing_file_raises(store, tmp_path):
    import shutil

    broken_dir = tmp_path / "broken"
    shutil.copytree(store.directory, broken_dir)
    (broken_dir / "mzs.npy").unlink()
    with pytest.raises(FormatError):
        SharedArenaStore.open(broken_dir).load()


def test_peptide_free_index_requires_masses(tiny_db):
    arena = tiny_db.arena_for()
    bare = type(arena)(arena.mzs, arena.offsets)
    with pytest.raises(ConfigurationError):
        SLMIndex(None, SLMIndexSettings(), arena=bare)
    with pytest.raises(ConfigurationError):
        SLMIndex(None, SLMIndexSettings())


# -- the stale-store reaper --------------------------------------------


def _make_store_dir(root, name, *, owner_pid=None, complete=True, age_s=0.0):
    """A fake on-disk store: optionally owned, complete, and aged."""
    import os
    import time as _time

    d = root / name
    d.mkdir()
    if complete:
        (d / "arena_manifest.json").write_text("{}", encoding="ascii")
    if owner_pid is not None:
        (d / "owner.pid").write_text(f"{owner_pid}\n", encoding="ascii")
    if age_s:
        old = _time.time() - age_s
        os.utime(d, (old, old))
    return d


def _dead_pid():
    """A PID that certainly belonged to an exited process."""
    import subprocess

    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    return proc.pid


def test_sweep_reaps_orphans_with_dead_owner(tmp_path):
    from repro.parallel.shared_arena import sweep_stale_stores

    dead = _dead_pid()
    gone_complete = _make_store_dir(
        tmp_path, "repro-arena-dead", owner_pid=dead, age_s=4 * 86400.0
    )
    gone_husk = _make_store_dir(  # torn spill: no manifest, short age bar
        tmp_path, "repro-spectra-husk", owner_pid=dead,
        complete=False, age_s=2 * 3600.0,
    )
    fresh = _make_store_dir(  # dead owner but too young to reap
        tmp_path, "repro-arena-fresh", owner_pid=dead, age_s=60.0
    )
    unrelated = _make_store_dir(  # wrong prefix: never touched
        tmp_path, "someone-elses-dir", owner_pid=dead, age_s=4 * 86400.0
    )
    assert sweep_stale_stores(root=tmp_path) == 2
    assert not gone_complete.exists() and not gone_husk.exists()
    assert fresh.exists() and unrelated.exists()


def test_sweep_never_touches_live_owner(tmp_path):
    import os

    from repro.parallel.shared_arena import sweep_stale_stores

    live = _make_store_dir(  # ancient, but its owner (this test) lives
        tmp_path, "repro-arena-live", owner_pid=os.getpid(),
        age_s=30 * 86400.0,
    )
    assert sweep_stale_stores(root=tmp_path) == 0
    assert live.exists()


def test_service_open_runs_the_sweep(tiny_db, tmp_path, monkeypatch):
    """``SearchService.open()`` reaps stale stores automatically: a
    dead-owner orphan in the temp root disappears during open."""
    import tempfile

    from repro.service import SearchService, ServiceConfig

    monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))
    orphan = _make_store_dir(
        tmp_path, "repro-arena-orphan", owner_pid=_dead_pid(),
        age_s=4 * 86400.0,
    )
    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        assert not orphan.exists()
        # The session itself is unaffected by the sweep.
        assert all(pid is not None for pid in service.worker_pids())
