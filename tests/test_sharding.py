"""Sharded serving tier: plan cuts, routing safety, fleet bit-identity.

Acceptance bar from the issue: the sharded session's merged results
are bit-identical to the serial engine and to the unsharded
:class:`~repro.service.service.SearchService` for every policy × shard
count × worker count tested — including batches whose precursor
windows straddle shard boundaries — routing provably skips shards no
window can reach (dispatch-count assertions), and a dead shard
degrades coverage (``degraded_shards``) instead of killing the
session.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError, ShardError
from repro.index.slm import SLMIndexSettings
from repro.parallel import FaultPlan, FaultSpec
from repro.search.report import read_psm_report, write_psm_report
from repro.search.serial import SerialSearchEngine
from repro.service import (
    BatchStats,
    SearchService,
    ServiceConfig,
    ShardPlan,
    ShardedBatchStats,
    ShardedSearchService,
    aggregate_batch_stats,
)


def assert_same_results(reference, results):
    assert len(reference.spectra) == len(results.spectra)
    for a, b in zip(reference.spectra, results.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def batches(tiny_spectra):
    return [list(tiny_spectra), list(tiny_spectra[:7]), list(tiny_spectra[5:])]


@pytest.fixture(scope="module")
def serial_refs(tiny_db, batches):
    engine = SerialSearchEngine(tiny_db)
    return [engine.run(batch) for batch in batches]


# -- the plan ----------------------------------------------------------


def test_plan_is_disjoint_cover_with_monotone_id_maps(tiny_db):
    for n_shards in (1, 2, 3, 5):
        plan = ShardPlan.from_database(tiny_db, n_shards)
        assert plan.n_shards == n_shards
        covered = np.sort(np.concatenate([s.entry_ids for s in plan.shards]))
        assert np.array_equal(
            covered, np.arange(tiny_db.n_entries, dtype=np.int64)
        )
        for shard in plan.shards:
            # Strictly increasing local -> global map: the property
            # the merge's tie-break fidelity rests on.
            assert np.all(np.diff(shard.entry_ids) > 0)
            assert shard.n_bases >= 1 and shard.n_entries >= 1
            assert shard.mass_min <= shard.mass_max
            assert shard.database.n_entries == shard.n_entries
        # Mass ranges ascend with shard id (contiguous runs of the
        # mass-sorted base sequence).
        mins = [s.mass_min for s in plan.shards]
        assert mins == sorted(mins)


def test_plan_balances_entry_counts(tiny_db):
    plan = ShardPlan.from_database(tiny_db, 3)
    counts = [s.n_entries for s in plan.shards]
    # Balanced to within the granularity of one base peptide's variants.
    assert max(counts) - min(counts) < tiny_db.n_entries // 3


def test_plan_explicit_boundaries(tiny_db):
    masses = np.array([p.mass for p in tiny_db.base_peptides])
    lo, hi = float(np.quantile(masses, 0.3)), float(np.quantile(masses, 0.7))
    plan = ShardPlan.from_database(tiny_db, 3, boundaries=[lo, hi])
    for shard in plan.shards:
        base_masses = masses[shard.base_ids]
        if shard.shard_id == 0:
            assert base_masses.max() < lo
        elif shard.shard_id == 1:
            assert base_masses.min() >= lo and base_masses.max() < hi
        else:
            assert base_masses.min() >= hi


def test_plan_validation_errors(tiny_db):
    with pytest.raises(ConfigurationError):
        ShardPlan.from_database(tiny_db, 0)
    with pytest.raises(ConfigurationError):
        ShardPlan.from_database(tiny_db, len(tiny_db.base_peptides) + 1)
    with pytest.raises(ConfigurationError):  # wrong boundary count
        ShardPlan.from_database(tiny_db, 3, boundaries=[1000.0])
    with pytest.raises(ConfigurationError):  # not ascending
        ShardPlan.from_database(tiny_db, 3, boundaries=[2000.0, 1000.0])
    with pytest.raises(ConfigurationError):  # empty shard
        ShardPlan.from_database(tiny_db, 2, boundaries=[1.0])


def test_routing_agrees_with_flat_filtration(tiny_db, tiny_spectra):
    """A shard skipped by routing holds no entry the flat precursor
    filter would keep — checked entry-by-entry at tight tolerances,
    including windows straddling shard boundaries."""
    plan = ShardPlan.from_database(tiny_db, 3)
    entry_masses = np.array(
        [p.mass for p in tiny_db.entries], dtype=np.float32
    ).astype(np.float64)
    # Probe real precursors plus synthetic ones sitting exactly on the
    # shard boundary masses (the adversarial window placement).
    probes = [s.neutral_mass for s in tiny_spectra]
    probes += [s.mass_min for s in plan.shards[1:]]
    probes += [s.mass_max for s in plan.shards[:-1]]
    for tol in (0.01, 0.5, 2.0):
        for nm in probes:
            keep = np.abs(entry_masses - nm) <= tol
            routed = plan.shards_for(nm, tol)
            skipped = set(range(plan.n_shards)) - set(routed)
            for sid in skipped:
                assert not keep[plan.shards[sid].entry_ids].any()


def test_open_search_routes_everywhere(tiny_db, tiny_spectra):
    plan = ShardPlan.from_database(tiny_db, 3)
    assert plan.shards_for(1000.0, None) == [0, 1, 2]
    routed = plan.route(list(tiny_spectra), SLMIndexSettings())
    for positions in routed:
        assert positions == list(range(len(tiny_spectra)))


# -- bit-identity: sharded == unsharded == serial ----------------------


@pytest.mark.parametrize("policy", ["cyclic", "chunk"])
@pytest.mark.parametrize("n_shards", [2, 3])
@pytest.mark.parametrize("n_workers", [2, 3])
def test_sharded_session_bit_identical_to_serial(
    tiny_db, batches, serial_refs, policy, n_shards, n_workers
):
    config = ServiceConfig(n_workers=n_workers, policy=policy)
    with ShardedSearchService(tiny_db, config, n_shards=n_shards) as svc:
        outcomes = [svc.submit(batch) for batch in batches]
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
        assert not results.is_degraded
        assert results.n_ranks == n_shards * n_workers
        assert isinstance(stats, ShardedBatchStats)
        assert stats.shards_dispatched + stats.shards_skipped == n_shards


def test_sharded_matches_unsharded_service_windowed(tiny_db, batches):
    """Windowed search (boundary-straddling precursor windows): the
    sharded fleet and the flat session agree PSM-for-PSM."""
    config = ServiceConfig(
        n_workers=2, index=SLMIndexSettings(precursor_tolerance=3.0)
    )
    with SearchService(tiny_db, config) as flat:
        flat_outcomes = [flat.submit(batch) for batch in batches]
    with ShardedSearchService(tiny_db, config, n_shards=3) as svc:
        sharded_outcomes = [svc.submit(batch) for batch in batches]
    for (ref, _), (results, _) in zip(flat_outcomes, sharded_outcomes):
        assert_same_results(ref, results)


def test_pipelined_stream_matches_serial(tiny_db, batches, serial_refs):
    config = ServiceConfig(n_workers=2, max_pending=3)
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        outcomes = list(svc.stream(iter(batches)))
    assert len(outcomes) == len(batches)
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
    # The stream admitted batches ahead of results: depth beyond 1.
    assert max(s.pipeline_depth for _, s in outcomes) > 1


# -- routing selectivity -----------------------------------------------


def test_mass_sorted_batches_skip_shards(tiny_db, tiny_spectra):
    """Batches clustered in precursor mass must not broadcast: the
    router skips shards whose range no window in the batch reaches."""
    config = ServiceConfig(
        n_workers=2, index=SLMIndexSettings(precursor_tolerance=2.0)
    )
    ordered = sorted(tiny_spectra, key=lambda s: s.neutral_mass)
    third = len(ordered) // 3
    clustered = [ordered[:third], ordered[third:2 * third], ordered[2 * third:]]
    serial = SerialSearchEngine(
        tiny_db, SLMIndexSettings(precursor_tolerance=2.0)
    )
    with ShardedSearchService(tiny_db, config, n_shards=3) as svc:
        outcomes = [svc.submit(batch) for batch in clustered]
        skips = svc.shard_skip_total
        dispatches = svc.shard_dispatch_total
    assert skips > 0, "mass-clustered batches must skip some shards"
    assert dispatches + skips == 3 * len(clustered)
    for (results, stats), batch in zip(outcomes, clustered):
        assert_same_results(serial.run(batch), results)
        assert stats.shards_dispatched < 3 or stats.shards_skipped == 0


def test_spectrum_routed_nowhere_reports_zero_candidates(tiny_db, tiny_spectra):
    """A precursor window beyond every shard's range yields an
    explicit zero-candidate result — the flat filter's verdict."""
    config = ServiceConfig(
        n_workers=2, index=SLMIndexSettings(precursor_tolerance=0.5)
    )
    outlier = dataclasses.replace(
        tiny_spectra[0], scan_id=999_999, precursor_mz=90_000.0, charge=1
    )
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        results, stats = svc.submit([tiny_spectra[0], outlier])
    by_scan = {sr.scan_id: sr for sr in results.spectra}
    assert by_scan[999_999].n_candidates == 0
    assert by_scan[999_999].psms == []


# -- failure isolation -------------------------------------------------


def test_shard_worker_crash_heals_bit_identical(tiny_db, batches, serial_refs):
    """One rank of one shard crashes mid-batch: the shard's pool
    retries only that rank; merged results stay bit-identical."""
    plans = [
        None,
        FaultPlan.scoped(
            FaultSpec(kind="crash", stage="query", rank=1, batch=0)
        ),
    ]
    config = ServiceConfig(n_workers=2, max_retries=2, retry_backoff_s=0.01)
    with ShardedSearchService(
        tiny_db, config, n_shards=2, shard_fault_plans=plans
    ) as svc:
        outcomes = [svc.submit(batch) for batch in batches]
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
        assert not results.is_degraded
    assert outcomes[0][1].retries >= 1
    assert outcomes[0][1].respawned >= 1


def test_dead_shard_degrades_coverage_not_session(tiny_db, batches):
    """Every rank of shard 1 crashes persistently with retries
    exhausted under ``degraded_ok``: the batch reports the exact
    ``degraded_shards`` mask (and its flattened rank mask), covers the
    surviving shard, and the TSV annotation round-trips."""
    plans = [
        None,
        FaultPlan.scoped(
            FaultSpec(kind="crash", stage="query", rank=0, once=False),
            FaultSpec(kind="crash", stage="query", rank=1, once=False),
        ),
    ]
    config = ServiceConfig(
        n_workers=2, max_retries=0, retry_backoff_s=0.01, degraded_ok=True
    )
    with ShardedSearchService(
        tiny_db, config, n_shards=2, shard_fault_plans=plans
    ) as svc:
        results, stats = svc.submit(batches[0])
        surviving = svc.plan.shards[0]
    assert results.is_degraded
    assert results.degraded_shards == (1,)
    assert stats.degraded_shards == (1,)
    assert results.degraded_ranks == (2, 3)  # shard 1's ranks, flattened
    # Coverage of the surviving shard is intact and exact.
    serial = SerialSearchEngine(surviving.database)
    reference = serial.run(batches[0])
    gid = surviving.entry_ids
    for a, b in zip(reference.spectra, results.spectra):
        assert a.n_candidates == b.n_candidates
        assert [(int(gid[p.entry_id]), p.score) for p in a.psms] == [
            (p.entry_id, p.score) for p in b.psms
        ]
    # The report annotates partial coverage and still parses.
    import io

    buffer = io.StringIO()
    write_psm_report(buffer, results, tiny_db.entries)
    text = buffer.getvalue()
    assert "# degraded_shards: 1\n" in text
    assert "# degraded_ranks: 2,3\n" in text
    buffer.seek(0)
    assert read_psm_report(buffer)


def test_shard_failure_fails_loud_without_degraded_ok(tiny_db, batches, serial_refs):
    """Retries exhausted without ``degraded_ok``: the batch's future
    raises :class:`ShardError` naming the shard; the session survives
    and the next batch heals on respawned workers."""
    plans = [
        None,
        FaultPlan.scoped(
            FaultSpec(kind="crash", stage="query", rank=1, batch=0,
                      once=False)
        ),
    ]
    config = ServiceConfig(n_workers=2, max_retries=0, retry_backoff_s=0.01)
    with ShardedSearchService(
        tiny_db, config, n_shards=2, shard_fault_plans=plans
    ) as svc:
        with pytest.raises(ShardError) as excinfo:
            svc.submit(batches[0])
        assert excinfo.value.shard == 1
        assert "shard 1" in excinfo.value.brief
        results, _ = svc.submit(batches[1])
    assert_same_results(serial_refs[1], results)


# -- session contract --------------------------------------------------


def test_session_lifecycle_errors(tiny_db, tiny_spectra):
    svc = ShardedSearchService(tiny_db, ServiceConfig(n_workers=2), n_shards=2)
    with pytest.raises(ServiceError):  # not open
        svc.submit_async([tiny_spectra[0]])
    with svc:
        with pytest.raises(ConfigurationError):  # empty batch
            svc.submit_async([])
    with pytest.raises(ServiceError):  # closed
        svc.submit_async([tiny_spectra[0]])
    svc.close()  # idempotent
    with pytest.raises(ConfigurationError):  # fault-plan arity
        ShardedSearchService(
            tiny_db, ServiceConfig(), n_shards=3, shard_fault_plans=[None]
        )


def test_admission_bound(tiny_db, tiny_spectra):
    config = ServiceConfig(n_workers=2, max_pending=1)
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        futures = [svc.submit_async(list(tiny_spectra))]
        with pytest.raises(ServiceError, match="admission queue full"):
            while True:  # the first may drain before the second submit
                futures.append(svc.submit_async(list(tiny_spectra[:3])))
        for future in futures:
            future.result()


def test_fleet_introspection(tiny_db, batches):
    config = ServiceConfig(n_workers=2)
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        assert svc.is_open
        assert len(svc.worker_pids()) == 4
        assert all(pid for pid in svc.worker_pids())
        svc.submit(batches[0])
        assert svc.n_batches == 1
        assert len(svc.batch_stats) == 1
        assert svc.open_s > 0 and svc.attach_s > 0
    assert not svc.is_open


# -- stats aggregation (shared with the bench harness) -----------------


def test_aggregate_batch_stats():
    def stats(i, total, **kw):
        base = dict(
            batch_index=i, n_spectra=4, preprocess_s=0.0, spill_s=0.0,
            parallel_s=0.0, merge_s=0.0, total_s=total,
            query_wall_s=(), query_cpu_s=(), scatter_bytes=10 * i,
            peak_bytes=0, respawned=0,
        )
        base.update(kw)
        return BatchStats(**base)

    empty = aggregate_batch_stats([])
    assert empty.n_batches == 0 and empty.steady_batch_s == 0.0
    assert empty.p50_batch_s == 0.0 and empty.p95_batch_s == 0.0
    assert empty.query_li_mean == 0.0 and empty.query_li_max == 0.0

    session = aggregate_batch_stats([
        stats(0, 9.0, retries=1, overlap_s=0.5),
        stats(1, 2.0, pipeline_depth=2),
        stats(2, 3.0, hedged=1, degraded_ranks=(1,),
              query_wall_s=(1.0, 3.0)),
    ])
    assert session.n_batches == 3
    assert session.first_batch_s == 9.0
    assert session.steady_batch_s == 2.0  # min over batches 1..n
    assert session.mean_batch_s == pytest.approx(14.0 / 3)
    # Percentiles over the steady-state population [2.0, 3.0].
    assert session.p50_batch_s == pytest.approx(2.5)
    assert session.p95_batch_s == pytest.approx(2.95)
    # LI (Eq. 1) per batch: 0, 0, then (3 - 2) / 2 = 0.5.
    assert session.query_li_mean == pytest.approx(0.5 / 3)
    assert session.query_li_max == pytest.approx(0.5)
    assert session.retries == 1 and session.hedged == 1
    assert session.pipeline_depth_max == 2
    assert session.scatter_bytes_max == 20
    assert session.overlap_s_total == 0.5
    assert session.degraded_batches == 1

    # Max fields are derived from the per-rank vectors now.
    vec = stats(3, 1.0, query_wall_s=(0.5, 2.0), query_cpu_s=(0.25, 1.0))
    assert vec.query_wall_max_s == 2.0
    assert vec.query_cpu_max_s == 1.0
    assert vec.query_li == pytest.approx((2.0 - 1.25) / 1.25)

    sharded = aggregate_batch_stats([
        ShardedBatchStats(**{
            **dict(batch_index=0, n_spectra=4, preprocess_s=0.0,
                   spill_s=0.0, parallel_s=0.0, merge_s=0.0, total_s=1.0,
                   query_wall_s=(), query_cpu_s=(),
                   scatter_bytes=0, peak_bytes=0, respawned=0),
            "degraded_shards": (0,),
        })
    ])
    assert sharded.degraded_batches == 1
