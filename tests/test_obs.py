"""Observability layer: tracer, metrics, schema, and live-session traces.

The acceptance bar from the issue: a serve session with tracing on
emits schema-valid JSONL with per-rank query spans and a per-batch LI
gauge that matches an offline recompute from the batch stats; every
injected fault's supervision response (retry / respawn / hedge /
degraded) appears as a matching trace event; and the disabled path —
the no-op tracer every session gets by default — allocates nothing
per batch.
"""

import io
import json
import tracemalloc

import numpy as np
import pytest

from repro.obs import (
    EVENT_ATTRS,
    NULL_TRACER,
    SPAN_ATTRS,
    Counter,
    Gauge,
    Histogram,
    JsonlTracer,
    MetricsRegistry,
    Tracer,
    global_registry,
    quantile,
    validate_record,
    validate_trace_file,
    validate_trace_lines,
)
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.search.metrics import load_imbalance
from repro.search.rank import worker_spans_from_report
from repro.service import (
    SearchService,
    ServiceConfig,
    ShardedSearchService,
)
from repro.util.timing import PhaseTimer


def _records(path):
    return [json.loads(line) for line in open(path, encoding="ascii")]


def _by_kind(records):
    out = {}
    for r in records:
        out.setdefault(r.get("name") or r.get("kind"), []).append(r)
    return out


# -- tracer unit tests -------------------------------------------------


def test_jsonl_tracer_span_event_and_bound_attrs():
    ticks = iter([10.0, 20.0]).__next__
    buf = io.StringIO()
    tracer = JsonlTracer(buf, clock=ticks)
    tracer.span("collect", 1.5, 0.25, {"batch": 3})
    tracer.event("retry", {"rank": 1, "attempt": 2})
    lines = buf.getvalue().splitlines()
    assert len(lines) == 2 and tracer.n_records == 2
    span = json.loads(lines[0])
    assert span == {
        "type": "span", "name": "collect", "ts": 1.5, "dur": 0.25,
        "batch": 3,
    }
    event = json.loads(lines[1])
    # Events stamp themselves from the injected clock; spans never
    # read the clock (the caller already holds t0/dur).
    assert event["ts"] == 10.0
    assert event["kind"] == "retry" and event["rank"] == 1


def test_bind_merges_attrs_and_reserved_keys_win():
    buf = io.StringIO()
    tracer = JsonlTracer(buf, clock=lambda: 0.0)
    shard1 = tracer.bind(shard=1)
    deeper = shard1.bind(rank=2)
    deeper.span("demux", 0.0, 0.1, {"batch": 0, "name": "spoofed"})
    rec = json.loads(buf.getvalue())
    assert rec["shard"] == 1 and rec["rank"] == 2
    assert rec["name"] == "demux"  # reserved key beats the attr
    # Views share one sink: records and close() are common.
    assert tracer.n_records == 1 and shard1.n_records == 1
    shard1.close()
    deeper.event("respawn", {"rank": 0})
    assert tracer.n_records == 1  # closed sink drops writes
    tracer.close()  # idempotent


def test_null_tracer_is_inert_and_binds_to_itself():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.bind(shard=3) is NULL_TRACER
    assert NULL_TRACER.span("x", 0.0, 1.0) is None
    assert NULL_TRACER.event("y") is None
    NULL_TRACER.flush()
    NULL_TRACER.close()


def test_disabled_tracer_hot_path_allocates_nothing():
    """The guarded emit pattern every instrumentation site uses must
    be allocation-free when tracing is off."""
    tracer = Tracer()

    def hot_path(n):
        for _ in range(n):
            if tracer.enabled:  # pragma: no cover - never taken
                tracer.span("prepare", 0.0, 1.0, {"batch": 0})
            tracer.bind()  # unconditional shard-layer bind: free too
    hot_path(100)  # warm up allocator pools, method caches
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        hot_path(10_000)
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert after - before == 0


# -- metrics unit tests ------------------------------------------------


def test_quantile_matches_numpy_linear():
    values = [9.0, 2.0, 7.5, 3.25, 11.0, 0.5]
    for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
        assert quantile(values, q) == pytest.approx(
            float(np.quantile(np.array(values), q))
        )
    assert quantile([4.0], 0.95) == 4.0
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)


def test_counter_gauge_basics():
    c = Counter("n")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = Gauge("li")
    assert g.as_dict() == {"value": 0.0, "min": 0.0, "max": 0.0,
                           "n_updates": 0}
    g.set(0.4)
    g.set(0.1)
    assert g.value == 0.1 and g.min == 0.1 and g.max == 0.4
    assert g.n_updates == 2


def test_histogram_quantiles_clamp_to_observed_range():
    h = Histogram("lat", bounds=(0.01, 0.1, 1.0))
    for v in (0.02, 0.03, 0.04, 0.05):
        h.observe(v)
    assert h.n == 4 and h.mean == pytest.approx(0.035)
    # All mass in one bucket: interpolation stays inside [min, max].
    assert 0.02 <= h.quantile(0.5) <= 0.05
    assert h.quantile(1.0) == 0.05
    d = h.as_dict()
    assert d["n"] == 4 and d["p50"] <= d["p95"] <= d["p99"]
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("empty").quantile(0.5)


def test_registry_create_on_first_use_and_kind_mismatch():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    reg.gauge("g").set(2.0)
    with pytest.raises(TypeError):
        reg.histogram("a")
    snap = reg.snapshot()
    assert snap["a"]["kind"] == "counter"
    assert snap["g"] == {"value": 2.0, "min": 2.0, "max": 2.0,
                         "n_updates": 1, "kind": "gauge"}
    reg.reset()
    assert reg.snapshot() == {}
    assert global_registry() is global_registry()


# -- schema unit tests -------------------------------------------------


def test_schema_accepts_every_declared_span_and_event():
    for name, attrs in SPAN_ATTRS.items():
        rec = {"type": "span", "name": name, "ts": 1.0, "dur": 0.1}
        rec.update({k: 0 for k in attrs})
        assert validate_record(rec) == []
    for kind, attrs in EVENT_ATTRS.items():
        rec = {"type": "event", "kind": kind, "ts": 1.0}
        rec.update({k: 0 for k in attrs})
        assert validate_record(rec) == []


def test_schema_rejects_malformed_records():
    assert validate_record({"type": "span", "name": "nope", "ts": 0,
                            "dur": 0}) == ["unknown span name 'nope'"]
    assert validate_record({"type": "event", "kind": "nope",
                            "ts": 0}) == ["unknown event kind 'nope'"]
    errs = validate_record({"type": "span", "name": "worker.query",
                            "ts": 0.0, "dur": -1.0, "batch": 0})
    assert any("negative dur" in e for e in errs)
    assert any("missing attr 'rank'" in e for e in errs)
    assert validate_record({"type": "wat"}) == ["unknown record type 'wat'"]
    assert validate_record(7) == ["record is not an object: 7"]
    # Extra attrs are always fine (bound shard tags, fleet markers...)
    assert validate_record({"type": "event", "kind": "session.close",
                            "ts": 0.0, "fleet": True, "extra": 1}) == []


def test_validate_trace_lines_numbers_and_blanks():
    n, errors = validate_trace_lines([
        '{"type": "event", "kind": "session.close", "ts": 1.0}',
        "",
        "not json",
        '{"type": "span", "name": "bogus", "ts": 0, "dur": 0}',
    ])
    assert n == 2
    assert errors[0].startswith("line 3: invalid JSON")
    assert errors[1] == "line 4: unknown span name 'bogus'"


def test_worker_spans_reanchor_on_master_clock():
    report = {"spans": (("worker.open", 0.0, 0.5),
                        ("worker.query", 0.5, 2.0))}
    spans = worker_spans_from_report(report, anchor=100.0)
    assert spans == [("worker.open", 100.0, 0.5),
                     ("worker.query", 100.5, 2.0)]
    assert worker_spans_from_report({}, anchor=0.0) == []


def test_phase_timer_uses_injected_clock():
    ticks = iter([1.0, 3.5, 10.0, 10.25]).__next__
    timer = PhaseTimer(clock=ticks)
    with timer.measure("query"):
        pass
    with timer.measure("merge"):
        pass
    assert timer.get("query") == pytest.approx(2.5)
    assert timer.get("merge") == pytest.approx(0.25)


# -- live session traces -----------------------------------------------


@pytest.fixture(scope="module")
def batches(tiny_spectra):
    return [list(tiny_spectra), list(tiny_spectra[:7]), list(tiny_spectra[5:])]


def test_session_trace_is_schema_valid_with_per_rank_spans_and_li_gauge(
    tiny_db, batches, tmp_path
):
    trace = tmp_path / "trace.jsonl"
    metrics = MetricsRegistry()
    tracer = JsonlTracer(trace)
    config = ServiceConfig(n_workers=2, tracer=tracer, metrics=metrics)
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    tracer.close()

    n, errors = validate_trace_file(trace)
    assert errors == [] and n == tracer.n_records > 0
    kinds = _by_kind(_records(trace))
    assert len(kinds["session.open"]) == 1
    assert len(kinds["session.close"]) == 1
    for stage in ("prepare", "spill", "dispatch", "collect", "merge"):
        assert sorted(r["batch"] for r in kinds[stage]) == [0, 1, 2]
    # Per-rank query spans: one per (batch, rank), wall + CPU attrs
    # matching the stats vectors the master kept.
    queries = kinds["worker.query"]
    assert sorted((r["batch"], r["rank"]) for r in queries) == [
        (b, r) for b in range(3) for r in range(2)
    ]
    for rec in queries:
        stats = all_stats[rec["batch"]]
        assert rec["dur"] == pytest.approx(
            stats.query_wall_s[rec["rank"]], abs=1e-6
        )
        assert rec["cpu_s"] == pytest.approx(
            stats.query_cpu_s[rec["rank"]], abs=1e-6
        )
    # Worker spans re-anchor inside the master's batch window.
    collects = {r["batch"]: r for r in kinds["collect"]}
    for rec in queries:
        c = collects[rec["batch"]]
        assert rec["ts"] + rec["dur"] <= c["ts"] + c["dur"] + 0.25
    # The live LI gauge equals the offline recompute from the stats'
    # full per-rank wall vector — same function, same floats.
    gauge = metrics.gauge("service.batch_li_wall")
    assert gauge.n_updates == 3
    assert gauge.value == load_imbalance(all_stats[-1].query_wall_s)
    assert metrics.counter("service.batches").value == 3
    assert metrics.histogram("service.batch_total_s").n == 3
    # Per-batch summary events mirror the gauge (rounded for JSON).
    for rec in kinds["batch"]:
        stats = all_stats[rec["batch"]]
        assert rec["li_wall"] == pytest.approx(stats.query_li, abs=1e-8)
        assert rec["n_spectra"] == stats.n_spectra
        assert rec["retries"] == 0 and rec["respawned"] == 0


def test_untraced_session_touches_no_trace_and_default_is_null(
    tiny_db, batches
):
    config = ServiceConfig(n_workers=2)
    assert config.tracer is NULL_TRACER
    assert config.metrics is global_registry()
    with SearchService(tiny_db, config) as service:
        service.submit(batches[1])


# -- chaos sweep: faults must leave matching supervision events --------


def test_crash_fault_leaves_retry_backoff_respawn_events(
    tiny_db, batches, tmp_path
):
    trace = tmp_path / "chaos.jsonl"
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=1)
    )
    tracer = JsonlTracer(trace)
    config = ServiceConfig(
        n_workers=2, max_retries=2, retry_backoff_s=0.01,
        fault_plan=plan, tracer=tracer, metrics=MetricsRegistry(),
    )
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    tracer.close()

    n, errors = validate_trace_file(trace)
    assert errors == []
    kinds = _by_kind(_records(trace))
    assert all_stats[1].retries == 1 and all_stats[1].respawned == 1
    # One retry event per counted retry, same rank, batch attr carried.
    (retry,) = kinds["retry"]
    assert retry["rank"] == 1 and retry["attempt"] == 1
    assert retry["batch"] == 1
    (backoff,) = kinds["backoff"]
    assert backoff["rank"] == 1 and backoff["delay_s"] > 0
    (respawn,) = kinds["respawn"]
    assert respawn["rank"] == 1
    assert "hedge.launch" not in kinds and "degraded.rank" not in kinds


def test_degraded_fault_leaves_degraded_rank_event(
    tiny_db, batches, tmp_path
):
    trace = tmp_path / "degraded.jsonl"
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=1, once=False)
    )
    tracer = JsonlTracer(trace)
    config = ServiceConfig(
        n_workers=2, max_retries=1, retry_backoff_s=0.01,
        degraded_ok=True, fault_plan=plan, tracer=tracer,
        metrics=MetricsRegistry(),
    )
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    tracer.close()

    n, errors = validate_trace_file(trace)
    assert errors == []
    kinds = _by_kind(_records(trace))
    assert all_stats[1].degraded_ranks == (1,)
    (degraded,) = kinds["degraded.rank"]
    assert degraded["rank"] == 1 and degraded["retries"] == 1
    assert len(kinds["retry"]) == 1


def test_hedge_fault_leaves_hedge_launch_and_win_events(
    tiny_db, batches, tmp_path
):
    trace = tmp_path / "hedge.jsonl"
    plan = FaultPlan.scoped(
        FaultSpec(kind="slow", stage="query", rank=1, batch=1, seconds=8.0)
    )
    tracer = JsonlTracer(trace)
    config = ServiceConfig(
        n_workers=2, max_retries=0, hedge_after=0.5,
        fault_plan=plan, tracer=tracer, metrics=MetricsRegistry(),
    )
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    tracer.close()

    n, errors = validate_trace_file(trace)
    assert errors == []
    kinds = _by_kind(_records(trace))
    assert all_stats[1].hedged >= 1
    launches = kinds["hedge.launch"]
    assert len(launches) == all_stats[1].hedged
    assert all(r["rank"] == 1 for r in launches)
    # Every launch resolves exactly once: a win (promoted hedge) or a
    # loss (original answered first / hedge failed).
    resolved = kinds.get("hedge.win", []) + kinds.get("hedge.loss", [])
    assert len(resolved) == len(launches)
    assert len(kinds.get("hedge.win", [])) >= 1  # the 8 s straggler lost


def test_hedge_winner_spans_are_reanchored_to_hedge_launch(
    tiny_db, batches, tmp_path
):
    # When a hedge wins, the promoted result's worker spans were
    # measured by the *replacement* worker, whose round started at
    # hedge launch — not at the original dispatch.  The trace must
    # carry the winner's timing on the winner's timeline: one
    # worker.query span for the hedged rank, starting after the hedge
    # fired, with the replacement's short duration (not the 8 s
    # straggler's).
    trace = tmp_path / "hedge_spans.jsonl"
    plan = FaultPlan.scoped(
        FaultSpec(kind="slow", stage="query", rank=1, batch=1, seconds=8.0)
    )
    tracer = JsonlTracer(trace)
    config = ServiceConfig(
        n_workers=2, max_retries=0, hedge_after=0.5,
        fault_plan=plan, tracer=tracer, metrics=MetricsRegistry(),
    )
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    tracer.close()

    assert all_stats[1].hedged >= 1
    kinds = _by_kind(_records(trace))
    assert len(kinds.get("hedge.win", [])) >= 1
    queries = [r for r in kinds["worker.query"] if r["batch"] == 1]
    # No leaked loser spans: exactly one query span per rank.
    assert sorted(r["rank"] for r in queries) == [0, 1]
    hedged_span = next(r for r in queries if r["rank"] == 1)
    normal_span = next(r for r in queries if r["rank"] == 0)
    # The winner queried at full speed — nowhere near the fault's 8 s.
    assert hedged_span["dur"] < 4.0
    # Its start is re-based to the hedge launch: at least hedge_after
    # past the round's dispatch, well after the healthy rank started.
    (dispatch,) = [r for r in kinds["dispatch"] if r["batch"] == 1]
    assert hedged_span["ts"] >= dispatch["ts"] + 0.4
    assert hedged_span["ts"] > normal_span["ts"] + 0.4
    # The healthy rank's span still sits at dispatch time.
    assert abs(normal_span["ts"] - dispatch["ts"]) < 0.4


# -- sharded fleet traces ----------------------------------------------


def test_sharded_trace_has_route_demux_and_shard_bound_records(
    tiny_db, batches, tmp_path
):
    trace = tmp_path / "fleet.jsonl"
    metrics = MetricsRegistry()
    tracer = JsonlTracer(trace)
    config = ServiceConfig(n_workers=2, tracer=tracer, metrics=metrics)
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        all_stats = [svc.submit(batch)[1] for batch in batches]
    tracer.close()

    n, errors = validate_trace_file(trace)
    assert errors == []
    kinds = _by_kind(_records(trace))
    routes = {r["batch"]: r for r in kinds["route"]}
    demuxes = {r["batch"]: r for r in kinds["demux"]}
    for i, stats in enumerate(all_stats):
        assert routes[i]["dispatched"] == stats.shards_dispatched
        assert routes[i]["skipped"] == stats.shards_skipped
        assert i in demuxes
    # Inner-service records carry their bound shard id; fleet-level
    # records don't.
    shard_ids = {r.get("shard") for r in kinds["worker.query"]}
    assert shard_ids <= {0, 1} and shard_ids  # routed shards only
    assert all("shard" not in r for r in kinds["route"])
    fleet_opens = [r for r in kinds["session.open"] if r.get("fleet")]
    assert len(fleet_opens) == 1
    assert fleet_opens[0]["n_workers"] == 4
    fleet_batches = [r for r in kinds["batch"] if r.get("fleet")]
    assert sorted(r["batch"] for r in fleet_batches) == [0, 1, 2]
    for rec in fleet_batches:
        assert rec["li_wall"] == pytest.approx(
            all_stats[rec["batch"]].query_li, abs=1e-8
        )
    # Fleet metrics aggregate over the whole session.
    assert metrics.counter("fleet.batches").value == 3
    assert metrics.counter("fleet.shards_dispatched").value == sum(
        s.shards_dispatched for s in all_stats
    )
    assert metrics.gauge("fleet.batch_li_wall").value == load_imbalance(
        all_stats[-1].query_wall_s
    )
