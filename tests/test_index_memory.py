"""Tests for the index memory model (Fig. 5 substrate)."""

import pytest

from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.memory import IndexMemoryModel, MemoryBreakdown
from repro.index.slm import SLMIndex, SLMIndexSettings


def test_shared_scales_linearly_in_entries():
    m = IndexMemoryModel()
    a = m.shared(1_000_000)
    b = m.shared(2_000_000)
    # Ion + peptide terms double; offsets constant.
    assert b.ion_bytes == 2 * a.ion_bytes
    assert b.peptide_bytes == 2 * a.peptide_bytes
    assert b.offsets_bytes == a.offsets_bytes


def test_distributed_offsets_replicated_per_rank():
    m = IndexMemoryModel()
    d4 = m.distributed(1_000_000, 4)
    d8 = m.distributed(1_000_000, 8)
    assert d8.offsets_bytes == 2 * d4.offsets_bytes


def test_distributed_overhead_shrinks_with_partition_size():
    """Paper: 'extra memory overhead varies inversely with the size of
    data partition per MPI CPU'."""
    m = IndexMemoryModel()
    p = 16

    def rel_overhead(n):
        s, d = m.shared(n), m.distributed(n, p)
        return (d.steady_bytes - s.steady_bytes) / s.steady_bytes

    assert rel_overhead(50_000_000) < rel_overhead(10_000_000)


def test_paper_scale_overhead_single_digit_percent():
    """At the paper's scale the distributed overhead is ~6 %."""
    m = IndexMemoryModel()
    n = 30_000_000
    s, d = m.shared(n), m.distributed(n, 16)
    overhead = (d.steady_bytes - s.steady_bytes) / s.steady_bytes
    assert 0.0 < overhead < 0.15


def test_gb_per_million_near_paper_values():
    """Paper: 0.346 GB/M shared, 0.366 GB/M distributed."""
    m = IndexMemoryModel()
    shared = m.gb_per_million(30_000_000)
    dist = m.gb_per_million(30_000_000, 16)
    assert shared == pytest.approx(0.346, abs=0.1)
    assert dist == pytest.approx(0.366, abs=0.1)
    assert dist > shared


def test_transient_doubles_ion_bytes():
    m = IndexMemoryModel()
    bd = m.shared(1_000_000)
    assert bd.transient_bytes == bd.ion_bytes
    assert bd.peak_bytes == bd.steady_bytes + bd.ion_bytes


def test_internal_chunking_removes_transient():
    m = IndexMemoryModel()
    bd = m.shared(1_000_000, internal_chunking=True)
    assert bd.transient_bytes == 0
    bd_d = m.distributed(1_000_000, 4, internal_chunking=True)
    assert bd_d.transient_bytes == 0


def test_breakdown_properties():
    bd = MemoryBreakdown(
        ion_bytes=100, offsets_bytes=10, peptide_bytes=20,
        mapping_bytes=5, transient_bytes=100,
    )
    assert bd.steady_bytes == 135
    assert bd.peak_bytes == 235
    assert bd.steady_gb == pytest.approx(135 / 1024**3)


def test_invalid_model_rejected():
    with pytest.raises(ConfigurationError):
        IndexMemoryModel(ions_per_entry=0)
    with pytest.raises(ConfigurationError):
        IndexMemoryModel(resolution=0)


def test_invalid_ranks_rejected():
    with pytest.raises(ConfigurationError):
        IndexMemoryModel().distributed(100, 0)


def test_measure_actual_tracks_model_proportionally():
    """The live numpy index's ion bytes must scale like the model."""
    peptides = [Peptide("ACDEFGHIK"), Peptide("LMNPQRSTVWYK"), Peptide("GGGGGGK")]
    idx = SLMIndex(peptides, SLMIndexSettings())
    m = IndexMemoryModel()
    actual = m.measure_actual(idx)
    assert actual.ion_bytes == 4 * idx.n_ions  # int32 parents
    assert actual.offsets_bytes == 8 * (idx.n_buckets + 1)


def test_arena_bytes_tracks_live_arena():
    """The arena model must match a live arena's flat-array bytes."""
    from repro.index.arena import FragmentArena

    peptides = [Peptide("ACDEFGHIK"), Peptide("LMNPQRSTVWYK"), Peptide("GGGGGGK")]
    arena = FragmentArena.from_peptides(peptides)
    arena.buckets_for(0.01)
    arena.sort_order_for(0.01)
    m = IndexMemoryModel()
    measured = m.measure_arena(arena)
    # Flat m/z + offsets + one resolution's bucket and order caches;
    # the live arena adds only small per-entry metadata on top.
    structural = (
        8 * arena.n_ions  # float64 m/z
        + 8 * (arena.n_entries + 1)  # int64 offsets
        + 16 * arena.n_ions  # int64 buckets + sort order
    )
    assert measured >= structural
    assert measured - structural <= 16 * arena.n_entries  # lengths + masses


def test_arena_bytes_model_scales():
    m = IndexMemoryModel()
    base = m.arena_bytes(1_000_000, n_resolutions=0)
    with_res = m.arena_bytes(1_000_000, n_resolutions=1)
    assert with_res - base == int(16 * 1_000_000 * m.ions_per_entry)
    assert m.arena_bytes(2_000_000, n_resolutions=0) == pytest.approx(
        2 * base, rel=1e-5
    )
    with pytest.raises(ConfigurationError):
        m.arena_bytes(1_000_000, n_resolutions=-1)
