"""SearchService session tests: bit-identity, residency, failure modes.

The acceptance bar from the issue: a session over a persistent pool
returns bit-identical results to the serial engine for every policy ×
{2,3} workers across >= 3 consecutive ``submit()`` calls on the *same
resident workers*, and the worker-side batch payloads contain no
pickled peak arrays (payload-size accounting).
"""

import pickle

import pytest

from repro.errors import ConfigurationError, ServiceError, WorkerError
from repro.parallel.worker import QueryTask
from repro.search.serial import SerialSearchEngine
from repro.service import BatchStats, SearchService, ServiceConfig
from repro.spectra.preprocess import preprocess_batch, spectra_peak_bytes


def assert_same_results(serial, service_results):
    assert len(serial.spectra) == len(service_results.spectra)
    for a, b in zip(serial.spectra, service_results.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def batches(tiny_spectra):
    """Three distinct consecutive batches for one session."""
    return [list(tiny_spectra), list(tiny_spectra[:7]), list(tiny_spectra[5:])]


@pytest.fixture(scope="module")
def serial_refs(tiny_db, batches):
    engine = SerialSearchEngine(tiny_db)
    return [engine.run(batch) for batch in batches]


@pytest.mark.parametrize("policy", ["cyclic", "chunk"])
@pytest.mark.parametrize("n_workers", [2, 3])
def test_session_bit_identical_across_three_submits(
    tiny_db, batches, serial_refs, policy, n_workers
):
    """The acceptance matrix: every policy × worker count, >= 3
    consecutive submits on one resident pool, all bit-identical."""
    config = ServiceConfig(n_workers=n_workers, policy=policy)
    with SearchService(tiny_db, config) as service:
        pids = service.worker_pids()
        assert len(pids) == n_workers and all(p is not None for p in pids)
        for batch, reference in zip(batches, serial_refs):
            results, stats = service.submit(batch)
            assert_same_results(reference, results)
            assert results.policy_name == policy
            assert results.n_ranks == n_workers
            assert stats.respawned == 0
        # The whole session ran on the original resident workers.
        assert service.worker_pids() == pids
        assert service.n_batches == len(batches)
        assert service.respawn_total == 0


def test_batch_payloads_carry_no_peak_arrays(tiny_db, batches):
    """Payload-size accounting: the per-worker pickled command is
    O(manifest) — orders of magnitude under the batch's peak bytes,
    and independent of the batch's peak count."""
    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        _, stats_big = service.submit(batches[0])
        _, stats_small = service.submit(batches[1])
    processed = preprocess_batch(batches[0])
    peak_bytes = spectra_peak_bytes(processed)
    assert stats_big.peak_bytes == 2 * peak_bytes
    # The actual scatter is manifest-sized: a path + scalars per worker.
    assert stats_big.scatter_bytes < 2048
    assert stats_big.scatter_bytes < stats_big.peak_bytes / 10
    # ... and does not scale with the batch's peak payload.
    assert abs(stats_big.scatter_bytes - stats_small.scatter_bytes) < 64
    # Belt and braces: a QueryTask pickle really is free of peak data.
    task = QueryTask(spectra_dir="/tmp/somewhere", n_spectra=1000, top_k=5)
    assert len(pickle.dumps(task)) < 512


def test_batch_stats_phases_are_real(tiny_db, tiny_spectra):
    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        results, stats = service.submit(tiny_spectra)
    assert isinstance(stats, BatchStats)
    assert stats.n_spectra == len(tiny_spectra)
    for name in ("preprocess_s", "spill_s", "parallel_s", "total_s"):
        assert getattr(stats, name) > 0.0
    assert stats.query_wall_max_s > 0.0
    assert stats.query_cpu_max_s > 0.0
    assert stats.total_s >= stats.parallel_s
    # The per-batch result phases mirror the engine's keys; build is
    # 0.0 by design (paid once at open), but the rank stats still
    # carry the attach-time build for observability.
    assert results.phase_times["build"] == 0.0
    assert all(s.build_time > 0.0 for s in results.rank_stats)
    assert sum(s.n_entries for s in results.rank_stats) == tiny_db.n_entries
    assert service.open_s > 0.0 and service.attach_s > 0.0


def test_worker_death_mid_batch_respawns_and_session_survives(
    tiny_db, batches, serial_refs
):
    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        results, _ = service.submit(batches[0])
        assert_same_results(serial_refs[0], results)
        pids = service.worker_pids()
        # Kill a resident worker out from under the session.
        service._pool._channels[1].proc.terminate()
        service._pool._channels[1].proc.join()
        # The very next submit transparently respawns + re-attaches —
        # and still returns bit-identical results.
        results, stats = service.submit(batches[1])
        assert_same_results(serial_refs[1], results)
        assert stats.respawned == 1
        fresh = service.worker_pids()
        assert fresh[0] == pids[0] and fresh[1] != pids[1]
        # Steady state again afterwards.
        results, stats = service.submit(batches[2])
        assert_same_results(serial_refs[2], results)
        assert stats.respawned == 0


def test_submit_after_close_and_double_close(tiny_db, tiny_spectra):
    service = SearchService(tiny_db, ServiceConfig(n_workers=2))
    service.open()
    service.open()  # idempotent while open
    service.submit(tiny_spectra)
    service.close()
    service.close()  # idempotent
    assert not service.is_open
    with pytest.raises(ServiceError, match="not open"):
        service.submit(tiny_spectra)
    with pytest.raises(ServiceError, match="not reusable"):
        service.open()


def test_submit_requires_open_session(tiny_db, tiny_spectra):
    service = SearchService(tiny_db, ServiceConfig(n_workers=2))
    with pytest.raises(ServiceError, match="not open"):
        service.submit(tiny_spectra)


def test_empty_batch_rejected(tiny_db):
    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        with pytest.raises(ConfigurationError, match="empty"):
            service.submit([])


def test_session_dir_removed_on_close(tiny_db, tiny_spectra):
    service = SearchService(tiny_db, ServiceConfig(n_workers=2))
    service.open()
    session_dir = service._session_dir
    service.submit(tiny_spectra)
    assert session_dir.is_dir()
    service.close()
    assert not session_dir.exists()


def test_worker_raise_mid_batch_fails_batch_not_session(
    tiny_db, batches, serial_refs
):
    """A raising batch surfaces WorkerError; the resident workers and
    the session both survive, and the next submit is correct."""
    from repro.parallel import worker as worker_mod

    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        pids = service.worker_pids()
        # Point the batch at a store path that does not exist: every
        # worker raises (FormatError) and reports the remote traceback.
        bad = QueryTask(spectra_dir="/nonexistent/store", n_spectra=1, top_k=5)
        with pytest.raises(WorkerError, match="worker 0 raised"):
            service._pool.run_batch(worker_mod.service_query_worker, [bad, bad])
        results, stats = service.submit(batches[0])
        assert_same_results(serial_refs[0], results)
        assert stats.respawned == 0
        assert service.worker_pids() == pids


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(n_workers=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(top_k=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(timeout=0.0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_pending=0)
