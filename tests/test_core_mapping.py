"""Tests for the master's O(1) mapping table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import Grouping
from repro.core.mapping import MappingTable
from repro.core.partition import CyclicPolicy, make_policy
from repro.errors import ConfigurationError, PartitionError


def test_basic_resolution():
    table = MappingTable([np.array([5, 2]), np.array([7]), np.array([0, 1, 3])])
    assert table.n_ranks == 3
    assert table.n_entries == 6
    assert table.to_global(0, 0) == 5
    assert table.to_global(0, 1) == 2
    assert table.to_global(1, 0) == 7
    assert table.to_global(2, 2) == 3


def test_rank_sizes():
    table = MappingTable([np.array([5, 2]), np.array([], dtype=np.int64)])
    assert table.rank_size(0) == 2
    assert table.rank_size(1) == 0


def test_batch_resolution():
    table = MappingTable([np.array([5, 2, 9])])
    out = table.to_global_batch(0, np.array([2, 0]))
    assert out.tolist() == [9, 5]


def test_globals_of_view():
    table = MappingTable([np.array([5, 2]), np.array([7])])
    assert table.globals_of(1).tolist() == [7]


def test_duplicate_globals_rejected():
    with pytest.raises(PartitionError, match="duplicate"):
        MappingTable([np.array([1, 2]), np.array([2])])


def test_empty_table_rejected():
    with pytest.raises(ConfigurationError):
        MappingTable([])


def test_local_id_out_of_range():
    table = MappingTable([np.array([5])])
    with pytest.raises(PartitionError):
        table.to_global(0, 1)
    with pytest.raises(PartitionError):
        table.to_global_batch(0, np.array([0, 1]))


def test_bad_rank_rejected():
    table = MappingTable([np.array([5])])
    with pytest.raises(ConfigurationError):
        table.to_global(1, 0)


def test_nbytes_four_per_entry():
    table = MappingTable([np.array([5, 2]), np.array([7])])
    assert table.nbytes() == 4 * 3 + 4 * 3  # entries + offsets


def test_from_assignment_roundtrip():
    sizes = np.array([4, 6, 3], dtype=np.int64)
    order = np.random.default_rng(1).permutation(13).astype(np.int64)
    g = Grouping(order=order, group_sizes=sizes)
    a = CyclicPolicy().assign(g, 4)
    table = MappingTable.from_assignment(a, g.order)
    # Every grouped position k owned by rank r appears in r's globals.
    for r in range(4):
        members = a.members(r)
        expected = order[members]
        assert table.globals_of(r).tolist() == expected.tolist()


def test_from_assignment_size_mismatch():
    g = Grouping(order=np.arange(4), group_sizes=np.array([4]))
    a = CyclicPolicy().assign(g, 2)
    with pytest.raises(PartitionError, match="global ids"):
        MappingTable.from_assignment(a, np.arange(3))


@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["chunk", "cyclic", "random"]),
)
@settings(max_examples=60)
def test_roundtrip_property(n, p, policy):
    """to_global over all (rank, local) pairs recovers a permutation."""
    rng = np.random.default_rng(n * 31 + p)
    order = rng.permutation(n).astype(np.int64)
    g = Grouping(order=order, group_sizes=np.array([n], dtype=np.int64))
    a = make_policy(policy, seed=2).assign(g, p)
    table = MappingTable.from_assignment(a, g.order)
    recovered = sorted(
        table.to_global(r, l) for r in range(p) for l in range(table.rank_size(r))
    )
    assert recovered == list(range(n))
