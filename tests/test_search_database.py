"""Tests for the IndexedDatabase (entries, offsets, grouping expansion)."""

import numpy as np
import pytest

from repro.chem.modifications import Modification, ModificationSet
from repro.chem.peptide import Peptide
from repro.core.grouping import Grouping, GroupingConfig
from repro.errors import ConfigurationError, PartitionError
from repro.search.database import IndexedDatabase

BASES = [Peptide("MAAAK"), Peptide("AAAAK"), Peptide("MMCCK")]
MODS = ModificationSet((Modification("ox", "M", 16.0),), max_modified_residues=2)


def test_entries_base_major_unmodified_first():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    # MAAAK: base + 1 variant; AAAAK: base; MMCCK: base + 3 variants.
    assert db.n_bases == 3
    assert db.n_entries == 2 + 1 + 4
    assert db.entries[0] == BASES[0]
    assert db.entries[2] == BASES[1]
    assert db.entries[3] == BASES[2]
    assert not db.entries[0].is_modified
    assert db.entries[1].is_modified


def test_entry_offsets():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    assert db.entry_offsets.tolist() == [0, 2, 3, 7]
    assert db.entry_counts().tolist() == [2, 1, 4]


def test_base_of_entry():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    assert db.base_of_entry(0) == 0
    assert db.base_of_entry(1) == 0
    assert db.base_of_entry(2) == 1
    assert db.base_of_entry(6) == 2


def test_base_of_entry_out_of_range():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    with pytest.raises(ConfigurationError):
        db.base_of_entry(7)


def test_variant_cap():
    db = IndexedDatabase.from_peptides(BASES, MODS, max_variants_per_peptide=1)
    assert db.entry_counts().tolist() == [2, 1, 2]


def test_inconsistent_offsets_rejected():
    with pytest.raises(ConfigurationError):
        IndexedDatabase(BASES, list(BASES), np.array([0, 1, 2]))
    with pytest.raises(ConfigurationError):
        IndexedDatabase(BASES, list(BASES), np.array([0, 1, 2, 5]))


def test_expand_grouping_contiguity():
    """Entries of one base stay contiguous after expansion."""
    db = IndexedDatabase.from_peptides(BASES, MODS)
    base_grouping = db.group_bases(GroupingConfig(gsize=2))
    expanded = db.expand_grouping(base_grouping)
    assert expanded.n_sequences == db.n_entries
    assert int(expanded.group_sizes.sum()) == db.n_entries
    # Walk the expanded order: each base's entry ids appear as a
    # contiguous ascending run.
    order = expanded.order.tolist()
    seen_bases = []
    i = 0
    while i < len(order):
        b = db.base_of_entry(order[i])
        lo, hi = db.entry_offsets[b], db.entry_offsets[b + 1]
        assert order[i : i + (hi - lo)] == list(range(lo, hi))
        seen_bases.append(b)
        i += hi - lo
    assert sorted(seen_bases) == [0, 1, 2]


def test_expand_grouping_group_sizes_sum_entry_counts():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    base_grouping = db.group_bases(GroupingConfig(gsize=20))
    expanded = db.expand_grouping(base_grouping)
    assert expanded.n_groups == base_grouping.n_groups


def test_expand_grouping_wrong_size_rejected():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    bad = Grouping(order=np.arange(2), group_sizes=np.array([2]))
    with pytest.raises(PartitionError):
        db.expand_grouping(bad)


def test_fragment_cache_shared_and_correct():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    frags_a = db.fragments_for()
    frags_b = db.fragments_for()
    assert frags_a is frags_b  # cached
    assert len(frags_a) == db.n_entries
    from repro.chem.fragments import fragment_mzs

    for pep, arr in zip(db.entries, frags_a):
        assert np.allclose(arr, fragment_mzs(pep))


def test_grouping_cache():
    db = IndexedDatabase.from_peptides(BASES, MODS)
    a = db.group_bases()
    b = db.group_bases()
    assert a is b
    c = db.group_bases(GroupingConfig(gsize=1))
    assert c is not a


def test_build_full_pipeline(small_db):
    assert small_db.n_bases > 100
    assert small_db.n_entries > small_db.n_bases
    # Entries of each base share the base's sequence.
    for b in (0, 1, small_db.n_bases - 1):
        lo, hi = small_db.entry_offsets[b], small_db.entry_offsets[b + 1]
        seqs = {small_db.entries[i].sequence for i in range(lo, hi)}
        assert seqs == {small_db.base_peptides[b].sequence}


def test_base_sequences(small_db):
    seqs = small_db.base_sequences()
    assert len(seqs) == small_db.n_bases
    assert len(set(seqs)) == len(seqs)  # deduplicated
