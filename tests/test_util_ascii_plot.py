"""Tests for the ASCII plotting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.ascii_plot import bar_chart, line_plot


def test_line_plot_contains_markers_and_legend():
    out = line_plot(
        {"ideal": [(2, 2.0), (4, 4.0)], "measured": [(2, 2.0), (4, 3.5)]},
        title="speedup",
    )
    assert "speedup" in out
    assert "o ideal" in out
    assert "x measured" in out
    assert "o" in out.splitlines()[1]


def test_line_plot_extremes_on_grid():
    out = line_plot({"s": [(0, 0.0), (10, 100.0)]}, width=20, height=6)
    lines = out.splitlines()
    assert "100" in lines[0]  # y max label on top row
    # bottom data row carries the y-min label
    assert any("0" in l.split("|")[0] for l in lines[1:7])


def test_line_plot_single_point():
    out = line_plot({"p": [(1.0, 5.0)]})
    assert "o" in out


def test_line_plot_axis_labels():
    out = line_plot(
        {"a": [(1, 1.0), (2, 2.0)]}, x_label="ranks", y_label="speedup"
    )
    assert "ranks" in out
    assert "speedup" in out


def test_line_plot_validation():
    with pytest.raises(ConfigurationError):
        line_plot({})
    with pytest.raises(ConfigurationError):
        line_plot({"a": []})
    with pytest.raises(ConfigurationError):
        line_plot({"a": [(1, 1.0)]}, width=5)


def test_bar_chart_scaling():
    out = bar_chart({"chunk": 100.0, "cyclic": 10.0}, width=40)
    lines = out.splitlines()
    chunk_bar = lines[0].split("|")[1]
    cyclic_bar = lines[1].split("|")[1]
    assert chunk_bar.count("#") == 40
    assert 3 <= cyclic_bar.count("#") <= 5


def test_bar_chart_zero_value():
    out = bar_chart({"a": 0.0, "b": 1.0})
    assert out.splitlines()[0].split("|")[1].count("#") == 0


def test_bar_chart_unit_and_title():
    out = bar_chart({"a": 1.0}, title="LI", unit="%")
    assert out.startswith("LI")
    assert "1%" in out


def test_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        bar_chart({})
    with pytest.raises(ConfigurationError):
        bar_chart({"a": -1.0})
