"""Tests for SLM index persistence."""

import numpy as np
import pytest

from repro.chem.fragments import FragmentationSettings
from repro.chem.peptide import Peptide
from repro.errors import FormatError
from repro.index.serialize import load_index, save_index
from repro.index.slm import SLMIndex, SLMIndexSettings

PEPTIDES = [
    Peptide("AAAGGGK", protein_id=3),
    Peptide("MMNNQQR", ((0, 15.995),), protein_id=4),
    Peptide("CCDDEEK"),
]


@pytest.fixture()
def index():
    return SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=2))


def test_roundtrip_structures(tmp_path, index):
    path = save_index(tmp_path / "idx.npz", index)
    loaded = load_index(path)
    assert np.array_equal(loaded.ion_parents, index.ion_parents)
    assert np.array_equal(loaded.bucket_offsets, index.bucket_offsets)
    assert np.array_equal(loaded.masses, index.masses)
    assert loaded.n_buckets == index.n_buckets


def test_roundtrip_peptides(tmp_path, index):
    loaded = load_index(save_index(tmp_path / "idx.npz", index))
    assert loaded.peptides == index.peptides
    assert loaded.peptides[1].mods == ((0, 15.995),)
    assert loaded.peptides[0].protein_id == 3


def test_roundtrip_settings_path(tmp_path):
    settings = SLMIndexSettings(
        resolution=0.02,
        fragment_tolerance=0.1,
        shared_peak_threshold=3,
        precursor_tolerance=5.0,
        fragmentation=FragmentationSettings(charges=(1, 2), include_b=False),
    )
    idx = SLMIndex(PEPTIDES, settings)
    loaded = load_index(save_index(tmp_path / "s.npz", idx))
    assert loaded.settings == settings


def test_loaded_filters_identically(tmp_path, index):
    from repro.chem.fragments import fragment_mzs
    from repro.spectra.model import Spectrum

    loaded = load_index(save_index(tmp_path / "idx.npz", index))
    mzs = fragment_mzs(PEPTIDES[0])
    q = Spectrum(1, 500.0, 2, mzs, np.ones_like(mzs))
    a, b = index.filter(q), loaded.filter(q)
    assert np.array_equal(a.candidates, b.candidates)
    assert np.array_equal(a.shared_peaks, b.shared_peaks)
    assert a.ions_scanned == b.ions_scanned


def test_empty_index_roundtrip(tmp_path):
    idx = SLMIndex([], SLMIndexSettings())
    loaded = load_index(save_index(tmp_path / "e.npz", idx))
    assert len(loaded) == 0
    assert loaded.n_ions == 0


def test_missing_field_rejected(tmp_path):
    np.savez(tmp_path / "bad.npz", settings=np.array("{}"))
    with pytest.raises((FormatError, Exception)):
        load_index(tmp_path / "bad.npz")


def test_bad_version_rejected(tmp_path, index):
    import json

    path = save_index(tmp_path / "idx.npz", index)
    with np.load(path) as data:
        fields = {k: data[k] for k in data.files}
    payload = json.loads(str(fields["settings"]))
    payload["version"] = 99
    fields["settings"] = np.array(json.dumps(payload))
    np.savez(tmp_path / "v99.npz", **fields)
    with pytest.raises(FormatError, match="version"):
        load_index(tmp_path / "v99.npz")


# -- zero-copy (memmap) loading ----------------------------------------


def test_mmap_roundtrip_bit_identical(tmp_path, index):
    path = save_index(tmp_path / "flat.npz", index, compress=False)
    loaded = load_index(path, mmap_mode="r")
    assert isinstance(loaded.ion_parents, np.memmap)
    assert isinstance(loaded.bucket_offsets, np.memmap)
    assert isinstance(loaded.masses, np.memmap)
    assert np.array_equal(loaded.ion_parents, index.ion_parents)
    assert np.array_equal(loaded.bucket_offsets, index.bucket_offsets)
    assert np.array_equal(loaded.masses, index.masses)
    assert loaded.ion_parents.dtype == index.ion_parents.dtype


def test_mmap_views_reject_writes(tmp_path, index):
    path = save_index(tmp_path / "flat.npz", index, compress=False)
    loaded = load_index(path, mmap_mode="r")
    with pytest.raises(ValueError):
        loaded.ion_parents[0] = 1


def test_mmap_loaded_filters_identically(tmp_path, index):
    from repro.chem.fragments import fragment_mzs
    from repro.spectra.model import Spectrum

    path = save_index(tmp_path / "flat.npz", index, compress=False)
    loaded = load_index(path, mmap_mode="r")
    mzs = fragment_mzs(PEPTIDES[0])
    q = Spectrum(1, 500.0, 2, mzs, np.ones_like(mzs))
    a, b = index.filter(q), loaded.filter(q)
    assert np.array_equal(a.candidates, b.candidates)
    assert np.array_equal(a.shared_peaks, b.shared_peaks)


def test_mmap_of_compressed_archive_rejected(tmp_path, index):
    path = save_index(tmp_path / "packed.npz", index, compress=True)
    with pytest.raises(FormatError, match="compress"):
        load_index(path, mmap_mode="r")


def test_mmap_mode_validated(tmp_path, index):
    from repro.errors import ConfigurationError

    path = save_index(tmp_path / "flat.npz", index, compress=False)
    with pytest.raises(ConfigurationError):
        load_index(path, mmap_mode="r+")


def test_peptide_free_index_refuses_serialization(tmp_path, tiny_db):
    from repro.errors import ConfigurationError

    arena = tiny_db.arena_for()
    idx = SLMIndex(None, SLMIndexSettings(), arena=arena)
    with pytest.raises(ConfigurationError, match="peptide-free"):
        save_index(tmp_path / "nope.npz", idx)
