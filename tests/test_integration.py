"""End-to-end integration tests across file formats and the full pipeline.

These walk the paper's complete workflow: proteome FASTA on disk →
digestion → dedup → clustered (grouped) FASTA → LBE plan → synthetic
MS2 file on disk → distributed search → PSMs mapped back to global
entries — exercising the on-disk formats between stages, exactly as
the paper's toolchain (Digestor / DBToolkit / the grouping script /
msconvert) does.
"""

import numpy as np
import pytest

from repro.chem.peptide import Peptide
from repro.core.grouping import GroupingConfig, group_peptides
from repro.db.dedup import deduplicate_peptides
from repro.db.digest import digest_proteome
from repro.db.fasta import read_fasta, read_grouped_fasta, write_fasta, write_grouped_fasta
from repro.db.proteome import ProteomeConfig, generate_proteome
from repro.search.database import IndexedDatabase
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.serial import SerialSearchEngine
from repro.spectra.ms2 import read_ms2, write_ms2
from repro.spectra.synthetic import SyntheticRunConfig, generate_run
from repro import quick_pipeline


def test_full_pipeline_through_files(tmp_path):
    # 1. proteome -> FASTA on disk
    proteome = generate_proteome(ProteomeConfig(n_families=3, seed=13))
    fasta_path = tmp_path / "proteome.fasta"
    write_fasta(fasta_path, proteome.records)

    # 2. read back, digest, dedup
    records = list(read_fasta(fasta_path))
    assert len(records) == len(proteome.records)
    peptides = deduplicate_peptides(digest_proteome(records))
    assert peptides

    # 3. Algorithm 1 -> clustered FASTA on disk (the paper's
    #    preprocessing-script output)
    seqs = [p.sequence for p in peptides]
    grouping = group_peptides(seqs, GroupingConfig())
    grouped_path = tmp_path / "clustered.fasta"
    write_grouped_fasta(
        grouped_path,
        [seqs[i] for i in grouping.order],
        grouping.group_sizes.tolist(),
    )
    back_seqs, back_sizes = read_grouped_fasta(grouped_path)
    assert back_seqs == [seqs[i] for i in grouping.order]
    assert back_sizes == grouping.group_sizes.tolist()

    # 4. expand to an entry database, synthesize a run, write MS2
    db = IndexedDatabase.from_peptides(peptides, max_variants_per_peptide=4)
    spectra = generate_run(db.entries, SyntheticRunConfig(n_spectra=10, seed=14))
    ms2_path = tmp_path / "run.ms2"
    write_ms2(ms2_path, spectra)
    loaded = list(read_ms2(ms2_path))
    assert len(loaded) == 10

    # 5. distributed search on the file-loaded spectra == serial search
    serial = SerialSearchEngine(db).run(loaded)
    dist = DistributedSearchEngine(
        db, EngineConfig(n_ranks=3, policy="cyclic")
    ).run(loaded)
    for a, b in zip(serial.spectra, dist.spectra):
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score) for p in a.psms] == [
            (p.entry_id, p.score) for p in b.psms
        ]

    # 6. ground truth round-trips the MS2 file: best PSMs point at the
    #    generating entries for most spectra
    hits = sum(
        1
        for s, sr in zip(loaded, dist.spectra)
        if sr.psms and sr.psms[0].entry_id == s.true_peptide
    )
    assert hits >= 5


def test_quick_pipeline_smoke():
    res = quick_pipeline(n_families=3, n_spectra=8, n_ranks=2, seed=3)
    assert len(res.spectra) == 8
    assert res.n_ranks == 2
    assert res.total_cpsms > 0


def test_mapping_table_backmap_is_o1(small_db):
    """The master resolves matches with single array accesses."""
    engine = DistributedSearchEngine(small_db, EngineConfig(n_ranks=4))
    mapping = engine.plan.mapping
    for rank in range(4):
        globals_ = mapping.globals_of(rank)
        if globals_.size:
            locals_ = np.arange(min(5, globals_.size))
            assert np.array_equal(
                mapping.to_global_batch(rank, locals_), globals_[: locals_.size]
            )


def test_modified_variants_colocated_with_base(small_db):
    """Section III-C: a base peptide and its variants share a rank."""
    engine = DistributedSearchEngine(small_db, EngineConfig(n_ranks=4))
    plan = engine.plan
    entry_rank = np.empty(small_db.n_entries, dtype=np.int64)
    for r in range(4):
        entry_rank[plan.rank_global_ids(r)] = r
    offsets = small_db.entry_offsets
    for b in range(small_db.n_bases):
        ranks = set(entry_rank[offsets[b] : offsets[b + 1]].tolist())
        assert len(ranks) == 1, f"base {b} split across ranks {ranks}"


def test_open_search_finds_dark_matter(small_db):
    """Spectra with unknown precursor shifts are still identified via
    shared fragments (the open-search motivation, Section II-A)."""
    spectra = generate_run(
        small_db.entries,
        SyntheticRunConfig(
            n_spectra=12, seed=31, dark_matter_fraction=1.0, dropout=0.05
        ),
    )
    res = SerialSearchEngine(small_db).run(spectra)
    hits = sum(
        1
        for s, sr in zip(spectra, res.spectra)
        if sr.psms and sr.psms[0].entry_id == s.true_peptide
    )
    assert hits >= 8
