"""Tests for the load-predicting (LPT) partitioner — paper §VIII."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import Grouping
from repro.core.partition import make_policy
from repro.core.predict import PredictivePolicy, WorkModel
from repro.errors import ConfigurationError


def grouping_of(n):
    return Grouping(
        order=np.arange(n, dtype=np.int64),
        group_sizes=np.array([n], dtype=np.int64),
    )


# -- WorkModel ---------------------------------------------------------------


def test_structural_prediction_monotone():
    model = WorkModel()
    counts = np.array([1, 2, 1])
    lengths = np.array([10.0, 10.0, 20.0])
    w = model.structural(counts, lengths)
    assert w[1] > w[0]  # more entries -> more work
    assert w[2] > w[0]  # longer peptide -> more work


def test_structural_shape_mismatch():
    with pytest.raises(ConfigurationError):
        WorkModel().structural(np.array([1, 2]), np.array([1.0]))


def test_negative_weights_rejected():
    with pytest.raises(ConfigurationError):
        WorkModel(entry_weight=-1.0)


def test_sampled_blend_extremes():
    model = WorkModel()
    structural = np.array([1.0, 3.0])
    sampled = np.array([9.0, 0.0])
    w0 = model.sampled(structural, sampled, blend=0.0)
    w1 = model.sampled(structural, sampled, blend=1.0)
    # blend=0 preserves structural ordering; blend=1 the sampled one.
    assert w0[1] > w0[0]
    assert w1[0] > w1[1]


def test_sampled_blend_validation():
    with pytest.raises(ConfigurationError):
        WorkModel().sampled(np.ones(2), np.ones(2), blend=1.5)
    with pytest.raises(ConfigurationError):
        WorkModel().sampled(np.ones(2), np.ones(3))


# -- PredictivePolicy ---------------------------------------------------------


def test_uniform_weights_balance_counts():
    policy = PredictivePolicy()
    counts = policy.assign(grouping_of(17), 4).counts()
    assert counts.max() - counts.min() <= 1


def test_heavy_item_isolated():
    """One dominant item should get its own rank under LPT."""
    weights = np.array([100.0] + [1.0] * 9)
    policy = PredictivePolicy(weights=weights)
    assignment = policy.assign(grouping_of(10), 2)
    heavy_rank = assignment.rank_of[0]
    others = assignment.rank_of[1:]
    assert np.all(others != heavy_rank)


def test_weighted_loads_balanced():
    rng = np.random.default_rng(3)
    weights = rng.uniform(1, 10, size=200)
    policy = PredictivePolicy(weights=weights)
    g = grouping_of(200)
    assignment = policy.assign(g, 8)
    loads = policy.predicted_loads(g, assignment)
    assert (loads.max() - loads.min()) / loads.mean() < 0.1


def test_speeds_shift_load():
    """A 2x-faster rank should receive ~2x the predicted work."""
    weights = np.ones(300)
    policy = PredictivePolicy(weights=weights, speeds=[2.0, 1.0, 1.0])
    g = grouping_of(300)
    assignment = policy.assign(g, 3)
    counts = assignment.counts().astype(float)
    assert counts[0] == pytest.approx(150, abs=5)
    assert counts[1] == pytest.approx(75, abs=5)
    # predicted finishing times equalized
    loads = policy.predicted_loads(g, assignment)
    assert (loads.max() - loads.min()) / loads.mean() < 0.05


def test_weights_respect_grouping_order():
    """Weights are given in input-index space; the permutation must be
    honoured."""
    order = np.array([2, 0, 1], dtype=np.int64)
    g = Grouping(order=order, group_sizes=np.array([3], dtype=np.int64))
    weights = np.array([1.0, 1.0, 100.0])  # input index 2 is heavy
    policy = PredictivePolicy(weights=weights)
    assignment = policy.assign(g, 2)
    # grouped position 0 holds input 2 (the heavy one) -> isolated
    heavy_rank = assignment.rank_of[0]
    assert np.all(assignment.rank_of[1:] != heavy_rank)


def test_validation():
    with pytest.raises(ConfigurationError):
        PredictivePolicy(weights=[-1.0]).assign(grouping_of(1), 1)
    with pytest.raises(ConfigurationError):
        PredictivePolicy(speeds=[0.0]).assign(grouping_of(1), 1)
    with pytest.raises(ConfigurationError):
        PredictivePolicy(speeds=[1.0, 1.0]).assign(grouping_of(3), 3)
    with pytest.raises(ConfigurationError):
        PredictivePolicy(weights=[1.0, 2.0]).assign(grouping_of(3), 2)


def test_registered_in_factory():
    policy = make_policy("lpt", weights=[1.0, 2.0, 3.0])
    assert isinstance(policy, PredictivePolicy)
    a = policy.assign(grouping_of(3), 2)
    assert a.policy_name == "lpt"


def test_deterministic():
    weights = np.arange(1.0, 50.0)
    g = grouping_of(49)
    a = PredictivePolicy(weights=weights).assign(g, 5)
    b = PredictivePolicy(weights=weights).assign(g, 5)
    assert np.array_equal(a.rank_of, b.rank_of)


@given(
    st.integers(min_value=1, max_value=80),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**30),
)
@settings(max_examples=50)
def test_disjoint_cover_property(n, p, seed):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.1, 5.0, size=n)
    a = PredictivePolicy(weights=weights).assign(grouping_of(n), p)
    assert int(a.counts().sum()) == n
    if n:
        assert a.rank_of.min() >= 0 and a.rank_of.max() < p


@given(
    st.integers(min_value=16, max_value=120),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=2**30),
)
@settings(max_examples=30)
def test_lpt_greedy_makespan_bound(n, p, seed):
    """Greedy list scheduling guarantees makespan <= total/p + max_w
    (each item lands on the machine with the least load, which is at
    most total/p at that moment)."""
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.1, 10.0, size=n)
    g = grouping_of(n)
    policy = PredictivePolicy(weights=weights)
    lpt_loads = policy.predicted_loads(g, policy.assign(g, p))
    assert lpt_loads.max() <= weights.sum() / p + weights.max() + 1e-9
