"""Unit and property tests for the Peptide value type and mass math."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.chem.peptide import Peptide, peptide_mass, validate_sequence
from repro.constants import AA_MONO, ALPHABET, WATER_MONO
from repro.errors import InvalidSequenceError

SEQUENCES = st.text(alphabet=ALPHABET, min_size=1, max_size=40)


def test_mass_of_single_glycine():
    assert math.isclose(peptide_mass("G"), AA_MONO["G"] + WATER_MONO)


def test_known_peptide_mass():
    # PEPTIDE: canonical reference value ~799.36 Da.
    assert math.isclose(peptide_mass("PEPTIDE"), 799.35996, abs_tol=1e-4)


def test_mass_with_modification_adds_delta():
    base = peptide_mass("PEPTIDE")
    assert math.isclose(
        peptide_mass("PEPTIDE", [(0, 15.9949)]), base + 15.9949, abs_tol=1e-9
    )


def test_empty_sequence_rejected():
    with pytest.raises(InvalidSequenceError):
        validate_sequence("")


def test_invalid_residue_rejected():
    with pytest.raises(InvalidSequenceError, match="invalid residues"):
        Peptide("PEPTIDEX")


def test_mod_position_out_of_range_rejected():
    with pytest.raises(InvalidSequenceError, match="outside sequence"):
        Peptide("AAA", ((3, 1.0),))


def test_mods_normalized_to_sorted_order():
    p = Peptide("MKMK", ((2, 1.5), (0, 2.5)))
    assert p.mods == ((0, 2.5), (2, 1.5))


def test_equal_peptides_hash_equal():
    a = Peptide("MKMK", ((2, 1.5), (0, 2.5)))
    b = Peptide("MKMK", ((0, 2.5), (2, 1.5)))
    assert a == b
    assert hash(a) == hash(b)


def test_modified_flag_and_count():
    assert not Peptide("AAA").is_modified
    p = Peptide("MAA", ((0, 15.99),))
    assert p.is_modified
    assert p.mod_count() == 1


def test_annotated_renders_delta():
    p = Peptide("MAA", ((0, 15.995),))
    assert p.annotated() == "M[+15.995]AA"
    assert str(Peptide("MAA")) == "MAA"


def test_protein_id_carried():
    assert Peptide("AAA", protein_id=7).protein_id == 7


@given(SEQUENCES)
def test_mass_positive_and_exceeds_water(seq):
    assert peptide_mass(seq) > WATER_MONO


@given(SEQUENCES, SEQUENCES)
def test_mass_additive_over_concatenation(a, b):
    # Concatenation merges two waters into one.
    assert math.isclose(
        peptide_mass(a + b), peptide_mass(a) + peptide_mass(b) - WATER_MONO,
        rel_tol=1e-12,
    )


@given(SEQUENCES)
def test_peptide_mass_matches_function(seq):
    assert math.isclose(Peptide(seq).mass, peptide_mass(seq), rel_tol=1e-15)


@given(SEQUENCES)
def test_length_property(seq):
    assert Peptide(seq).length == len(seq)
