"""Unit and property tests for the (bounded) edit distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.editdist import bounded_edit_distance, edit_distance

WORDS = st.text(alphabet="ACDEFGHIK", max_size=25)


def reference_levenshtein(a: str, b: str) -> int:
    """Textbook full-matrix implementation (test oracle)."""
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dp[i][j] = min(dp[i - 1][j] + 1, dp[i][j - 1] + 1, dp[i - 1][j - 1] + cost)
    return dp[n][m]


@pytest.mark.parametrize(
    "a,b,d",
    [
        ("", "", 0),
        ("A", "", 1),
        ("", "ACD", 3),
        ("KITTEN", "SITTING", 3),
        ("FLAW", "LAWN", 2),
        ("PEPTIDE", "PEPTIDE", 0),
        ("AAAA", "AAA", 1),
        ("ACDE", "ECDA", 2),
    ],
)
def test_known_distances(a, b, d):
    assert edit_distance(a, b) == d


def test_bounded_exact_when_within():
    assert bounded_edit_distance("KITTEN", "SITTING", 3) == 3
    assert bounded_edit_distance("KITTEN", "SITTING", 10) == 3


def test_bounded_sentinel_when_exceeded():
    assert bounded_edit_distance("KITTEN", "SITTING", 2) == 3  # bound+1
    assert bounded_edit_distance("AAAA", "CCCC", 1) == 2


def test_bounded_negative_bound():
    assert bounded_edit_distance("A", "C", -1) == 0  # bound+1 sentinel


def test_bounded_zero_bound():
    assert bounded_edit_distance("AAA", "AAA", 0) == 0
    assert bounded_edit_distance("AAA", "AAC", 0) == 1  # sentinel


def test_length_gap_shortcut():
    # |len difference| > bound must return sentinel without DP.
    assert bounded_edit_distance("A" * 30, "A", 5) == 6


@given(WORDS, WORDS)
def test_matches_reference(a, b):
    assert edit_distance(a, b) == reference_levenshtein(a, b)


@given(WORDS, WORDS, st.integers(min_value=0, max_value=30))
def test_bounded_matches_reference(a, b, bound):
    true = reference_levenshtein(a, b)
    got = bounded_edit_distance(a, b, bound)
    if true <= bound:
        assert got == true
    else:
        assert got == bound + 1


@given(WORDS, WORDS)
def test_symmetry(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(WORDS)
def test_identity(a):
    assert edit_distance(a, a) == 0


@given(WORDS, WORDS)
def test_length_difference_lower_bound(a, b):
    assert edit_distance(a, b) >= abs(len(a) - len(b))


@given(WORDS, WORDS)
def test_max_length_upper_bound(a, b):
    assert edit_distance(a, b) <= max(len(a), len(b))


@settings(max_examples=40)
@given(WORDS, WORDS, WORDS)
def test_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(WORDS, st.integers(min_value=0, max_value=10), st.data())
def test_single_edit_within_distance_one(a, pos, data):
    """Applying one random substitution yields distance <= 1."""
    if not a:
        return
    pos = pos % len(a)
    ch = data.draw(st.sampled_from("ACDEFGHIK"))
    mutated = a[:pos] + ch + a[pos + 1 :]
    assert edit_distance(a, mutated) <= 1
