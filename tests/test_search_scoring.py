"""Tests for hyperscore-style candidate scoring."""

from math import lgamma, log1p

import numpy as np

from repro.chem.fragments import fragment_mzs
from repro.chem.peptide import Peptide
from repro.search.scoring import score_candidates
from repro.spectra.model import Spectrum

PEPTIDES = [Peptide("AAAGGGK"), Peptide("CCDDEEK"), Peptide("WWYYFFK")]


def spectrum_of(peptide):
    mzs = fragment_mzs(peptide)
    return Spectrum(
        scan_id=1, precursor_mz=500.0, charge=2,
        mzs=mzs, intensities=np.ones_like(mzs),
    )


def test_exact_match_scores_highest():
    q = spectrum_of(PEPTIDES[0])
    out = score_candidates(
        q, PEPTIDES, np.array([0, 1, 2]), fragment_tolerance=0.05
    )
    assert out.scores[0] > out.scores[1]
    assert out.scores[0] > out.scores[2]
    assert out.n_matched[0] == fragment_mzs(PEPTIDES[0]).size


def test_exact_match_score_value():
    """Score = lgamma(n+1) + log1p(sum matched intensities)."""
    q = spectrum_of(PEPTIDES[0])
    out = score_candidates(q, PEPTIDES, np.array([0]), fragment_tolerance=0.05)
    n = fragment_mzs(PEPTIDES[0]).size
    expected = lgamma(n + 1) + log1p(float(n))  # all intensities 1.0
    assert np.isclose(out.scores[0], expected)


def test_no_candidates():
    q = spectrum_of(PEPTIDES[0])
    out = score_candidates(q, PEPTIDES, np.array([], dtype=np.int64),
                           fragment_tolerance=0.05)
    assert out.scores.size == 0
    assert out.candidates_scored == 0
    assert out.residues_scored == 0


def test_unmatched_candidate_scores_zero():
    # WWYYFFR shares no fragment with AAAGGGK (different termini, so
    # even the y1 ions differ) — must score exactly zero.
    universe = PEPTIDES + [Peptide("WWYYFFR")]
    q = spectrum_of(PEPTIDES[0])
    out = score_candidates(q, universe, np.array([3]), fragment_tolerance=0.05)
    assert out.n_matched[0] == 0
    assert out.scores[0] == 0.0


def test_work_counters():
    q = spectrum_of(PEPTIDES[0])
    out = score_candidates(q, PEPTIDES, np.array([0, 2]), fragment_tolerance=0.05)
    assert out.candidates_scored == 2
    assert out.residues_scored == PEPTIDES[0].length + PEPTIDES[2].length


def test_tolerance_controls_matching():
    q = spectrum_of(PEPTIDES[0])
    shifted = Spectrum(
        scan_id=1, precursor_mz=500.0, charge=2,
        mzs=q.mzs + 0.03, intensities=q.intensities,
    )
    tight = score_candidates(shifted, PEPTIDES, np.array([0]),
                             fragment_tolerance=0.01)
    loose = score_candidates(shifted, PEPTIDES, np.array([0]),
                             fragment_tolerance=0.05)
    assert tight.n_matched[0] == 0
    assert loose.n_matched[0] > 0


def test_precomputed_fragments_identical():
    q = spectrum_of(PEPTIDES[1])
    frags = [fragment_mzs(p) for p in PEPTIDES]
    a = score_candidates(q, PEPTIDES, np.array([0, 1, 2]),
                         fragment_tolerance=0.05)
    b = score_candidates(q, PEPTIDES, np.array([0, 1, 2]),
                         fragment_tolerance=0.05, fragments=frags)
    assert np.array_equal(a.scores, b.scores)
    assert np.array_equal(a.n_matched, b.n_matched)


def test_subset_scores_match_full_scores():
    """Scoring a subset must give bit-identical per-candidate scores
    (the distributed == serial invariant)."""
    q = spectrum_of(PEPTIDES[0])
    full = score_candidates(q, PEPTIDES, np.array([0, 1, 2]),
                            fragment_tolerance=0.05)
    for i in range(3):
        solo = score_candidates(q, PEPTIDES, np.array([i]),
                                fragment_tolerance=0.05)
        assert solo.scores[0] == full.scores[i]
        assert solo.n_matched[0] == full.n_matched[i]


def test_empty_query_spectrum():
    q = Spectrum(1, 500.0, 2, np.array([]), np.array([]))
    out = score_candidates(q, PEPTIDES, np.array([0, 1]), fragment_tolerance=0.05)
    assert np.all(out.scores == 0.0)
    assert np.all(out.n_matched == 0)


def test_intensity_weighting():
    """Higher matched intensity -> higher score at equal match count."""
    mzs = fragment_mzs(PEPTIDES[0])
    weak = Spectrum(1, 500.0, 2, mzs, np.full(mzs.size, 0.1))
    strong = Spectrum(1, 500.0, 2, mzs.copy(), np.full(mzs.size, 1.0))
    s_weak = score_candidates(weak, PEPTIDES, np.array([0]), fragment_tolerance=0.05)
    s_strong = score_candidates(strong, PEPTIDES, np.array([0]), fragment_tolerance=0.05)
    assert s_strong.scores[0] > s_weak.scores[0]
