"""Tests for the benchmark harness (workloads, suite, reporting)."""

import pytest

from repro.bench.experiments import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import rows_to_csv, series_table
from repro.bench.workloads import PAPER_SIZES_M, Workload, WorkloadConfig, make_workload
from repro.errors import ConfigurationError

TINY = ExperimentConfig(
    sizes_m=(2.0,), n_spectra=10, imbalance_ranks=4, rank_sweep=(2, 4)
)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(TINY)


def test_paper_sizes():
    assert PAPER_SIZES_M == (18.0, 30.0, 41.0, 49.45)


def test_workload_scaling_monotone():
    small = make_workload(WorkloadConfig(size_m=1.0, n_spectra=5))
    large = make_workload(WorkloadConfig(size_m=3.0, n_spectra=5))
    assert large.n_entries > small.n_entries


def test_workload_label():
    assert Workload(
        config=WorkloadConfig(size_m=18.0, n_spectra=5),
        database=make_workload(WorkloadConfig(size_m=1.0, n_spectra=5)).database,
        spectra=[],
    ).label == "18M"


def test_workload_invalid():
    with pytest.raises(ConfigurationError):
        WorkloadConfig(size_m=0)
    with pytest.raises(ConfigurationError):
        WorkloadConfig(n_spectra=0)


def test_workload_deterministic():
    a = make_workload(WorkloadConfig(size_m=1.0, n_spectra=5, seed=3))
    b = make_workload(WorkloadConfig(size_m=1.0, n_spectra=5, seed=3))
    assert a.n_entries == b.n_entries
    assert [s.true_peptide for s in a.spectra] == [s.true_peptide for s in b.spectra]


def test_suite_caches_runs(suite):
    a = suite.run(2.0, "cyclic", 4)
    b = suite.run(2.0, "cyclic", 4)
    assert a is b


def test_suite_caches_workloads(suite):
    assert suite.workload(2.0) is suite.workload(2.0)


def test_fig5_rows_shape(suite):
    rows = suite.fig5_rows()
    assert len(rows) == 1
    size_m, shared_gb, dist_gb, overhead, gbm_s, gbm_d, peak_ratio = rows[0]
    assert dist_gb > shared_gb
    assert 0 < overhead < 100
    assert peak_ratio > 1.0


def test_fig6_rows_shape(suite):
    rows = suite.fig6_rows()
    assert len(rows) == 3  # one size x three policies
    by_policy = {r[2]: r[3] for r in rows}
    assert set(by_policy) == {"chunk", "cyclic", "random"}
    assert by_policy["chunk"] > by_policy["cyclic"]


def test_fig7_rows_monotone_in_ranks(suite):
    rows = suite.fig7_rows()
    times = {p: t for (_, p, t) in rows}
    assert times[4] < times[2]


def test_fig8_rows_speedup_anchor(suite):
    rows = suite.fig8_rows()
    by_p = {p: s for (_, p, s, _) in rows}
    assert by_p[2] == pytest.approx(2.0)
    assert by_p[4] > 2.0


def test_fig9_fig10_consistency(suite):
    t_rows = {p: t for (_, p, t) in suite.fig9_rows()}
    s_rows = {p: s for (_, p, s, _, _) in suite.fig10_rows()}
    assert s_rows[4] == pytest.approx(2 * t_rows[2] / t_rows[4])


def test_fig10_serial_fraction_in_range(suite):
    fracs = {f for (_, _, _, _, f) in suite.fig10_rows()}
    assert all(0.0 <= f <= 1.0 for f in fracs)


def test_fig11_chunk_is_one(suite):
    rows = suite.fig11_rows()
    by_policy = {r[1]: r[2] for r in rows}
    assert by_policy["chunk"] == pytest.approx(1.0)
    assert by_policy["cyclic"] > 1.0


def test_cpsm_rows(suite):
    rows = suite.cpsm_rows()
    (size_m, entries, total, per_query) = rows[0]
    assert total > 0
    assert per_query == pytest.approx(total / TINY.n_spectra)


def test_series_table_renders(suite):
    text = series_table("Fig 6", ["size", "entries", "policy", "LI"],
                        suite.fig6_rows())
    assert text.startswith("== Fig 6 ==")
    assert "chunk" in text


def test_rows_to_csv(tmp_path, suite):
    path = rows_to_csv(tmp_path / "out" / "fig6.csv",
                       ["size", "entries", "policy", "LI"], suite.fig6_rows())
    content = path.read_text().splitlines()
    assert content[0] == "size,entries,policy,LI"
    assert len(content) == 4
