"""Tests for the performance metrics (Eq. 1 and derived quantities)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.search.metrics import (
    amdahl_speedup,
    estimate_serial_fraction,
    load_imbalance,
    policy_cpu_speedup,
    speedup_series,
    wasted_cpu_time,
)


def test_li_balanced_is_zero():
    assert load_imbalance([5.0, 5.0, 5.0]) == 0.0


def test_li_paper_example():
    """Section VI example: ΔTmax = 80s over Tavg = 100s -> LI = 0.8."""
    times = [100.0] * 15 + [180.0]
    avg = float(np.mean(times))
    assert load_imbalance(times) == pytest.approx((180 - avg) / avg)


def test_li_simple():
    # times 1,1,2: avg=4/3, max dev = 2/3 -> LI = 0.5
    assert load_imbalance([1.0, 1.0, 2.0]) == pytest.approx(0.5)


def test_li_all_zero():
    assert load_imbalance([0.0, 0.0]) == 0.0


def test_li_validation():
    with pytest.raises(ConfigurationError):
        load_imbalance([])
    with pytest.raises(ConfigurationError):
        load_imbalance([-1.0])


def test_twst_formula():
    """Twst = N * ΔTmax (paper Section VI)."""
    times = [1.0, 1.0, 2.0]
    delta = 2.0 - np.mean(times)
    assert wasted_cpu_time(times) == pytest.approx(3 * delta)


def test_twst_balanced_zero():
    assert wasted_cpu_time([2.0, 2.0]) == 0.0


def test_policy_speedup_against_self_is_one():
    times = [1.0, 2.0]
    assert policy_cpu_speedup(times, times) == 1.0


def test_policy_speedup_ratio():
    chunk = [1.0, 3.0]  # Twst = 2*(3-2) = 2
    cyclic = [1.9, 2.1]  # Twst = 2*(2.1-2) = 0.2
    assert policy_cpu_speedup(cyclic, chunk) == pytest.approx(10.0)


def test_policy_speedup_perfect_policy_inf():
    assert policy_cpu_speedup([1.0, 1.0], [1.0, 3.0]) == float("inf")
    assert policy_cpu_speedup([1.0, 1.0], [2.0, 2.0]) == 1.0


def test_speedup_series_anchored_at_min():
    series = speedup_series({2: 10.0, 4: 5.0, 8: 2.5})
    assert series[2] == pytest.approx(2.0)
    assert series[4] == pytest.approx(4.0)
    assert series[8] == pytest.approx(8.0)


def test_speedup_series_sublinear():
    series = speedup_series({2: 10.0, 4: 6.0})
    assert series[4] == pytest.approx(2 * 10 / 6)


def test_speedup_series_validation():
    with pytest.raises(ConfigurationError):
        speedup_series({})
    with pytest.raises(ConfigurationError):
        speedup_series({0: 1.0})
    with pytest.raises(ConfigurationError):
        speedup_series({2: -1.0})


def test_amdahl_limits():
    assert amdahl_speedup(1, 0.5) == 1.0
    assert amdahl_speedup(1000, 0.0) == pytest.approx(1000.0)
    assert amdahl_speedup(1000, 1.0) == pytest.approx(1.0)
    # s=0.1: asymptote 10x
    assert amdahl_speedup(10**6, 0.1) == pytest.approx(10.0, rel=1e-3)


def test_amdahl_validation():
    with pytest.raises(ConfigurationError):
        amdahl_speedup(0, 0.5)
    with pytest.raises(ConfigurationError):
        amdahl_speedup(4, 1.5)


def test_estimate_serial_fraction_exact_model():
    """T(p) = a + b/p recovered exactly from noiseless data."""
    a, b = 2.0, 8.0
    times = {p: a + b / p for p in (1, 2, 4, 8)}
    s = estimate_serial_fraction(times)
    assert s == pytest.approx(a / (a + b), abs=1e-9)


def test_estimate_serial_fraction_pure_parallel():
    times = {p: 8.0 / p for p in (1, 2, 4)}
    assert estimate_serial_fraction(times) == pytest.approx(0.0, abs=1e-9)


def test_estimate_serial_fraction_needs_two_points():
    with pytest.raises(ConfigurationError):
        estimate_serial_fraction({2: 1.0})


def test_speedup_consistent_with_amdahl():
    """speedup_series of an Amdahl-shaped curve matches amdahl_speedup
    scaled to the anchor."""
    s = 0.2
    t1 = 10.0
    times = {p: t1 * (s + (1 - s) / p) for p in (1, 2, 4, 8, 16)}
    series = speedup_series(times)
    for p in (2, 4, 8, 16):
        assert series[p] == pytest.approx(amdahl_speedup(p, s), rel=1e-9)
