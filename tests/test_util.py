"""Tests for the util subpackage (rng, tables, timing, validation)."""

import re
import time

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util.rng import derive_seed, rng_from
from repro.util.tables import format_table
from repro.util.timing import PhaseTimer
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)


# -- rng ------------------------------------------------------------------


def test_derive_seed_stable():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_distinguishes_labels():
    seeds = {
        derive_seed(42),
        derive_seed(42, "a"),
        derive_seed(42, "b"),
        derive_seed(42, "a", 0),
        derive_seed(43, "a"),
    }
    assert len(seeds) == 5


def test_derive_seed_range():
    for s in (0, 1, 2**62, 123456789):
        assert 0 <= derive_seed(s, "x") < 2**63


def test_rng_from_reproducible():
    a = rng_from(7, "stream").random(5)
    b = rng_from(7, "stream").random(5)
    assert (a == b).all()


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=10))
def test_derive_seed_property(seed, label):
    v = derive_seed(seed, label)
    assert 0 <= v < 2**63
    assert v == derive_seed(seed, label)


# -- tables ----------------------------------------------------------------


def test_format_table_alignment():
    out = format_table(["name", "value"], [("x", 1.5), ("longer", 22.25)])
    lines = out.splitlines()
    assert len(lines) == 4  # header, sep, 2 rows
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all lines equal width


def test_format_table_title():
    out = format_table(["a"], [(1,)], title="Title")
    assert out.startswith("Title\n")


def test_format_table_float_fmt():
    out = format_table(["v"], [(1.23456,)], float_fmt=".2f")
    assert "1.23" in out and "1.2345" not in out


def test_format_table_bad_row():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [(1,)])


# -- timing ------------------------------------------------------------------


def test_phase_timer_charge_accumulates():
    t = PhaseTimer()
    t.charge("query", 1.0)
    t.charge("query", 0.5)
    assert t.get("query") == 1.5
    assert t.total() == 1.5


def test_phase_timer_negative_rejected():
    with pytest.raises(ValueError):
        PhaseTimer().charge("x", -1.0)


def test_phase_timer_measure():
    t = PhaseTimer()
    with t.measure("sleep"):
        time.sleep(0.01)
    assert t.get("sleep") >= 0.01


def test_phase_timer_merge():
    a, b = PhaseTimer(), PhaseTimer()
    a.charge("x", 1.0)
    b.charge("x", 2.0)
    b.charge("y", 3.0)
    a.merge(b)
    assert a.get("x") == 3.0
    assert a.get("y") == 3.0


def test_phase_timer_as_dict_copy():
    t = PhaseTimer()
    t.charge("x", 1.0)
    d = t.as_dict()
    d["x"] = 99.0
    assert t.get("x") == 1.0


# -- validation ------------------------------------------------------------


def test_check_positive():
    check_positive("x", 1.0)
    with pytest.raises(ConfigurationError):
        check_positive("x", 0.0)


def test_check_non_negative():
    check_non_negative("x", 0.0)
    with pytest.raises(ConfigurationError):
        check_non_negative("x", -0.1)


def test_check_probability():
    check_probability("x", 0.0)
    check_probability("x", 1.0)
    with pytest.raises(ConfigurationError):
        check_probability("x", 1.01)


def test_check_range():
    check_range("x", 1.0, 2.0)
    with pytest.raises(ConfigurationError):
        check_range("x", 2.0, 1.0)
