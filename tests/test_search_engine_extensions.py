"""Tests for the §VIII extensions wired into the engine: the
predictive (lpt) policy under heterogeneity and hybrid multicore
ranks."""

import pytest

from repro.errors import ConfigurationError
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.metrics import load_imbalance
from repro.search.serial import SerialSearchEngine


@pytest.fixture(scope="module")
def serial_reference(small_db, small_spectra):
    return SerialSearchEngine(small_db).run(small_spectra)


def test_lpt_matches_serial(small_db, small_spectra, serial_reference):
    res = DistributedSearchEngine(
        small_db, EngineConfig(n_ranks=5, policy="lpt")
    ).run(small_spectra)
    for a, b in zip(serial_reference.spectra, res.spectra):
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score) for p in a.psms] == [
            (p.entry_id, p.score) for p in b.psms
        ]


def test_lpt_beats_cyclic_under_heterogeneity(small_db, small_spectra):
    """With strongly unequal machines, the speed-aware predictive
    policy balances finishing times where Cyclic cannot."""
    li = {}
    for policy in ("cyclic", "lpt"):
        res = DistributedSearchEngine(
            small_db,
            EngineConfig(
                n_ranks=8, policy=policy, machine_jitter=0.3, machine_seed=42
            ),
        ).run(small_spectra)
        li[policy] = load_imbalance(res.query_times)
    assert li["lpt"] < li["cyclic"]


def test_lpt_entry_counts_track_speeds(small_db):
    cfg = EngineConfig(n_ranks=4, policy="lpt", machine_jitter=0.3,
                       machine_seed=11)
    engine = DistributedSearchEngine(small_db, cfg)
    sizes = engine.plan.partition_sizes().astype(float)
    speeds = [1.0 / cfg.machine_speed(r) for r in range(4)]
    # Faster ranks get more entries: rank order by speed == order by size.
    order_speed = sorted(range(4), key=lambda r: speeds[r])
    order_size = sorted(range(4), key=lambda r: sizes[r])
    assert order_speed == order_size


def test_hybrid_cores_speed_up_query(small_db, small_spectra):
    times = {}
    for cores in (1, 4):
        res = DistributedSearchEngine(
            small_db,
            EngineConfig(n_ranks=2, policy="cyclic", cores_per_rank=cores),
        ).run(small_spectra)
        times[cores] = res.query_time
    assert times[4] < times[1]
    # Amdahl-bounded: 4 cores with 5% serial gives <= 3.48x
    assert times[1] / times[4] <= 3.6


def test_hybrid_cores_do_not_change_results(small_db, small_spectra,
                                            serial_reference):
    res = DistributedSearchEngine(
        small_db,
        EngineConfig(n_ranks=3, policy="cyclic", cores_per_rank=8),
    ).run(small_spectra)
    for a, b in zip(serial_reference.spectra, res.spectra):
        assert a.n_candidates == b.n_candidates


def test_intra_rank_speedup_formula():
    cfg = EngineConfig(cores_per_rank=4, intra_serial_fraction=0.0)
    assert cfg.intra_rank_speedup == pytest.approx(4.0)
    cfg = EngineConfig(cores_per_rank=1, intra_serial_fraction=0.5)
    assert cfg.intra_rank_speedup == pytest.approx(1.0)
    cfg = EngineConfig(cores_per_rank=10**6, intra_serial_fraction=0.1)
    assert cfg.intra_rank_speedup == pytest.approx(10.0, rel=1e-3)


def test_hybrid_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(cores_per_rank=0)
    with pytest.raises(ConfigurationError):
        EngineConfig(intra_serial_fraction=1.5)
