"""Tests for duplicate peptide removal."""

from hypothesis import given, strategies as st

from repro.chem.peptide import Peptide
from repro.db.dedup import deduplicate_peptides


def test_removes_duplicates_keeps_first():
    peps = [
        Peptide("AAAK", protein_id=0),
        Peptide("CCCK", protein_id=1),
        Peptide("AAAK", protein_id=2),
    ]
    out = deduplicate_peptides(peps)
    assert [p.sequence for p in out] == ["AAAK", "CCCK"]
    assert out[0].protein_id == 0  # first occurrence wins


def test_empty_input():
    assert deduplicate_peptides([]) == []


def test_all_unique_preserved():
    peps = [Peptide(s) for s in ("AK", "CK", "DK")]
    assert deduplicate_peptides(peps) == peps


def test_stable_order():
    peps = [Peptide(s) for s in ("DK", "AK", "DK", "CK", "AK")]
    assert [p.sequence for p in deduplicate_peptides(peps)] == ["DK", "AK", "CK"]


@given(st.lists(st.sampled_from(["AK", "CK", "DK", "EK", "GK"]), max_size=50))
def test_dedup_properties(seqs):
    peps = [Peptide(s) for s in seqs]
    out = deduplicate_peptides(peps)
    sequences = [p.sequence for p in out]
    # No duplicates, subset of input, order-preserving.
    assert len(set(sequences)) == len(sequences)
    assert set(sequences) == set(seqs)
    positions = [seqs.index(s) for s in sequences]
    assert positions == sorted(positions)
