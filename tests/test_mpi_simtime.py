"""Tests for virtual clocks and the communication cost model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mpi.simtime import CommCostModel, VirtualClock, payload_nbytes


def test_clock_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_clock_advance():
    c = VirtualClock()
    assert c.advance(1.5) == 1.5
    assert c.advance(0.5) == 2.0
    assert c.now == 2.0


def test_clock_negative_advance_rejected():
    with pytest.raises(ConfigurationError):
        VirtualClock().advance(-1.0)


def test_clock_negative_start_rejected():
    with pytest.raises(ConfigurationError):
        VirtualClock(-1.0)


def test_sync_only_moves_forward():
    c = VirtualClock(5.0)
    c.sync_to(3.0)
    assert c.now == 5.0
    c.sync_to(7.0)
    assert c.now == 7.0


def test_payload_numpy_counts_buffer():
    arr = np.zeros(1000, dtype=np.float64)
    assert payload_nbytes(arr) == 8000 + 96


def test_payload_bytes():
    assert payload_nbytes(b"12345") == 5


def test_payload_list_of_arrays():
    arrs = [np.zeros(10, dtype=np.int64), np.zeros(5, dtype=np.int64)]
    assert payload_nbytes(arrs) == (80 + 96) + (40 + 96)


def test_payload_generic_object_uses_pickle():
    n = payload_nbytes({"a": 1, "b": [1, 2, 3]})
    assert n > 10  # pickled size, deterministic
    assert n == payload_nbytes({"a": 1, "b": [1, 2, 3]})


def test_p2p_cost():
    m = CommCostModel(latency=1e-3, seconds_per_byte=1e-6)
    assert m.p2p(1000) == pytest.approx(1e-3 + 1e-3)


def test_collective_cost_log_rounds():
    m = CommCostModel(latency=1.0, seconds_per_byte=0.0)
    assert m.collective(0, 1) == 0.0
    assert m.collective(0, 2) == 1.0
    assert m.collective(0, 4) == 2.0
    assert m.collective(0, 8) == 3.0
    assert m.collective(0, 5) == 3.0  # ceil(log2 5)


def test_negative_costs_rejected():
    with pytest.raises(ConfigurationError):
        CommCostModel(latency=-1.0)
