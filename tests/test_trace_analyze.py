"""Trace analyzer: offline reconstruction must agree with live stats.

The acceptance bar from the issue: ``repro trace analyze`` recomputes
the paper's Eq.-1 load imbalance from ``worker.query`` spans and it
must agree with the live ``service.batch_li_wall`` gauge; stage walls
and the p50/p95 batch quantiles must match the ``BatchStats`` /
``SessionStats`` the session itself reported.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    analyze_trace,
    analyze_trace_file,
    diff_traces,
    load_trace,
    render_analysis,
    render_diff,
    render_gantt,
    trace_stats,
)
from repro.obs import schema
from repro.obs.analyze import LI_TOLERANCE
from repro.service import (
    SearchService,
    ServiceConfig,
    ShardedSearchService,
    aggregate_batch_stats,
)
from repro.util.ascii_plot import gantt_chart


@pytest.fixture(scope="module")
def traced_session(tiny_db, tiny_spectra, tmp_path_factory):
    """One traced 3-batch session plus everything it reported live."""
    path = tmp_path_factory.mktemp("analyze") / "trace.jsonl"
    metrics = MetricsRegistry()
    config = ServiceConfig(
        n_workers=2, tracer=JsonlTracer(path), metrics=metrics
    )
    batches = [
        list(tiny_spectra),
        list(tiny_spectra[:7]),
        list(tiny_spectra[5:]),
    ]
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    return path, all_stats, metrics


# -- live-session agreement (the acceptance bar) -----------------------


def test_recomputed_li_matches_live_gauge_and_batch_stats(traced_session):
    path, all_stats, metrics = traced_session
    analysis = analyze_trace_file(path)
    assert analysis.n_batches == 3 and analysis.n_workers == 2
    assert analysis.li_agreement is True
    for timeline, stats in zip(analysis.batches, all_stats):
        assert timeline.batch == stats.batch_index
        # The batch event snapshots the gauge value at emit time...
        assert timeline.li_event == pytest.approx(stats.query_li, abs=1e-9)
        # ...and Eq. 1 over the worker.query spans re-derives it.
        assert timeline.li_recomputed == pytest.approx(
            stats.query_li, abs=LI_TOLERANCE
        )
    gauge = metrics.gauge("service.batch_li_wall")
    assert analysis.batches[-1].li_event == pytest.approx(
        gauge.value, abs=1e-9
    )
    assert analysis.li_max == pytest.approx(
        max(s.query_li for s in all_stats), abs=1e-9
    )


def test_stage_walls_match_batch_stats(traced_session):
    path, all_stats, _ = traced_session
    analysis = analyze_trace_file(path)
    for timeline, stats in zip(analysis.batches, all_stats):
        assert timeline.stages["prepare"] == pytest.approx(
            stats.preprocess_s, abs=1e-8
        )
        assert timeline.stages["spill"] == pytest.approx(
            stats.spill_s, abs=1e-8
        )
        assert timeline.stages["merge"] == pytest.approx(
            stats.merge_s, abs=1e-8
        )
        assert timeline.stages["collect"] == pytest.approx(
            stats.collect_wait_s, abs=1e-8
        )
        assert timeline.total_event_s == pytest.approx(
            stats.total_s, abs=1e-8
        )
        # Per-rank worker walls are the query_wall_s vector.
        walls = timeline.worker_wall
        for rank, wall in enumerate(stats.query_wall_s):
            assert walls[rank] == pytest.approx(wall, abs=1e-8)


def test_quantiles_match_session_stats(traced_session):
    path, all_stats, _ = traced_session
    analysis = analyze_trace_file(path)
    session = aggregate_batch_stats(all_stats)
    assert analysis.p50_total_s == pytest.approx(
        session.p50_batch_s, abs=1e-8
    )
    assert analysis.p95_total_s == pytest.approx(
        session.p95_batch_s, abs=1e-8
    )
    assert analysis.li_mean == pytest.approx(session.query_li_mean, abs=1e-9)


def test_analysis_structure_and_rendering(traced_session):
    path, _, _ = traced_session
    analysis = analyze_trace_file(path)
    assert not analysis.fleet
    assert analysis.event_counts["batch"] == 3
    assert set(analysis.rank_util) == {0, 1}
    assert all(0.0 < u <= 1.0 for u in analysis.rank_util.values())
    for name in ("prepare", "spill", "dispatch", "collect", "merge"):
        assert analysis.stage_totals[name].count == 3
    for timeline in analysis.batches:
        labels = [label for label, _ in timeline.critical_path]
        assert any(label.startswith("worker[") for label in labels)
        assert timeline.critical_stage in labels
    report = render_analysis(analysis, source=str(path))
    assert "agrees with the live gauge" in report
    assert "per-batch timelines" in report
    assert "per-rank utilization" in report


def test_render_gantt_selects_batches(traced_session):
    path, _, _ = traced_session
    analysis = analyze_trace_file(path)
    chart = render_gantt(analysis, batch=1, width=48)
    assert "batch 1" in chart and "rank 0" in chart and "prepare" in chart
    assert "batch 0" not in chart
    all_charts = render_gantt(analysis)
    assert all_charts.count("wall") == 3
    with pytest.raises(ConfigurationError):
        render_gantt(analysis, batch=99)
    with pytest.raises(ConfigurationError):
        render_gantt(analyze_trace([]))


# -- fleet traces ------------------------------------------------------


def test_fleet_analysis_and_shard_slice(tiny_db, tiny_spectra, tmp_path):
    path = tmp_path / "fleet.jsonl"
    tracer = JsonlTracer(path)
    config = ServiceConfig(
        n_workers=2, tracer=tracer, metrics=MetricsRegistry()
    )
    with ShardedSearchService(tiny_db, config, n_shards=2) as svc:
        all_stats = [
            svc.submit(batch)[1]
            for batch in (list(tiny_spectra), list(tiny_spectra[:7]))
        ]
    tracer.close()
    fleet = analyze_trace_file(path)
    assert fleet.fleet and fleet.n_shards == 2 and fleet.n_workers == 4
    assert fleet.li_agreement is True
    for timeline, stats in zip(fleet.batches, all_stats):
        assert timeline.li_event == pytest.approx(stats.query_li, abs=1e-9)
        assert timeline.li_recomputed == pytest.approx(
            stats.query_li, abs=LI_TOLERANCE
        )
        # Fleet ranks flatten shard-local ranks: shard*width + rank.
        assert set(timeline.worker_wall) == {0, 1, 2, 3}
    assert "route" in fleet.stage_totals and "demux" in fleet.stage_totals
    # A shard slice re-analyzes that shard's records as a plain
    # unsharded session over its local ranks.
    shard0 = analyze_trace_file(path, shard=0)
    assert not shard0.fleet and shard0.n_workers == 2
    assert set(shard0.rank_busy_s) == {0, 1}
    assert shard0.n_batches == 2


# -- regression attribution (diff) -------------------------------------


def _synthetic_trace(merge_s, rank1_s):
    """Two-batch trace with controllable merge and rank-1 walls."""
    records = [
        {"type": "event", "kind": "session.open", "ts": 0.0,
         "n_workers": 2, "policy": "greedy"},
    ]
    t = 1.0
    for bi in range(2):
        records += [
            {"type": "span", "name": "prepare", "ts": t, "dur": 0.010,
             "batch": bi},
            {"type": "span", "name": "spill", "ts": t + 0.010,
             "dur": 0.002, "batch": bi},
            {"type": "span", "name": "dispatch", "ts": t + 0.012,
             "dur": 0.001, "batch": bi},
            {"type": "span", "name": "worker.query", "ts": t + 0.013,
             "dur": 0.020, "batch": bi, "rank": 0},
            {"type": "span", "name": "worker.query", "ts": t + 0.013,
             "dur": rank1_s, "batch": bi, "rank": 1},
            {"type": "span", "name": "collect", "ts": t + 0.013,
             "dur": rank1_s + 0.001, "batch": bi},
            {"type": "span", "name": "merge", "ts": t + 0.014 + rank1_s,
             "dur": merge_s, "batch": bi},
            {"type": "event", "kind": "batch", "ts": t + 0.020 + rank1_s,
             "batch": bi, "total_s": 0.015 + rank1_s + merge_s,
             "li_wall": 0.0},
        ]
        t += 1.0
    records.append({"type": "event", "kind": "session.close", "ts": t})
    return records


def test_diff_attributes_known_stage_regression():
    a = analyze_trace(_synthetic_trace(merge_s=0.005, rank1_s=0.020))
    b = analyze_trace(_synthetic_trace(merge_s=0.065, rank1_s=0.020))
    diff = diff_traces(a, b)
    # The injected +60 ms merge must rank as the primary suspect.
    top = diff.stage_deltas[0]
    assert top.name == "merge"
    assert top.delta_s == pytest.approx(0.060, abs=1e-9)
    assert diff.p50_delta_s == pytest.approx(0.060, abs=1e-9)
    others = [d for d in diff.stage_deltas if d.name != "merge"]
    assert all(abs(d.delta_s) < 1e-9 for d in others)
    report = render_diff(diff, a_name="base", b_name="cand")
    assert "merge" in report and "slower" in report


def test_diff_attributes_straggler_rank():
    a = analyze_trace(_synthetic_trace(merge_s=0.005, rank1_s=0.020))
    b = analyze_trace(_synthetic_trace(merge_s=0.005, rank1_s=0.090))
    diff = diff_traces(a, b)
    # The straggler inflates the worker pseudo-stage and the collect
    # wait that covers it — both must rank above every master stage.
    top_two = {d.name for d in diff.stage_deltas[:2]}
    assert top_two == {"worker", "collect"}
    by_name = {d.name: d for d in diff.stage_deltas}
    assert by_name["worker"].delta_s == pytest.approx(0.070, abs=1e-9)
    rank1 = {d.name: d for d in diff.rank_deltas}["rank 1"]
    assert rank1.delta_s == pytest.approx(0.070, abs=1e-9)
    rank0 = {d.name: d for d in diff.rank_deltas}["rank 0"]
    assert abs(rank0.delta_s) < 1e-9


def test_diff_of_trace_with_itself_is_flat(traced_session):
    path, _, _ = traced_session
    analysis = analyze_trace_file(path)
    diff = diff_traces(analysis, analysis)
    assert diff.p50_delta_s == 0.0 and diff.li_delta == 0.0
    assert all(d.delta_s == 0.0 for d in diff.stage_deltas)
    assert all(d.delta_s == 0.0 for d in diff.rank_deltas)


# -- loaders, gantt primitive, schema stats ----------------------------


def test_load_trace_rejects_bad_json(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type":"event","kind":"x","ts":0.0}\nnot json\n')
    with pytest.raises(ConfigurationError, match="line 2"):
        load_trace(bad)


def test_gantt_chart_primitive():
    chart = gantt_chart(
        [("stage", [(0.0, 0.5)]), ("rank 0", [(0.25, 0.75)])],
        width=20,
        title="demo",
    )
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert any("#" in line for line in lines[1:])
    # Every interval paints at least one cell, even sub-pixel ones.
    tiny = gantt_chart([("a", [(0.0, 1.0)]), ("b", [(0.5, 1e-9)])])
    assert all("#" in line for line in tiny.splitlines()[:2])
    with pytest.raises(ConfigurationError):
        gantt_chart([])
    with pytest.raises(ConfigurationError):
        gantt_chart([("a", [])])
    with pytest.raises(ConfigurationError):
        gantt_chart([("a", [(0.0, -1.0)])])
    with pytest.raises(ConfigurationError):
        gantt_chart([("a", [(0.0, 1.0)])], width=5)


def test_trace_stats_counts_and_durations(traced_session):
    path, all_stats, _ = traced_session
    stats = trace_stats(path)
    assert stats["batch"]["type"] == "event"
    assert stats["batch"]["count"] == 3
    assert stats["worker.query"]["type"] == "span"
    assert stats["worker.query"]["count"] == 6
    expected = sum(sum(s.query_wall_s) for s in all_stats)
    assert stats["worker.query"]["dur_s"] == pytest.approx(
        expected, abs=1e-6
    )


def test_schema_cli_stats_and_requirements(traced_session, capsys):
    path, _, _ = traced_session
    rc = schema.main(
        ["--stats", str(path), "--require", "worker.query>=6",
         "--require", "batch=3"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "worker.query: 6" in out
    assert "s total" in out
    rc = schema.main([str(path), "--require", "respawn>=1"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "requirement" in captured.out + captured.err


def test_schema_cli_rejects_malformed_requirement(traced_session, capsys):
    path, _, _ = traced_session
    rc = schema.main([str(path), "--require", "worker.query"])
    captured = capsys.readouterr()
    assert rc == 2  # usage error, distinct from a failed requirement
    assert "bad --require spec" in captured.out + captured.err
