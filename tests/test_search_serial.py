"""Tests for the shared-memory reference engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.index.slm import SLMIndexSettings
from repro.search.serial import SerialSearchEngine, top_k_psms


def test_top_k_psms_ordering():
    ids = np.array([5, 3, 9, 1])
    scores = np.array([2.0, 7.0, 7.0, 1.0])
    shared = np.array([4, 5, 6, 4])
    psms = top_k_psms(1, ids, scores, shared, k=3)
    # Score desc; tie at 7.0 broken by ascending entry id (3 before 9).
    assert [p.entry_id for p in psms] == [3, 9, 5]
    assert psms[0].shared_peaks == 5


def test_top_k_psms_empty():
    assert top_k_psms(1, np.array([]), np.array([]), np.array([]), 5) == []


def test_top_k_truncates():
    ids = np.arange(10)
    scores = np.arange(10, dtype=float)
    shared = np.ones(10, dtype=int)
    assert len(top_k_psms(1, ids, scores, shared, 4)) == 4


def test_invalid_top_k_rejected(small_db):
    with pytest.raises(ConfigurationError):
        SerialSearchEngine(small_db, top_k=0)


def test_serial_run_basic(small_db, small_spectra):
    engine = SerialSearchEngine(small_db)
    res = engine.run(small_spectra)
    assert len(res.spectra) == len(small_spectra)
    assert res.policy_name == "shared"
    assert res.n_ranks == 1
    assert res.total_cpsms > 0
    assert res.execution_time > 0


def test_serial_identifies_true_peptides(small_db, small_spectra):
    """Most spectra should rank their generating peptide #1 (the
    synthetic run uses mild noise), and candidate sets should nearly
    always contain it."""
    engine = SerialSearchEngine(small_db)
    res = engine.run(small_spectra)
    hits = 0
    for spec, sr in zip(small_spectra, res.spectra):
        if sr.psms and sr.psms[0].entry_id == spec.true_peptide:
            hits += 1
    assert hits >= 0.6 * len(small_spectra)


def test_phase_ledger_sums_to_total(small_db, small_spectra):
    res = SerialSearchEngine(small_db).run(small_spectra)
    parts = (
        res.phase_times["serial_prep"]
        + res.phase_times["build"]
        + res.phase_times["query"]
        + res.phase_times["merge"]
    )
    assert res.phase_times["total"] == pytest.approx(parts)


def test_work_counters_populated(small_db, small_spectra):
    res = SerialSearchEngine(small_db).run(small_spectra)
    stats = res.rank_stats[0]
    assert stats.n_entries == small_db.n_entries
    assert stats.n_ions > 0
    assert stats.ions_scanned > 0
    assert stats.candidates_scored == res.total_cpsms


def test_index_cached(small_db):
    engine = SerialSearchEngine(small_db)
    assert engine.index is engine.index


def test_deterministic(small_db, small_spectra):
    a = SerialSearchEngine(small_db).run(small_spectra)
    b = SerialSearchEngine(small_db).run(small_spectra)
    for x, y in zip(a.spectra, b.spectra):
        assert x.n_candidates == y.n_candidates
        assert [(p.entry_id, p.score) for p in x.psms] == [
            (p.entry_id, p.score) for p in y.psms
        ]


def test_precursor_window_reduces_candidates(small_db, small_spectra):
    open_res = SerialSearchEngine(small_db).run(small_spectra)
    windowed = SerialSearchEngine(
        small_db, SLMIndexSettings(precursor_tolerance=2.0)
    ).run(small_spectra)
    assert windowed.total_cpsms < open_res.total_cpsms
