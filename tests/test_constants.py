"""Sanity checks on the physical-constant tables."""

import math

import pytest

from repro import constants


def test_alphabet_covers_masses():
    assert set(constants.ALPHABET) == set(constants.AA_MONO)


def test_twenty_amino_acids():
    assert len(constants.AA_MONO) == 20


def test_leucine_isoleucine_isobaric():
    assert constants.AA_MONO["L"] == constants.AA_MONO["I"]


def test_glycine_is_lightest_tryptophan_heaviest():
    masses = constants.AA_MONO
    assert min(masses, key=masses.get) == "G"
    assert max(masses, key=masses.get) == "W"


def test_residue_masses_in_plausible_range():
    for aa, mass in constants.AA_MONO.items():
        assert 57.0 < mass < 187.0, aa


def test_water_and_proton_reference_values():
    assert math.isclose(constants.WATER_MONO, 18.010565, abs_tol=1e-5)
    assert math.isclose(constants.PROTON, 1.007276, abs_tol=1e-5)


def test_frequencies_normalized():
    assert math.isclose(sum(constants.AA_FREQUENCIES.values()), 1.0, abs_tol=0.01)


def test_frequencies_cover_alphabet():
    assert set(constants.AA_FREQUENCIES) == set(constants.ALPHABET)


def test_mass_of_residue_known():
    assert constants.mass_of_residue("G") == constants.AA_MONO["G"]


def test_mass_of_residue_unknown_raises():
    with pytest.raises(KeyError, match="unknown amino acid"):
        constants.mass_of_residue("X")


def test_digest_defaults_match_paper():
    assert constants.DIGEST_MIN_LENGTH == 6
    assert constants.DIGEST_MAX_LENGTH == 40
    assert constants.DIGEST_MISSED_CLEAVAGES == 2
    assert constants.DIGEST_MIN_MASS == 100.0
    assert constants.DIGEST_MAX_MASS == 5000.0


def test_slm_defaults_match_paper():
    assert constants.DEFAULT_RESOLUTION == 0.01
    assert constants.DEFAULT_FRAGMENT_TOLERANCE == 0.05
    assert constants.DEFAULT_SHARED_PEAK_THRESHOLD == 4
    assert constants.DEFAULT_TOP_PEAKS == 100
    assert constants.DEFAULT_MAX_MODIFIED_RESIDUES == 5


def test_lbe_defaults_match_paper():
    assert constants.DEFAULT_GROUP_SIZE == 20
    assert constants.DEFAULT_EDIT_DISTANCE == 2
    assert constants.DEFAULT_NORMALIZED_CUTOFF == 0.86
