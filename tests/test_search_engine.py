"""Integration tests: the distributed engine vs the serial reference.

The central correctness claim of the reproduction: for every policy
and rank count, LBE-distributed search returns *exactly* the serial
engine's results (candidate counts, PSM identities, scores), because
partitioning must never change search semantics — only load placement.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.metrics import load_imbalance
from repro.search.serial import SerialSearchEngine


def assert_same_results(serial, distributed):
    assert len(serial.spectra) == len(distributed.spectra)
    for a, b in zip(serial.spectra, distributed.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def serial_reference(small_db, small_spectra):
    return SerialSearchEngine(small_db).run(small_spectra)


@pytest.mark.parametrize("policy", ["chunk", "cyclic", "random"])
@pytest.mark.parametrize("n_ranks", [1, 2, 5, 8])
def test_distributed_equals_serial(small_db, small_spectra, serial_reference,
                                   policy, n_ranks):
    engine = DistributedSearchEngine(
        small_db, EngineConfig(n_ranks=n_ranks, policy=policy)
    )
    res = engine.run(small_spectra)
    assert_same_results(serial_reference, res)


def test_plan_partitions_all_entries(small_db):
    engine = DistributedSearchEngine(small_db, EngineConfig(n_ranks=4))
    plan = engine.plan
    assert int(plan.partition_sizes().sum()) == small_db.n_entries


def test_rank_stats_cover_all_work(small_db, small_spectra, serial_reference):
    res = DistributedSearchEngine(
        small_db, EngineConfig(n_ranks=4, policy="cyclic")
    ).run(small_spectra)
    assert sum(s.n_entries for s in res.rank_stats) == small_db.n_entries
    assert (
        sum(s.candidates_scored for s in res.rank_stats)
        == serial_reference.total_cpsms
    )


def test_chunk_more_imbalanced_than_cyclic(small_db, small_spectra):
    li = {}
    for policy in ("chunk", "cyclic"):
        res = DistributedSearchEngine(
            small_db, EngineConfig(n_ranks=8, policy=policy)
        ).run(small_spectra)
        li[policy] = load_imbalance(res.query_times)
    assert li["chunk"] > 2 * li["cyclic"]


def test_more_ranks_reduce_query_time(small_db, small_spectra):
    times = {}
    for p in (2, 8):
        res = DistributedSearchEngine(
            small_db, EngineConfig(n_ranks=p, policy="cyclic")
        ).run(small_spectra)
        times[p] = res.query_time
    assert times[8] < times[2]


def test_execution_time_exceeds_query_time(small_db, small_spectra):
    res = DistributedSearchEngine(
        small_db, EngineConfig(n_ranks=4, policy="cyclic")
    ).run(small_spectra)
    assert res.execution_time > res.phase_times["query"]
    assert res.phase_times["serial_prep"] > 0


def test_deterministic_timing(small_db, small_spectra):
    """Virtual times are bit-identical across repeated runs."""
    cfg = EngineConfig(n_ranks=4, policy="random", policy_seed=3)
    a = DistributedSearchEngine(small_db, cfg).run(small_spectra)
    b = DistributedSearchEngine(small_db, cfg).run(small_spectra)
    assert a.query_times == b.query_times
    assert a.execution_time == b.execution_time


def test_machine_jitter_zero_balances_cyclic(small_db, small_spectra):
    """Without machine jitter, cyclic imbalance comes only from
    residual per-base candidate-load variance — small in absolute
    terms and far below chunk's on the same workload."""
    cyclic = DistributedSearchEngine(
        small_db, EngineConfig(n_ranks=4, policy="cyclic", machine_jitter=0.0)
    ).run(small_spectra)
    chunk = DistributedSearchEngine(
        small_db, EngineConfig(n_ranks=4, policy="chunk", machine_jitter=0.0)
    ).run(small_spectra)
    li_cyclic = load_imbalance(cyclic.query_times)
    li_chunk = load_imbalance(chunk.query_times)
    assert li_cyclic < 0.3
    assert li_chunk > 3 * li_cyclic


def test_machine_speed_deterministic():
    cfg = EngineConfig(n_ranks=4, machine_jitter=0.1, machine_seed=5)
    speeds = [cfg.machine_speed(r) for r in range(4)]
    assert speeds == [cfg.machine_speed(r) for r in range(4)]
    assert all(s >= 0.5 for s in speeds)
    assert len(set(speeds)) > 1


def test_machine_jitter_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(machine_jitter=-0.1)


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        EngineConfig(n_ranks=0)
    with pytest.raises(ConfigurationError):
        EngineConfig(top_k=0)


def test_policy_affects_placement_not_results(small_db, small_spectra):
    runs = {
        policy: DistributedSearchEngine(
            small_db, EngineConfig(n_ranks=4, policy=policy)
        ).run(small_spectra)
        for policy in ("chunk", "cyclic")
    }
    assert_same_results(runs["chunk"], runs["cyclic"])
    # but the per-rank entry counts differ in distribution of work
    chunk_ions = [s.ions_scanned for s in runs["chunk"].rank_stats]
    cyclic_ions = [s.ions_scanned for s in runs["cyclic"].rank_stats]
    assert np.std(chunk_ions) > np.std(cyclic_ions)
