"""Chaos suite: fault injection × supervision = bit-identical sessions.

The acceptance bar from the issue: with ``max_retries >= 1``, a
session hit by any fault class (crash / raise / hang / slow) at any
worker stage (spawn / attach / query / reply) completes every batch
bit-identical to the serial engine, in submission order, without
hanging — for sequential and pipelined submits at 2 and 3 workers.
Faults are scheduled through :mod:`repro.parallel.faults`: exact
(rank, stage, batch) coordinates, once-only across respawns via an
on-disk ledger, so a healed worker's replacement does not re-fire the
fault that killed its predecessor.

Hang cases run under a deliberately short round deadline so the
deadline-kill → respawn → re-dispatch path is exercised in seconds,
not the production timeout.
"""

import os
import time

import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.parallel import FaultInjected, FaultPlan, FaultSpec, PersistentPool, maybe_inject
from repro.parallel.faults import FAULT_PLAN_ENV
from repro.parallel.worker import resident_attach, resident_echo
from repro.search.report import read_psm_report, write_psm_report
from repro.search.serial import SerialSearchEngine
from repro.service import SearchService, ServiceConfig

# Hang faults sleep far past the round deadline; the short deadline is
# what converts them into the kill → respawn → retry path quickly.
_HANG_S = 30.0
_HANG_TIMEOUT = 6.0


def _spec(kind: str, stage: str, **kw) -> FaultSpec:
    """A fault aimed at rank 1 (batch 1 for per-batch stages)."""
    if stage in ("query", "reply"):
        kw.setdefault("batch", 1)
    if kind == "hang":
        kw.setdefault("seconds", _HANG_S)
    elif kind == "slow":
        kw.setdefault("seconds", 0.4)
    return FaultSpec(kind=kind, stage=stage, rank=1, **kw)


def _config(kind: str, n_workers: int = 2, **kw) -> ServiceConfig:
    kw.setdefault("max_retries", 2)
    kw.setdefault("retry_backoff_s", 0.01)
    if kind == "hang":
        kw.setdefault("timeout", _HANG_TIMEOUT)
    return ServiceConfig(n_workers=n_workers, **kw)


def assert_same_results(serial, service_results):
    assert len(serial.spectra) == len(service_results.spectra)
    for a, b in zip(serial.spectra, service_results.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def batches(tiny_spectra):
    return [list(tiny_spectra), list(tiny_spectra[:7]), list(tiny_spectra[5:])]


@pytest.fixture(scope="module")
def serial_refs(tiny_db, batches):
    engine = SerialSearchEngine(tiny_db)
    return [engine.run(batch) for batch in batches]


def _run_session(tiny_db, batches, config, pipelined):
    with SearchService(tiny_db, config) as service:
        if pipelined:
            outcomes = list(service.stream(iter(batches)))
        else:
            outcomes = [service.submit(batch) for batch in batches]
    return outcomes


# -- the full fault-class × stage sweep (sequential, 2 workers) ---------

_SWEEP = [
    (kind, stage)
    for kind in ("crash", "raise", "hang", "slow")
    for stage in ("spawn", "attach", "query", "reply")
]


@pytest.mark.parametrize(
    "kind,stage", _SWEEP, ids=[f"{k}-{s}" for k, s in _SWEEP]
)
def test_every_fault_class_at_every_stage_heals(
    tiny_db, batches, serial_refs, kind, stage
):
    """One fault at (rank 1, ``stage``): the session must still return
    every batch bit-identical to the serial engine, in order."""
    plan = FaultPlan.scoped(_spec(kind, stage))
    config = _config(kind, fault_plan=plan)
    outcomes = _run_session(tiny_db, batches, config, pipelined=False)
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
        assert not results.is_degraded
    if kind in ("crash", "raise", "hang") and stage in ("query", "reply"):
        # The faulted batch was retried; fault-free batches were not.
        assert outcomes[1][1].retries >= 1
        assert outcomes[0][1].retries == 0
        assert outcomes[2][1].retries == 0


# -- sequential + pipelined at {2,3} workers (representative faults) ----

_MATRIX_FAULTS = [("crash", "query"), ("hang", "query")]


@pytest.mark.parametrize("n_workers", [2, 3], ids=["w2", "w3"])
@pytest.mark.parametrize("pipelined", [False, True], ids=["seq", "pipe"])
@pytest.mark.parametrize(
    "kind,stage", _MATRIX_FAULTS, ids=[f"{k}-{s}" for k, s in _MATRIX_FAULTS]
)
def test_fault_matrix_modes_and_worker_counts(
    tiny_db, batches, serial_refs, kind, stage, pipelined, n_workers
):
    """Representative faults across {sequential, pipelined} × {2,3}
    workers: supervision is mode- and width-independent."""
    plan = FaultPlan.scoped(_spec(kind, stage))
    config = _config(kind, n_workers=n_workers, fault_plan=plan)
    outcomes = _run_session(tiny_db, batches, config, pipelined)
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
    assert sum(stats.retries for _, stats in outcomes) >= 1


def test_back_to_back_crashes_same_rank_consecutive_pipelined_batches(
    tiny_db, batches, serial_refs
):
    """Rank 1 crashes in batch 0 AND its respawned replacement crashes
    again in batch 1 — the pipelined session must heal both without
    leaking pipe state or desyncing the batch_index echo."""
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=0),
        FaultSpec(kind="crash", stage="query", rank=1, batch=1, exit_code=23),
    )
    config = _config("crash", fault_plan=plan)
    outcomes = _run_session(tiny_db, batches, config, pipelined=True)
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
    assert outcomes[0][1].retries >= 1
    assert outcomes[1][1].retries >= 1
    assert outcomes[0][1].respawned + outcomes[1][1].respawned >= 2


# -- graceful degradation ----------------------------------------------


def test_degraded_ok_returns_partial_results_with_exact_mask(
    tiny_db, batches, serial_refs, tmp_path
):
    """A persistent fault (fires on every retry) with ``degraded_ok``:
    the faulted batch returns partial results carrying the exact
    coverage mask; the other batches stay full and bit-identical."""
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=1, once=False)
    )
    config = _config(
        "crash", max_retries=1, degraded_ok=True, fault_plan=plan
    )
    outcomes = _run_session(tiny_db, batches, config, pipelined=False)
    assert_same_results(serial_refs[0], outcomes[0][0])
    assert_same_results(serial_refs[2], outcomes[2][0])
    degraded, stats = outcomes[1]
    assert degraded.is_degraded
    assert degraded.degraded_ranks == (1,)
    assert stats.degraded_ranks == (1,)
    assert stats.retries == 1
    # Partial coverage is real: rank 1's partition contributed nothing.
    assert degraded.total_cpsms < serial_refs[1].total_cpsms
    # ... and explicit on disk: the report is annotated and readable.
    report = tmp_path / "degraded.tsv"
    write_psm_report(report, degraded, tiny_db.entries)
    assert report.read_text().startswith("# degraded_ranks: 1\n")
    assert len(read_psm_report(report)) == sum(
        len(s.psms) for s in degraded.spectra
    )


def test_default_is_fail_loud_with_structured_diagnosis(tiny_db, batches):
    """Without ``degraded_ok`` the same persistent fault fails the
    batch with a structured WorkerError; the session survives it."""
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=0,
                  once=False, exit_code=23)
    )
    config = _config("crash", max_retries=1, fault_plan=plan)
    with SearchService(tiny_db, config) as service:
        with pytest.raises(WorkerError) as excinfo:
            service.submit(batches[0])
        exc = excinfo.value
        assert exc.rank == 1
        assert exc.exit_code == 23
        assert exc.retries == 1
        assert "rank 1" in exc.brief and "exit code 23" in exc.brief
        # Batch 1 is fault-free (spec targets batch 0 only by index,
        # but once=False re-fires per attempt of batch 0 alone).
        results, stats = service.submit(batches[1])
        assert stats.respawned >= 1


# -- straggler hedging -------------------------------------------------


def test_hedge_beats_straggler_and_promotes_winner(
    tiny_db, batches, serial_refs
):
    """A once-only slow fault stalls rank 1; the hedge's fresh worker
    skips the already-claimed fault, answers first, and is promoted
    into the resident pool — results stay bit-identical."""
    plan = FaultPlan.scoped(
        FaultSpec(kind="slow", stage="query", rank=1, batch=1, seconds=8.0)
    )
    config = _config(
        "slow", max_retries=0, hedge_after=0.5, fault_plan=plan
    )
    outcomes = _run_session(tiny_db, batches, config, pipelined=False)
    for (results, stats), reference in zip(outcomes, serial_refs):
        assert_same_results(reference, results)
    assert outcomes[1][1].hedged >= 1
    assert outcomes[1][1].respawned >= 1  # promotion replaces the loser
    # The hedge resolved the round long before the 8 s straggle.
    assert outcomes[1][1].total_s < 8.0


# -- pool-level fast paths ---------------------------------------------


def test_pool_crash_heals_with_retry_accounting():
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=0)
    )
    pool = PersistentPool(2, timeout=60.0, max_retries=1,
                          backoff_s=0.01, fault_plan=plan)
    try:
        pool.attach(resident_attach, ["a", "b"])
        res = pool.run_batch(resident_echo, ["x", "y"])
        assert [r[:3] for r in res.results] == [
            (0, "a", "x"), (1, "b", "y"),
        ]
        assert res.retries == 1
        assert res.respawned == 1
        assert res.failed_ranks == ()
    finally:
        pool.close()


def test_pool_degraded_round_masks_failed_rank():
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=0, once=False)
    )
    pool = PersistentPool(2, timeout=60.0, max_retries=1, backoff_s=0.01,
                          degraded_ok=True, fault_plan=plan)
    try:
        pool.attach(resident_attach, ["a", "b"])
        res = pool.run_batch(resident_echo, ["x", "y"])
        assert res.failed_ranks == (1,)
        assert res.results[1] is None
        assert res.results[0][:3] == (0, "a", "x")
    finally:
        pool.close()


# -- the fault plan itself ---------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="explode", stage="query")
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="crash", stage="nowhere")
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="slow", stage="query", seconds=-1.0)


def test_fault_plan_json_roundtrip_and_env(monkeypatch, tmp_path):
    plan = FaultPlan(
        specs=(
            FaultSpec(kind="crash", stage="query", rank=1, batch=2),
            FaultSpec(kind="slow", stage="attach", seconds=0.5, once=False),
        ),
        ledger_dir=str(tmp_path),
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.specs == plan.specs
    assert clone.ledger_dir == plan.ledger_dir
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_env_value())
    from_env = FaultPlan.from_env()
    assert from_env is not None and from_env.specs == plan.specs
    monkeypatch.delenv(FAULT_PLAN_ENV)
    assert FaultPlan.from_env() is None


def test_once_only_ledger_claims_across_plan_copies(tmp_path):
    """The on-disk ledger is what makes ``once`` machine-wide: a
    *different* deserialized copy of the plan (= a respawned worker)
    must see the fault as already fired."""
    plan = FaultPlan(
        specs=(FaultSpec(kind="raise", stage="query", rank=0, batch=0),),
        ledger_dir=str(tmp_path),
    )
    with pytest.raises(FaultInjected):
        maybe_inject(plan, 0, "query", 0)
    clone = FaultPlan.from_json(plan.to_json())  # fresh object, same ledger
    maybe_inject(clone, 0, "query", 0)  # already claimed: no-op
    assert maybe_inject(None, 0, "query", 0) is None  # no plan: no-op


def test_slow_fault_delays_without_failing():
    plan = FaultPlan.scoped(
        FaultSpec(kind="slow", stage="query", rank=0, batch=0, seconds=0.3)
    )
    pool = PersistentPool(2, timeout=60.0, fault_plan=plan)
    try:
        pool.attach(resident_attach, ["a", "b"])
        start = time.monotonic()
        res = pool.run_batch(resident_echo, ["x", "y"])
        assert time.monotonic() - start >= 0.3
        assert res.retries == 0 and res.respawned == 0
        assert [r[0] for r in res.results] == [0, 1]
    finally:
        pool.close()
