"""Tests for the TSV PSM report."""

import io

import pytest

from repro.chem.peptide import Peptide
from repro.errors import FormatError
from repro.search.psm import PSM, RankStats, SearchResults, SpectrumResult
from repro.search.report import read_psm_report, write_psm_report

PEPTIDES = [Peptide("AAAGGGK"), Peptide("MMK", ((0, 15.995),))]


def results_fixture():
    spectra = [
        SpectrumResult(
            scan_id=1,
            n_candidates=12,
            psms=[
                PSM(scan_id=1, entry_id=0, score=9.5, shared_peaks=6),
                PSM(scan_id=1, entry_id=1, score=3.25, shared_peaks=4),
            ],
        ),
        SpectrumResult(scan_id=2, n_candidates=0, psms=[]),
    ]
    return SearchResults(
        spectra=spectra,
        rank_stats=[RankStats(rank=0)],
        phase_times={},
        policy_name="cyclic",
        n_ranks=1,
    )


def test_write_counts_rows():
    buf = io.StringIO()
    assert write_psm_report(buf, results_fixture(), PEPTIDES) == 2


def test_roundtrip():
    buf = io.StringIO()
    write_psm_report(buf, results_fixture(), PEPTIDES)
    buf.seek(0)
    psms = read_psm_report(buf)
    assert len(psms) == 2
    assert psms[0] == PSM(scan_id=1, entry_id=0, score=9.5, shared_peaks=6)
    assert psms[1].entry_id == 1


def test_peptide_annotation_in_file():
    buf = io.StringIO()
    write_psm_report(buf, results_fixture(), PEPTIDES)
    text = buf.getvalue()
    assert "AAAGGGK" in text
    assert "M[+15.995]MK" in text


def test_rank_column():
    buf = io.StringIO()
    write_psm_report(buf, results_fixture(), PEPTIDES)
    lines = buf.getvalue().splitlines()
    assert lines[1].split("\t")[1] == "1"
    assert lines[2].split("\t")[1] == "2"


def test_file_roundtrip(tmp_path):
    path = tmp_path / "psms.tsv"
    write_psm_report(path, results_fixture(), PEPTIDES)
    assert len(read_psm_report(path)) == 2


def test_bad_header_rejected():
    with pytest.raises(FormatError, match="header"):
        read_psm_report(io.StringIO("wrong\theader\n"))


def test_bad_field_count_rejected():
    buf = io.StringIO()
    write_psm_report(buf, results_fixture(), PEPTIDES)
    text = buf.getvalue() + "1\t2\t3\n"
    with pytest.raises(FormatError, match="fields"):
        read_psm_report(io.StringIO(text))


def test_malformed_number_rejected():
    buf = io.StringIO()
    write_psm_report(buf, results_fixture(), PEPTIDES)
    text = buf.getvalue().replace("9.5", "not-a-number")
    with pytest.raises(FormatError, match="malformed"):
        read_psm_report(io.StringIO(text))


def test_blank_lines_skipped():
    buf = io.StringIO()
    write_psm_report(buf, results_fixture(), PEPTIDES)
    text = buf.getvalue() + "\n\n"
    assert len(read_psm_report(io.StringIO(text))) == 2
