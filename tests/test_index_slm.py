"""Tests for the SLM fragment-ion index."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.spectra.model import Spectrum

PEPTIDES = [
    Peptide("AAAGGGK"),
    Peptide("CCDDEEK"),
    Peptide("MMNNQQR"),
    Peptide("WWYYFFK"),
    Peptide("AAAGGGR"),
]

SETTINGS = SLMIndexSettings(shared_peak_threshold=2)


def spectrum_of(peptide, scan=1, charge=2):
    mzs = fragment_mzs(peptide)
    from repro.constants import PROTON

    return Spectrum(
        scan_id=scan,
        precursor_mz=(peptide.mass + charge * PROTON) / charge,
        charge=charge,
        mzs=mzs,
        intensities=np.ones_like(mzs),
    )


def test_index_sizes():
    idx = SLMIndex(PEPTIDES, SETTINGS)
    assert len(idx) == 5
    assert idx.n_ions == sum(2 * (p.length - 1) for p in PEPTIDES)


def test_empty_index():
    idx = SLMIndex([], SETTINGS)
    assert len(idx) == 0
    assert idx.n_ions == 0
    res = idx.filter(spectrum_of(PEPTIDES[0]))
    assert res.candidates.size == 0


def test_own_spectrum_is_top_candidate():
    idx = SLMIndex(PEPTIDES, SETTINGS)
    res = idx.filter(spectrum_of(PEPTIDES[2]))
    assert 2 in res.candidates
    best = res.candidates[np.argmax(res.shared_peaks)]
    assert best == 2


def test_exact_spectrum_matches_all_ions():
    idx = SLMIndex(PEPTIDES, SETTINGS)
    res = idx.filter(spectrum_of(PEPTIDES[0]))
    i = list(res.candidates).index(0)
    assert res.shared_peaks[i] >= 2 * (PEPTIDES[0].length - 1)


def test_threshold_filters():
    strict = SLMIndexSettings(shared_peak_threshold=1000)
    idx = SLMIndex(PEPTIDES, strict)
    res = idx.filter(spectrum_of(PEPTIDES[0]))
    assert res.candidates.size == 0


def test_precursor_window_filters():
    windowed = SLMIndexSettings(shared_peak_threshold=2, precursor_tolerance=0.1)
    idx = SLMIndex(PEPTIDES, windowed)
    res = idx.filter(spectrum_of(PEPTIDES[0]))
    masses = idx.masses[res.candidates]
    assert np.all(np.abs(masses - PEPTIDES[0].mass) <= 0.1 + 1e-3)


def test_open_search_flag():
    assert SLMIndexSettings().is_open_search
    assert SLMIndexSettings(precursor_tolerance=float("inf")).is_open_search
    assert not SLMIndexSettings(precursor_tolerance=5.0).is_open_search


def test_work_counters_positive():
    idx = SLMIndex(PEPTIDES, SETTINGS)
    res = idx.filter(spectrum_of(PEPTIDES[1]))
    assert res.buckets_scanned > 0
    assert res.ions_scanned > 0


def test_empty_spectrum_no_work():
    idx = SLMIndex(PEPTIDES, SETTINGS)
    s = Spectrum(1, 500.0, 2, np.array([]), np.array([]))
    res = idx.filter(s)
    assert res.candidates.size == 0
    assert res.ions_scanned == 0


def test_precomputed_fragments_equivalent():
    frags = [fragment_mzs(p) for p in PEPTIDES]
    a = SLMIndex(PEPTIDES, SETTINGS)
    b = SLMIndex(PEPTIDES, SETTINGS, fragments=frags)
    assert np.array_equal(a.ion_parents, b.ion_parents)
    assert np.array_equal(a.bucket_offsets, b.bucket_offsets)


def test_mismatched_fragments_rejected():
    with pytest.raises(ConfigurationError, match="fragment arrays"):
        SLMIndex(PEPTIDES, SETTINGS, fragments=[np.array([1.0])])


def test_invalid_settings_rejected():
    with pytest.raises(ConfigurationError):
        SLMIndexSettings(resolution=0.0)
    with pytest.raises(ConfigurationError):
        SLMIndexSettings(fragment_tolerance=-1.0)
    with pytest.raises(ConfigurationError):
        SLMIndexSettings(shared_peak_threshold=0)
    with pytest.raises(ConfigurationError):
        SLMIndexSettings(precursor_tolerance=-0.1)


def test_ions_of():
    idx = SLMIndex(PEPTIDES, SETTINGS)
    assert idx.ions_of(0) == 2 * (PEPTIDES[0].length - 1)


def test_partition_union_equals_whole():
    """Filtering partial indexes and merging = filtering the full index.

    This is the core invariant that makes distributed search correct.
    """
    full = SLMIndex(PEPTIDES, SETTINGS)
    part_a = SLMIndex(PEPTIDES[:2], SETTINGS)
    part_b = SLMIndex(PEPTIDES[2:], SETTINGS)
    q = spectrum_of(PEPTIDES[4])
    res_full = full.filter(q)
    res_a, res_b = part_a.filter(q), part_b.filter(q)
    merged = {}
    for cid, c in zip(res_a.candidates, res_a.shared_peaks):
        merged[int(cid)] = int(c)
    for cid, c in zip(res_b.candidates, res_b.shared_peaks):
        merged[int(cid) + 2] = int(c)
    expected = {
        int(cid): int(c)
        for cid, c in zip(res_full.candidates, res_full.shared_peaks)
    }
    assert merged == expected


@hsettings(max_examples=15, deadline=None)
@given(st.data())
def test_filter_matches_bruteforce_property(data):
    """Vectorized filtration == quadratic reference on random inputs."""
    seqs = data.draw(
        st.lists(
            st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=3, max_size=12),
            min_size=1,
            max_size=8,
        )
    )
    peptides = [Peptide(s) for s in seqs]
    idx = SLMIndex(peptides, SLMIndexSettings(shared_peak_threshold=1))
    target = data.draw(st.integers(min_value=0, max_value=len(peptides) - 1))
    q = spectrum_of(peptides[target])
    fast = idx.filter(q)
    slow = idx.filter_bruteforce(q)
    assert np.array_equal(fast.candidates, slow.candidates)
    assert np.array_equal(fast.shared_peaks, slow.shared_peaks)
