"""Tests for target-decoy FDR estimation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.search.fdr import (
    combined_target_decoy,
    estimate_fdr,
    make_decoy_peptides,
    qvalues,
)

TARGETS = [Peptide("ACDEFK", protein_id=0), Peptide("GHILMR", protein_id=1)]


def test_decoy_is_pseudo_reverse():
    decoys = make_decoy_peptides(TARGETS)
    assert decoys[0].sequence == "FEDCAK"  # prefix reversed, K kept
    assert decoys[1].sequence == "MLIHGR"


def test_decoy_preserves_mass_and_length():
    for t, d in zip(TARGETS, make_decoy_peptides(TARGETS)):
        assert d.length == t.length
        assert np.isclose(d.mass, t.mass)


def test_decoy_protein_id_negated():
    decoys = make_decoy_peptides(TARGETS)
    assert decoys[0].protein_id == -1
    assert decoys[1].protein_id == -2


def test_single_residue_decoy():
    assert make_decoy_peptides([Peptide("K")])[0].sequence == "K"


def test_combined_database_interleaves():
    db, is_decoy = combined_target_decoy(TARGETS, max_variants_per_peptide=0)
    assert db.n_bases == 4
    assert db.base_peptides[0].sequence == "ACDEFK"
    assert db.base_peptides[1].sequence == "FEDCAK"
    assert is_decoy.tolist() == [False, True, False, True]


def test_combined_database_flags_variants():
    db, is_decoy = combined_target_decoy(
        [Peptide("MMKA")], max_variants_per_peptide=2
    )
    # target MMKA (+variants) then decoy KMMA (+variants); flags align
    # with the decoy's entry range.
    offsets = db.entry_offsets
    assert not is_decoy[offsets[0] : offsets[1]].any()
    assert is_decoy[offsets[1] : offsets[2]].all()


def test_combined_empty_rejected():
    with pytest.raises(ConfigurationError):
        combined_target_decoy([])


def test_estimate_fdr_basic():
    scores = np.array([10.0, 9.0, 8.0, 7.0])
    is_decoy = np.array([False, False, True, False])
    assert estimate_fdr(scores, is_decoy, threshold=9.5) == 0.0
    assert estimate_fdr(scores, is_decoy, threshold=7.5) == pytest.approx(1 / 2)
    assert estimate_fdr(scores, is_decoy, threshold=0.0) == pytest.approx(1 / 3)


def test_estimate_fdr_all_decoys():
    assert estimate_fdr(np.array([5.0]), np.array([True]), 0.0) == 1.0


def test_estimate_fdr_shape_mismatch():
    with pytest.raises(ConfigurationError):
        estimate_fdr(np.ones(2), np.array([True]), 0.0)


def test_qvalues_monotone_in_rank():
    scores = np.array([10.0, 9.0, 8.0, 7.0, 6.0])
    is_decoy = np.array([False, True, False, False, True])
    q = qvalues(scores, is_decoy)
    order = np.argsort(-scores)
    assert np.all(np.diff(q[order]) >= 0)


def test_qvalues_perfect_separation():
    scores = np.array([10.0, 9.0, 1.0, 0.5])
    is_decoy = np.array([False, False, True, True])
    q = qvalues(scores, is_decoy)
    assert q[0] == 0.0 and q[1] == 0.0


def test_qvalues_empty():
    assert qvalues(np.array([]), np.array([], dtype=bool)).size == 0


def test_qvalue_is_min_fdr_over_thresholds():
    rng = np.random.default_rng(5)
    scores = rng.uniform(0, 10, size=40)
    is_decoy = rng.random(40) < 0.5
    q = qvalues(scores, is_decoy)
    for i in range(40):
        fdrs = [
            estimate_fdr(scores, is_decoy, threshold=t)
            for t in sorted(set(scores[scores <= scores[i]]))
        ]
        assert q[i] <= min(fdrs) + 1e-12


@given(st.lists(st.tuples(st.floats(0, 100), st.booleans()), min_size=1, max_size=60))
def test_qvalues_bounded_property(pairs):
    scores = np.array([p[0] for p in pairs])
    is_decoy = np.array([p[1] for p in pairs])
    q = qvalues(scores, is_decoy)
    assert np.all(q >= 0)
    assert np.all(q <= len(pairs))  # ratio bounded by n_decoys/1


def test_end_to_end_search_fdr(tiny_spectra):
    """Search a target+decoy database: true targets dominate the top
    and decoy-based q-values separate them."""
    from repro.db.proteome import ProteomeConfig, generate_proteome
    from repro.db.digest import digest_proteome
    from repro.db.dedup import deduplicate_peptides
    from repro.search.serial import SerialSearchEngine
    from repro.spectra.synthetic import SyntheticRunConfig, generate_run

    proteome = generate_proteome(ProteomeConfig(n_families=2, seed=77))
    targets = deduplicate_peptides(digest_proteome(proteome.records))
    db, is_decoy = combined_target_decoy(targets, max_variants_per_peptide=2)
    # Queries generated only from target entries.
    target_ids = np.flatnonzero(~is_decoy)
    spectra = generate_run(
        [db.entries[i] for i in target_ids],
        SyntheticRunConfig(n_spectra=15, seed=9, dropout=0.05),
    )
    results = SerialSearchEngine(db).run(spectra)
    best = [sr.psms[0] for sr in results.spectra if sr.psms]
    scores = np.array([p.score for p in best])
    decoy_flags = np.array([bool(is_decoy[p.entry_id]) for p in best])
    # Top hits are overwhelmingly targets.
    assert decoy_flags.mean() < 0.2
    q = qvalues(scores, decoy_flags)
    # The best-scoring hits achieve low q-values.
    assert q[np.argmax(scores)] <= 0.1
