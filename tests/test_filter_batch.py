"""Equivalence suite for the cross-spectrum batched filtration kernel.

PR 2 replaced ``SLMIndex.filter_many``'s per-spectrum loop with one
flattened gather + segmented bincount over a whole batch of spectra,
made ``FragmentArena.take`` derive rank sort orders from the master
cache, and fixed the precursor-window dtype inconsistency between flat
and chunked filtration.  Everything here pins those changes to the
per-spectrum reference paths bit-for-bit: candidates, shared peaks,
and both work counters, across empty spectra, zero-candidate spectra,
windowed + open search, chunked indexes, and tiny batch-key budgets
that force multi-batch execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.chem.fragments import fragment_mzs
from repro.chem.peptide import Peptide
from repro.constants import PROTON
from repro.errors import ConfigurationError
from repro.index.arena import FragmentArena, Workspace, concat_ranges
from repro.index.chunks import ChunkedIndex, ChunkingConfig
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.search.database import IndexedDatabase
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.scoring import score_many
from repro.search.serial import SerialSearchEngine
from repro.spectra.model import Spectrum
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

PEPTIDES = [
    Peptide("AAAGGGK"),
    Peptide("A"),  # zero fragments
    Peptide("CCDDEEK"),
    Peptide("MMNNQQRK"),
    Peptide("WWYYFFK"),
    Peptide("GGHHIIKK"),
    Peptide("LLPPSSTK"),
    Peptide("VVMMAACR"),
]


def spectrum_of(peptide, scan=1, charge=2):
    mzs = fragment_mzs(peptide)
    return Spectrum(
        scan_id=scan,
        precursor_mz=(peptide.mass + charge * PROTON) / charge,
        charge=charge,
        mzs=mzs,
        intensities=np.ones_like(mzs),
    )


def mixed_spectra():
    """Real hits, an empty spectrum, and out-of-range (zero-candidate) peaks."""
    spectra = [
        spectrum_of(p, scan=i) for i, p in enumerate(PEPTIDES) if p.length > 1
    ]
    spectra.append(Spectrum(90, 500.0, 2, np.array([]), np.array([])))
    far = np.array([9000.0, 9500.0, 9900.0])
    spectra.append(Spectrum(91, 700.0, 2, far, np.ones_like(far)))
    return spectra


def assert_results_equal(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.candidates.dtype == e.candidates.dtype
        assert np.array_equal(g.candidates, e.candidates)
        assert np.array_equal(g.shared_peaks, e.shared_peaks)
        assert g.buckets_scanned == e.buckets_scanned
        assert g.ions_scanned == e.ions_scanned


# -- SLMIndex batched kernel -------------------------------------------


@pytest.mark.parametrize("precursor_tolerance", [None, 2.0, 0.0])
@pytest.mark.parametrize("max_batch_keys", [1, 37, 1 << 22])
def test_filter_many_bit_identical_to_filter(precursor_tolerance, max_batch_keys):
    settings = SLMIndexSettings(
        shared_peak_threshold=1, precursor_tolerance=precursor_tolerance
    )
    idx = SLMIndex(PEPTIDES, settings)
    spectra = mixed_spectra()
    batched = idx.filter_many(spectra, max_batch_keys=max_batch_keys)
    assert_results_equal(batched, [idx.filter(s) for s in spectra])


def test_filter_many_high_threshold_zero_candidates():
    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=10_000))
    spectra = mixed_spectra()
    batched = idx.filter_many(spectra)
    for got, s in zip(batched, spectra):
        one = idx.filter(s)
        assert got.candidates.size == one.candidates.size == 0
        assert got.ions_scanned == one.ions_scanned
        assert got.buckets_scanned == one.buckets_scanned


def test_filter_many_empty_inputs_and_validation():
    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=1))
    assert idx.filter_many([]) == []
    empty_idx = SLMIndex([], SLMIndexSettings(shared_peak_threshold=1))
    res = empty_idx.filter_many(mixed_spectra())
    assert all(r.candidates.size == 0 and r.ions_scanned == 0 for r in res)
    with pytest.raises(ConfigurationError):
        idx.filter_many(mixed_spectra(), max_batch_keys=0)


def test_filter_many_ion_budget_split_bit_identical(monkeypatch):
    """A tiny gather budget forces recursive batch splitting; results
    must not change (each spectrum depends only on its own slice)."""
    import repro.index.slm as slm_mod

    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=1))
    spectra = mixed_spectra()
    expected = [idx.filter(s) for s in spectra]
    with monkeypatch.context() as m:
        m.setattr(slm_mod, "FILTER_BATCH_ION_BUDGET", 8)
        assert_results_equal(idx.filter_many(spectra), expected)


def test_filter_many_private_workspace_matches_default():
    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=1))
    spectra = mixed_spectra()
    ws = Workspace()
    assert_results_equal(
        idx.filter_many(spectra, workspace=ws), idx.filter_many(spectra)
    )


def test_filter_many_bit_identical_on_synthetic_run():
    """A realistic database + synthetic run, windowed and open."""
    db = IndexedDatabase.from_peptides(
        [
            Peptide(s)
            for s in (
                "AAAGGGKR", "CCDDEEKK", "MMNNQQRL", "WWYYFFKA", "AAAGGGRV",
                "LLPPSSTK", "GGHHIIKK", "VVMMAACR", "TTSSPPLK", "EEDDCCKR",
            )
        ],
        max_variants_per_peptide=3,
    )
    spectra = generate_run(db.entries, SyntheticRunConfig(n_spectra=10, seed=3))
    for ptol in (None, 1.5):
        settings = SLMIndexSettings(
            shared_peak_threshold=2, precursor_tolerance=ptol
        )
        idx = SLMIndex(
            db.entries, settings, arena=db.arena_for(settings.fragmentation)
        )
        for keys in (len(db.entries) * 3, 1 << 22):
            batched = idx.filter_many(spectra, max_batch_keys=keys)
            assert_results_equal(batched, [idx.filter(s) for s in spectra])


# -- chunked batched path ----------------------------------------------


@pytest.mark.parametrize("precursor_tolerance", [None, 1.0])
def test_chunked_filter_many_matches_per_spectrum(precursor_tolerance):
    settings = SLMIndexSettings(
        shared_peak_threshold=1, precursor_tolerance=precursor_tolerance
    )
    ci = ChunkedIndex(PEPTIDES, settings, ChunkingConfig(max_peptides_per_chunk=3))
    spectra = mixed_spectra()
    batched = ci.filter_many(spectra)
    assert_results_equal(batched, [ci.filter(s) for s in spectra])
    # Tiny key budget exercises multi-batch execution inside each chunk.
    assert_results_equal(ci.filter_many(spectra, max_batch_keys=1), batched)


def test_chunked_filter_many_matches_flat_index():
    settings = SLMIndexSettings(shared_peak_threshold=1, precursor_tolerance=2.0)
    ci = ChunkedIndex(PEPTIDES, settings, ChunkingConfig(max_peptides_per_chunk=2))
    flat = SLMIndex(PEPTIDES, settings)
    for s, res in zip(mixed_spectra(), ci.filter_many(mixed_spectra())):
        fres = flat.filter(s)
        assert np.array_equal(np.sort(res.candidates), fres.candidates)
        got = dict(zip(res.candidates.tolist(), res.shared_peaks.tolist()))
        want = dict(zip(fres.candidates.tolist(), fres.shared_peaks.tolist()))
        assert got == want


# -- precursor-window boundary regression ------------------------------


def test_precursor_boundary_chunked_agrees_with_flat():
    """A mass exactly at the float32-rounded window boundary must be
    kept (or dropped) identically by flat and chunked filtration.

    Before the fix, ``SLMIndex.filter`` masked with float32 masses
    while ``ChunkedIndex.chunks_for`` pruned with float64 exact masses,
    so a peptide whose float32 mass sits exactly on the window edge
    while its float64 mass lies just outside was found by the flat
    index but pruned away by the chunked one.
    """
    # A peptide whose float32 mass rounds *down* from the float64 mass.
    target = next(
        p for p in PEPTIDES if p.length > 1 and float(np.float32(p.mass)) < p.mass
    )
    m32 = float(np.float32(target.mass))
    mzs = fragment_mzs(target)
    q = Spectrum(
        scan_id=1,
        precursor_mz=m32 - 0.5 + PROTON,
        charge=1,
        mzs=mzs,
        intensities=np.ones_like(mzs),
    )
    nm = q.neutral_mass
    # Tolerance that puts the float32-rounded mass exactly on the
    # window boundary, with the exact float64 mass strictly outside:
    # the scenario where the two code paths used to disagree.
    tol = float(np.abs(np.float64(m32) - nm))
    assert target.mass - nm > tol

    settings = SLMIndexSettings(shared_peak_threshold=1, precursor_tolerance=tol)
    flat = SLMIndex(PEPTIDES, settings)
    ci = ChunkedIndex(PEPTIDES, settings, ChunkingConfig(max_peptides_per_chunk=1))
    fres = flat.filter(q)
    cres = ci.filter(q)
    # The boundary mass is inside the window (<=), so the target must
    # survive filtration on BOTH paths.
    tid = PEPTIDES.index(target)
    assert tid in fres.candidates.tolist()
    assert tid in cres.candidates.tolist()
    assert np.array_equal(np.sort(cres.candidates), fres.candidates)
    # The batched kernels agree too.
    assert_results_equal(flat.filter_many([q]), [fres])
    assert_results_equal(ci.filter_many([q]), [cres])


def test_bruteforce_uses_same_window_predicate():
    target = next(p for p in PEPTIDES if p.length > 1)
    q = spectrum_of(target)
    nm = q.neutral_mass
    tol = float(np.abs(np.float64(np.float32(target.mass)) - nm))
    settings = SLMIndexSettings(shared_peak_threshold=1, precursor_tolerance=tol)
    idx = SLMIndex(PEPTIDES, settings)
    fast, slow = idx.filter(q), idx.filter_bruteforce(q)
    assert np.array_equal(fast.candidates, slow.candidates)
    assert np.array_equal(fast.shared_peaks, slow.shared_peaks)


# -- concat_ranges property + workspace aliasing -----------------------


@hsettings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 15)), min_size=0, max_size=10
    ),
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 15)), min_size=0, max_size=10
    ),
)
def test_concat_ranges_workspace_reuse_stays_correct(pairs_a, pairs_b):
    """Back-to-back workspace calls (the batched kernel's pattern) must
    each be correct even though the second reuses/aliases the first's
    scratch buffers."""

    def naive(pairs):
        return (
            np.concatenate(
                [np.arange(a, a + w, dtype=np.int64) for a, w in pairs]
            )
            if pairs
            else np.empty(0, dtype=np.int64)
        )

    def args(pairs):
        starts = np.array([a for a, _ in pairs], dtype=np.int64)
        return starts, starts + np.array([w for _, w in pairs], dtype=np.int64)

    ws = Workspace()
    got_a = concat_ranges(*args(pairs_a), workspace=ws, name="t")
    copy_a = got_a.copy()  # consume before the next call clobbers it
    got_b = concat_ranges(*args(pairs_b), workspace=ws, name="t")
    assert np.array_equal(copy_a, naive(pairs_a))
    assert np.array_equal(got_b, naive(pairs_b))


def test_workspace_iota_grows_and_stays_ascending():
    ws = Workspace()
    small = ws.iota(5, np.int64)
    assert small.tolist() == [0, 1, 2, 3, 4]
    big = ws.iota(5000, np.int64)
    assert big[0] == 0 and big[-1] == 4999
    assert np.array_equal(big, np.arange(5000))
    # Growth must not invalidate prefix values (the cached arange is
    # replaced by a longer arange, never mutated in place).
    again = ws.iota(7, np.int64)
    assert again.tolist() == [0, 1, 2, 3, 4, 5, 6]
    assert ws.iota(7, np.int32).dtype == np.int32


def test_concat_ranges_workspace_views_alias_buffer():
    ws = Workspace()
    starts = np.array([3, 10], dtype=np.int64)
    stops = np.array([6, 12], dtype=np.int64)
    first = concat_ranges(starts, stops, workspace=ws, name="alias")
    second = concat_ranges(starts, stops, workspace=ws, name="alias")
    # Same request size -> the scratch view aliases the same buffer.
    assert first.base is second.base
    assert np.array_equal(second, np.array([3, 4, 5, 10, 11]))


# -- derived sub-arena sort orders -------------------------------------


def test_take_derives_order_monotone_manifest_exact():
    arena = FragmentArena.from_peptides(PEPTIDES)
    r = 0.01
    arena.buckets_for(r)
    arena.sort_order_for(r)
    ids = np.array([0, 2, 5, 7], dtype=np.int64)  # ascending
    sub = arena.take(ids)
    assert r in sub._order_cache
    derived = sub._order_cache[r]
    fresh = np.argsort(sub.buckets_for(r), kind="stable")
    assert np.array_equal(derived, fresh)


def test_take_derives_order_shuffled_manifest_valid():
    arena = FragmentArena.from_peptides(PEPTIDES)
    r = 0.01
    arena.sort_order_for(r)
    ids = np.array([6, 0, 4, 2], dtype=np.int64)  # non-monotone
    sub = arena.take(ids)
    derived = sub._order_cache[r]
    buckets = sub.buckets_for(r)
    # A permutation that sorts the sub buckets bucket-major.
    assert np.array_equal(np.sort(derived), np.arange(sub.n_ions))
    assert np.all(np.diff(buckets[derived]) >= 0)


def test_take_skips_order_derivation_for_duplicate_ids():
    arena = FragmentArena.from_peptides(PEPTIDES)
    arena.sort_order_for(0.01)
    sub = arena.take(np.array([2, 2, 0], dtype=np.int64))
    assert 0.01 not in sub._order_cache
    # Still fully functional: the order is argsorted on demand.
    assert np.all(np.diff(sub.buckets_for(0.01)[sub.sort_order_for(0.01)]) >= 0)


def test_sub_arena_index_build_avoids_argsort(monkeypatch):
    settings = SLMIndexSettings(shared_peak_threshold=1)
    arena = FragmentArena.from_peptides(PEPTIDES)
    arena.buckets_for(settings.resolution)
    arena.sort_order_for(settings.resolution)
    ids = np.array([5, 1, 3, 0, 7], dtype=np.int64)  # shuffled manifest
    sub = arena.take(ids)
    sub_entries = [PEPTIDES[int(i)] for i in ids]
    with monkeypatch.context() as m:
        m.setattr(
            np,
            "argsort",
            lambda *a, **k: pytest.fail("argsort during rank partial build"),
        )
        rank_index = SLMIndex(sub_entries, settings, arena=sub)
    # Bit-identical filtration vs an index built from scratch (fresh
    # argsort) over the same entries.
    fresh_index = SLMIndex(sub_entries, settings)
    for p in sub_entries:
        if p.length < 2:
            continue
        q = spectrum_of(p)
        assert_results_equal([rank_index.filter(q)], [fresh_index.filter(q)])
    spectra = [spectrum_of(p) for p in sub_entries if p.length > 1]
    assert_results_equal(
        rank_index.filter_many(spectra), fresh_index.filter_many(spectra)
    )


def test_distributed_build_never_re_argsorts_rank_subsets(monkeypatch):
    db = IndexedDatabase.from_peptides(
        [
            Peptide(s)
            for s in (
                "AAAGGGKR", "CCDDEEKK", "MMNNQQRL", "WWYYFFKA",
                "LLPPSSTK", "GGHHIIKK", "VVMMAACR", "TTSSPPLK",
            )
        ],
        max_variants_per_peptide=2,
    )
    spectra = generate_run(db.entries, SyntheticRunConfig(n_spectra=4, seed=11))
    cfg = EngineConfig(
        n_ranks=3,
        policy="cyclic",
        index=SLMIndexSettings(shared_peak_threshold=2),
    )
    master = db.arena_for(cfg.index.fragmentation)
    calls = []
    orig = FragmentArena.sort_order_for

    def spy(self, resolution):
        calls.append((self, resolution in self._order_cache))
        return orig(self, resolution)

    with monkeypatch.context() as m:
        m.setattr(FragmentArena, "sort_order_for", spy)
        dist = DistributedSearchEngine(db, cfg).run(spectra)
    sub_calls = [hit for arena, hit in calls if arena is not master]
    assert sub_calls, "expected rank sub-arena index builds"
    assert all(sub_calls), "a rank sub-arena re-argsorted its ion subset"
    # And the run still matches the serial engine exactly.
    serial = SerialSearchEngine(db, cfg.index).run(spectra)
    for sr, dr in zip(serial.spectra, dist.spectra):
        assert [(p.entry_id, p.score) for p in sr.psms] == [
            (p.entry_id, p.score) for p in dr.psms
        ]


# -- workspace plumbing through scoring --------------------------------


def test_score_many_private_workspace_matches_default():
    arena = FragmentArena.from_peptides(PEPTIDES)
    spectra = [spectrum_of(p, scan=i) for i, p in enumerate(PEPTIDES[:3], 1)]
    cand_lists = [
        np.array([0, 2, 4]),
        np.empty(0, dtype=np.int64),
        np.array([1, 3, 5]),
    ]
    default = score_many(spectra, cand_lists, fragment_tolerance=0.05, arena=arena)
    private = score_many(
        spectra,
        cand_lists,
        fragment_tolerance=0.05,
        arena=arena,
        workspace=Workspace(),
    )
    for d, p in zip(default, private):
        assert np.array_equal(d.scores, p.scores)
        assert np.array_equal(d.n_matched, p.n_matched)


# -- serialized indexes use the batched path too -----------------------


def test_loaded_index_batched_filtration_identical(tmp_path):
    from repro.index.serialize import load_index, save_index

    settings = SLMIndexSettings(shared_peak_threshold=1, precursor_tolerance=2.0)
    idx = SLMIndex(PEPTIDES, settings)
    path = save_index(tmp_path / "idx.npz", idx)
    loaded = load_index(path)
    spectra = mixed_spectra()
    assert_results_equal(
        loaded.filter_many(spectra), [idx.filter(s) for s in spectra]
    )
