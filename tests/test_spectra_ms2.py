"""Tests for MS2 format io."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.spectra.model import Spectrum
from repro.spectra.ms2 import read_ms2, write_ms2


def spectrum(scan=1, true_peptide=None):
    return Spectrum(
        scan_id=scan,
        precursor_mz=523.77,
        charge=2,
        mzs=np.array([147.11, 204.13, 761.38]),
        intensities=np.array([0.4, 1.0, 0.7]),
        true_peptide=true_peptide,
    )


def roundtrip(spectra):
    buf = io.StringIO()
    write_ms2(buf, spectra)
    buf.seek(0)
    return list(read_ms2(buf))


def test_roundtrip_single():
    out = roundtrip([spectrum()])
    assert len(out) == 1
    s = out[0]
    assert s.scan_id == 1
    assert s.charge == 2
    assert np.isclose(s.precursor_mz, 523.77, atol=1e-4)
    assert np.allclose(s.mzs, [147.11, 204.13, 761.38], atol=1e-4)
    assert np.allclose(s.intensities, [0.4, 1.0, 0.7], atol=1e-2)


def test_roundtrip_many():
    out = roundtrip([spectrum(scan=i) for i in range(1, 6)])
    assert [s.scan_id for s in out] == [1, 2, 3, 4, 5]


def test_true_peptide_roundtrip():
    out = roundtrip([spectrum(true_peptide=42)])
    assert out[0].true_peptide == 42


def test_true_peptide_absent_is_none():
    out = roundtrip([spectrum()])
    assert out[0].true_peptide is None


def test_write_returns_count():
    buf = io.StringIO()
    assert write_ms2(buf, [spectrum(1), spectrum(2)]) == 2


def test_file_roundtrip(tmp_path):
    path = tmp_path / "run.ms2"
    write_ms2(path, [spectrum()])
    out = list(read_ms2(path))
    assert len(out) == 1


def test_header_lines_ignored():
    text = "H\tComment\tanything goes\nS\t1\t1\t500.0\nZ\t2\t999.0\n100.0 1.0\n"
    out = list(read_ms2(io.StringIO(text)))
    assert out[0].n_peaks == 1


def test_missing_z_line_rejected():
    text = "S\t1\t1\t500.0\n100.0 1.0\n"
    with pytest.raises(FormatError, match="lacks a 'Z'"):
        list(read_ms2(io.StringIO(text)))


def test_peaks_before_s_rejected():
    with pytest.raises(FormatError, match="before the first"):
        list(read_ms2(io.StringIO("100.0 1.0\n")))


def test_malformed_s_line_rejected():
    with pytest.raises(FormatError, match="malformed S line"):
        list(read_ms2(io.StringIO("S\t1\n")))


def test_malformed_peak_line_rejected():
    text = "S\t1\t1\t500.0\nZ\t2\t999.0\n100.0 1.0 3.0\n"
    with pytest.raises(FormatError, match="malformed peak"):
        list(read_ms2(io.StringIO(text)))


def test_non_numeric_peak_rejected():
    text = "S\t1\t1\t500.0\nZ\t2\t999.0\nabc def\n"
    with pytest.raises(FormatError, match="non-numeric"):
        list(read_ms2(io.StringIO(text)))


def test_empty_file_yields_nothing():
    assert list(read_ms2(io.StringIO(""))) == []


def test_ms2_z_line_mass_is_mh():
    """The Z line records the singly-protonated (M+H)+ mass."""
    buf = io.StringIO()
    s = spectrum()
    write_ms2(buf, [s])
    z_line = [l for l in buf.getvalue().splitlines() if l.startswith("Z")][0]
    mh = float(z_line.split("\t")[2])
    from repro.constants import PROTON

    assert np.isclose(mh, s.neutral_mass + PROTON, atol=1e-4)
