"""Tests for Algorithm 1 (peptide sequence grouping)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.editdist import edit_distance
from repro.core.grouping import Grouping, GroupingConfig, group_peptides, sorted_order
from repro.errors import ConfigurationError, PartitionError

SEQS = st.lists(
    st.text(alphabet="ACDEFGHIK", min_size=1, max_size=15), min_size=0, max_size=60
)


def test_empty_input():
    g = group_peptides([])
    assert g.n_groups == 0
    assert g.n_sequences == 0


def test_single_sequence():
    g = group_peptides(["PEPTIDE"])
    assert g.n_groups == 1
    assert list(g.group_sizes) == [1]


def test_sorted_order_length_then_lex():
    seqs = ["CCC", "AA", "AAAA", "AB".replace("B", "C"), "AAA"]
    order = sorted_order(seqs)
    ordered = [seqs[i] for i in order]
    assert ordered == sorted(seqs, key=lambda s: (len(s), s))


def test_similar_sequences_grouped():
    # Near-identical sequences of the same length group together
    # under criterion 2 (normalized distance well below 0.86).
    seqs = ["AAAAAAAK", "AAAAAAAR", "AAAAAACK"]
    g = group_peptides(seqs, GroupingConfig(criterion=2))
    assert g.n_groups == 1


def test_dissimilar_sequences_split_criterion1():
    seqs = ["AAAAAAAA", "KKKKKKKK"]  # distance 8, cutoff max(2, 4) = 4
    g = group_peptides(seqs, GroupingConfig(criterion=1))
    assert g.n_groups == 2


def test_gsize_cap():
    seqs = ["AAAA"] * 45
    g = group_peptides(seqs, GroupingConfig(gsize=20))
    assert list(g.group_sizes) == [20, 20, 5]


def test_gsize_one_means_singletons():
    seqs = ["AAAA", "AAAC", "AAAD"]
    g = group_peptides(seqs, GroupingConfig(gsize=1))
    assert g.n_groups == 3


def test_criterion1_cutoff_formula():
    cfg = GroupingConfig(criterion=1, d=2)
    assert cfg.cutoff_for("AAAA", "CCCCCC") == 3  # max(2, 6//2)
    assert cfg.cutoff_for("AAAA", "CC") == 2  # max(2, 1)


def test_criterion2_cutoff_formula():
    cfg = GroupingConfig(criterion=2, d_prime=0.5)
    assert cfg.cutoff_for("AAAA", "CCCCCC") == 3  # int(0.5 * 6)
    assert cfg.cutoff_for("AAAAAAAA", "CC") == 4  # int(0.5 * 8)


def test_group_bounds_and_group_of():
    g = group_peptides(["AAAA", "AAAC", "KKKKKKKK", "WWWWWWWW"],
                       GroupingConfig(criterion=1))
    bounds = g.group_bounds()
    assert bounds[0] == 0 and bounds[-1] == 4
    gof = g.group_of()
    assert gof.size == 4
    assert np.all(np.diff(gof) >= 0)


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        GroupingConfig(criterion=3)
    with pytest.raises(ConfigurationError):
        GroupingConfig(d=-1)
    with pytest.raises(ConfigurationError):
        GroupingConfig(d_prime=1.5)
    with pytest.raises(ConfigurationError):
        GroupingConfig(gsize=0)


def test_grouping_invariants_validated():
    with pytest.raises(PartitionError):
        Grouping(order=np.arange(3), group_sizes=np.array([2, 2]))
    with pytest.raises(PartitionError):
        Grouping(order=np.arange(2), group_sizes=np.array([2, 0]))


@given(SEQS, st.integers(min_value=1, max_value=2), st.integers(min_value=1, max_value=25))
@settings(max_examples=60)
def test_grouping_is_partition_of_input(seqs, criterion, gsize):
    g = group_peptides(seqs, GroupingConfig(criterion=criterion, gsize=gsize))
    # order is a permutation of the input positions
    assert sorted(g.order.tolist()) == list(range(len(seqs)))
    # group sizes cover exactly the input and respect the cap
    assert int(g.group_sizes.sum()) == len(seqs)
    if len(seqs):
        assert int(g.group_sizes.max()) <= gsize


@given(SEQS)
@settings(max_examples=40)
def test_groups_are_contiguous_in_sorted_order(seqs):
    """The grouped order equals the (length, lex) sorted order."""
    g = group_peptides(seqs)
    ordered = [seqs[i] for i in g.order]
    assert ordered == sorted(seqs, key=lambda s: (len(s), s))


@given(SEQS, st.integers(min_value=1, max_value=2))
@settings(max_examples=40)
def test_members_within_cutoff_of_seed(seqs, criterion):
    """Every non-seed member is within the cutoff of its group seed."""
    cfg = GroupingConfig(criterion=criterion)
    g = group_peptides(seqs, cfg)
    ordered = [seqs[i] for i in g.order]
    pos = 0
    for size in g.group_sizes:
        seed = ordered[pos]
        for k in range(pos + 1, pos + int(size)):
            member = ordered[k]
            assert edit_distance(seed, member) <= cfg.cutoff_for(seed, member)
        pos += int(size)


def test_deterministic():
    seqs = ["AAK", "ACK", "GGK", "GGR", "WWWWK"] * 4
    a = group_peptides(seqs)
    b = group_peptides(seqs)
    assert np.array_equal(a.order, b.order)
    assert np.array_equal(a.group_sizes, b.group_sizes)
