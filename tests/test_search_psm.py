"""Tests for PSM result containers."""

from repro.search.psm import PSM, RankStats, SearchResults, SpectrumResult


def psm(scan=1, entry=0, score=1.0):
    return PSM(scan_id=scan, entry_id=entry, score=score, shared_peaks=4)


def test_spectrum_result_best():
    sr = SpectrumResult(scan_id=1, n_candidates=3,
                        psms=[psm(score=5.0), psm(entry=1, score=2.0)])
    assert sr.best.score == 5.0
    assert SpectrumResult(scan_id=2, n_candidates=0).best is None


def test_rank_stats_total_time():
    rs = RankStats(rank=0, build_time=1.0, query_time=2.0, comm_time=0.5)
    assert rs.total_time == 3.5


def make_results():
    spectra = [
        SpectrumResult(scan_id=1, n_candidates=10, psms=[psm()]),
        SpectrumResult(scan_id=2, n_candidates=30, psms=[]),
    ]
    stats = [
        RankStats(rank=0, query_time=1.0),
        RankStats(rank=1, query_time=3.0),
    ]
    return SearchResults(
        spectra=spectra,
        rank_stats=stats,
        phase_times={"total": 7.5, "query": 3.0},
        policy_name="cyclic",
        n_ranks=2,
    )


def test_cpsm_accounting():
    res = make_results()
    assert res.total_cpsms == 40
    assert res.cpsms_per_query == 20.0


def test_query_times_and_makespan():
    res = make_results()
    assert res.query_times == [1.0, 3.0]
    assert res.query_time == 3.0


def test_execution_time_from_phases():
    assert make_results().execution_time == 7.5


def test_best_by_scan_skips_empty():
    best = make_results().best_by_scan()
    assert set(best) == {1}
    assert best[1].entry_id == 0


def test_empty_results():
    res = SearchResults(spectra=[], rank_stats=[], phase_times={},
                        policy_name="shared", n_ranks=1)
    assert res.total_cpsms == 0
    assert res.cpsms_per_query == 0.0
    assert res.query_time == 0.0
    assert res.execution_time == 0.0
