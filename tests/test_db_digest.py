"""Tests for tryptic in-silico digestion."""

import pytest
from hypothesis import given, strategies as st

from repro.chem.peptide import peptide_mass
from repro.db.digest import DigestionConfig, cleavage_sites, digest_protein, digest_proteome
from repro.db.fasta import FastaRecord
from repro.errors import ConfigurationError

PERMISSIVE = DigestionConfig(
    missed_cleavages=0, min_length=1, max_length=1000, min_mass=0, max_mass=1e9
)


def fragments(sequence, config=PERMISSIVE):
    return [p.sequence for p in digest_protein(FastaRecord("t", sequence), config)]


def test_cleaves_after_k_and_r():
    assert fragments("AAAKBBBRCCC".replace("B", "G")) == ["AAAK", "GGGR", "CCC"]


def test_proline_suppression():
    # K followed by P is not cleaved.
    assert fragments("AAKPGGR") == ["AAKPGGR"]


def test_proline_suppression_disabled():
    config = DigestionConfig(
        missed_cleavages=0, min_length=1, max_length=1000,
        min_mass=0, max_mass=1e9, suppress_proline=False,
    )
    assert fragments("AAKPGGR", config) == ["AAK", "PGGR"]


def test_terminal_k_not_split():
    assert fragments("AAAK") == ["AAAK"]


def test_missed_cleavages_enumeration():
    config = DigestionConfig(
        missed_cleavages=1, min_length=1, max_length=1000, min_mass=0, max_mass=1e9
    )
    out = fragments("AKGKC", config)
    # Fully cleaved: AK, GK, C; one missed: AKGK, GKC.
    assert sorted(out) == sorted(["AK", "GK", "C", "AKGK", "GKC"])


def test_two_missed_cleavages():
    config = DigestionConfig(
        missed_cleavages=2, min_length=1, max_length=1000, min_mass=0, max_mass=1e9
    )
    out = fragments("AKGKC", config)
    assert "AKGKC" in out


def test_length_window():
    config = DigestionConfig(
        missed_cleavages=0, min_length=3, max_length=3, min_mass=0, max_mass=1e9
    )
    assert fragments("AAKGGKCCK", config) == ["AAK", "GGK", "CCK"]


def test_mass_window():
    low = peptide_mass("AAK") - 1
    config = DigestionConfig(
        missed_cleavages=0, min_length=1, max_length=100,
        min_mass=low, max_mass=low + 2,
    )
    out = fragments("AAKGGGGGGGGGGK", config)
    assert out == ["AAK"]


def test_ambiguous_residues_split_protein():
    # X splits the sequence; fragments containing it are dropped.
    assert fragments("AAKXGGR") == ["AAK", "GGR"]


def test_cleavage_sites_basic():
    assert cleavage_sites("AKGR") == [0, 2, 4]
    assert cleavage_sites("AKPG") == [0, 4]
    assert cleavage_sites("AKPG", suppress_proline=False) == [0, 2, 4]


def test_protein_ids_assigned():
    records = [FastaRecord("a", "AAAKGGGR"), FastaRecord("b", "CCCKDDDR")]
    peps = digest_proteome(records, PERMISSIVE)
    ids = {p.sequence: p.protein_id for p in peps}
    assert ids["AAAK"] == 0
    assert ids["CCCK"] == 1


def test_paper_default_config():
    config = DigestionConfig()
    assert config.missed_cleavages == 2
    assert (config.min_length, config.max_length) == (6, 40)
    assert (config.min_mass, config.max_mass) == (100.0, 5000.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"missed_cleavages": -1},
        {"min_length": 0},
        {"min_length": 10, "max_length": 5},
        {"min_mass": -1.0},
        {"min_mass": 10.0, "max_mass": 5.0},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        DigestionConfig(**kwargs)


@given(st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=200))
def test_fully_cleaved_fragments_tile_protein(seq):
    """With 0 missed cleavages and no windows, fragments concatenate
    back to the protein."""
    assert "".join(fragments(seq)) == seq


def _valid_occurrences(seq, frag):
    """Start positions where ``frag`` sits between two tryptic cuts."""
    out = []
    start = seq.find(frag)
    while start >= 0:
        end = start + len(frag)
        left_ok = start == 0 or (seq[start - 1] in "KR" and seq[start] != "P")
        right_ok = end == len(seq) or (frag[-1] in "KR" and seq[end] != "P")
        if left_ok and right_ok:
            out.append(start)
        start = seq.find(frag, start + 1)
    return out


@given(st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=120))
def test_fragments_are_fully_tryptic(seq):
    """Every fragment occurs between two tryptic cut points, and
    never contains an internal unsuppressed cleavage site."""
    for frag in fragments(seq):
        assert _valid_occurrences(seq, frag), frag
        for i, aa in enumerate(frag[:-1]):
            if aa in "KR" and frag[i + 1] != "P":
                pytest.fail(f"internal cleavage site in {frag!r}")


@given(
    st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=120),
    st.integers(min_value=0, max_value=3),
)
def test_missed_cleavage_fragment_counts(seq, mc):
    """Each fragment spans at most mc internal cleavage sites (at some
    valid occurrence)."""
    config = DigestionConfig(
        missed_cleavages=mc, min_length=1, max_length=10_000,
        min_mass=0, max_mass=1e9,
    )
    sites = set(cleavage_sites(seq)[1:-1])
    for frag in fragments(seq, config):
        occurrences = _valid_occurrences(seq, frag)
        assert occurrences, frag
        assert any(
            len([s for s in sites if start < s < start + len(frag)]) <= mc
            for start in occurrences
        )
