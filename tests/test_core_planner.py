"""Tests for the LBE plan (group -> partition -> mapping)."""

import numpy as np
import pytest

from repro.chem.peptide import Peptide
from repro.core.grouping import GroupingConfig
from repro.core.partition import make_policy
from repro.core.planner import plan_distribution
from repro.errors import ConfigurationError

PEPTIDES = [
    Peptide(s)
    for s in [
        "AAAAAAK", "AAAAAAR", "AAAAACK",  # one similarity family
        "WWWWWWWWK", "WWWWWWWWR",         # another
        "GGGGGGGGGGGGK",                  # loner
        "MMMMMMK", "MMMMMCK",
    ]
]


def test_plan_covers_all_peptides():
    plan = plan_distribution(PEPTIDES, make_policy("cyclic"), 3)
    sizes = plan.partition_sizes()
    assert int(sizes.sum()) == len(PEPTIDES)
    all_ids = sorted(
        int(g) for r in range(3) for g in plan.rank_global_ids(r)
    )
    assert all_ids == list(range(len(PEPTIDES)))


def test_rank_peptides_materialization():
    plan = plan_distribution(PEPTIDES, make_policy("chunk"), 2)
    peps = plan.rank_peptides(PEPTIDES, 0)
    assert all(isinstance(p, Peptide) for p in peps)
    assert len(peps) == plan.mapping.rank_size(0)


def test_cyclic_spreads_similar_sequences():
    """The three AAAAAA* peptides must land on distinct ranks."""
    plan = plan_distribution(PEPTIDES, make_policy("cyclic"), 3)
    family = {0, 1, 2}  # global ids of the AAAAAA* family
    owners = set()
    for r in range(3):
        if family & set(int(g) for g in plan.rank_global_ids(r)):
            owners.add(r)
    assert len(owners) == 3


def test_chunk_keeps_similar_sequences_together():
    plan = plan_distribution(PEPTIDES, make_policy("chunk"), 4)
    family = {0, 1, 2}
    owners = set()
    for r in range(4):
        if family & set(int(g) for g in plan.rank_global_ids(r)):
            owners.add(r)
    assert len(owners) <= 2  # contiguous split: at most a boundary straddle


def test_zero_ranks_rejected():
    with pytest.raises(ConfigurationError):
        plan_distribution(PEPTIDES, make_policy("chunk"), 0)


def test_grouping_config_respected():
    plan = plan_distribution(
        PEPTIDES, make_policy("chunk"), 2, GroupingConfig(gsize=1)
    )
    assert plan.grouping.n_groups == len(PEPTIDES)


def test_plan_deterministic():
    a = plan_distribution(PEPTIDES, make_policy("random", seed=9), 3)
    b = plan_distribution(PEPTIDES, make_policy("random", seed=9), 3)
    for r in range(3):
        assert np.array_equal(a.rank_global_ids(r), b.rank_global_ids(r))
