"""Tests for the synthetic LC-MS/MS run generator."""

import numpy as np
import pytest

from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

PEPTIDES = [
    Peptide("AAAGGGKR", protein_id=0),
    Peptide("CCDDEEKK", protein_id=0),
    Peptide("MMNNQQRR", protein_id=1),
    Peptide("WWYYFFKK", protein_id=2),
    Peptide("LLIIVVPP", protein_id=2),
]


def test_deterministic():
    a = generate_run(PEPTIDES, SyntheticRunConfig(n_spectra=20, seed=1))
    b = generate_run(PEPTIDES, SyntheticRunConfig(n_spectra=20, seed=1))
    for x, y in zip(a, b):
        assert np.array_equal(x.mzs, y.mzs)
        assert x.true_peptide == y.true_peptide


def test_seed_changes_output():
    a = generate_run(PEPTIDES, SyntheticRunConfig(n_spectra=20, seed=1))
    b = generate_run(PEPTIDES, SyntheticRunConfig(n_spectra=20, seed=2))
    assert any(x.true_peptide != y.true_peptide or not np.array_equal(x.mzs, y.mzs)
               for x, y in zip(a, b))


def test_scan_ids_ascending_from_one():
    run = generate_run(PEPTIDES, SyntheticRunConfig(n_spectra=10, seed=3))
    assert [s.scan_id for s in run] == list(range(1, 11))


def test_true_peptide_in_range():
    run = generate_run(PEPTIDES, SyntheticRunConfig(n_spectra=50, seed=4))
    assert all(0 <= s.true_peptide < len(PEPTIDES) for s in run)


def test_noise_peaks_added():
    cfg = SyntheticRunConfig(n_spectra=5, seed=5, noise_peaks=30, dropout=0.0)
    run = generate_run(PEPTIDES, cfg)
    for s in run:
        src = PEPTIDES[s.true_peptide]
        assert s.n_peaks == 2 * (src.length - 1) + 30


def test_zero_noise_zero_dropout_counts():
    cfg = SyntheticRunConfig(n_spectra=5, seed=6, noise_peaks=0, dropout=0.0)
    run = generate_run(PEPTIDES, cfg)
    for s in run:
        src = PEPTIDES[s.true_peptide]
        assert s.n_peaks == 2 * (src.length - 1)


def test_dropout_reduces_peaks():
    dense = generate_run(
        PEPTIDES, SyntheticRunConfig(n_spectra=30, seed=7, dropout=0.0, noise_peaks=0)
    )
    sparse = generate_run(
        PEPTIDES, SyntheticRunConfig(n_spectra=30, seed=7, dropout=0.6, noise_peaks=0)
    )
    assert sum(s.n_peaks for s in sparse) < sum(s.n_peaks for s in dense)


def test_at_least_one_real_fragment_survives():
    cfg = SyntheticRunConfig(n_spectra=30, seed=8, dropout=0.95, noise_peaks=0)
    run = generate_run(PEPTIDES, cfg)
    assert all(s.n_peaks >= 1 for s in run)


def test_dark_matter_shifts_precursor():
    no_dark = SyntheticRunConfig(
        n_spectra=40, seed=9, dark_matter_fraction=0.0, mz_sigma=0.0
    )
    run = generate_run(PEPTIDES, no_dark)
    for s in run:
        assert np.isclose(s.neutral_mass, PEPTIDES[s.true_peptide].mass, atol=1e-6)

    all_dark = SyntheticRunConfig(
        n_spectra=40, seed=9, dark_matter_fraction=1.0, mz_sigma=0.0
    )
    run = generate_run(PEPTIDES, all_dark)
    shifted = sum(
        not np.isclose(s.neutral_mass, PEPTIDES[s.true_peptide].mass, atol=1e-3)
        for s in run
    )
    assert shifted > 30  # nearly all (tiny shifts possible but rare)


def test_charges_follow_distribution():
    cfg = SyntheticRunConfig(n_spectra=300, seed=10, charge_probs=(0.0, 1.0))
    run = generate_run(PEPTIDES, cfg)
    assert all(s.charge == 2 for s in run)


def test_abundance_skew():
    """High Zipf exponent concentrates sampling on few proteins."""
    flat = generate_run(
        PEPTIDES, SyntheticRunConfig(n_spectra=400, seed=11, abundance_zipf=0.0)
    )
    skew = generate_run(
        PEPTIDES, SyntheticRunConfig(n_spectra=400, seed=11, abundance_zipf=3.0)
    )

    def top_fraction(run):
        counts = np.bincount([s.true_peptide for s in run], minlength=len(PEPTIDES))
        return counts.max() / counts.sum()

    assert top_fraction(skew) > top_fraction(flat)


def test_empty_peptides_rejected():
    with pytest.raises(ConfigurationError):
        generate_run([], SyntheticRunConfig(n_spectra=5))


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_spectra": 0},
        {"dropout": 1.0},
        {"noise_peaks": -1},
        {"mz_sigma": -0.1},
        {"dark_matter_fraction": 1.2},
        {"charge_probs": (0.5, 0.4)},
        {"abundance_zipf": -1.0},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        SyntheticRunConfig(**kwargs)
