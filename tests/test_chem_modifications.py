"""Tests for variable-modification specification and variant enumeration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.chem.modifications import (
    DEAMIDATION_DELTA,
    GLYGLY_DELTA,
    OXIDATION_DELTA,
    Modification,
    ModificationSet,
    VariantEnumerator,
    paper_modifications,
)
from repro.chem.peptide import Peptide
from repro.constants import ALPHABET
from repro.errors import ConfigurationError


def test_paper_modifications_content():
    mods = paper_modifications()
    by_name = {m.name: m for m in mods}
    assert set(by_name) == {"deamidation", "glygly", "oxidation"}
    assert by_name["deamidation"].residues == "NQ"
    assert by_name["glygly"].residues == "KC"
    assert by_name["oxidation"].residues == "M"
    assert mods.max_modified_residues == 5


def test_known_deltas():
    assert math.isclose(OXIDATION_DELTA, 15.9949, abs_tol=1e-3)
    assert math.isclose(DEAMIDATION_DELTA, 0.9840, abs_tol=1e-3)
    assert math.isclose(GLYGLY_DELTA, 114.0429, abs_tol=1e-3)


def test_modification_sites():
    mod = Modification("oxidation", "M", OXIDATION_DELTA)
    assert mod.sites("MAMA") == (0, 2)
    assert mod.sites("AAAA") == ()


def test_modification_without_residues_rejected():
    with pytest.raises(ConfigurationError):
        Modification("bad", "", 1.0)


def test_duplicate_names_rejected():
    m = Modification("m", "M", 1.0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        ModificationSet((m, m))


def test_negative_cap_rejected():
    with pytest.raises(ConfigurationError):
        ModificationSet((Modification("m", "M", 1.0),), max_modified_residues=-1)


def test_site_deltas_overlapping_mods():
    mods = ModificationSet(
        (
            Modification("a", "K", 1.0),
            Modification("b", "KC", 2.0),
        )
    )
    deltas = mods.site_deltas("KCK")
    assert deltas == {0: [1.0, 2.0], 1: [2.0], 2: [1.0, 2.0]}


def test_variants_unmodified_first():
    enum = VariantEnumerator(paper_modifications())
    vs = list(enum.variants(Peptide("MK")))
    assert vs[0] == Peptide("MK")
    assert all(v.is_modified for v in vs[1:])


def test_variant_count_formula_single_site():
    # "M" has one oxidation site: 1 modified variant.
    enum = VariantEnumerator(paper_modifications())
    assert enum.count_variants("AMA") == 1
    assert len(list(enum.variants(Peptide("AMA")))) == 2


def test_variant_count_two_sites():
    # "MM": singles {0},{1} plus pair {0,1} -> 3 modified variants.
    enum = VariantEnumerator(paper_modifications())
    assert enum.count_variants("MM") == 3


def test_variant_cap_respected():
    enum = VariantEnumerator(paper_modifications(), max_variants_per_peptide=2)
    vs = list(enum.variants(Peptide("MNKQC")))
    assert len(vs) == 3  # unmodified + 2 capped variants


def test_variant_cap_zero_yields_base_only():
    enum = VariantEnumerator(paper_modifications(), max_variants_per_peptide=0)
    assert list(enum.variants(Peptide("MNKQC"))) == [Peptide("MNKQC")]


def test_negative_cap_rejected_enumerator():
    with pytest.raises(ConfigurationError):
        VariantEnumerator(paper_modifications(), max_variants_per_peptide=-1)


def test_max_modified_residues_bounds_combination_size():
    mods = ModificationSet(
        (Modification("ox", "M", 1.0),), max_modified_residues=2
    )
    enum = VariantEnumerator(mods)
    vs = list(enum.variants(Peptide("MMMM")))
    assert max(v.mod_count() for v in vs) == 2


def test_count_matches_enumeration_no_cap():
    enum = VariantEnumerator(paper_modifications())
    for seq in ("MK", "NQC", "AAAA", "MNKQCM"):
        produced = sum(1 for v in enum.variants(Peptide(seq)) if v.is_modified)
        assert produced == enum.count_variants(seq), seq


def test_variants_inherit_protein_id():
    enum = VariantEnumerator(paper_modifications())
    vs = list(enum.variants(Peptide("MK", protein_id=9)))
    assert all(v.protein_id == 9 for v in vs)


def test_enumeration_deterministic():
    enum = VariantEnumerator(paper_modifications())
    a = [v.mods for v in enum.variants(Peptide("MNKQ"))]
    b = [v.mods for v in enum.variants(Peptide("MNKQ"))]
    assert a == b


def test_expand_flattens():
    enum = VariantEnumerator(paper_modifications(), max_variants_per_peptide=1)
    out = enum.expand([Peptide("MK"), Peptide("AAAA")])
    # MK: base + 1 variant; AAAA: base only.
    assert len(out) == 3


@given(st.text(alphabet=ALPHABET, min_size=1, max_size=12))
def test_count_variants_agrees_with_enumeration(seq):
    enum = VariantEnumerator(paper_modifications(), max_variants_per_peptide=50)
    produced = sum(1 for v in enum.variants(Peptide(seq)) if v.is_modified)
    assert produced == enum.count_variants(seq)


@given(st.text(alphabet=ALPHABET, min_size=1, max_size=10))
def test_all_variants_unique(seq):
    enum = VariantEnumerator(paper_modifications(), max_variants_per_peptide=64)
    vs = list(enum.variants(Peptide(seq)))
    assert len(set(vs)) == len(vs)
