"""Flight recorder: the always-on ring tracer and its black-box dumps.

The acceptance bar from the issue: an untraced session carries its
recent timeline in a bounded in-memory ring installed by default;
whenever a ``WorkerError``/``ShardError`` surfaces or a batch
degrades, a schema-valid JSONL dump appears whose path rides the
error / the batch's stats and whose contents include the fault's
supervision events.
"""

import json

import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.obs import (
    DEFAULT_CAPACITY,
    JsonlTracer,
    MetricsRegistry,
    RingTracer,
    flight_dump,
    validate_record,
    validate_trace_file,
)
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.service import (
    SearchService,
    ServiceConfig,
    ShardedSearchService,
)


def _records(path):
    return [json.loads(line) for line in open(path, encoding="ascii")]


def _by_kind(records):
    out = {}
    for r in records:
        out.setdefault(r.get("name") or r.get("kind"), []).append(r)
    return out


@pytest.fixture(scope="module")
def batches(tiny_spectra):
    return [list(tiny_spectra), list(tiny_spectra[:7]), list(tiny_spectra[5:])]


# -- ring unit tests ---------------------------------------------------


def test_ring_records_match_jsonl_tracer_shape(tmp_path):
    """Same inputs through both tracers must serialize identically."""
    import io

    ticks = [10.0, 20.0]
    buf = io.StringIO()
    jsonl = JsonlTracer(buf, clock=iter(ticks).__next__)
    ring = RingTracer(clock=iter(ticks).__next__)
    for t in (jsonl, ring):
        t.span("collect", 1.5, 0.25, {"batch": 3})
        t.event("retry", {"rank": 1, "attempt": 2})
    dump = tmp_path / "ring.jsonl"
    assert ring.dump(dump) == 2
    assert dump.read_text(encoding="ascii") == buf.getvalue()


def test_ring_is_bounded_and_counts_lifetime_records():
    ring = RingTracer(capacity=4)
    assert ring.capacity == 4 and ring.enabled
    for i in range(10):
        ring.event("respawn", {"rank": i})
    assert ring.n_records == 4 and ring.n_seen == 10
    # Oldest evicted: only the last `capacity` records survive.
    assert [r["rank"] for r in ring.records()] == [6, 7, 8, 9]
    assert all(not validate_record(r) for r in ring.records())


def test_ring_default_capacity_and_invalid_capacity():
    assert RingTracer().capacity == DEFAULT_CAPACITY
    with pytest.raises(ConfigurationError):
        RingTracer(capacity=0)


def test_ring_bind_shares_the_ring_and_merges_attrs():
    ring = RingTracer(clock=lambda: 0.0)
    shard1 = ring.bind(shard=1)
    deeper = shard1.bind(rank=2)
    deeper.span("demux", 0.0, 0.1, {"batch": 0, "name": "spoofed"})
    shard1.event("respawn", {"rank": 0})
    # One shared ring, bound attrs merged, reserved keys win.
    assert ring.n_records == 2 and deeper.n_records == 2
    span, event = ring.records()
    assert span["shard"] == 1 and span["rank"] == 2
    assert span["name"] == "demux"
    assert event["shard"] == 1 and event["kind"] == "respawn"
    # flush/close are inherited no-ops: uniform shutdown handling.
    ring.flush()
    ring.close()
    assert ring.n_records == 2


def test_flight_dump_appends_reason_event_and_writes_file(tmp_path):
    ring = RingTracer(clock=lambda: 0.0)
    assert flight_dump(ring, tmp_path, "unit-test") is None  # empty ring
    ring.event("respawn", {"rank": 0})
    path = flight_dump(ring, tmp_path, "unit-test", batch=7)
    assert path is not None and path.startswith(str(tmp_path))
    records = _records(path)
    assert [r["kind"] for r in records] == ["respawn", "flight.dump"]
    assert records[-1]["reason"] == "unit-test"
    assert records[-1]["batch"] == 7
    n, errors = validate_trace_file(path)
    assert errors == [] and n == 2
    assert flight_dump(None, tmp_path, "none") is None


# -- default installation in the serving tier --------------------------


def test_service_installs_ring_by_default_and_file_tracer_wins(tiny_db):
    svc = SearchService(tiny_db, ServiceConfig(n_workers=2))
    assert isinstance(svc.flight_recorder, RingTracer)
    # An enabled config tracer suppresses the ring entirely.
    import io

    traced = SearchService(
        tiny_db,
        ServiceConfig(n_workers=2, tracer=JsonlTracer(io.StringIO())),
    )
    assert traced.flight_recorder is None
    # And the opt-out leaves nothing installed either.
    off = SearchService(
        tiny_db, ServiceConfig(n_workers=2, flight_recorder=False)
    )
    assert off.flight_recorder is None


def test_untraced_session_records_into_the_ring(tiny_db, batches):
    config = ServiceConfig(n_workers=2, metrics=MetricsRegistry())
    with SearchService(tiny_db, config) as service:
        service.submit(batches[0])
        ring = service.flight_recorder
        assert ring is not None and ring.n_records > 0
        kinds = _by_kind(ring.records())
        assert "session.open" in kinds and "batch" in kinds
        assert sorted(r["rank"] for r in kinds["worker.query"]) == [0, 1]
        assert all(not validate_record(r) for r in ring.records())


def test_worker_error_dumps_black_box_with_supervision_events(
    tiny_db, batches, tmp_path
):
    # Two crashes on the same (rank, batch) burn through max_retries=1,
    # so the surfaced WorkerError's dump must hold the whole story:
    # retry, backoff, respawn, then the fatal second crash.
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=1),
        FaultSpec(kind="crash", stage="query", rank=1, batch=1),
    )
    config = ServiceConfig(
        n_workers=2, max_retries=1, retry_backoff_s=0.01,
        fault_plan=plan, metrics=MetricsRegistry(),
        flight_dir=tmp_path,
    )
    with SearchService(tiny_db, config) as service:
        service.submit(batches[0])
        with pytest.raises(WorkerError) as excinfo:
            service.submit(batches[1])
    exc = excinfo.value
    assert exc.flight_record is not None
    assert exc.flight_record.startswith(str(tmp_path))
    assert exc.flight_record in exc.brief
    n, errors = validate_trace_file(exc.flight_record)
    assert errors == [] and n > 0
    kinds = _by_kind(_records(exc.flight_record))
    assert [r["reason"] for r in kinds["flight.dump"]] == ["batch-error"]
    assert kinds["retry"][0]["rank"] == 1
    assert "backoff" in kinds and "respawn" in kinds
    # The healthy batch 0's timeline is in the box too — context, not
    # just the fault.
    assert 0 in {r["batch"] for r in kinds["batch"]}


def test_degraded_batch_dumps_black_box_on_stats(
    tiny_db, batches, tmp_path
):
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=1, once=False)
    )
    config = ServiceConfig(
        n_workers=2, max_retries=1, retry_backoff_s=0.01,
        degraded_ok=True, fault_plan=plan, metrics=MetricsRegistry(),
        flight_dir=tmp_path,
    )
    with SearchService(tiny_db, config) as service:
        all_stats = [service.submit(batch)[1] for batch in batches]
    assert all_stats[0].flight_record is None  # healthy batch: no dump
    degraded = all_stats[1]
    assert degraded.degraded_ranks == (1,)
    assert degraded.flight_record is not None
    n, errors = validate_trace_file(degraded.flight_record)
    assert errors == []
    kinds = _by_kind(_records(degraded.flight_record))
    assert kinds["flight.dump"][0]["reason"] == "degraded-batch"
    assert kinds["degraded.rank"][0]["rank"] == 1
    # The dump is cut *after* the degraded batch's summary event, so
    # the black box explains itself.
    assert 1 in {r["batch"] for r in kinds["batch"]}


def test_no_dump_when_recorder_disabled(tiny_db, batches, tmp_path):
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=0)
    )
    config = ServiceConfig(
        n_workers=2, max_retries=0, fault_plan=plan,
        metrics=MetricsRegistry(), flight_recorder=False,
        flight_dir=tmp_path,
    )
    with SearchService(tiny_db, config) as service:
        with pytest.raises(WorkerError) as excinfo:
            service.submit(batches[0])
    assert excinfo.value.flight_record is None
    assert list(tmp_path.iterdir()) == []


# -- sharded fleet -----------------------------------------------------


def test_fleet_shares_one_ring_and_dumps_on_shard_error(
    tiny_db, batches, tmp_path
):
    # Per-shard fault plans: shard 1's rank 1 crashes forever; with
    # retries disabled and no degraded_ok the batch fails with a
    # ShardError carrying the fleet-wide black box.
    plans = [
        None,
        FaultPlan.scoped(
            FaultSpec(kind="crash", stage="query", rank=1, batch=1, once=False)
        ),
    ]
    config = ServiceConfig(
        n_workers=2, max_retries=0, metrics=MetricsRegistry(),
        flight_dir=tmp_path,
    )
    svc = ShardedSearchService(
        tiny_db, config, n_shards=2, shard_fault_plans=plans
    )
    assert isinstance(svc.flight_recorder, RingTracer)
    with svc:
        svc.submit(batches[0])
        from repro.errors import ShardError

        with pytest.raises(ShardError) as excinfo:
            svc.submit(batches[1])
    exc = excinfo.value
    assert exc.flight_record is not None
    assert exc.flight_record in exc.brief
    n, errors = validate_trace_file(exc.flight_record)
    assert errors == [] and n > 0
    records = _records(exc.flight_record)
    kinds = _by_kind(records)
    assert kinds["flight.dump"][0]["reason"] == "shard-batch-error"
    # One shared ring: both shards' bound views interleave into it.
    shard_ids = {r["shard"] for r in records if "shard" in r}
    assert shard_ids == {0, 1}
    # Fleet-level records (route spans, fleet session.open) are
    # unbound — the fleet records through the raw ring.
    assert any("shard" not in r for r in kinds["route"])
    assert any(r.get("fleet") for r in kinds["session.open"])


def test_fleet_degraded_batch_dumps_on_stats(tiny_db, batches, tmp_path):
    plans = [
        None,
        FaultPlan.scoped(
            FaultSpec(kind="crash", stage="query", rank=1, batch=1, once=False)
        ),
    ]
    config = ServiceConfig(
        n_workers=2, max_retries=1, retry_backoff_s=0.01,
        degraded_ok=True, metrics=MetricsRegistry(), flight_dir=tmp_path,
    )
    with ShardedSearchService(
        tiny_db, config, n_shards=2, shard_fault_plans=plans
    ) as svc:
        all_stats = [svc.submit(batch)[1] for batch in batches]
    degraded = [s for s in all_stats if s.degraded_ranks]
    assert degraded and degraded[0].flight_record is not None
    n, errors = validate_trace_file(degraded[0].flight_record)
    assert errors == []
    kinds = _by_kind(_records(degraded[0].flight_record))
    assert kinds["flight.dump"][0]["reason"] == "degraded-batch"
    assert "degraded.rank" in kinds
