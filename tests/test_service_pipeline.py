"""Pipelined-session tests: overlap, ordering, failure modes.

The acceptance bar from the issue: the pipelined session
(``submit_async`` / ``stream``) is bit-identical to sequential
``submit()`` and the serial engine for every policy × {2,3} workers
across >= 6 overlapped batches, batches complete in submission order,
a mid-pipeline :class:`~repro.errors.WorkerError` fails only its own
future (later queued batches still return correct results), ``close()``
with futures in flight drains deterministically, and ``max_pending``
admission is enforced for async submits.
"""

import threading
import time

import pytest

from repro.errors import PipelineError, ServiceError, WorkerError
from repro.search.serial import SerialSearchEngine
from repro.service import SearchService, ServiceConfig
from repro.spectra.synthetic import SyntheticRunConfig, generate_run


def assert_same_results(serial, service_results):
    assert len(serial.spectra) == len(service_results.spectra)
    for a, b in zip(serial.spectra, service_results.spectra):
        assert a.scan_id == b.scan_id
        assert a.n_candidates == b.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in a.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in b.psms
        ]


@pytest.fixture(scope="module")
def stream_batches(tiny_db):
    """Six distinct batches — enough stream depth for real overlap."""
    spectra = generate_run(
        tiny_db.entries, SyntheticRunConfig(n_spectra=48, seed=91)
    )
    return [spectra[i * 8 : (i + 1) * 8] for i in range(6)]


@pytest.fixture(scope="module")
def stream_refs(tiny_db, stream_batches):
    engine = SerialSearchEngine(tiny_db)
    return [engine.run(batch) for batch in stream_batches]


@pytest.mark.parametrize("policy", ["cyclic", "chunk"])
@pytest.mark.parametrize("n_workers", [2, 3])
def test_pipelined_session_bit_identical_and_in_order(
    tiny_db, stream_batches, stream_refs, policy, n_workers
):
    """The acceptance matrix: >= 6 batches through submit_async, all
    bit-identical to the serial engine, futures resolving in
    submission order, on one resident pool."""
    config = ServiceConfig(
        n_workers=n_workers, policy=policy, max_pending=len(stream_batches)
    )
    done_order = []
    with SearchService(tiny_db, config) as service:
        pids = service.worker_pids()
        futures = [service.submit_async(batch) for batch in stream_batches]
        for i, future in enumerate(futures):
            future.add_done_callback(
                lambda f, i=i: done_order.append(i)
            )
        for i, (future, reference) in enumerate(zip(futures, stream_refs)):
            results, stats = future.result(timeout=120)
            assert_same_results(reference, results)
            assert stats.batch_index == i
            assert stats.respawned == 0
        assert service.worker_pids() == pids
        assert service.n_batches == len(stream_batches)
        # Deep submission queue: later batches waited and the pipeline
        # actually ran deep (depth grows with the async backlog).
        all_stats = service.batch_stats
        assert max(s.pipeline_depth for s in all_stats) >= 3
        assert any(s.overlap_s > 0.0 for s in all_stats)
    assert done_order == list(range(len(stream_batches)))


def test_pipelined_equals_sequential_submits(
    tiny_db, stream_batches, stream_refs
):
    """stream() and sequential submit() agree batch-for-batch (and with
    the serial engine) over the same session configuration."""
    config = ServiceConfig(n_workers=2, max_pending=3)
    with SearchService(tiny_db, config) as service:
        sequential = [service.submit(batch) for batch in stream_batches]
    with SearchService(tiny_db, config) as service:
        streamed = list(service.stream(iter(stream_batches)))
    assert len(streamed) == len(stream_batches)
    for (seq_res, _), (pipe_res, pipe_stats), reference in zip(
        sequential, streamed, stream_refs
    ):
        assert_same_results(reference, seq_res)
        assert_same_results(reference, pipe_res)
    # Streaming kept the pipeline within its admission bound.
    assert all(s.pipeline_depth <= 3 for _, s in streamed)


def test_worker_death_fails_only_its_batch(
    tiny_db, stream_batches, stream_refs
):
    """Kill a worker right after batch 1's round is scattered (batch 2
    is already spilled by then — the pipeline prepares N+1 during N's
    round): batch 1's future fails with WorkerError, every other queued
    batch still returns bit-identical results."""
    config = ServiceConfig(n_workers=2, max_pending=4)
    with SearchService(tiny_db, config) as service:
        pool = service._pool
        orig_dispatch = pool.dispatch
        rounds = []

        def killing_dispatch(fn, payloads):
            handle = orig_dispatch(fn, payloads)
            rounds.append(handle)
            if len(rounds) == 2:  # batch index 1's round
                pool._channels[1].proc.terminate()
            return handle

        pool.dispatch = killing_dispatch
        futures = [service.submit_async(b) for b in stream_batches[:4]]
        with pytest.raises(WorkerError):
            futures[1].result(timeout=120)
        for i in (0, 2, 3):
            results, stats = futures[i].result(timeout=120)
            assert_same_results(stream_refs[i], results)
        assert service.respawn_total == 1
        # The session is still healthy for fresh submits afterwards.
        results, _ = service.submit(stream_batches[4])
        assert_same_results(stream_refs[4], results)


def test_close_with_futures_in_flight_drains(tiny_db, stream_batches, stream_refs):
    """close() while futures are pending completes every admitted
    batch before shutting the workers down — drains, never hangs."""
    config = ServiceConfig(n_workers=2, max_pending=4)
    service = SearchService(tiny_db, config).open()
    futures = [service.submit_async(b) for b in stream_batches[:4]]
    service.close()
    for future, reference in zip(futures, stream_refs):
        results, _ = future.result(timeout=5)  # already resolved by close
        assert_same_results(reference, results)
    assert not service.is_open
    with pytest.raises(ServiceError, match="not open"):
        service.submit_async(stream_batches[0])


def test_max_pending_rejection_under_submit_async(tiny_db, stream_batches):
    """The admission bound counts queued + in-flight async batches."""
    config = ServiceConfig(n_workers=2, max_pending=2)
    with SearchService(tiny_db, config) as service:
        # Stall the pipeline at the pool's dispatch gate so admitted
        # batches cannot complete while we probe the bound.
        service._pool._round_lock.acquire()
        try:
            f1 = service.submit_async(stream_batches[0])
            f2 = service.submit_async(stream_batches[1])
            with pytest.raises(ServiceError, match="admission queue full"):
                service.submit_async(stream_batches[2])
        finally:
            service._pool._round_lock.release()
        r1, s1 = f1.result(timeout=120)
        r2, s2 = f2.result(timeout=120)
        assert s1.batch_index == 0 and s2.batch_index == 1
        # Slots free again once the backlog drained.
        r3, s3 = service.submit(stream_batches[2])
        assert s3.batch_index == 2


def test_cancelled_future_skips_batch_session_survives(
    tiny_db, stream_batches, stream_refs
):
    """cancel() on a still-queued future is honoured (the batch never
    runs), cannot crash the pipeline thread, and frees its admission
    slot for later submits."""
    config = ServiceConfig(n_workers=2, max_pending=3)
    with SearchService(tiny_db, config) as service:
        # Stall the pipeline at the pool gate so the batches stay queued.
        service._pool._round_lock.acquire()
        try:
            f0 = service.submit_async(stream_batches[0])
            f1 = service.submit_async(stream_batches[1])
            f2 = service.submit_async(stream_batches[2])
            assert f1.cancel()  # still queued: cancellable
        finally:
            service._pool._round_lock.release()
        results, _ = f0.result(timeout=120)
        assert_same_results(stream_refs[0], results)
        assert f1.cancelled()
        results, _ = f2.result(timeout=120)
        assert_same_results(stream_refs[2], results)
        # The cancelled batch gave its admission slot back; a full new
        # window of submits is accepted and correct.
        futures = [service.submit_async(b) for b in stream_batches[3:6]]
        for future, reference in zip(futures, stream_refs[3:6]):
            results, _ = future.result(timeout=120)
            assert_same_results(reference, results)
        assert service.n_batches == 5  # every non-cancelled batch ran


def test_overlap_accounting_and_batch_echo(tiny_db, stream_batches):
    """BatchStats carries the pipeline's overlap accounting, and the
    merged reports really belong to the collected batch (worker echo)."""
    config = ServiceConfig(n_workers=2, max_pending=6)
    with SearchService(tiny_db, config) as service:
        outcomes = list(service.stream(iter(stream_batches)))
    stats = [s for _, s in outcomes]
    assert [s.batch_index for s in stats] == list(range(6))
    # The first batch enters an idle pipeline; successors of a busy one
    # record queue wait and prepared-under-round overlap.
    assert stats[0].wait_s >= 0.0
    assert any(s.wait_s > 0.0 for s in stats[1:])
    assert any(s.overlap_s > 0.0 for s in stats[1:])
    assert all(s.collect_wait_s >= 0.0 for s in stats)
    assert all(s.pipeline_depth >= 1 for s in stats)
    # total_s covers the master's stages; parallel_s sits inside it.
    assert all(s.total_s >= s.parallel_s > 0.0 for s in stats)


def test_stale_and_double_collect_guards(tiny_db, tiny_spectra):
    """Misusing the split-round protocol raises PipelineError, and the
    session keeps working afterwards."""
    from repro.parallel.worker import QueryTask, service_query_worker

    with SearchService(tiny_db, ServiceConfig(n_workers=2)) as service:
        results, _ = service.submit(tiny_spectra)
        pool = service._pool
        task = QueryTask(spectra_dir="/nonexistent", n_spectra=1, top_k=5)
        handle = pool.dispatch(service_query_worker, [task, task])
        with pytest.raises(PipelineError, match="already on the pipe"):
            pool.dispatch(service_query_worker, [task, task])
        with pytest.raises(WorkerError):
            handle.collect()
        with pytest.raises(PipelineError, match="already collected"):
            handle.collect()
        # The service rides the same pool and still works.
        results, stats = service.submit(tiny_spectra)
        assert stats.respawned == 0
