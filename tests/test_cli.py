"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import build_parser, main
from repro.db.fasta import read_fasta, read_grouped_fasta
from repro.search.report import read_psm_report
from repro.spectra.ms2 import read_ms2


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A generated data directory shared by the CLI tests."""
    out = tmp_path_factory.mktemp("cli")
    rc = main([
        "generate", "--out-dir", str(out),
        "--families", "4", "--spectra", "12", "--seed", "5",
    ])
    assert rc == 0
    return out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["search", "--fasta", "x", "--ms2", "y",
                                   "--policy", "bogus"])


def test_generate_outputs(workspace):
    records = list(read_fasta(workspace / "proteome.fasta"))
    spectra = list(read_ms2(workspace / "run.ms2"))
    assert len(records) >= 4
    assert len(spectra) == 12


def test_digest_command(workspace):
    out = workspace / "peptides.fasta"
    rc = main([
        "digest", "--fasta", str(workspace / "proteome.fasta"),
        "--out", str(out),
    ])
    assert rc == 0
    peptides = list(read_fasta(out))
    assert len(peptides) > 50
    seqs = [p.sequence for p in peptides]
    assert len(set(seqs)) == len(seqs)  # deduplicated


def test_group_command(workspace):
    peptides = workspace / "peptides.fasta"
    if not peptides.exists():
        main(["digest", "--fasta", str(workspace / "proteome.fasta"),
              "--out", str(peptides)])
    out = workspace / "clustered.fasta"
    rc = main(["group", "--fasta", str(peptides), "--out", str(out),
               "--criterion", "2", "--gsize", "20"])
    assert rc == 0
    seqs, sizes = read_grouped_fasta(out)
    assert sum(sizes) == len(seqs)
    assert max(sizes) <= 20


def test_search_command_with_report(workspace, capsys):
    report = workspace / "psms.tsv"
    rc = main([
        "search",
        "--fasta", str(workspace / "proteome.fasta"),
        "--ms2", str(workspace / "run.ms2"),
        "--ranks", "3", "--policy", "cyclic",
        "--report", str(report),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cPSMs" in out and "LI" in out
    psms = read_psm_report(report)
    assert psms
    scans = {p.scan_id for p in psms}
    assert scans <= set(range(1, 13))


def test_search_process_backend_matches_simulated(workspace, capsys):
    """--backend process returns the same PSM report as simulated."""
    sim_report = workspace / "psms_sim.tsv"
    proc_report = workspace / "psms_proc.tsv"
    common = [
        "search",
        "--fasta", str(workspace / "proteome.fasta"),
        "--ms2", str(workspace / "run.ms2"),
        "--ranks", "2", "--policy", "cyclic",
    ]
    assert main(common + ["--report", str(sim_report)]) == 0
    assert main(
        common + ["--backend", "process", "--report", str(proc_report)]
    ) == 0
    out = capsys.readouterr().out
    assert "backend: process" in out and "(real)" in out
    sim = [(p.scan_id, p.entry_id, p.score) for p in read_psm_report(sim_report)]
    proc = [(p.scan_id, p.entry_id, p.score) for p in read_psm_report(proc_report)]
    assert sim == proc


def test_search_lpt_policy(workspace, capsys):
    rc = main([
        "search",
        "--fasta", str(workspace / "proteome.fasta"),
        "--ms2", str(workspace / "run.ms2"),
        "--ranks", "2", "--policy", "lpt",
    ])
    assert rc == 0
    assert "policy lpt" in capsys.readouterr().out


def test_search_compare_policies(workspace, capsys):
    rc = main([
        "search",
        "--fasta", str(workspace / "proteome.fasta"),
        "--ms2", str(workspace / "run.ms2"),
        "--ranks", "2", "--compare-policies",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    for policy in ("chunk", "cyclic", "random", "lpt"):
        assert policy in out


def test_serve_command_matches_search(workspace, capsys):
    """`serve` over three batches equals one-shot `search` per batch."""
    report_dir = workspace / "serve_reports"
    oneshot = workspace / "psms_oneshot.tsv"
    rc = main([
        "serve",
        "--fasta", str(workspace / "proteome.fasta"),
        "--batch", str(workspace / "run.ms2"),
        "--batch", str(workspace / "run.ms2"),
        "--batch", str(workspace / "run.ms2"),
        "--ranks", "2", "--policy", "cyclic",
        "--report-dir", str(report_dir),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resident workers" in out and "steady-state batch latency" in out
    assert main([
        "search",
        "--fasta", str(workspace / "proteome.fasta"),
        "--ms2", str(workspace / "run.ms2"),
        "--ranks", "2", "--policy", "cyclic",
        "--report", str(oneshot),
    ]) == 0
    expected = [
        (p.scan_id, p.entry_id, p.score) for p in read_psm_report(oneshot)
    ]
    for i in range(3):
        got = [
            (p.scan_id, p.entry_id, p.score)
            for p in read_psm_report(report_dir / f"batch_{i:04d}.tsv")
        ]
        assert got == expected


def test_serve_requires_batches(workspace, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(""))
    rc = main(["serve", "--fasta", str(workspace / "proteome.fasta")])
    assert rc == 2
    assert "no batches" in capsys.readouterr().err


def test_serve_requires_exactly_one_database_source(workspace):
    with pytest.raises(SystemExit, match="exactly one"):
        main(["serve", "--batch", str(workspace / "run.ms2")])
    with pytest.raises(SystemExit, match="exactly one"):
        main([
            "serve", "--fasta", str(workspace / "proteome.fasta"),
            "--index", str(workspace / "nope.npz"),
            "--batch", str(workspace / "run.ms2"),
        ])


def test_serve_pipeline_matches_sequential(workspace, capsys):
    """--pipeline streams the same batches and writes identical PSMs."""
    seq_dir = workspace / "serve_seq"
    pipe_dir = workspace / "serve_pipe"
    common = [
        "serve",
        "--fasta", str(workspace / "proteome.fasta"),
        "--batch", str(workspace / "run.ms2"),
        "--batch", str(workspace / "run.ms2"),
        "--batch", str(workspace / "run.ms2"),
        "--ranks", "2", "--policy", "cyclic",
    ]
    assert main(common + ["--report-dir", str(seq_dir)]) == 0
    assert main(common + ["--pipeline", "--report-dir", str(pipe_dir)]) == 0
    out = capsys.readouterr().out
    assert "pipelined submits" in out and "pipeline: depth up to" in out
    for i in range(3):
        seq = [
            (p.scan_id, p.entry_id, p.score)
            for p in read_psm_report(seq_dir / f"batch_{i:04d}.tsv")
        ]
        pipe = [
            (p.scan_id, p.entry_id, p.score)
            for p in read_psm_report(pipe_dir / f"batch_{i:04d}.tsv")
        ]
        assert seq == pipe and seq


def test_index_then_serve_from_archive_matches_fasta_start(workspace, capsys):
    """`repro index` + `serve --index` equals `serve --fasta` exactly:
    the archive start path plans and searches identically."""
    archive = workspace / "saved_index.npz"
    rc = main([
        "index", "--fasta", str(workspace / "proteome.fasta"),
        "--out", str(archive),
    ])
    assert rc == 0
    assert "memmap-ready" in capsys.readouterr().out
    fasta_dir = workspace / "serve_from_fasta"
    index_dir = workspace / "serve_from_index"
    tail = [
        "--batch", str(workspace / "run.ms2"),
        "--batch", str(workspace / "run.ms2"),
        "--ranks", "2", "--policy", "cyclic",
    ]
    assert main(
        ["serve", "--fasta", str(workspace / "proteome.fasta")]
        + tail + ["--report-dir", str(fasta_dir)]
    ) == 0
    assert main(
        ["serve", "--index", str(archive)]
        + tail + ["--report-dir", str(index_dir)]
    ) == 0
    assert "from index archive" in capsys.readouterr().out
    for i in range(2):
        from_fasta = [
            (p.scan_id, p.entry_id, p.score)
            for p in read_psm_report(fasta_dir / f"batch_{i:04d}.tsv")
        ]
        from_index = [
            (p.scan_id, p.entry_id, p.score)
            for p in read_psm_report(index_dir / f"batch_{i:04d}.tsv")
        ]
        assert from_fasta == from_index and from_fasta


def test_figures_command(capsys):
    rc = main(["figures", "--sizes", "0.7", "--spectra", "8", "--seed", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out and "Fig. 8" in out and "Fig. 11" in out
    assert "chunk" in out and "cyclic" in out


def test_serve_resilience_flags_parse():
    args = build_parser().parse_args([
        "serve", "--fasta", "x", "--batch", "y",
        "--max-retries", "3", "--degraded-ok", "--hedge-after", "0.5",
    ])
    assert args.max_retries == 3
    assert args.degraded_ok is True
    assert args.hedge_after == 0.5
    # Defaults: one retry, fail loud, no hedging.
    args = build_parser().parse_args(["serve", "--fasta", "x", "--batch", "y"])
    assert args.max_retries == 1
    assert args.degraded_ok is False
    assert args.hedge_after is None


def test_serve_table_has_resilience_columns(workspace, capsys):
    rc = main([
        "serve", "--fasta", str(workspace / "proteome.fasta"),
        "--ranks", "2", "--batch", str(workspace / "run.ms2"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    header = next(line for line in out.splitlines() if "retries" in line)
    for column in ("retries", "hedged", "respawn", "degraded"):
        assert column in header


def test_worker_error_prints_one_line_diagnosis(capsys, monkeypatch):
    """A WorkerError reaching main() becomes a one-line stderr
    diagnosis (rank, exit code, retry count) + exit 1 — no traceback."""
    import repro.cli as cli
    from repro.errors import ServiceError, WorkerError

    def boom(args):
        raise WorkerError(
            "worker 1 died mid-batch without reporting (exit code 23)",
            rank=1, exit_code=23, retries=2,
        )

    monkeypatch.setitem(cli._COMMANDS, "figures", boom)
    assert main(["figures"]) == 1
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "repro figures:" in err
    assert "rank 1" in err and "exit code 23" in err and "2 retries" in err

    def misuse(args):
        raise ServiceError("submit on a closed service")

    monkeypatch.setitem(cli._COMMANDS, "figures", misuse)
    assert main(["figures"]) == 1
    err = capsys.readouterr().err
    assert err.strip() == "repro figures: submit on a closed service"
