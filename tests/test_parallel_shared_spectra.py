"""SharedSpectraStore: spill → reopen bit-identity and safety rails.

A spilled query batch must reopen as exactly the spectra that went in
(scan ids, precursors, charges, peaks, ground-truth labels), with the
peak arrays backed read-only by the store's files — that is what lets
N resident workers share one physical copy per batch.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FormatError
from repro.parallel import SharedSpectraStore
from repro.spectra.preprocess import preprocess_batch, spectra_peak_bytes


@pytest.fixture(scope="module")
def spilled(tiny_spectra, tmp_path_factory):
    directory = tmp_path_factory.mktemp("spectra") / "batch"
    processed = preprocess_batch(tiny_spectra)
    store = SharedSpectraStore.spill(processed, directory)
    return processed, store


def test_roundtrip_is_bit_identical(spilled):
    processed, store = spilled
    reopened = SharedSpectraStore.open(store.directory).load()
    assert len(reopened) == len(processed)
    for a, b in zip(processed, reopened):
        assert a.scan_id == b.scan_id
        assert a.precursor_mz == b.precursor_mz
        assert a.charge == b.charge
        assert a.true_peptide == b.true_peptide
        assert np.array_equal(a.mzs, b.mzs)
        assert np.array_equal(a.intensities, b.intensities)


def test_loaded_peaks_are_readonly_memmaps(spilled):
    processed, store = spilled
    spectra = store.load(mmap_mode="r")
    with pytest.raises((ValueError, RuntimeError)):
        spectra[0].mzs[0] = 1.0
    # Copy-on-write mode scribbles on private pages, never the store.
    cow = store.load(mmap_mode="c")
    original = float(cow[0].mzs[0])
    cow[0].mzs[0] = original + 1.0
    fresh = store.load(mmap_mode="r")
    assert float(fresh[0].mzs[0]) == original == float(processed[0].mzs[0])


def test_invalid_mmap_mode_rejected(spilled):
    _, store = spilled
    with pytest.raises(ConfigurationError, match="mmap_mode"):
        store.load(mmap_mode="r+")


def test_manifest_counts(spilled):
    processed, store = spilled
    assert store.n_spectra == len(processed)
    assert store.n_peaks == sum(s.n_peaks for s in processed)
    # Peak payload dominates the on-disk footprint.
    assert store.nbytes() >= spectra_peak_bytes(processed)


def test_empty_batch_rejected(tmp_path):
    with pytest.raises(ConfigurationError, match="empty"):
        SharedSpectraStore.spill([], tmp_path / "empty")


def test_open_requires_manifest(tmp_path):
    with pytest.raises(FormatError, match="missing manifest"):
        SharedSpectraStore.open(tmp_path)
    assert not SharedSpectraStore.exists(tmp_path)


def test_missing_array_file_is_diagnosed(spilled, tmp_path):
    processed, _ = spilled
    directory = tmp_path / "torn"
    store = SharedSpectraStore.spill(processed, directory)
    (directory / "peak_mzs.npy").unlink()
    with pytest.raises(FormatError, match="missing"):
        store.load()
