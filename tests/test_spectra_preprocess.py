"""Tests for query-spectrum preprocessing (top-N peak picking)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import PreprocessConfig, preprocess_batch, preprocess_spectrum


def make(mzs, intens):
    return Spectrum(
        scan_id=1, precursor_mz=500.0, charge=2,
        mzs=np.asarray(mzs, float), intensities=np.asarray(intens, float),
    )


def test_keeps_top_n_by_intensity():
    s = make([100, 200, 300, 400], [0.1, 0.9, 0.5, 0.7])
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=2, normalize=False))
    assert np.array_equal(out.mzs, [200.0, 400.0])
    assert np.array_equal(out.intensities, [0.9, 0.7])


def test_output_sorted_by_mz():
    s = make([100, 200, 300, 400, 500], [0.5, 0.9, 0.1, 0.8, 0.7])
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=3))
    assert np.all(np.diff(out.mzs) >= 0)


def test_fewer_peaks_than_n_kept():
    s = make([100, 200], [1.0, 0.5])
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=100))
    assert out.n_peaks == 2


def test_normalization():
    s = make([100, 200], [2.0, 4.0])
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=10, normalize=True))
    assert out.intensities.max() == 1.0
    assert np.allclose(out.intensities, [0.5, 1.0])


def test_no_normalization():
    s = make([100, 200], [2.0, 4.0])
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=10, normalize=False))
    assert np.allclose(out.intensities, [2.0, 4.0])


def test_min_mz_filter():
    s = make([50, 150, 250], [1.0, 1.0, 1.0])
    out = preprocess_spectrum(s, PreprocessConfig(min_mz=100.0))
    assert np.array_equal(out.mzs, [150.0, 250.0])


def test_intensity_tie_broken_by_mz():
    s = make([300, 100, 200], [0.5, 0.5, 0.5])
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=2, normalize=False))
    assert np.array_equal(out.mzs, [100.0, 200.0])  # lower m/z wins ties


def test_metadata_preserved():
    s = Spectrum(7, 444.4, 3, np.array([100.0]), np.array([1.0]), true_peptide=5)
    out = preprocess_spectrum(s)
    assert (out.scan_id, out.precursor_mz, out.charge, out.true_peptide) == (
        7, 444.4, 3, 5,
    )


def test_original_not_mutated():
    s = make([100, 200, 300], [0.3, 0.2, 0.1])
    preprocess_spectrum(s, PreprocessConfig(top_peaks=1))
    assert s.n_peaks == 3


def test_empty_spectrum_passthrough():
    s = make([], [])
    out = preprocess_spectrum(s)
    assert out.n_peaks == 0


def test_batch():
    spectra = [make([100, 200], [1.0, 0.5]) for _ in range(3)]
    out = preprocess_batch(spectra, PreprocessConfig(top_peaks=1))
    assert all(s.n_peaks == 1 for s in out)


def _assert_batch_matches_per_spectrum(spectra, config):
    ref = [preprocess_spectrum(s, config) for s in spectra]
    got = preprocess_batch(spectra, config)
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert a.scan_id == b.scan_id
        assert np.array_equal(a.mzs, b.mzs)
        assert np.array_equal(a.intensities, b.intensities)


def test_batch_kernel_bit_identical_mixed_shapes():
    """The argpartition kernel must match the sort-based reference for
    mixed row widths, empties, and both batch branches at once."""
    rng = np.random.default_rng(3)
    spectra = []
    for i, n in enumerate([0, 1, 3, 7, 40, 120, 5, 250]):
        spectra.append(
            Spectrum(
                scan_id=i, precursor_mz=500.0, charge=2,
                mzs=rng.uniform(50.0, 2000.0, n),
                intensities=rng.uniform(0.0, 10.0, n),
            )
        )
    for config in (
        PreprocessConfig(top_peaks=10),
        PreprocessConfig(top_peaks=100, normalize=False),
        PreprocessConfig(top_peaks=3, min_mz=400.0),
        PreprocessConfig(top_peaks=1),
    ):
        _assert_batch_matches_per_spectrum(spectra, config)


def test_batch_kernel_bit_identical_under_heavy_ties():
    """Quantized m/z and intensity grids force boundary ties in both
    sort keys — the tie-resolution path must match exactly."""
    rng = np.random.default_rng(11)
    for trial in range(30):
        spectra = []
        for i in range(int(rng.integers(1, 9))):
            n = int(rng.integers(0, 30))
            spectra.append(
                Spectrum(
                    scan_id=i, precursor_mz=500.0, charge=2,
                    mzs=rng.integers(1, 12, n).astype(float) * 75.0,
                    intensities=rng.integers(0, 4, n).astype(float),
                )
            )
        config = PreprocessConfig(
            top_peaks=int(rng.integers(1, 10)),
            min_mz=float(rng.choice([0.0, 150.0])),
            normalize=bool(rng.integers(0, 2)),
        )
        _assert_batch_matches_per_spectrum(spectra, config)


def test_batch_outputs_own_their_arrays():
    """Batched outputs never alias the inputs (mutating one must not
    touch the other), exactly like the per-spectrum path."""
    s = make([100, 200], [1.0, 0.5])
    (out,) = preprocess_batch([s], PreprocessConfig(top_peaks=10, normalize=False))
    out.mzs[0] = 1.0
    out.intensities[0] = 99.0
    assert s.mzs[0] == 100.0 and s.intensities[0] == 1.0


@given(
    st.lists(
        st.lists(
            st.tuples(
                st.floats(min_value=50.0, max_value=2000.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=0,
            max_size=30,
        ),
        min_size=1,
        max_size=6,
    ),
    st.integers(min_value=1, max_value=12),
)
def test_batch_property_bit_identical(rows, n):
    spectra = [
        make([p[0] for p in row], [p[1] for p in row])
        for i, row in enumerate(rows)
    ]
    _assert_batch_matches_per_spectrum(spectra, PreprocessConfig(top_peaks=n))


@pytest.mark.parametrize("kwargs", [{"top_peaks": 0}, {"min_mz": -1.0}])
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        PreprocessConfig(**kwargs)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=50.0, max_value=2000.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=1,
        max_size=60,
        unique_by=lambda t: t[0],
    ),
    st.integers(min_value=1, max_value=20),
)
def test_topn_property(peaks, n):
    mzs = [p[0] for p in peaks]
    intens = [p[1] for p in peaks]
    s = make(mzs, intens)
    out = preprocess_spectrum(s, PreprocessConfig(top_peaks=n, normalize=False))
    assert out.n_peaks == min(n, len(peaks))
    # Retained peaks are exactly the n most intense ones.
    kept = sorted(out.intensities.tolist(), reverse=True)
    expected = sorted(intens, reverse=True)[: out.n_peaks]
    assert np.allclose(sorted(kept), sorted(expected))
    assert np.all(np.diff(out.mzs) >= 0)
