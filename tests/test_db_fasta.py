"""Tests for FASTA io, including the grouped/clustered flavour."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.db.fasta import (
    FastaRecord,
    fasta_to_string,
    read_fasta,
    read_grouped_fasta,
    write_fasta,
    write_grouped_fasta,
)
from repro.errors import FormatError


def roundtrip(records):
    return list(read_fasta(io.StringIO(fasta_to_string(records))))


def test_roundtrip_single():
    recs = [FastaRecord("p1", "PEPTIDE")]
    assert roundtrip(recs) == recs


def test_roundtrip_many():
    recs = [FastaRecord(f"p{i}", "ACDEFGHIK" * (i + 1)) for i in range(5)]
    assert roundtrip(recs) == recs


def test_long_sequence_wrapped():
    text = fasta_to_string([FastaRecord("p", "A" * 150)])
    body = [l for l in text.splitlines() if not l.startswith(">")]
    assert all(len(l) <= 60 for l in body)
    assert "".join(body) == "A" * 150


def test_lowercase_sequences_uppercased():
    recs = list(read_fasta(io.StringIO(">p\npeptide\n")))
    assert recs[0].sequence == "PEPTIDE"


def test_blank_lines_ignored():
    recs = list(read_fasta(io.StringIO(">p\n\nPEP\n\nTIDE\n")))
    assert recs[0].sequence == "PEPTIDE"


def test_sequence_before_header_rejected():
    with pytest.raises(FormatError, match="before the first"):
        list(read_fasta(io.StringIO("PEPTIDE\n>p\nAAA\n")))


def test_empty_record_rejected():
    with pytest.raises(FormatError, match="empty sequence"):
        list(read_fasta(io.StringIO(">p1\n>p2\nAAA\n")))


def test_write_returns_count():
    buf = io.StringIO()
    assert write_fasta(buf, [FastaRecord("a", "AA"), FastaRecord("b", "CC")]) == 2


def test_file_roundtrip(tmp_path):
    path = tmp_path / "db.fasta"
    recs = [FastaRecord("p1", "PEPTIDE"), FastaRecord("p2", "ACDEFGHIK")]
    write_fasta(path, recs)
    assert list(read_fasta(path)) == recs


def test_grouped_roundtrip():
    seqs = ["AAA", "AAC", "CCC", "GGG", "GGA"]
    sizes = [2, 1, 2]
    buf = io.StringIO()
    assert write_grouped_fasta(buf, seqs, sizes) == 5
    buf.seek(0)
    out_seqs, out_sizes = read_grouped_fasta(buf)
    assert out_seqs == seqs
    assert out_sizes == sizes


def test_grouped_size_mismatch_rejected():
    with pytest.raises(FormatError, match="group sizes sum"):
        write_grouped_fasta(io.StringIO(), ["A", "C"], [3])


def test_grouped_empty_group_rejected():
    with pytest.raises(FormatError, match="at least one sequence"):
        write_grouped_fasta(io.StringIO(), ["AC"], [0, 1])


def test_grouped_noncontiguous_ids_rejected():
    text = ">grp0|pep0\nAAA\n>grp2|pep1\nCCC\n"
    with pytest.raises(FormatError, match="contiguous"):
        read_grouped_fasta(io.StringIO(text))


def test_grouped_bad_prefix_rejected():
    with pytest.raises(FormatError, match="grp"):
        read_grouped_fasta(io.StringIO(">cluster0|x\nAAA\n"))


def test_grouped_non_integer_id_rejected():
    with pytest.raises(FormatError, match="non-integer"):
        read_grouped_fasta(io.StringIO(">grpX|p\nAAA\n"))


@given(
    st.lists(
        st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=80),
        min_size=1,
        max_size=20,
    )
)
def test_roundtrip_property(seqs):
    recs = [FastaRecord(f"h{i}", s) for i, s in enumerate(seqs)]
    assert roundtrip(recs) == recs


@given(st.data())
def test_grouped_roundtrip_property(data):
    seqs = data.draw(
        st.lists(
            st.text(alphabet="ACDEFGHIK", min_size=1, max_size=20),
            min_size=1,
            max_size=15,
        )
    )
    # Random partition of len(seqs) into positive sizes.
    sizes = []
    remaining = len(seqs)
    while remaining:
        take = data.draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(take)
        remaining -= take
    buf = io.StringIO()
    write_grouped_fasta(buf, seqs, sizes)
    buf.seek(0)
    assert read_grouped_fasta(buf) == (seqs, sizes)
