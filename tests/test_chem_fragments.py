"""Tests for theoretical b/y fragment generation."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.chem.fragments import FragmentationSettings, fragment_mzs, theoretical_spectrum
from repro.chem.peptide import Peptide
from repro.constants import AA_MONO, ALPHABET, PROTON, WATER_MONO
from repro.errors import ConfigurationError

SEQUENCES = st.text(alphabet=ALPHABET, min_size=2, max_size=30)


def test_dipeptide_fragments_by_hand():
    # AG: b1 = A + proton; y1 = G + water + proton.
    mzs = fragment_mzs(Peptide("AG"))
    expected = sorted(
        [AA_MONO["A"] + PROTON, AA_MONO["G"] + WATER_MONO + PROTON]
    )
    assert np.allclose(mzs, expected)


def test_fragment_count_b_and_y():
    pep = Peptide("PEPTIDEK")
    mzs = fragment_mzs(pep)
    assert mzs.size == 2 * (pep.length - 1)


def test_single_residue_has_no_fragments():
    assert fragment_mzs(Peptide("K")).size == 0


def test_fragments_sorted():
    mzs = fragment_mzs(Peptide("PEPTIDEKR"))
    assert np.all(np.diff(mzs) >= 0)


def test_modification_shifts_prefix_fragments():
    plain = fragment_mzs(Peptide("AGK"))
    modded = fragment_mzs(Peptide("AGK", ((0, 10.0),)))
    # b1 and b2 shift by +10; y1, y2 unchanged -> sets differ.
    assert not np.allclose(np.sort(plain), np.sort(modded))
    # Total ion count unchanged.
    assert plain.size == modded.size


def test_mod_on_terminal_residue_shifts_y_series():
    plain = set(np.round(fragment_mzs(Peptide("AGK")), 6))
    modded = set(np.round(fragment_mzs(Peptide("AGK", ((2, 10.0),))), 6))
    shifted = {round(m + 10.0, 6) for m in plain}
    # y ions shift, b ions do not; intersection keeps the b series.
    assert plain & modded  # unshifted b ions survive
    assert modded & shifted  # shifted y ions appear


def test_charge_two_fragments():
    s1 = FragmentationSettings(charges=(1,))
    s2 = FragmentationSettings(charges=(1, 2))
    pep = Peptide("PEPTIDEK")
    assert fragment_mzs(pep, s2).size == 2 * fragment_mzs(pep, s1).size


def test_b_only_and_y_only():
    pep = Peptide("PEPTIDEK")
    b = fragment_mzs(pep, FragmentationSettings(include_y=False))
    y = fragment_mzs(pep, FragmentationSettings(include_b=False))
    both = fragment_mzs(pep)
    assert b.size == y.size == pep.length - 1
    assert np.allclose(np.sort(np.concatenate([b, y])), both)


def test_invalid_settings_rejected():
    with pytest.raises(ConfigurationError):
        FragmentationSettings(charges=())
    with pytest.raises(ConfigurationError):
        FragmentationSettings(charges=(0,))
    with pytest.raises(ConfigurationError):
        FragmentationSettings(include_b=False, include_y=False)


def test_ions_per_residue():
    assert FragmentationSettings().ions_per_residue == 2.0
    assert FragmentationSettings(charges=(1, 2)).ions_per_residue == 4.0
    assert FragmentationSettings(include_y=False).ions_per_residue == 1.0


def test_theoretical_spectrum_shapes():
    mzs, intens = theoretical_spectrum(Peptide("PEPTIDEK"))
    assert mzs.shape == intens.shape
    assert intens.max() == 1.0
    assert np.all(intens > 0)


def test_theoretical_spectrum_empty_for_single_residue():
    mzs, intens = theoretical_spectrum(Peptide("K"))
    assert mzs.size == 0 and intens.size == 0


@given(SEQUENCES)
def test_b_y_sum_identity(seq):
    """b_i + y_(L-i) = precursor neutral mass + 2 protons + water...

    Precisely: b_i + y_{L-i} = M + 2*PROTON where M is the neutral
    peptide mass (b contributes prefix + proton, y contributes
    suffix + water + proton; prefix + suffix + water = M).
    """
    pep = Peptide(seq)
    settings = FragmentationSettings()
    b = fragment_mzs(pep, FragmentationSettings(include_y=False))
    y = fragment_mzs(pep, FragmentationSettings(include_b=False))
    total = pep.mass + 2 * PROTON
    # b ions ascend with prefix length; y ions ascend with suffix length,
    # so pair b_i with y_{L-i} = sorted(y)[L-1-i-1]... simplest: check sums
    # as multisets.
    sums = np.sort(b)[:, None] + np.sort(y)[None, ::-1]
    diag = np.diagonal(sums)
    assert np.allclose(diag, total, atol=1e-6)


@given(SEQUENCES)
def test_fragments_positive_and_bounded(seq):
    pep = Peptide(seq)
    mzs = fragment_mzs(pep)
    assert np.all(mzs > 0)
    assert np.all(mzs < pep.mass + 2 * PROTON)
