"""Tests for the flat CSR fragment arena and its bit-identity guarantees.

The arena refactor must be invisible in results: every score, matched
count, work counter, and top-k ordering must equal what the pre-arena
per-peptide-array path produces.  The legacy assembly path is still in
``score_candidates`` (no ``arena``), and ``filter_bruteforce`` is the
pre-CSR filtration reference, so these tests pin the hot path against
both — across policies, rank counts, and the awkward edge cases
(zero candidates, zero-fragment peptides, empty spectra).
"""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.chem.fragments import FragmentationSettings, fragment_mzs
from repro.chem.peptide import Peptide
from repro.errors import ConfigurationError
from repro.index.arena import FragmentArena, Workspace, concat_ranges
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.search.database import IndexedDatabase
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.scoring import score_candidates, score_many
from repro.search.serial import SerialSearchEngine
from repro.spectra.model import Spectrum
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

PEPTIDES = [
    Peptide("AAAGGGK"),
    Peptide("A"),  # single residue: zero fragments
    Peptide("CCDDEEK"),
    Peptide("MMNNQQR"),
    Peptide("WWYYFFK"),
]


def spectrum_of(peptide, scan=1, charge=2):
    from repro.constants import PROTON

    mzs = fragment_mzs(peptide)
    return Spectrum(
        scan_id=scan,
        precursor_mz=(peptide.mass + charge * PROTON) / charge,
        charge=charge,
        mzs=mzs,
        intensities=np.ones_like(mzs),
    )


# -- concat_ranges -----------------------------------------------------


@hsettings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 20)), min_size=0, max_size=12
    )
)
def test_concat_ranges_matches_naive(pairs):
    starts = np.array([a for a, _ in pairs], dtype=np.int64)
    stops = starts + np.array([w for _, w in pairs], dtype=np.int64)
    expected = (
        np.concatenate(
            [np.arange(a, b, dtype=np.int64) for a, b in zip(starts, stops)]
        )
        if pairs
        else np.empty(0, dtype=np.int64)
    )
    got = concat_ranges(starts, stops)
    assert np.array_equal(got, expected)
    # Workspace variant returns the same values as a scratch view.
    ws = Workspace()
    got_ws = concat_ranges(starts, stops, workspace=ws)
    assert np.array_equal(got_ws, expected)


def test_concat_ranges_skips_empty_and_reversed():
    got = concat_ranges(np.array([5, 9, 2]), np.array([5, 12, 1]))
    assert got.tolist() == [9, 10, 11]


def test_concat_ranges_workspace_result_is_fresh():
    """The branch-free kernel returns a new array every call — keeping
    a previous result across calls must be safe (only the iota scratch
    is shared, and it is read-only by convention)."""
    ws = Workspace()
    first = concat_ranges(np.array([3]), np.array([6]), workspace=ws)
    second = concat_ranges(np.array([10]), np.array([13]), workspace=ws)
    assert first.tolist() == [3, 4, 5]
    assert second.tolist() == [10, 11, 12]
    second[0] = -1  # mutating one result must not corrupt the other
    assert first.tolist() == [3, 4, 5]


def test_workspace_reuses_and_grows():
    ws = Workspace()
    a = ws.take("x", 10, np.int64)
    b = ws.take("x", 8, np.int64)
    assert a.base is b.base  # same backing buffer
    big = ws.take("x", 100_000, np.int64)
    assert big.size == 100_000
    f = ws.take("x", 8, np.float64)  # same name, new dtype → distinct buffer
    assert f.dtype == np.float64


# -- arena structure ---------------------------------------------------


def test_arena_matches_per_peptide_arrays():
    arena = FragmentArena.from_peptides(PEPTIDES)
    assert arena.n_entries == len(PEPTIDES)
    expected = [fragment_mzs(p) for p in PEPTIDES]
    assert arena.n_ions == sum(a.size for a in expected)
    for i, exp in enumerate(expected):
        assert np.array_equal(arena.fragments_of(i), exp)
        assert np.array_equal(arena.views()[i], exp)
    assert arena.counts.tolist() == [a.size for a in expected]
    assert arena.counts[1] == 0  # zero-fragment peptide
    assert arena.lengths.tolist() == [p.length for p in PEPTIDES]
    assert np.array_equal(
        arena.masses, np.array([p.mass for p in PEPTIDES], dtype=np.float32)
    )


def test_arena_views_are_zero_copy_and_cached():
    arena = FragmentArena.from_peptides(PEPTIDES)
    views = arena.views()
    assert views is arena.views()
    assert views[0].base is arena.mzs


def test_arena_buckets_cached_per_resolution():
    arena = FragmentArena.from_peptides(PEPTIDES)
    b1 = arena.buckets_for(0.01)
    assert arena.buckets_for(0.01) is b1
    expected = np.floor(arena.mzs * (1.0 / 0.01)).astype(np.int64)
    assert np.array_equal(b1, expected)
    assert not np.array_equal(arena.buckets_for(0.5), b1)


def test_arena_take_gathers_everything():
    arena = FragmentArena.from_peptides(PEPTIDES)
    arena.buckets_for(0.01)
    ids = np.array([4, 1, 2], dtype=np.int64)
    sub = arena.take(ids)
    assert sub.n_entries == 3
    for j, i in enumerate(ids):
        assert np.array_equal(sub.fragments_of(j), arena.fragments_of(int(i)))
    assert sub.lengths.tolist() == [PEPTIDES[int(i)].length for i in ids]
    assert np.array_equal(sub.masses, arena.masses[ids])
    # bucket cache travels with the selection
    assert np.array_equal(sub.buckets_for(0.01), arena.buckets_for(0.01)[
        concat_ranges(arena.offsets[ids], arena.offsets[ids + 1])
    ])


def test_arena_gather_flat_with_duplicates():
    arena = FragmentArena.from_peptides(PEPTIDES)
    ids = np.array([2, 2, 1, 0], dtype=np.int64)
    flat, sizes = arena.gather_flat(ids)
    expected = np.concatenate([fragment_mzs(PEPTIDES[int(i)]) for i in ids])
    assert np.array_equal(flat, expected)
    assert sizes.tolist() == [arena.counts[int(i)] for i in ids]


def test_arena_validation():
    with pytest.raises(ConfigurationError):
        FragmentArena(np.zeros(3), np.array([0, 2]))  # offsets end short
    with pytest.raises(ConfigurationError):
        FragmentArena(np.zeros(2), np.array([1, 2]))  # offsets not 0-based
    with pytest.raises(ConfigurationError):
        FragmentArena(np.zeros(2), np.array([0, 2]), lengths=np.array([1, 2]))
    with pytest.raises(ConfigurationError, match="arena covers"):
        SLMIndex(PEPTIDES, arena=FragmentArena.from_peptides(PEPTIDES[:2]))


def test_empty_arena():
    arena = FragmentArena.from_peptides([])
    assert arena.n_entries == 0
    assert arena.n_ions == 0
    sub = arena.take(np.empty(0, dtype=np.int64))
    assert sub.n_entries == 0
    idx = SLMIndex([], arena=arena)
    assert idx.n_ions == 0


# -- index construction equivalence ------------------------------------


def test_index_from_arena_identical_to_legacy_paths():
    settings = SLMIndexSettings(shared_peak_threshold=2)
    arena = FragmentArena.from_peptides(PEPTIDES)
    plain = SLMIndex(PEPTIDES, settings)
    frags = SLMIndex(PEPTIDES, settings, fragments=[fragment_mzs(p) for p in PEPTIDES])
    via_arena = SLMIndex(PEPTIDES, settings, arena=arena)
    for other in (frags, via_arena):
        assert np.array_equal(plain.ion_parents, other.ion_parents)
        assert np.array_equal(plain.bucket_offsets, other.bucket_offsets)
        assert np.array_equal(plain.masses, other.masses)


def test_ions_of_constant_time_values():
    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=2))
    for i, p in enumerate(PEPTIDES):
        expected = 0 if p.length < 2 else 2 * (p.length - 1)
        assert idx.ions_of(i) == expected
        # O(1) path must agree with counting the CSR parents.
        assert idx.ions_of(i) == int(np.count_nonzero(idx.ion_parents == i))
    assert idx.ions_of(-1) == 0
    assert idx.ions_of(len(PEPTIDES)) == 0


def test_filter_many_matches_filter():
    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=1))
    spectra = [spectrum_of(p, scan=i) for i, p in enumerate(PEPTIDES) if p.length > 1]
    spectra.append(Spectrum(99, 500.0, 2, np.array([]), np.array([])))
    batched = idx.filter_many(spectra)
    for s, got in zip(spectra, batched):
        one = idx.filter(s)
        assert np.array_equal(got.candidates, one.candidates)
        assert np.array_equal(got.shared_peaks, one.shared_peaks)
        assert got.buckets_scanned == one.buckets_scanned
        assert got.ions_scanned == one.ions_scanned


# -- scoring equivalence -----------------------------------------------


def test_score_arena_bit_identical_to_legacy():
    arena = FragmentArena.from_peptides(PEPTIDES)
    q = spectrum_of(PEPTIDES[0])
    cands = np.arange(len(PEPTIDES), dtype=np.int64)
    legacy = score_candidates(q, PEPTIDES, cands, fragment_tolerance=0.05)
    hot = score_candidates(q, None, cands, fragment_tolerance=0.05, arena=arena)
    assert np.array_equal(legacy.scores, hot.scores)
    assert np.array_equal(legacy.n_matched, hot.n_matched)
    assert legacy.candidates_scored == hot.candidates_scored
    assert legacy.residues_scored == hot.residues_scored


def test_score_arena_edge_cases():
    arena = FragmentArena.from_peptides(PEPTIDES)
    empty_q = Spectrum(1, 500.0, 2, np.array([]), np.array([]))
    # zero candidates
    out = score_candidates(
        empty_q, None, np.empty(0, dtype=np.int64), fragment_tolerance=0.05,
        arena=arena,
    )
    assert out.candidates_scored == 0 and out.residues_scored == 0
    # zero-fragment candidate + empty spectrum
    out = score_candidates(
        empty_q, None, np.array([1, 0]), fragment_tolerance=0.05, arena=arena
    )
    legacy = score_candidates(
        empty_q, PEPTIDES, np.array([1, 0]), fragment_tolerance=0.05
    )
    assert np.array_equal(out.scores, legacy.scores)
    assert out.residues_scored == legacy.residues_scored == PEPTIDES[1].length + PEPTIDES[0].length


def test_score_requires_some_fragment_source():
    with pytest.raises(ConfigurationError):
        score_candidates(
            spectrum_of(PEPTIDES[0]), None, np.array([0]), fragment_tolerance=0.05
        )


def test_score_many_matches_individual_calls():
    arena = FragmentArena.from_peptides(PEPTIDES)
    spectra = [spectrum_of(p, scan=i) for i, p in enumerate(PEPTIDES[:3], 1)]
    cand_lists = [
        np.array([0, 2, 4]),
        np.empty(0, dtype=np.int64),
        np.array([1, 3]),
    ]
    outs = score_many(
        spectra, cand_lists, fragment_tolerance=0.05, arena=arena
    )
    for s, c, got in zip(spectra, cand_lists, outs):
        one = score_candidates(s, None, c, fragment_tolerance=0.05, arena=arena)
        assert np.array_equal(got.scores, one.scores)
        assert np.array_equal(got.n_matched, one.n_matched)
    with pytest.raises(ConfigurationError):
        score_many(spectra, cand_lists[:2], fragment_tolerance=0.05, arena=arena)


@hsettings(max_examples=15, deadline=None)
@given(st.data())
def test_score_arena_property_bit_identical(data):
    """Arena scoring == legacy per-candidate assembly on random inputs."""
    seqs = data.draw(
        st.lists(
            st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=12),
            min_size=1,
            max_size=8,
        )
    )
    peptides = [Peptide(s) for s in seqs]
    arena = FragmentArena.from_peptides(peptides)
    n_cands = data.draw(st.integers(min_value=0, max_value=len(peptides)))
    cands = np.array(
        data.draw(
            st.lists(
                st.integers(0, len(peptides) - 1),
                min_size=n_cands,
                max_size=n_cands,
            )
        ),
        dtype=np.int64,
    )
    target = data.draw(st.integers(min_value=0, max_value=len(peptides) - 1))
    q = (
        spectrum_of(peptides[target])
        if peptides[target].length > 1
        else Spectrum(1, 500.0, 2, np.array([]), np.array([]))
    )
    tol = data.draw(st.sampled_from([0.0, 0.01, 0.05]))
    legacy = score_candidates(q, peptides, cands, fragment_tolerance=tol)
    hot = score_candidates(q, None, cands, fragment_tolerance=tol, arena=arena)
    assert np.array_equal(legacy.scores, hot.scores)
    assert np.array_equal(legacy.n_matched, hot.n_matched)
    assert legacy.residues_scored == hot.residues_scored


# -- end-to-end equivalence across policies and rank counts ------------


@pytest.fixture(scope="module")
def equivalence_workload():
    db = IndexedDatabase.from_peptides(
        [
            Peptide(s)
            for s in (
                "AAAGGGKR", "CCDDEEKK", "MMNNQQRL", "WWYYFFKA", "AAAGGGRV",
                "LLPPSSTK", "GGHHIIKK", "VVMMAACR", "TTSSPPLK", "EEDDCCKR",
                "KAVLGGHR", "NNQQMMPK",
            )
        ],
        max_variants_per_peptide=3,
    )
    spectra = generate_run(db.entries, SyntheticRunConfig(n_spectra=8, seed=7))
    return db, spectra


@pytest.mark.parametrize("policy", ["chunk", "cyclic", "random", "lpt"])
@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_serial_distributed_equivalent_post_arena(
    equivalence_workload, policy, n_ranks
):
    """Arena-based serial and distributed searches stay bit-identical:
    same scores, tie-breaking, candidate counts, and summed work
    counters for every policy × rank count."""
    db, spectra = equivalence_workload
    settings = SLMIndexSettings(shared_peak_threshold=2)
    serial = SerialSearchEngine(db, settings).run(spectra)
    dist = DistributedSearchEngine(
        db,
        EngineConfig(n_ranks=n_ranks, policy=policy, index=settings),
    ).run(spectra)
    for sr, dr in zip(serial.spectra, dist.spectra):
        assert sr.n_candidates == dr.n_candidates
        assert [(p.entry_id, p.score, p.shared_peaks) for p in sr.psms] == [
            (p.entry_id, p.score, p.shared_peaks) for p in dr.psms
        ]
    for counter in ("candidates_scored", "residues_scored", "ions_scanned"):
        assert sum(getattr(s, counter) for s in dist.rank_stats) == getattr(
            serial.rank_stats[0], counter
        )


def test_filter_against_bruteforce_with_zero_fragment_peptides():
    """The pre-CSR quadratic reference agrees on a universe containing
    zero-fragment peptides."""
    idx = SLMIndex(PEPTIDES, SLMIndexSettings(shared_peak_threshold=1))
    for p in PEPTIDES:
        if p.length < 2:
            continue
        q = spectrum_of(p)
        fast, slow = idx.filter(q), idx.filter_bruteforce(q)
        assert np.array_equal(fast.candidates, slow.candidates)
        assert np.array_equal(fast.shared_peaks, slow.shared_peaks)
