"""Ablation — pure partition statistics without any search.

Separates *placement* quality from *load* quality: per-rank entry
counts and per-group rank spread for each policy (Section III-D).
Chunk achieves near-equal counts yet terrible load balance because it
never spreads similarity groups — this bench quantifies that
distinction on the 30 M-scale workload.
"""

import numpy as np

from repro.bench.reporting import series_table
from repro.core.partition import make_policy

SIZE_M = 30.0
RANKS = 16

HEADERS = [
    "policy", "count_imbalance_%", "mean_group_spread", "max_group_spread",
]


def _run_partition_stats(suite):
    wl = suite.workload(SIZE_M)
    grouping = wl.database.group_bases()
    rows = []
    for policy_name in ("chunk", "cyclic", "random"):
        assignment = make_policy(policy_name, seed=7).assign(grouping, RANKS)
        spread = assignment.per_group_spread(grouping)
        rows.append(
            (
                policy_name,
                100.0 * assignment.count_imbalance(),
                float(spread.mean()),
                int(spread.max()),
            )
        )
    return rows


def test_ablation_partition_statistics(benchmark, suite):
    rows = benchmark.pedantic(
        _run_partition_stats, args=(suite,), rounds=1, iterations=1
    )
    print()
    print(series_table(
        "Ablation: placement statistics per policy (30M workload, 16 ranks)",
        HEADERS, rows, float_fmt=".2f",
    ))

    stats = {r[0]: r for r in rows}
    # Every policy balances raw counts well...
    for name, count_imb, mean_spread, max_spread in rows:
        assert count_imb < 5.0, f"{name} count imbalance {count_imb:.1f}%"
    # ...but only the fine-grained policies spread similarity groups.
    assert stats["cyclic"][2] > 2.0 * stats["chunk"][2]
    assert stats["random"][2] > 1.5 * stats["chunk"][2]
    assert stats["chunk"][2] < 1.6  # groups stay on ~1 rank under chunk
