"""Figure 6 — normalized load imbalance vs index size, 16 partitions.

Paper: LI stays ≤ 20 % for Cyclic and Random while conventional Chunk
partitioning reaches ~120 % (16 MPI processes, four index sizes).
"""

from collections import defaultdict

from repro.bench.reporting import series_table

HEADERS = ["size_M", "entries", "policy", "LI_%"]


def test_fig6_load_imbalance(benchmark, suite):
    rows = benchmark.pedantic(suite.fig6_rows, rounds=1, iterations=1)
    print()
    print(series_table(
        "Fig. 6: normalized load imbalance, 16 ranks", HEADERS, rows,
        float_fmt=".1f",
    ))

    by_policy = defaultdict(list)
    for _, _, policy, li in rows:
        by_policy[policy].append(li)

    # The paper's headline: balanced policies far below Chunk.
    for policy in ("cyclic", "random"):
        for li in by_policy[policy]:
            assert li <= 35.0, f"{policy} LI {li:.1f}% too high"
    for li in by_policy["chunk"]:
        assert li >= 60.0, f"chunk LI {li:.1f}% suspiciously low"
    # Chunk dominates every balanced policy at every size.
    for i in range(len(by_policy["chunk"])):
        assert by_policy["chunk"][i] > 3 * by_policy["cyclic"][i]
        assert by_policy["chunk"][i] > 3 * by_policy["random"][i]
