"""CI perf-regression guard for the hot-path benchmark.

Compares a freshly-measured ``bench_wallclock_hotpath`` report against
the committed trajectory in ``BENCH_hotpath.json`` and fails (non-zero
exit) when the combined speedup regresses below the allowed fraction
of the committed figure.  The committed report is produced on a
developer machine with the full workload while CI runs ``--quick`` on
shared runners, so the tolerance is deliberately generous: the guard
exists to catch order-of-magnitude regressions (an accidentally
de-vectorized kernel, a dropped cache), not single-digit-percent
noise.

Checks, in order:

1. the fresh report's ``identical_results`` flag is true (the bench
   itself refuses to report mismatched kernels, but belt-and-braces),
2. fresh combined speedup >= ``--floor`` (absolute sanity bound),
3. fresh combined speedup >= ``--min-ratio`` x committed combined,
4. fresh batched-filtration speedup over the per-spectrum baseline
   >= ``--filter-floor`` (the batched kernel must not regress into a
   real loss; the floor sits below 1.0 for timing-noise margin).

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline BENCH_hotpath.json --fresh /tmp/bench_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="committed BENCH_hotpath.json (the trajectory to beat)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="freshly measured report (e.g. a --quick run on CI)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.35,
        help="fresh combined speedup must reach this fraction of the "
        "committed combined speedup (default: 0.35 — CI runners are "
        "slower and noisier than the committing machine)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.5,
        help="absolute minimum combined speedup (default: 1.5)",
    )
    parser.add_argument(
        "--filter-floor",
        type=float,
        default=0.8,
        help="minimum batched-vs-per-spectrum filtration speedup "
        "(default: 0.8 — batching must never be a real loss, but the "
        "quick-mode stages are sub-millisecond best-of-2 timings, so "
        "leave noise margin below 1.0)",
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text(encoding="ascii"))
    fresh = json.loads(args.fresh.read_text(encoding="ascii"))

    failures = []
    if not fresh.get("identical_results", False):
        failures.append("fresh run reports identical_results=false")

    committed_combined = float(baseline["speedup"]["combined"])
    fresh_combined = float(fresh["speedup"]["combined"])
    required = args.min_ratio * committed_combined
    print(
        f"combined speedup: fresh {fresh_combined:.2f}x vs committed "
        f"{committed_combined:.2f}x (required >= {required:.2f}x, "
        f"floor {args.floor:.2f}x)"
    )
    if fresh_combined < args.floor:
        failures.append(
            f"combined speedup {fresh_combined:.2f}x below absolute "
            f"floor {args.floor:.2f}x"
        )
    if fresh_combined < required:
        failures.append(
            f"combined speedup {fresh_combined:.2f}x below "
            f"{args.min_ratio:.2f} x committed ({required:.2f}x)"
        )

    filter_batch = float(
        fresh["speedup"].get("filter_batch_vs_per_spectrum", float("nan"))
    )
    print(
        f"batched filtration vs per-spectrum: {filter_batch:.2f}x "
        f"(required >= {args.filter_floor:.2f}x)"
    )
    if not filter_batch >= args.filter_floor:  # catches NaN too
        failures.append(
            f"batched filtration speedup {filter_batch:.2f}x below "
            f"floor {args.filter_floor:.2f}x"
        )

    if failures:
        for f in failures:
            print(f"PERF REGRESSION: {f}", file=sys.stderr)
        return 1
    print("perf guard: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
