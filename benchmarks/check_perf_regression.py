"""CI perf-regression guard for the hot-path and parallel benchmarks.

Compares freshly-measured benchmark reports against the committed
trajectories (``BENCH_hotpath.json``, ``BENCH_parallel.json``) and
fails (non-zero exit) when a guarded speedup regresses below the
allowed fraction of the committed figure.  The committed reports are
produced on a developer machine with the full workload while CI runs
``--quick`` on shared runners, so the tolerances are deliberately
generous: the guard exists to catch order-of-magnitude regressions
(an accidentally de-vectorized kernel, a dropped cache, a backend
that silently serializes), not single-digit-percent noise.

Hot-path checks (``--baseline``/``--fresh``), in order:

1. the fresh report's ``identical_results`` flag is true (the bench
   itself refuses to report mismatched kernels, but belt-and-braces),
2. fresh combined speedup >= ``--floor`` (absolute sanity bound),
3. fresh combined speedup >= ``--min-ratio`` x committed combined,
4. fresh batched-filtration speedup over the per-spectrum baseline
   >= ``--filter-floor`` (the batched kernel must not regress into a
   real loss; the floor sits below 1.0 for timing-noise margin).

Parallel-backend checks (``--parallel-baseline``/``--parallel-fresh``):

1. ``identical_results`` is true (process backend == serial engine),
2. dedicated-core query speedup at 2 workers >= ``--parallel-floor``
   (CPU-seconds based, so it holds even on 1-CPU runners),
3. >= ``--min-ratio`` x the committed dedicated 2-worker figure,
4. LBE-vs-naive (chunk/cyclic slowest-worker ratio) at 2 workers
   >= ``--lbe-floor`` (well below 1.0: small quick workloads can
   land near-balanced chunk partitions by luck).

Service checks (``--service-baseline``/``--service-fresh``):

1. ``identical_results`` is true (every session batch == serial),
2. resident-vs-oneshot per-batch speedup >= ``--service-floor``
   (the session must actually amortize the spawn/spill overhead —
   a service that silently re-attaches per batch lands at ~1.0),
3. the resident pickled scatter per batch stays <=
   ``--scatter-ceiling`` of the one-shot pickled spectra payload
   (peak arrays sneaking back into the command pickle is a
   regression even when latency looks fine),
4. pipelined-vs-sequential steady-state throughput >=
   ``--pipeline-floor`` (the overlapped session must never be a real
   loss against sequential submits on the same resident pool; the
   floor sits below 1.0 for the timing noise of quick CI workloads —
   the committed full-workload figure is the trajectory to beat),
5. enabled JSONL tracing costs <= ``--obs-overhead`` of the untraced
   steady-state latency and the traced session's trace is schema-clean
   (``observability.trace_schema_errors == 0``) — telemetry must stay
   out of the hot loops,
6. the default in-memory flight recorder costs <= ``--obs-overhead``
   of the bare (recorder-off) steady-state latency
   (``observability.ring_overhead_ratio``) — it is always on in
   production, so it gets the same ceiling as file tracing.

Shard-routing checks (``--shard-baseline``/``--shard-fresh``):

1. ``identical_results`` is true (sharded fleet == serial engine,
   with dormant supervision),
2. routing selectivity >= ``--selectivity-floor`` (on the bench's
   mass-sorted batches the router must actually skip shards — a
   router degenerating into broadcast lands at 0.0; the exact routing
   counts are timing-independent, so this holds on any runner),
3. sharded-vs-unsharded steady latency <= ``--shard-latency-ceiling``
   (the fleet costs fan-out/merge overhead and oversubscribes small
   runners, but must not blow up by an order of magnitude).

Elastic-rebalancing checks (``--rebalance-baseline``/
``--rebalance-fresh``):

1. ``identical_results`` is true (both sessions == serial engine,
   before and after every migration),
2. the rebalancing session applied >= 1 migration (a dead trigger
   means the benchmark measured two frozen sessions),
3. rebalanced-vs-frozen steady latency >= ``--rebalance-gain`` on the
   skewed-host harness (live re-planning must beat the frozen plan),
   and >= ``--min-ratio`` x the committed gain when a baseline is
   supplied.

Any pair of reports may be supplied alone; at least one is required.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline BENCH_hotpath.json --fresh /tmp/bench_fresh.json \
        --parallel-baseline BENCH_parallel.json \
        --parallel-fresh /tmp/bench_parallel_fresh.json \
        --service-baseline BENCH_service.json \
        --service-fresh /tmp/bench_service_fresh.json \
        --shard-baseline BENCH_shard.json \
        --shard-fresh /tmp/bench_shard_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check_hotpath(args, failures: list) -> None:
    baseline = json.loads(args.baseline.read_text(encoding="ascii"))
    fresh = json.loads(args.fresh.read_text(encoding="ascii"))

    if not fresh.get("identical_results", False):
        failures.append("fresh hot-path run reports identical_results=false")

    committed_combined = float(baseline["speedup"]["combined"])
    fresh_combined = float(fresh["speedup"]["combined"])
    required = args.min_ratio * committed_combined
    print(
        f"combined speedup: fresh {fresh_combined:.2f}x vs committed "
        f"{committed_combined:.2f}x (required >= {required:.2f}x, "
        f"floor {args.floor:.2f}x)"
    )
    if fresh_combined < args.floor:
        failures.append(
            f"combined speedup {fresh_combined:.2f}x below absolute "
            f"floor {args.floor:.2f}x"
        )
    if fresh_combined < required:
        failures.append(
            f"combined speedup {fresh_combined:.2f}x below "
            f"{args.min_ratio:.2f} x committed ({required:.2f}x)"
        )

    filter_batch = float(
        fresh["speedup"].get("filter_batch_vs_per_spectrum", float("nan"))
    )
    print(
        f"batched filtration vs per-spectrum: {filter_batch:.2f}x "
        f"(required >= {args.filter_floor:.2f}x)"
    )
    if not filter_batch >= args.filter_floor:  # catches NaN too
        failures.append(
            f"batched filtration speedup {filter_batch:.2f}x below "
            f"floor {args.filter_floor:.2f}x"
        )


def check_parallel(args, failures: list) -> None:
    fresh = json.loads(args.parallel_fresh.read_text(encoding="ascii"))

    if not fresh.get("identical_results", False):
        failures.append("fresh parallel run reports identical_results=false")

    dedicated = float(fresh["speedup"].get("query_dedicated_2w", float("nan")))
    print(
        f"parallel query speedup (dedicated-core, 2 workers): "
        f"{dedicated:.2f}x (required >= {args.parallel_floor:.2f}x)"
    )
    if not dedicated >= args.parallel_floor:  # catches NaN too
        failures.append(
            f"dedicated 2-worker query speedup {dedicated:.2f}x below "
            f"floor {args.parallel_floor:.2f}x"
        )
    if args.parallel_baseline is not None:
        committed = json.loads(
            args.parallel_baseline.read_text(encoding="ascii")
        )
        committed_dedicated = float(committed["speedup"]["query_dedicated_2w"])
        required = args.min_ratio * committed_dedicated
        print(
            f"  vs committed {committed_dedicated:.2f}x "
            f"(required >= {required:.2f}x)"
        )
        if dedicated < required:
            failures.append(
                f"dedicated 2-worker query speedup {dedicated:.2f}x below "
                f"{args.min_ratio:.2f} x committed ({required:.2f}x)"
            )

    lbe = float(fresh["speedup"].get("lbe_vs_naive_2w", float("nan")))
    print(
        f"LBE vs naive partitioning (2 workers): {lbe:.2f}x "
        f"(required >= {args.lbe_floor:.2f}x)"
    )
    if not lbe >= args.lbe_floor:
        failures.append(
            f"LBE-vs-naive speedup {lbe:.2f}x below floor "
            f"{args.lbe_floor:.2f}x"
        )


def check_service(args, failures: list) -> None:
    fresh = json.loads(args.service_fresh.read_text(encoding="ascii"))

    if not fresh.get("identical_results", False):
        failures.append("fresh service run reports identical_results=false")

    resident = float(
        fresh["speedup"].get("resident_vs_oneshot", float("nan"))
    )
    print(
        f"service resident-vs-oneshot batch speedup: {resident:.2f}x "
        f"(required >= {args.service_floor:.2f}x)"
    )
    if not resident >= args.service_floor:  # catches NaN too
        failures.append(
            f"resident-vs-oneshot speedup {resident:.2f}x below floor "
            f"{args.service_floor:.2f}x"
        )
    if args.service_baseline is not None:
        committed = json.loads(
            args.service_baseline.read_text(encoding="ascii")
        )
        committed_resident = float(committed["speedup"]["resident_vs_oneshot"])
        required = args.min_ratio * committed_resident
        print(
            f"  vs committed {committed_resident:.2f}x "
            f"(required >= {required:.2f}x)"
        )
        if resident < required:
            failures.append(
                f"resident-vs-oneshot speedup {resident:.2f}x below "
                f"{args.min_ratio:.2f} x committed ({required:.2f}x)"
            )

    scatter = fresh.get("scatter", {})
    ratio = float(scatter.get("pickled_ratio", float("nan")))
    print(
        f"service scatter ratio (resident/oneshot pickled bytes): "
        f"{ratio:.4f} (required <= {args.scatter_ceiling:.2f})"
    )
    if not ratio <= args.scatter_ceiling:  # catches NaN too
        failures.append(
            f"resident scatter ratio {ratio:.4f} above ceiling "
            f"{args.scatter_ceiling:.2f} — peak arrays are being pickled "
            "into the per-batch command payload"
        )

    pipelined = float(
        fresh["speedup"].get("pipelined_vs_sequential", float("nan"))
    )
    print(
        f"service pipelined-vs-sequential steady throughput: "
        f"{pipelined:.2f}x (required >= {args.pipeline_floor:.2f}x)"
    )
    if not pipelined >= args.pipeline_floor:  # catches NaN too
        failures.append(
            f"pipelined-vs-sequential steady throughput {pipelined:.2f}x "
            f"below floor {args.pipeline_floor:.2f}x — the overlapped "
            "session is losing to sequential submits"
        )

    obs = fresh.get("observability", {})
    overhead = float(obs.get("overhead_ratio", float("nan")))
    schema_errors = obs.get("trace_schema_errors")
    print(
        f"service traced/untraced steady latency: {overhead:.3f}x "
        f"(required <= {args.obs_overhead:.2f}x, "
        f"{obs.get('trace_records', '?')} trace records)"
    )
    if not overhead <= args.obs_overhead:  # catches NaN too
        failures.append(
            f"enabled tracing costs {overhead:.3f}x the untraced steady "
            f"latency, above ceiling {args.obs_overhead:.2f}x — the "
            "tracer has crept into the hot path"
        )
    ring_overhead = float(obs.get("ring_overhead_ratio", float("nan")))
    print(
        f"service flight-recorder/bare steady latency: "
        f"{ring_overhead:.3f}x (required <= {args.obs_overhead:.2f}x, "
        f"{obs.get('ring_records_seen', '?')} records through the ring)"
    )
    if not ring_overhead <= args.obs_overhead:  # catches NaN too
        failures.append(
            f"the default flight recorder costs {ring_overhead:.3f}x the "
            f"bare steady latency, above ceiling {args.obs_overhead:.2f}x "
            "— the always-on ring must stay invisible in the hot path"
        )
    if schema_errors != 0:
        failures.append(
            f"traced benchmark session emitted "
            f"{schema_errors!r} schema violations — the trace no longer "
            "matches repro.obs.schema"
        )


def check_shard(args, failures: list) -> None:
    fresh = json.loads(args.shard_fresh.read_text(encoding="ascii"))

    if not fresh.get("identical_results", False):
        failures.append("fresh shard-routing run reports identical_results=false")

    selectivity = float(
        fresh.get("routing", {}).get("selectivity", float("nan"))
    )
    print(
        f"shard routing selectivity: {selectivity:.2f} "
        f"(required >= {args.selectivity_floor:.2f})"
    )
    if not selectivity >= args.selectivity_floor:  # catches NaN too
        failures.append(
            f"shard routing selectivity {selectivity:.2f} below floor "
            f"{args.selectivity_floor:.2f} — the mass-range router is "
            "broadcasting batches to shards their windows cannot reach"
        )
    if args.shard_baseline is not None:
        committed = json.loads(args.shard_baseline.read_text(encoding="ascii"))
        committed_sel = float(committed["routing"]["selectivity"])
        required = args.min_ratio * committed_sel
        print(
            f"  vs committed {committed_sel:.2f} "
            f"(required >= {required:.2f})"
        )
        if selectivity < required:
            failures.append(
                f"shard routing selectivity {selectivity:.2f} below "
                f"{args.min_ratio:.2f} x committed ({required:.2f})"
            )

    ratio = float(
        fresh.get("latency", {}).get("sharded_vs_unsharded", float("nan"))
    )
    print(
        f"shard steady latency vs unsharded: {ratio:.2f}x "
        f"(required <= {args.shard_latency_ceiling:.2f}x)"
    )
    if not ratio <= args.shard_latency_ceiling:  # catches NaN too
        failures.append(
            f"sharded steady latency {ratio:.2f}x the unsharded session, "
            f"above ceiling {args.shard_latency_ceiling:.2f}x — the "
            "fan-out/merge overhead is exploding"
        )


def check_rebalance(args, failures: list) -> None:
    fresh = json.loads(args.rebalance_fresh.read_text(encoding="ascii"))

    if not fresh.get("identical_results", False):
        failures.append(
            "fresh rebalance run reports identical_results=false — a "
            "migration changed *what* was scored, not just where"
        )

    migrations = int(fresh.get("rebalanced", {}).get("migrations", 0))
    print(f"rebalance migrations applied: {migrations} (required >= 1)")
    if migrations < 1:
        failures.append(
            "rebalancing session never migrated — the LI trigger is "
            "dead and the benchmark measured two frozen sessions"
        )

    gain = float(
        fresh.get("speedup", {}).get("rebalanced_vs_frozen", float("nan"))
    )
    print(
        f"rebalanced vs frozen steady latency: {gain:.2f}x "
        f"(required >= {args.rebalance_gain:.2f}x)"
    )
    if not gain >= args.rebalance_gain:  # catches NaN too
        failures.append(
            f"rebalanced steady latency gain {gain:.2f}x below floor "
            f"{args.rebalance_gain:.2f}x — live re-planning no longer "
            "beats the frozen plan on the skewed-host harness"
        )
    if args.rebalance_baseline is not None:
        committed = json.loads(
            args.rebalance_baseline.read_text(encoding="ascii")
        )
        committed_gain = float(committed["speedup"]["rebalanced_vs_frozen"])
        required = args.min_ratio * committed_gain
        print(
            f"  vs committed {committed_gain:.2f}x "
            f"(required >= {required:.2f}x)"
        )
        if gain < required:
            failures.append(
                f"rebalance gain {gain:.2f}x below {args.min_ratio:.2f} x "
                f"committed ({required:.2f}x)"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH_hotpath.json (the trajectory to beat)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="freshly measured hot-path report (e.g. a --quick run on CI)",
    )
    parser.add_argument(
        "--parallel-baseline",
        type=Path,
        default=None,
        help="committed BENCH_parallel.json",
    )
    parser.add_argument(
        "--parallel-fresh",
        type=Path,
        default=None,
        help="freshly measured parallel-backend report",
    )
    parser.add_argument(
        "--service-baseline",
        type=Path,
        default=None,
        help="committed BENCH_service.json",
    )
    parser.add_argument(
        "--service-fresh",
        type=Path,
        default=None,
        help="freshly measured service-throughput report",
    )
    parser.add_argument(
        "--shard-baseline",
        type=Path,
        default=None,
        help="committed BENCH_shard.json",
    )
    parser.add_argument(
        "--shard-fresh",
        type=Path,
        default=None,
        help="freshly measured shard-routing report",
    )
    parser.add_argument(
        "--rebalance-baseline",
        type=Path,
        default=None,
        help="committed BENCH_rebalance.json",
    )
    parser.add_argument(
        "--rebalance-fresh",
        type=Path,
        default=None,
        help="freshly measured elastic-rebalancing report",
    )
    parser.add_argument(
        "--rebalance-gain",
        type=float,
        default=1.02,
        help="minimum rebalanced-vs-frozen steady-latency ratio on the "
        "skewed-host harness (default: 1.02 — the committed figure is "
        "~1.2x at 2 workers with a 3x-slow rank; the floor only "
        "requires the migration to not be a loss, with margin for "
        "noisy shared runners)",
    )
    parser.add_argument(
        "--selectivity-floor",
        type=float,
        default=0.15,
        help="minimum fraction of (batch, shard) dispatches the router "
        "must skip on the bench's mass-sorted batches (default: 0.15 — "
        "the routing counts are exact and machine-independent; the "
        "committed full-workload figure is ~0.5, the floor only "
        "catches the router degenerating into broadcast)",
    )
    parser.add_argument(
        "--shard-latency-ceiling",
        type=float,
        default=6.0,
        help="maximum sharded/unsharded steady batch latency ratio "
        "(default: 6.0 — the fleet runs n_shards x n_workers processes "
        "on runners with one or two cores, so generous headroom; the "
        "guard catches an order-of-magnitude merge/fan-out blow-up)",
    )
    parser.add_argument(
        "--service-floor",
        type=float,
        default=1.2,
        help="minimum resident-vs-oneshot per-batch speedup (default: "
        "1.2 — the committed figure is ~16x on a 1-CPU container; the "
        "floor only catches the service degenerating into per-batch "
        "re-attach, with a wide margin for slow shared runners)",
    )
    parser.add_argument(
        "--pipeline-floor",
        type=float,
        default=0.9,
        help="minimum pipelined-vs-sequential steady-state throughput "
        "ratio (default: 0.9 — the pipelined session must at least "
        "match sequential submits; the floor sits below 1.0 only for "
        "the sub-100ms timing noise of quick CI workloads on shared "
        "1-to-2-core runners, where the master/worker overlap window "
        "is thin)",
    )
    parser.add_argument(
        "--obs-overhead",
        type=float,
        default=1.05,
        help="maximum traced/untraced steady batch latency ratio "
        "(default: 1.05 — enabled JSONL tracing emits a handful of "
        "records per batch off the measured path, so 5 percent covers "
        "timing noise; a ratio above it means tracing crept into the "
        "per-spectrum or per-rank hot loops)",
    )
    parser.add_argument(
        "--scatter-ceiling",
        type=float,
        default=0.1,
        help="maximum resident/oneshot pickled-bytes ratio per batch "
        "(default: 0.1 — the resident command payload is O(manifest), "
        "~0.002 of the pickled peak arrays on the committed workload)",
    )
    parser.add_argument(
        "--parallel-floor",
        type=float,
        default=1.1,
        help="minimum dedicated-core query speedup at 2 workers "
        "(default: 1.1 — CPU-seconds based, so valid on any runner; a "
        "work-dividing backend lands well above it, a serializing one "
        "at ~1.0 or below)",
    )
    parser.add_argument(
        "--lbe-floor",
        type=float,
        default=0.6,
        help="minimum LBE-vs-naive slowest-worker ratio at 2 workers "
        "(default: 0.6 — quick workloads can land near-balanced chunk "
        "partitions; the guard only catches LBE becoming a large loss)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.35,
        help="fresh combined speedup must reach this fraction of the "
        "committed combined speedup (default: 0.35 — CI runners are "
        "slower and noisier than the committing machine)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.5,
        help="absolute minimum combined speedup (default: 1.5)",
    )
    parser.add_argument(
        "--filter-floor",
        type=float,
        default=0.8,
        help="minimum batched-vs-per-spectrum filtration speedup "
        "(default: 0.8 — batching must never be a real loss, but the "
        "quick-mode stages are sub-millisecond best-of-2 timings, so "
        "leave noise margin below 1.0)",
    )
    args = parser.parse_args()

    if (args.baseline is None) != (args.fresh is None):
        parser.error("--baseline and --fresh must be supplied together")
    if args.parallel_baseline is not None and args.parallel_fresh is None:
        parser.error("--parallel-baseline requires --parallel-fresh")
    if args.service_baseline is not None and args.service_fresh is None:
        parser.error("--service-baseline requires --service-fresh")
    if args.shard_baseline is not None and args.shard_fresh is None:
        parser.error("--shard-baseline requires --shard-fresh")
    if args.rebalance_baseline is not None and args.rebalance_fresh is None:
        parser.error("--rebalance-baseline requires --rebalance-fresh")
    have_hotpath = args.baseline is not None
    have_parallel = args.parallel_fresh is not None
    have_service = args.service_fresh is not None
    have_shard = args.shard_fresh is not None
    have_rebalance = args.rebalance_fresh is not None
    if not (
        have_hotpath
        or have_parallel
        or have_service
        or have_shard
        or have_rebalance
    ):
        parser.error(
            "supply --baseline/--fresh, --parallel-fresh, "
            "--service-fresh, --shard-fresh and/or --rebalance-fresh "
            "(each with its optional committed baseline)"
        )

    failures: list = []
    if have_hotpath:
        check_hotpath(args, failures)
    if have_parallel:
        check_parallel(args, failures)
    if have_service:
        check_service(args, failures)
    if have_shard:
        check_shard(args, failures)
    if have_rebalance:
        check_rebalance(args, failures)

    if failures:
        for f in failures:
            print(f"PERF REGRESSION: {f}", file=sys.stderr)
        return 1
    print("perf guard: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
