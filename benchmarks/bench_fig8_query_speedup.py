"""Figure 8 — query-time speedup vs MPI processes (Cyclic policy).

Paper: "the query time scales almost linearly as the number of CPUs
are increased" — speedups hug the ideal line; the base case is the
smallest feasible rank count, assumed ideally efficient (Section V-D).
"""

from collections import defaultdict

from repro.bench.reporting import series_table

HEADERS = ["size_M", "ranks", "speedup", "ideal"]


def test_fig8_query_speedup(benchmark, suite):
    rows = benchmark.pedantic(suite.fig8_rows, rounds=1, iterations=1)
    print()
    print(series_table("Fig. 8: query speedup vs MPI processes (cyclic)",
                       HEADERS, rows, float_fmt=".2f"))

    series = defaultdict(dict)
    for size_m, p, s, _ideal in rows:
        series[size_m][p] = s

    for size_m, speedups in series.items():
        ps = sorted(speedups)
        # Anchored at the smallest rank count.
        assert speedups[ps[0]] == ps[0]
        for p in ps:
            # Near-linear: at least 70 % parallel efficiency, never
            # super-linear beyond noise.
            assert speedups[p] >= 0.70 * p, (
                f"{size_m}M at p={p}: speedup {speedups[p]:.2f} below 70% efficiency"
            )
            assert speedups[p] <= 1.05 * p
        # Monotone increasing.
        vals = [speedups[p] for p in ps]
        assert vals == sorted(vals)
