"""Wall-clock hot-path benchmark: pre-arena vs flat-CSR-arena kernels.

Times the three operations that dominate real search wall-clock —
index build, shared-peak filtration, candidate scoring — on one
synthetic workload, comparing

* **legacy**: faithful copies of the pre-arena implementations
  (per-peptide quantization loop in the index build, per-candidate
  Python assembly in scoring, per-call allocations in filtration),
  fed the same precomputed per-peptide fragment arrays the old
  ``IndexedDatabase.fragments_for`` cache provided, and
* **arena**: the current kernels through the public API
  (:class:`~repro.index.slm.SLMIndex` over a
  :class:`~repro.index.arena.FragmentArena`, ``filter_many`` /
  ``score_many``).

The filtration stage is additionally timed against a faithful
**per-spectrum** baseline (the PR-1 ``filter`` loop) so the
cross-spectrum batched kernel's speedup is recorded separately
(``speedup.filter_batch_vs_per_spectrum``).

Both paths must produce identical candidates and scores (checked every
run); the point of the arena is speed, not different answers.  Results
land in ``BENCH_hotpath.json`` at the repo root so future perf PRs
have a trajectory to beat.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import List, Sequence

import numpy as np

from repro.db.proteome import ProteomeConfig
from repro.index.arena import FragmentArena
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.search.scoring import ScoringOutcome, _lgamma_vec, _matched_mask, score_many
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import PreprocessConfig, preprocess_spectrum
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_hotpath.json"


# -- legacy (pre-arena) implementations --------------------------------
# Faithful copies of the seed hot path, kept here as the benchmark
# baseline so the speedup claim stays reproducible.


def legacy_build(peptides, settings: SLMIndexSettings, fragments) -> tuple:
    """Pre-arena SLMIndex construction: per-peptide quantization loop."""
    ion_buckets: List[np.ndarray] = []
    ion_parents: List[np.ndarray] = []
    inv_r = 1.0 / settings.resolution
    for local_id, _pep in enumerate(peptides):
        mzs = fragments[local_id]
        if mzs.size == 0:
            continue
        buckets = np.floor(mzs * inv_r).astype(np.int64)
        ion_buckets.append(buckets)
        ion_parents.append(np.full(buckets.size, local_id, dtype=np.int32))
    if ion_buckets:
        all_buckets = np.concatenate(ion_buckets)
        all_parents = np.concatenate(ion_parents)
    else:
        all_buckets = np.empty(0, dtype=np.int64)
        all_parents = np.empty(0, dtype=np.int32)
    order = np.argsort(all_buckets, kind="stable")
    all_buckets = all_buckets[order]
    parents = all_parents[order]
    n_buckets = int(all_buckets[-1]) + 1 if all_buckets.size else 0
    counts = (
        np.bincount(all_buckets, minlength=n_buckets)
        if all_buckets.size
        else np.zeros(0, dtype=np.int64)
    )
    bucket_offsets = np.zeros(n_buckets + 1, dtype=np.int64)
    if n_buckets:
        np.cumsum(counts, out=bucket_offsets[1:])
    return parents, bucket_offsets


def legacy_filter(index: SLMIndex, spectrum: Spectrum):
    """Pre-arena filtration: fresh steps/counts allocations per call."""
    n = len(index.peptides)
    settings = index.settings
    if n == 0 or index.n_ions == 0 or spectrum.n_peaks == 0:
        return np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int32)
    r = settings.resolution
    tol = settings.fragment_tolerance
    lo = np.floor((spectrum.mzs - tol) / r).astype(np.int64)
    hi = np.floor((spectrum.mzs + tol) / r).astype(np.int64) + 1
    np.clip(lo, 0, index.n_buckets, out=lo)
    np.clip(hi, 0, index.n_buckets, out=hi)
    valid = hi > lo
    lo, hi = lo[valid], hi[valid]
    offsets = index.bucket_offsets
    starts = offsets[lo]
    stops = offsets[hi]
    spans = stops - starts
    nonempty = spans > 0
    starts, spans = starts[nonempty], spans[nonempty]
    total = int(spans.sum())
    if total:
        steps = np.ones(total, dtype=np.int64)
        steps[0] = starts[0]
        seg_heads = np.cumsum(spans)[:-1]
        steps[seg_heads] = starts[1:] - (starts[:-1] + spans[:-1] - 1)
        gather = np.cumsum(steps)
        counts = np.bincount(index.ion_parents[gather], minlength=n).astype(np.int32)
    else:
        counts = np.zeros(n, dtype=np.int32)
    cands = np.flatnonzero(counts >= settings.shared_peak_threshold).astype(np.int32)
    return cands, counts[cands]


def legacy_score(
    spectrum: Spectrum,
    peptides,
    candidate_ids: np.ndarray,
    *,
    fragment_tolerance: float,
    fragments: Sequence[np.ndarray],
) -> ScoringOutcome:
    """Pre-arena scoring: per-candidate Python assembly loop."""
    n = int(candidate_ids.size)
    if n == 0:
        return ScoringOutcome(
            scores=np.zeros(0, dtype=np.float64),
            n_matched=np.zeros(0, dtype=np.int32),
            candidates_scored=0,
            residues_scored=0,
        )
    q_mzs = spectrum.mzs
    q_int = spectrum.intensities
    residues = 0
    theo_parts: List[np.ndarray] = []
    sizes = np.zeros(n, dtype=np.int64)
    for i, cid in enumerate(candidate_ids):
        pep = peptides[int(cid)]
        residues += pep.length
        theo = fragments[int(cid)]
        theo_parts.append(theo)
        sizes[i] = theo.size
    theo_all = (
        np.concatenate(theo_parts) if theo_parts else np.empty(0, dtype=np.float64)
    )
    bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    mask = _matched_mask(theo_all, q_mzs, fragment_tolerance)
    mask_cum = np.zeros(theo_all.size + 1, dtype=np.int64)
    np.cumsum(mask, out=mask_cum[1:])
    matched = (mask_cum[bounds[1:]] - mask_cum[bounds[:-1]]).astype(np.int32)
    credit = np.zeros(theo_all.size, dtype=np.float64)
    if q_mzs.size and theo_all.size:
        pos = np.searchsorted(q_mzs, theo_all)
        left = np.clip(pos - 1, 0, q_mzs.size - 1)
        right = np.clip(pos, 0, q_mzs.size - 1)
        use_left = np.abs(theo_all - q_mzs[left]) <= np.abs(theo_all - q_mzs[right])
        nearest = np.where(use_left, left, right)
        credit = np.where(mask, q_int[nearest], 0.0)
    intensity_sums = np.zeros(n, dtype=np.float64)
    if theo_all.size:
        starts = np.minimum(bounds[:-1], theo_all.size - 1)
        seg = np.add.reduceat(credit, starts)
        nonempty = sizes > 0
        intensity_sums[nonempty] = seg[nonempty]
    scores = np.where(
        matched > 0,
        _lgamma_vec(matched + 1.0) + np.log1p(intensity_sums),
        0.0,
    )
    return ScoringOutcome(
        scores=scores,
        n_matched=matched,
        candidates_scored=n,
        residues_scored=residues,
    )


# -- benchmark ---------------------------------------------------------


def _best_of(repeats: int, fn) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(quick: bool = False, threshold: int = 4) -> dict:
    n_families = 6 if quick else 22
    n_spectra = 12 if quick else 48
    repeats = 2 if quick else 3
    settings = SLMIndexSettings(shared_peak_threshold=threshold)

    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=n_families, seed=4242),
            max_variants_per_peptide=8,
        )
    )
    spectra = generate_run(
        db.entries, SyntheticRunConfig(n_spectra=n_spectra, seed=777)
    )
    processed = [preprocess_spectrum(s, PreprocessConfig()) for s in spectra]

    # Both paths start from precomputed fragment storage, as in real
    # runs: the legacy path gets the old list-of-arrays cache shape,
    # the arena path gets the flat arena (quantized once, as every
    # engine over a database shares the cached quantization).
    fragments = [np.array(v) for v in db.fragments_for(settings.fragmentation)]
    arena = db.arena_for(settings.fragmentation)
    arena.buckets_for(settings.resolution)

    t_legacy_build, _ = _best_of(
        repeats, lambda: legacy_build(db.entries, settings, fragments)
    )
    # Warm build = steady-state rebuild over the shared database arena
    # (quantization + sort order cached, as every engine over a
    # database sees after the first build).  Cold build = fresh arena
    # from the same precomputed fragment arrays, paying flatten +
    # quantize + sort, the apples-to-apples match for legacy_build
    # (which re-quantizes and re-sorts every call).
    t_arena_build, index = _best_of(
        repeats, lambda: SLMIndex(db.entries, settings, arena=arena)
    )
    t_arena_build_cold, _ = _best_of(
        repeats,
        lambda: SLMIndex(
            db.entries,
            settings,
            arena=FragmentArena.from_arrays(
                fragments, lengths=arena.lengths, masses=arena.masses
            ),
        ),
    )

    t_legacy_filter, legacy_filtered = _best_of(
        repeats, lambda: [legacy_filter(index, s) for s in processed]
    )
    # Faithful per-spectrum baseline: the PR-1 kernel, one spectrum at
    # a time through the same workspace-backed gather (this was what
    # filter_many did before the cross-spectrum batch kernel).
    t_filter_per_spectrum, per_spectrum_filtered = _best_of(
        repeats, lambda: [index.filter(s) for s in processed]
    )
    t_arena_filter, arena_filtered = _best_of(
        repeats, lambda: index.filter_many(processed)
    )

    cand_lists = [f.candidates for f in arena_filtered]
    t_legacy_score, legacy_scored = _best_of(
        repeats,
        lambda: [
            legacy_score(
                s,
                db.entries,
                c,
                fragment_tolerance=settings.fragment_tolerance,
                fragments=fragments,
            )
            for s, c in zip(processed, cand_lists)
        ],
    )
    t_arena_score, arena_scored = _best_of(
        repeats,
        lambda: score_many(
            processed,
            cand_lists,
            fragment_tolerance=settings.fragment_tolerance,
            fragmentation=settings.fragmentation,
            arena=arena,
        ),
    )

    identical = all(
        np.array_equal(lf[0], af.candidates)
        and np.array_equal(lf[1], af.shared_peaks)
        for lf, af in zip(legacy_filtered, arena_filtered)
    ) and all(
        np.array_equal(pf.candidates, af.candidates)
        and np.array_equal(pf.shared_peaks, af.shared_peaks)
        and pf.buckets_scanned == af.buckets_scanned
        and pf.ions_scanned == af.ions_scanned
        for pf, af in zip(per_spectrum_filtered, arena_filtered)
    ) and all(
        np.array_equal(lo.scores, ao.scores)
        and np.array_equal(lo.n_matched, ao.n_matched)
        and lo.residues_scored == ao.residues_scored
        for lo, ao in zip(legacy_scored, arena_scored)
    )

    legacy_total = t_legacy_build + t_legacy_filter + t_legacy_score
    arena_total = t_arena_build + t_arena_filter + t_arena_score
    report = {
        "benchmark": "wallclock_hotpath",
        "quick": quick,
        "repeats": repeats,
        "workload": {
            "n_entries": db.n_entries,
            "n_ions": int(arena.n_ions),
            "n_spectra": len(spectra),
            "n_candidates_total": int(sum(c.size for c in cand_lists)),
            "shared_peak_threshold": settings.shared_peak_threshold,
        },
        "legacy_s": {
            "build": t_legacy_build,
            "filter": t_legacy_filter,
            "score": t_legacy_score,
            "total": legacy_total,
        },
        "arena_s": {
            "build": t_arena_build,
            "build_cold": t_arena_build_cold,
            "filter": t_arena_filter,
            "filter_per_spectrum": t_filter_per_spectrum,
            "score": t_arena_score,
            "total": arena_total,
        },
        "speedup": {
            "build": t_legacy_build / t_arena_build if t_arena_build else float("inf"),
            "build_cold": t_legacy_build / t_arena_build_cold
            if t_arena_build_cold
            else float("inf"),
            "filter": t_legacy_filter / t_arena_filter
            if t_arena_filter
            else float("inf"),
            "filter_batch_vs_per_spectrum": t_filter_per_spectrum / t_arena_filter
            if t_arena_filter
            else float("inf"),
            "score": t_legacy_score / t_arena_score if t_arena_score else float("inf"),
            "combined": legacy_total / arena_total if arena_total else float("inf"),
        },
        "identical_results": bool(identical),
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--threshold",
        type=int,
        default=4,
        help="shared-peak threshold (default: the paper's Shpeak = 4; "
        "lower it for a candidate-rich, scoring-dominated workload)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH, help="output JSON path"
    )
    args = parser.parse_args()
    report = run(quick=args.quick, threshold=args.threshold)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="ascii")
    sp = report["speedup"]
    print(
        f"entries={report['workload']['n_entries']} "
        f"spectra={report['workload']['n_spectra']} "
        f"candidates={report['workload']['n_candidates_total']}"
    )
    for phase in ("build", "build_cold", "filter", "score", "combined"):
        legacy = report["legacy_s"].get(
            phase, report["legacy_s"].get(phase.split("_")[0], report["legacy_s"]["total"])
        )
        arena = report["arena_s"].get(phase, report["arena_s"]["total"])
        print(f"{phase:>9}: legacy {legacy * 1e3:8.1f} ms  "
              f"arena {arena * 1e3:8.1f} ms  speedup {sp[phase]:6.2f}x")
    print(
        f"   filter: per-spectrum {report['arena_s']['filter_per_spectrum'] * 1e3:8.1f} ms  "
        f"batch {report['arena_s']['filter'] * 1e3:8.1f} ms  "
        f"speedup {sp['filter_batch_vs_per_spectrum']:6.2f}x"
    )
    print(f"identical_results={report['identical_results']}")
    print(f"wrote {args.out}")
    if not report["identical_results"]:
        raise SystemExit("legacy and arena paths disagree — refusing to report")


if __name__ == "__main__":
    main()
