"""Shard-routing benchmark: mass-range selectivity vs broadcast.

Measures what the sharded serving tier (:mod:`repro.service.sharding`)
actually buys on a windowed-search session: when query batches are
clustered in precursor mass (the shape a mass-ordered acquisition or a
mass-bucketing front-end produces), the router dispatches each batch
only to the shards its precursor windows can reach — the other shards'
pools see nothing at all.

Three sessions run the same mass-sorted batch stream under a windowed
tolerance:

* **unsharded** — one :class:`~repro.service.SearchService` over the
  full database: every batch pays the full-index filtration walk,
* **sharded** — a :class:`~repro.service.ShardedSearchService` with
  ``N_SHARDS`` mass-range shards: each batch fans out only to
  intersecting shards,
* **serial** — the reference engine, for bit-identity of both.

Metrics written to ``BENCH_shard.json``:

* ``routing.selectivity`` — fraction of (batch, shard) dispatches the
  router skipped vs broadcast (0 = every batch hit every shard; the
  headline: provably-skipped work),
* ``routing.spectra_fraction_routed`` — routed (spectrum, shard)
  pairs over the broadcast count: the per-spectrum view of the same
  saving,
* ``sharded.steady_batch_s`` vs ``unsharded.steady_batch_s`` and
  their ratio ``latency.sharded_vs_unsharded`` — the cost side: extra
  pools add fan-out/merge overhead on small workloads; the ratio is
  reported so the guard can catch it exploding,
* ``identical_results`` — every batch, both sessions, bit-identical
  to the serial engine (refused otherwise),
* ``resilience.*`` — retry/hedge/respawn totals over both sessions; a
  fault-free benchmark run must report all zeros and the results are
  refused otherwise.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_routing.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

from repro.db.proteome import ProteomeConfig
from repro.index.slm import SLMIndexSettings
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.search.serial import SerialSearchEngine
from repro.service import (
    SearchService,
    ServiceConfig,
    ShardedSearchService,
    aggregate_batch_stats,
)
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_shard.json"

N_WORKERS = 2
N_SHARDS = 3
PRECURSOR_TOL_DA = 2.0


def same_results(a, b) -> bool:
    """Exact equality of two SearchResults' merged spectra."""
    if len(a.spectra) != len(b.spectra):
        return False
    for sa, sb in zip(a.spectra, b.spectra):
        if sa.scan_id != sb.scan_id or sa.n_candidates != sb.n_candidates:
            return False
        if [(p.entry_id, p.score, p.shared_peaks) for p in sa.psms] != [
            (p.entry_id, p.score, p.shared_peaks) for p in sb.psms
        ]:
            return False
    return True


def run(quick: bool = False) -> dict:
    n_families = 6 if quick else 16
    n_batches = 4 if quick else 8
    batch_size = 15 if quick else 50
    settings = SLMIndexSettings(precursor_tolerance=PRECURSOR_TOL_DA)

    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=n_families, seed=4242),
            max_variants_per_peptide=8,
        )
    )
    all_spectra = generate_run(
        db.entries,
        SyntheticRunConfig(n_spectra=n_batches * batch_size, seed=777),
    )
    # Mass-sorted contiguous batches: the workload shape routing pays
    # off on (each batch's precursor windows cluster in one or two
    # shards' ranges).  An unsorted stream degrades toward broadcast —
    # never toward wrong results.
    ordered = sorted(all_spectra, key=lambda s: s.neutral_mass)
    batches = [
        ordered[i * batch_size : (i + 1) * batch_size]
        for i in range(n_batches)
    ]

    serial = SerialSearchEngine(db, settings)
    references = [serial.run(batch) for batch in batches]
    identical = True

    # -- unsharded baseline --------------------------------------------
    with SearchService(
        db, ServiceConfig(n_workers=N_WORKERS, index=settings)
    ) as service:
        flat_open_s = service.open_s
        for i, batch in enumerate(batches):
            res, _ = service.submit(batch)
            identical = identical and same_results(references[i], res)
        flat_session = aggregate_batch_stats(service.batch_stats)
        flat_respawns = service.respawn_total

    # -- sharded fleet --------------------------------------------------
    with ShardedSearchService(
        db,
        ServiceConfig(n_workers=N_WORKERS, index=settings),
        n_shards=N_SHARDS,
    ) as service:
        shard_open_s = service.open_s
        shard_sizes = [s.n_entries for s in service.plan.shards]
        # The per-spectrum routing view, independent of batch timing.
        routed_pairs = sum(
            len(positions)
            for batch in batches
            for positions in service.plan.route(batch, settings)
        )
        per_batch_dispatch = []
        for i, batch in enumerate(batches):
            res, stats = service.submit(batch)
            identical = identical and same_results(references[i], res)
            per_batch_dispatch.append(
                (stats.shards_dispatched, stats.shards_skipped)
            )
        shard_session = aggregate_batch_stats(service.batch_stats)
        dispatches = service.shard_dispatch_total
        skips = service.shard_skip_total
        shard_respawns = service.respawn_total

    broadcast = n_batches * N_SHARDS
    selectivity = skips / broadcast
    spectra_broadcast = n_batches * batch_size * N_SHARDS
    # Fault-free supervision must be invisible in a clean benchmark.
    retries = flat_session.retries + shard_session.retries
    hedged = flat_session.hedged + shard_session.hedged
    respawns = flat_respawns + shard_respawns
    identical = identical and retries == 0 and hedged == 0 and respawns == 0

    report = {
        "benchmark": "shard_routing",
        "quick": quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "start_method": "spawn",
            "n_workers": N_WORKERS,
            "n_shards": N_SHARDS,
        },
        "workload": {
            "n_entries": db.n_entries,
            "n_batches": n_batches,
            "batch_size": batch_size,
            "precursor_tolerance_da": PRECURSOR_TOL_DA,
            "mass_sorted_batches": True,
            "shard_entry_counts": shard_sizes,
        },
        "routing": {
            "dispatches_sent": dispatches,
            "dispatches_skipped": skips,
            "broadcast_dispatches": broadcast,
            "selectivity": selectivity,
            "per_batch_dispatched_skipped": per_batch_dispatch,
            "spectra_pairs_routed": routed_pairs,
            "spectra_pairs_broadcast": spectra_broadcast,
            "spectra_fraction_routed": routed_pairs / spectra_broadcast,
        },
        "unsharded": {
            "open_s": flat_open_s,
            "first_batch_s": flat_session.first_batch_s,
            "steady_batch_s": flat_session.steady_batch_s,
            "mean_batch_s": flat_session.mean_batch_s,
        },
        "sharded": {
            "open_s": shard_open_s,
            "first_batch_s": shard_session.first_batch_s,
            "steady_batch_s": shard_session.steady_batch_s,
            "mean_batch_s": shard_session.mean_batch_s,
        },
        "latency": {
            # > 1 = the fleet is slower per batch than the flat session
            # (expected on small workloads: more pools than cores, plus
            # fan-out/merge overhead); the guard bounds the blow-up.
            "sharded_vs_unsharded": (
                shard_session.steady_batch_s / flat_session.steady_batch_s
            ),
        },
        "resilience": {
            "retries": retries,
            "hedged": hedged,
            "respawns": respawns,
        },
        "identical_results": bool(identical),
        "note": (
            "selectivity is the fraction of (batch, shard) dispatches "
            "the mass-range router skipped vs broadcasting every batch "
            "to every shard; spectra_fraction_routed is the same saving "
            "counted per (spectrum, shard) pair.  Batches are sorted by "
            "precursor mass so windows cluster — the workload routing "
            "is designed for; results are refused unless both sessions "
            "are bit-identical to the serial engine."
        ),
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke (numbers are noisy; the "
        "routing counts are exact either way)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = parser.parse_args()

    report = run(quick=args.quick)
    if not report["identical_results"]:
        print("REFUSING to write report: results not bit-identical to "
              "the serial engine (or supervision was not dormant)")
        return 1
    args.out.write_text(
        json.dumps(report, indent=2, sort_keys=False) + "\n",
        encoding="ascii",
    )
    routing = report["routing"]
    latency = report["latency"]
    print(f"wrote {args.out}")
    print(
        f"routing selectivity: {routing['selectivity'] * 100:.0f}% of "
        f"{routing['broadcast_dispatches']} shard dispatches skipped "
        f"({routing['dispatches_sent']} sent); "
        f"spectra fraction routed "
        f"{routing['spectra_fraction_routed'] * 100:.0f}%"
    )
    print(
        f"steady batch: sharded "
        f"{report['sharded']['steady_batch_s'] * 1e3:.1f} ms vs "
        f"unsharded {report['unsharded']['steady_batch_s'] * 1e3:.1f} ms "
        f"(ratio {latency['sharded_vs_unsharded']:.2f})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
