"""Elastic-rebalancing benchmark: frozen plan vs live re-planning.

The LBE paper plans once, offline; this benchmark measures what that
costs on a *heterogeneous* host and what the elastic session
(:mod:`repro.service.rebalance`) wins back.  The synthetic skew is a
recurring ``slow`` fault (``every_batch=True, scale=2.0``) on rank 0 —
the worker runs every command body 3x slower, modeling a down-clocked
or oversubscribed host — applied identically to both sessions:

* **frozen** — a plain resident session: the open()-time plan never
  changes, so rank 0's partition stays ~half the database and every
  batch waits ~3x the balanced wall on it, forever,
* **rebalancing** — the same session with ``rebalance_li`` armed: the
  sliding LI window trips, per-rank speeds are inferred from observed
  round walls, the plan is recomputed with weighted LPT and the
  session migrates between rounds.  Steady state (the last third of
  the stream, after the window has had time to converge) should beat
  the frozen plan's.

Metrics written to ``BENCH_rebalance.json``:

* ``frozen.steady_batch_s`` / ``rebalanced.steady_batch_s`` — mean
  per-batch wall seconds over each session's last third,
* ``speedup.rebalanced_vs_frozen`` — their ratio (> 1 = the migration
  paid for itself), the number the ``--rebalance-gain`` regression
  guard bounds,
* ``rebalanced.migrations`` — plan swaps actually applied (the guard
  requires >= 1: a benchmark where nothing migrated measured nothing),
* ``frozen.round_li_mean`` / ``rebalanced.round_li_mean`` — Eq.-1 LI
  over the master-observed per-rank round walls, averaged over each
  session's last third (the imbalance the migration removed),
* ``identical_results`` — every batch of **both** sessions checked
  bit-identical to the serial engine, before and after every
  migration; the report is refused otherwise.

Usage::

    PYTHONPATH=src python benchmarks/bench_rebalance.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.db.proteome import ProteomeConfig
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.search.metrics import load_imbalance
from repro.search.serial import SerialSearchEngine
from repro.service import SearchService, ServiceConfig
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_rebalance.json"

N_WORKERS = 2
SLOW_RANK = 0
SLOW_SCALE = 2.0  # body runs (1 + scale) = 3x slower


def same_results(a, b) -> bool:
    """Exact equality of two SearchResults' merged spectra."""
    if len(a.spectra) != len(b.spectra):
        return False
    for sa, sb in zip(a.spectra, b.spectra):
        if sa.scan_id != sb.scan_id or sa.n_candidates != sb.n_candidates:
            return False
        if [(p.entry_id, p.score, p.shared_peaks) for p in sa.psms] != [
            (p.entry_id, p.score, p.shared_peaks) for p in sb.psms
        ]:
            return False
    return True


def _run_session(db, config, batches, references) -> dict:
    """One session over the stream; returns per-batch walls + checks."""
    totals, round_lis, identical = [], [], True
    with SearchService(db, config) as service:
        for i, batch in enumerate(batches):
            results, stats = service.submit(batch)
            identical = identical and same_results(references[i], results)
            totals.append(stats.total_s)
            round_lis.append(
                load_imbalance(stats.round_wall_s)
                if stats.round_wall_s
                else 0.0
            )
        migrations = service.rebalance_total
        n_workers_final = service.n_workers
    # Steady state: the last third of the stream — the rebalancing
    # session has converged by then, the frozen one never changes.
    tail = max(1, len(totals) // 3)
    return {
        "identical": identical,
        "migrations": migrations,
        "n_workers_final": n_workers_final,
        "batch_total_s": [round(t, 6) for t in totals],
        "steady_batch_s": sum(totals[-tail:]) / tail,
        "round_li_mean": sum(round_lis[-tail:]) / tail,
    }


def run(quick: bool = False) -> dict:
    n_families = 6 if quick else 10
    n_batches = 9 if quick else 15
    batch_size = 40 if quick else 60

    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=n_families, seed=2024),
            max_variants_per_peptide=8,
        )
    )
    spectra = generate_run(
        db.entries, SyntheticRunConfig(n_spectra=batch_size, seed=909)
    )
    # The same batch repeated: identical work per step, so steady-state
    # tails of the two sessions are directly comparable.
    batches = [list(spectra) for _ in range(n_batches)]
    serial = SerialSearchEngine(db)
    references = [serial.run(batches[0])] * n_batches

    fault = FaultPlan(
        [
            FaultSpec(
                kind="slow",
                stage="reply",
                rank=SLOW_RANK,
                every_batch=True,
                scale=SLOW_SCALE,
            )
        ]
    )
    frozen = _run_session(
        db,
        ServiceConfig(n_workers=N_WORKERS, fault_plan=fault, max_retries=1),
        batches,
        references,
    )
    rebalanced = _run_session(
        db,
        ServiceConfig(
            n_workers=N_WORKERS,
            fault_plan=fault,
            max_retries=1,
            rebalance_li=0.3,
            rebalance_window=2,
            rebalance_cooldown=1,
        ),
        batches,
        references,
    )

    identical = frozen["identical"] and rebalanced["identical"]
    if not identical:
        raise SystemExit(
            "bench_rebalance: results diverged from the serial engine; "
            "refusing to report performance for wrong answers"
        )
    speedup = (
        frozen["steady_batch_s"] / rebalanced["steady_batch_s"]
        if rebalanced["steady_batch_s"] > 0
        else 0.0
    )
    for session in (frozen, rebalanced):
        session.pop("identical")
        session["steady_batch_s"] = round(session["steady_batch_s"], 6)
        session["round_li_mean"] = round(session["round_li_mean"], 6)
    return {
        "benchmark": "rebalance",
        "quick": quick,
        "platform": platform.platform(),
        "workload": {
            "n_entries": db.n_entries,
            "n_batches": n_batches,
            "batch_size": batch_size,
            "n_workers": N_WORKERS,
            "slow_rank": SLOW_RANK,
            "slow_scale": SLOW_SCALE,
        },
        "frozen": frozen,
        "rebalanced": rebalanced,
        "speedup": {"rebalanced_vs_frozen": round(speedup, 6)},
        "identical_results": identical,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH, help="output JSON path"
    )
    args = parser.parse_args()
    report = run(quick=args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="ascii")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
