"""Real-parallel backend benchmark: LBE speedup in actual seconds.

Measures the query phase of the process backend
(:class:`~repro.parallel.ParallelSearchEngine` — real OS workers over
a memmap-shared fragment arena) against the in-process serial query
phase *on the same kernels*, for LBE (cyclic) and naive (chunk)
partitioning at 1/2/3 workers.  This is the paper's headline claim —
wall-clock speedup from load-balanced parallel peptide search —
finally measured on real processes instead of virtual clocks.

Metrics (all real seconds, written to ``BENCH_parallel.json``):

* ``serial_s.query`` — the in-process query phase over the full
  database (the 1-worker baseline, same rank body as the workers),
* per config (policy × workers): each worker's query wall and CPU
  seconds, the master-observed parallel-section wall, and phase times,
* ``speedup.query_dedicated_Nw`` — serial query seconds over the
  slowest worker's query **CPU** seconds.  Worker CPU time equals the
  wall-clock a worker would take with a dedicated core, so this is
  the machine-independent speedup figure; on a host with >= N free
  cores it coincides with ``speedup.query_wall_Nw`` (reported
  alongside, from worker wall clocks).  ``machine.cpu_count`` records
  how much physical parallelism backed the wall numbers — on a 1-CPU
  container the wall figures necessarily hover at ~1x while the
  dedicated figures show the work division.
* ``speedup.lbe_vs_naive_Nw`` — slowest-worker query time under chunk
  over slowest-worker under cyclic: the load-balancing win itself.

Every configuration's merged results are checked bit-identical to the
serial engine before anything is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_backend.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.db.proteome import ProteomeConfig
from repro.index.slm import SLMIndexSettings
from repro.parallel import ParallelEngineConfig, ParallelSearchEngine
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.search.metrics import load_imbalance
from repro.search.rank import build_rank_index, run_rank_queries
from repro.search.serial import SerialSearchEngine
from repro.spectra.preprocess import PreprocessConfig, preprocess_spectrum
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_parallel.json"


def same_results(a, b) -> bool:
    """Exact equality of two SearchResults' merged spectra."""
    if len(a.spectra) != len(b.spectra):
        return False
    for sa, sb in zip(a.spectra, b.spectra):
        if sa.scan_id != sb.scan_id or sa.n_candidates != sb.n_candidates:
            return False
        if [(p.entry_id, p.score, p.shared_peaks) for p in sa.psms] != [
            (p.entry_id, p.score, p.shared_peaks) for p in sb.psms
        ]:
            return False
    return True


def run(quick: bool = False) -> dict:
    n_families = 8 if quick else 30
    n_spectra = 40 if quick else 360
    repeats = 2 if quick else 3
    worker_counts = (2,) if quick else (2, 3)
    settings = SLMIndexSettings()

    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=n_families, seed=4242),
            max_variants_per_peptide=8,
        )
    )
    spectra = generate_run(
        db.entries, SyntheticRunConfig(n_spectra=n_spectra, seed=777)
    )
    processed = [preprocess_spectrum(s, PreprocessConfig()) for s in spectra]

    serial_reference = SerialSearchEngine(db, settings).run(spectra)

    # Serial query-phase baseline: the identical rank body, one
    # in-process "rank" owning the whole database.  Build once (the
    # engines amortize builds the same way), time the query phase.
    arena = db.arena_for(settings.fragmentation)
    arena.buckets_for(settings.resolution)
    arena.sort_order_for(settings.resolution)
    all_ids = np.arange(db.n_entries, dtype=np.int64)
    sub, full_index = build_rank_index(arena, all_ids, settings)
    serial_query_s = float("inf")
    serial_query_cpu = float("inf")
    for _ in range(repeats):
        t0, c0 = time.perf_counter(), time.process_time()
        run_rank_queries(full_index, sub, all_ids, processed, top_k=5)
        serial_query_s = min(serial_query_s, time.perf_counter() - t0)
        serial_query_cpu = min(serial_query_cpu, time.process_time() - c0)

    configs = {}
    identical = True
    for policy in ("cyclic", "chunk"):
        for n_workers in worker_counts:
            engine = ParallelSearchEngine(
                db,
                ParallelEngineConfig(
                    n_workers=n_workers, policy=policy, index=settings
                ),
            )
            best = None
            spill_s = None
            for _ in range(repeats):
                res = engine.run(spectra)
                # The engine spills once and caches; only the first
                # run's spill time is the real cost.
                if spill_s is None:
                    spill_s = res.phase_times["spill"]
                identical = identical and same_results(serial_reference, res)
                if best is None or res.phase_times["query_cpu"] < best.phase_times["query_cpu"]:
                    best = res
            configs[f"{policy}_{n_workers}w"] = {
                "policy": policy,
                "n_workers": n_workers,
                "query_wall_max_s": max(s.query_time for s in best.rank_stats),
                "query_cpu_max_s": max(s.query_cpu_time for s in best.rank_stats),
                "per_worker_query_cpu_s": [
                    s.query_cpu_time for s in best.rank_stats
                ],
                "query_cpu_imbalance": load_imbalance(
                    [s.query_cpu_time for s in best.rank_stats]
                ),
                "build_wall_max_s": max(s.build_time for s in best.rank_stats),
                "parallel_wall_s": best.phase_times["parallel_wall"],
                "parallel_overhead_s": best.phase_times["parallel_overhead"],
                "spill_s": spill_s,
                "per_worker_entries": [s.n_entries for s in best.rank_stats],
            }

    speedup = {}
    for n_workers in worker_counts:
        cyclic = configs[f"cyclic_{n_workers}w"]
        chunk = configs[f"chunk_{n_workers}w"]
        speedup[f"query_dedicated_{n_workers}w"] = (
            serial_query_cpu / cyclic["query_cpu_max_s"]
        )
        speedup[f"query_wall_{n_workers}w"] = (
            serial_query_s / cyclic["query_wall_max_s"]
        )
        speedup[f"lbe_vs_naive_{n_workers}w"] = (
            chunk["query_cpu_max_s"] / cyclic["query_cpu_max_s"]
        )

    report = {
        "benchmark": "parallel_backend",
        "quick": quick,
        "repeats": repeats,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "start_method": "spawn",
        },
        "workload": {
            "n_entries": db.n_entries,
            "n_ions": int(arena.n_ions),
            "n_spectra": len(spectra),
            "total_cpsms": serial_reference.total_cpsms,
        },
        "serial_s": {
            "query": serial_query_s,
            "query_cpu": serial_query_cpu,
        },
        "configs": configs,
        "speedup": speedup,
        "identical_results": bool(identical),
        "note": (
            "query_dedicated_* uses per-worker CPU seconds = the "
            "wall-clock a worker takes with a dedicated core; it equals "
            "query_wall_* when machine.cpu_count >= n_workers and is the "
            "machine-independent figure on oversubscribed hosts."
        ),
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH, help="output JSON path"
    )
    args = parser.parse_args()
    report = run(quick=args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="ascii")
    w = report["workload"]
    print(
        f"entries={w['n_entries']} spectra={w['n_spectra']} "
        f"cpus={report['machine']['cpu_count']}"
    )
    print(
        f"serial query: {report['serial_s']['query'] * 1e3:8.1f} ms wall "
        f"/ {report['serial_s']['query_cpu'] * 1e3:8.1f} ms cpu"
    )
    for name, cfg in report["configs"].items():
        print(
            f"{name:>10}: query {cfg['query_wall_max_s'] * 1e3:8.1f} ms wall "
            f"/ {cfg['query_cpu_max_s'] * 1e3:8.1f} ms cpu (max worker), "
            f"LI {100 * cfg['query_cpu_imbalance']:.1f}%, "
            f"overhead {cfg['parallel_overhead_s'] * 1e3:8.1f} ms"
        )
    for key, value in report["speedup"].items():
        print(f"{key:>24}: {value:6.2f}x")
    print(f"identical_results={report['identical_results']}")
    print(f"wrote {args.out}")
    if not report["identical_results"]:
        raise SystemExit("parallel and serial engines disagree — refusing to report")


if __name__ == "__main__":
    main()
