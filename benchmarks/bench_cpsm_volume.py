"""Section V-A — candidate-PSM volume.

Paper: the full-dataset search yielded 22,517,426,929 cPSMs, i.e.
~73,723 cPSMs per query, against a 49.45 M-entry open-search index.
At our ~×600 scaled index the per-query volume scales down
proportionally; the bench asserts the volume grows with index size and
reports the measured per-query counts.
"""

from repro.bench.reporting import series_table

HEADERS = ["size_M", "entries", "total_cPSMs", "cPSMs_per_query"]


def test_cpsm_volume(benchmark, suite):
    rows = benchmark.pedantic(suite.cpsm_rows, rounds=1, iterations=1)
    print()
    print(series_table("Section V-A: candidate PSM volume (open search)",
                       HEADERS, rows, float_fmt=".1f"))

    per_query = [r[3] for r in rows]
    entries = [r[1] for r in rows]
    assert all(p > 0 for p in per_query)
    # cPSM volume grows with index size.
    assert per_query == sorted(per_query)
    # Roughly proportional: the per-entry candidate rate stays within
    # a factor 3 band across sizes.
    rates = [p / e for p, e in zip(per_query, entries)]
    assert max(rates) < 3 * min(rates)
