"""Extension — hybrid OpenMP + MPI scaling (paper §VIII).

The paper's future work proposes exploiting "both machine and core
level parallelism" with a hybrid OpenMP + MPI design.  The engine
models it with ``cores_per_rank``: parallel-phase compute divides by
an intra-rank Amdahl speedup.  This bench fixes 4 MPI ranks (the
paper's 4 physical machines) and sweeps cores per rank 1→16,
reporting query time and the effective speedup over the 1-core
configuration.

Expected shape: near-linear gains for the first few cores, flattening
toward the intra-rank Amdahl ceiling (1/s ≈ 20× at the default 5 %
intra-rank serial fraction) — the diminishing-returns curve that
motivates combining node- and core-level parallelism instead of
scaling either alone.
"""

from repro.bench.reporting import series_table
from repro.search.engine import DistributedSearchEngine, EngineConfig

SIZE_M = 18.0
RANKS = 4
CORES = (1, 2, 4, 8, 16)

HEADERS = ["cores_per_rank", "query_time_s", "speedup_vs_1core", "amdahl_model"]


def _run_sweep(suite):
    wl = suite.workload(SIZE_M)
    times = {}
    for cores in CORES:
        cfg = EngineConfig(n_ranks=RANKS, policy="cyclic", cores_per_rank=cores)
        times[cores] = (
            DistributedSearchEngine(wl.database, cfg).run(wl.spectra).query_time,
            cfg.intra_rank_speedup,
        )
    base = times[1][0]
    return [
        (cores, t, base / t, model)
        for cores, (t, model) in sorted(times.items())
    ]


def test_ext_hybrid_core_scaling(benchmark, suite):
    rows = benchmark.pedantic(_run_sweep, args=(suite,), rounds=1, iterations=1)
    print()
    print(series_table(
        "Extension (§VIII): hybrid MPI+cores query scaling (18M, 4 ranks)",
        HEADERS, rows, float_fmt=".4f",
    ))

    speedups = {r[0]: r[2] for r in rows}
    models = {r[0]: r[3] for r in rows}
    assert speedups[1] == 1.0
    # Monotone improvement with cores.
    ordered = [speedups[c] for c in CORES]
    assert ordered == sorted(ordered)
    # Tracks the intra-rank Amdahl model (same query workload per rank).
    for cores in CORES:
        assert abs(speedups[cores] - models[cores]) / models[cores] < 0.05
    # Visible saturation: 16 cores deliver far less than 16x.
    assert speedups[16] < 12.0
