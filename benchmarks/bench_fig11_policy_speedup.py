"""Figure 11 — CPU-time speedup of LBE policies over Chunk partitioning.

Paper: Cyclic and Random partitioning yield order-of-magnitude CPU-time
speedups over conventional Chunk (averages ≈8.6× and ≈7.5× with 16
CPUs), measured through the wasted-CPU-time relation Twst = N·ΔTmax
(Section VI).
"""

from collections import defaultdict

from repro.bench.reporting import series_table

HEADERS = ["size_M", "policy", "cpu_speedup_vs_chunk", "Twst_s"]


def test_fig11_policy_speedup(benchmark, suite):
    rows = benchmark.pedantic(suite.fig11_rows, rounds=1, iterations=1)
    print()
    print(series_table(
        "Fig. 11: CPU-time speedup by load balance, 16 ranks",
        HEADERS, rows, float_fmt=".2f",
    ))

    by_policy = defaultdict(list)
    for _, policy, speedup, _twst in rows:
        by_policy[policy].append(speedup)

    # Chunk against itself is exactly 1.
    assert all(s == 1.0 for s in by_policy["chunk"])
    # Balanced policies: order-of-magnitude-ish gains on average.
    for policy in ("cyclic", "random"):
        avg = sum(by_policy[policy]) / len(by_policy[policy])
        assert avg > 4.0, f"{policy} average speedup {avg:.1f}x too low"
        assert all(s > 2.0 for s in by_policy[policy])
