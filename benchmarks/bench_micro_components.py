"""Component microbenchmarks: the hot paths, measured for real.

Unlike the figure benches (one-shot experiment reproductions), these
measure steady-state throughput of the core operations with
pytest-benchmark's usual multi-round statistics:

* SLM index construction,
* shared-peak filtration of one query,
* candidate scoring of one query,
* Algorithm 1 grouping,
* bounded edit distance,
* the three partition policies.
"""

import numpy as np
import pytest

from repro.core.editdist import bounded_edit_distance
from repro.core.grouping import GroupingConfig, group_peptides
from repro.core.partition import make_policy
from repro.index.slm import SLMIndex, SLMIndexSettings
from repro.search.scoring import score_candidates
from repro.spectra.preprocess import preprocess_spectrum


@pytest.fixture(scope="module")
def workload(suite):
    return suite.workload(18.0)


@pytest.fixture(scope="module")
def built_index(workload):
    db = workload.database
    return SLMIndex(
        db.entries, SLMIndexSettings(), fragments=db.fragments_for()
    )


@pytest.fixture(scope="module")
def query(workload, built_index):
    spectrum = preprocess_spectrum(workload.spectra[0])
    fres = built_index.filter(spectrum)
    return spectrum, fres


def test_index_build(benchmark, workload):
    db = workload.database
    frags = db.fragments_for()
    entries = db.entries[:5000]
    frag_slice = frags[:5000]

    index = benchmark(
        lambda: SLMIndex(entries, SLMIndexSettings(), fragments=frag_slice)
    )
    assert index.n_ions > 0


def test_filter_one_query(benchmark, built_index, query):
    spectrum, _ = query
    res = benchmark(built_index.filter, spectrum)
    assert res.candidates.size > 0


def test_score_one_query(benchmark, workload, built_index, query):
    spectrum, fres = query
    db = workload.database
    frags = db.fragments_for()
    out = benchmark(
        score_candidates,
        spectrum,
        db.entries,
        fres.candidates,
        fragment_tolerance=0.05,
        fragments=frags,
    )
    assert out.candidates_scored == fres.candidates.size


def test_grouping_algorithm1(benchmark, workload):
    sequences = workload.database.base_sequences()[:3000]
    grouping = benchmark(group_peptides, sequences, GroupingConfig())
    assert grouping.n_sequences == 3000


def test_bounded_edit_distance(benchmark):
    a = "ACDEFGHIKLMNPQRSTVWYACDEFGHIK"
    b = "ACDEFGHLKLMNPQRSTVWYACDEGHIKK"
    dist = benchmark(bounded_edit_distance, a, b, 10)
    assert dist <= 10


@pytest.mark.parametrize("policy", ["chunk", "cyclic", "random"])
def test_partition_policy(benchmark, workload, policy):
    grouping = workload.database.group_bases()
    assignment = benchmark(make_policy(policy, seed=1).assign, grouping, 16)
    assert assignment.n_items == grouping.n_sequences
