"""Extension — the §VIII load-predicting policy on heterogeneous clusters.

The paper's future work announces "a load-predicting model for
heterogeneous memory-distributed architectures"; `repro` implements it
as the speed-aware LPT policy (``repro.core.predict``).  This bench
sweeps machine heterogeneity (per-rank speed spread σ) and compares
Cyclic — blind to machine speeds — against the predictive policy,
which feeds the engine's machine model into weighted LPT.

Expected shape: at low heterogeneity both are fine (Cyclic may even
edge ahead — its per-query interleaving is finer than per-base LPT);
as σ grows, Cyclic's imbalance rises ~linearly with the speed spread
while LPT stays flat, because it hands slow machines proportionally
less data.
"""

from repro.bench.reporting import series_table
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.metrics import load_imbalance

SIZE_M = 18.0
RANKS = 16
JITTERS = (0.0, 0.1, 0.2, 0.3)

HEADERS = ["jitter_sigma", "cyclic_LI_%", "lpt_LI_%"]


def _run_sweep(suite):
    wl = suite.workload(SIZE_M)
    rows = []
    for jitter in JITTERS:
        lis = {}
        for policy in ("cyclic", "lpt"):
            res = DistributedSearchEngine(
                wl.database,
                EngineConfig(
                    n_ranks=RANKS,
                    policy=policy,
                    machine_jitter=jitter,
                    machine_seed=1234,
                ),
            ).run(wl.spectra)
            lis[policy] = 100.0 * load_imbalance(res.query_times)
        rows.append((jitter, lis["cyclic"], lis["lpt"]))
    return rows


def test_ext_heterogeneity_predictive_policy(benchmark, suite):
    rows = benchmark.pedantic(_run_sweep, args=(suite,), rounds=1, iterations=1)
    print()
    print(series_table(
        "Extension (§VIII): LI vs machine heterogeneity (18M, 16 ranks)",
        HEADERS, rows, float_fmt=".1f",
    ))

    by_jitter = {r[0]: (r[1], r[2]) for r in rows}
    # At strong heterogeneity the predictive policy wins clearly.
    cyclic_hi, lpt_hi = by_jitter[0.3]
    assert lpt_hi < cyclic_hi, "speed-aware LPT should absorb heterogeneity"
    assert lpt_hi < 25.0
    # Cyclic's imbalance grows with heterogeneity.
    cyclic_series = [r[1] for r in rows]
    assert cyclic_series[-1] > cyclic_series[0]
    # LPT stays comparatively flat: its worst point beats cyclic's worst.
    assert max(r[2] for r in rows) < max(cyclic_series)
