"""Benchmark-session fixtures.

The figure benchmarks share one :class:`repro.bench.ExperimentSuite`:
distributed-search runs are cached by (size, policy, ranks), so e.g.
Fig. 6 and Fig. 11 reuse the same 16-rank searches instead of
repeating them.  The suite is process-wide (module-level singleton)
because pytest-benchmark runs all files in one process.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import default_suite


@pytest.fixture(scope="session")
def suite():
    """The shared experiment suite with the paper's four index sizes."""
    return default_suite()
