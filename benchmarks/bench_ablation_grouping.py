"""Ablation — sensitivity of load balance to Algorithm 1's parameters.

DESIGN.md calls out two grouping design choices the paper leaves
under-explored: the cutoff criterion (1 vs 2) and the group-size cap
``gsize``.  This bench measures 16-rank load imbalance across those
settings on the 18 M-scale workload.

A structural finding this ablation surfaces: with the continuation
variant of Cyclic used here (`owner(i) = i mod p` over the sorted
order — round-robin *within* every group, carried across boundaries),
the assignment is provably independent of where group boundaries fall,
so Cyclic's LI is flat across all grouping parameters; the same holds
for contiguous Chunk.  Only the Random policy (per-group shuffle +
chunk-split) actually consumes the group structure, so it is the
policy whose LI this ablation sweeps.
"""

from repro.bench.reporting import series_table
from repro.core.grouping import GroupingConfig
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.metrics import load_imbalance

SIZE_M = 18.0
RANKS = 16

HEADERS = ["criterion", "gsize", "n_groups", "random_LI_%", "cyclic_LI_%", "chunk_LI_%"]


def _li(wl, policy, grouping_cfg):
    res = DistributedSearchEngine(
        wl.database,
        EngineConfig(n_ranks=RANKS, policy=policy, grouping=grouping_cfg),
    ).run(wl.spectra)
    return 100.0 * load_imbalance(res.query_times)


def _run_ablation(suite):
    wl = suite.workload(SIZE_M)
    rows = []
    for criterion in (1, 2):
        for gsize in (5, 20, 50):
            cfg = GroupingConfig(criterion=criterion, gsize=gsize)
            n_groups = wl.database.group_bases(cfg).n_groups
            rows.append(
                (
                    criterion,
                    gsize,
                    n_groups,
                    _li(wl, "random", cfg),
                    _li(wl, "cyclic", cfg),
                    _li(wl, "chunk", cfg),
                )
            )
    return rows


def test_ablation_grouping_parameters(benchmark, suite):
    rows = benchmark.pedantic(_run_ablation, args=(suite,), rounds=1, iterations=1)
    print()
    print(series_table(
        "Ablation: Algorithm 1 criterion × gsize (18M workload, 16 ranks)",
        HEADERS, rows, float_fmt=".1f",
    ))

    cyclic_lis = {r[4] for r in rows}
    chunk_lis = {r[5] for r in rows}
    # Structural property: Cyclic/Chunk are grouping-invariant.
    assert len(cyclic_lis) == 1
    assert len(chunk_lis) == 1
    for criterion, gsize, n_groups, random_li, cyclic_li, chunk_li in rows:
        # The LBE conclusion is robust across grouping settings: both
        # fine-grained policies beat Chunk for every criterion/gsize.
        assert random_li < chunk_li
        assert cyclic_li < chunk_li
        assert n_groups > 0
    # Larger gsize can only reduce (or keep) the number of groups.
    for criterion in (1, 2):
        counts = [r[2] for r in rows if r[0] == criterion]
        assert counts == sorted(counts, reverse=True)
    # Criterion 2 (the paper's choice) groups far more aggressively.
    groups_c1 = min(r[2] for r in rows if r[0] == 1)
    groups_c2 = min(r[2] for r in rows if r[0] == 2)
    assert groups_c2 < groups_c1
