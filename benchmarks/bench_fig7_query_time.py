"""Figure 7 — query time vs number of MPI processes (Cyclic policy).

Paper: query time falls steadily with rank count for every index size
(23,264 query spectra; 18 M–49.45 M entries).  Absolute seconds differ
(scaled workload + virtual clock); the monotone shape and ordering by
index size must hold.
"""

from collections import defaultdict

from repro.bench.reporting import series_table

HEADERS = ["size_M", "ranks", "query_time_s"]


def test_fig7_query_time(benchmark, suite):
    rows = benchmark.pedantic(suite.fig7_rows, rounds=1, iterations=1)
    print()
    print(series_table("Fig. 7: query time vs MPI processes (cyclic)",
                       HEADERS, rows, float_fmt=".4f"))

    series = defaultdict(dict)
    for size_m, p, t in rows:
        series[size_m][p] = t

    for size_m, times in series.items():
        ps = sorted(times)
        # Monotone decreasing in rank count.
        for a, b in zip(ps, ps[1:]):
            assert times[b] < times[a], f"query time rose {a}->{b} at {size_m}M"
    # Larger index => more query work at equal rank count.
    sizes = sorted(series)
    for p in sorted(series[sizes[0]]):
        ts = [series[s][p] for s in sizes]
        assert ts == sorted(ts), f"query time not increasing in size at p={p}"
