"""Figure 10 — execution-time speedup vs MPI processes (Cyclic policy).

Paper: "the total execution time does not scale linearly and
saturates" (Amdahl's law), and "the scalability improves as the index
size increases since the query time portion increases in total
execution time."
"""

from collections import defaultdict

from repro.bench.reporting import series_table
from repro.search.metrics import amdahl_speedup

HEADERS = ["size_M", "ranks", "speedup", "ideal", "serial_fraction"]


def test_fig10_execution_speedup(benchmark, suite):
    rows = benchmark.pedantic(suite.fig10_rows, rounds=1, iterations=1)
    print()
    print(series_table("Fig. 10: execution speedup vs MPI processes (cyclic)",
                       HEADERS, rows, float_fmt=".3f"))

    series = defaultdict(dict)
    frac = {}
    for size_m, p, s, _ideal, serial_fraction in rows:
        series[size_m][p] = s
        frac[size_m] = serial_fraction

    max_p = max(p for sizes in series.values() for p in sizes)
    for size_m, speedups in series.items():
        ps = sorted(speedups)
        vals = [speedups[p] for p in ps]
        assert vals == sorted(vals)  # still monotone...
        # ...but clearly sub-linear at the top end (saturation).
        assert speedups[max_p] < 0.85 * max_p, (
            f"{size_m}M: no Amdahl saturation visible"
        )
        # Consistent with the fitted serial fraction within tolerance.
        expected = amdahl_speedup(max_p, frac[size_m])
        assert speedups[max_p] > 0.5 * expected

    # Scalability improves with index size (the paper's observation).
    sizes = sorted(series)
    assert series[sizes[-1]][max_p] > series[sizes[0]][max_p]
    assert frac[sizes[-1]] < frac[sizes[0]]
