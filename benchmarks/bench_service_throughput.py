"""Service-throughput benchmark: one-shot vs resident per-batch cost.

Measures what the persistent service (:mod:`repro.service`) actually
amortizes, on a stream of identical-shape query batches:

* **one-shot** — a fresh :class:`~repro.parallel.ParallelSearchEngine`
  per batch: every batch pays worker spawn + interpreter import +
  arena attach (~0.5 s on a laptop-class host) and pickles the
  preprocessed peak arrays to every worker,
* **resident** — one :class:`~repro.service.SearchService` session:
  spawn + spill + attach are paid once in ``open()``; each
  ``submit()`` pickles only an O(manifest) command per worker and the
  peak arrays travel through a memmap-shared
  :class:`~repro.parallel.SharedSpectraStore`,
* **pipelined** — the same session driven through
  ``SearchService.stream``: the master preprocesses + spills batch
  N+1 and merges batch N while the workers query, so the per-batch
  *completion interval* drops below the sequential per-submit latency
  by however much master-side work the overlap hides.

Metrics written to ``BENCH_service.json``:

* ``oneshot.mean_batch_s`` / ``resident.steady_batch_s`` — per-batch
  wall seconds; ``speedup.resident_vs_oneshot`` is their ratio (the
  headline: the spawn/spill overhead is paid once per *session*, not
  once per *batch*),
* ``pipelined.steady_batch_s`` — the steady-state completion interval
  of the overlapped stream; ``speedup.pipelined_vs_sequential`` is
  sequential-steady / pipelined-steady (>= 1 when the overlap hides
  real master work), and ``pipelined.overlap_s_total`` is the master
  wall time that ran behind worker rounds,
* ``resident.open_s`` vs ``resident.steady_batch_s`` — the amortized
  session cost against the steady-state latency floor,
* ``scatter.*`` — pickled bytes per batch before (peak arrays to every
  worker) and after (manifest commands): O(peaks) → O(manifest),
* ``observability.*`` — steady-state latency of three paired sessions
  (bare, in-memory flight recorder, JSONL file tracer);
  ``overhead_ratio`` and ``ring_overhead_ratio`` are what the
  ``--obs-overhead`` regression guard bounds,
* ``resilience.*`` — the supervision layer's per-session totals
  (``retries`` re-dispatches, ``hedged`` speculative duplicates,
  ``respawns`` worker replacements) summed over the resident and
  pipelined sessions.  A fault-free benchmark run **must** report all
  zeros — the supervision fast path adds no work when nothing fails —
  and the results are refused otherwise.

Every batch's merged results — one-shot, resident, every batch — are
checked bit-identical to the serial engine before anything is
reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import tempfile
import time
from pathlib import Path

from repro.db.proteome import ProteomeConfig
from repro.index.slm import SLMIndexSettings
from repro.obs import (
    NULL_TRACER,
    JsonlTracer,
    MetricsRegistry,
    validate_trace_file,
)
from repro.parallel import ParallelEngineConfig, ParallelSearchEngine
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.search.serial import SerialSearchEngine
from repro.service import SearchService, ServiceConfig, aggregate_batch_stats
from repro.spectra.preprocess import (
    PreprocessConfig,
    preprocess_batch,
    spectra_peak_bytes,
)
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_service.json"

N_WORKERS = 2


def same_results(a, b) -> bool:
    """Exact equality of two SearchResults' merged spectra."""
    if len(a.spectra) != len(b.spectra):
        return False
    for sa, sb in zip(a.spectra, b.spectra):
        if sa.scan_id != sb.scan_id or sa.n_candidates != sb.n_candidates:
            return False
        if [(p.entry_id, p.score, p.shared_peaks) for p in sa.psms] != [
            (p.entry_id, p.score, p.shared_peaks) for p in sb.psms
        ]:
            return False
    return True


def run(quick: bool = False) -> dict:
    n_families = 6 if quick else 16
    n_batches = 3 if quick else 6
    batch_size = 20 if quick else 60
    settings = SLMIndexSettings()

    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=n_families, seed=4242),
            max_variants_per_peptide=8,
        )
    )
    all_spectra = generate_run(
        db.entries,
        SyntheticRunConfig(n_spectra=n_batches * batch_size, seed=777),
    )
    batches = [
        all_spectra[i * batch_size : (i + 1) * batch_size]
        for i in range(n_batches)
    ]

    serial = SerialSearchEngine(db, settings)
    references = [serial.run(batch) for batch in batches]
    identical = True

    # -- one-shot: a fresh engine (fresh spawn) per batch ---------------
    oneshot_totals = []
    oneshot_scatter = 0
    for i, batch in enumerate(batches):
        engine = ParallelSearchEngine(
            db,
            ParallelEngineConfig(n_workers=N_WORKERS, index=settings),
        )
        res = engine.run(batch)
        identical = identical and same_results(references[i], res)
        oneshot_totals.append(res.phase_times["total"])
        # What the one-shot scatter pickles per batch: the preprocessed
        # peak arrays, to every worker.
        processed = preprocess_batch(batch, PreprocessConfig())
        oneshot_scatter = max(
            oneshot_scatter, len(pickle.dumps(processed)) * N_WORKERS
        )
        del engine

    # -- resident: one session, the same stream ------------------------
    resident_totals = []
    peak_bytes = 0
    with SearchService(
        db, ServiceConfig(n_workers=N_WORKERS, index=settings)
    ) as service:
        open_s = service.open_s
        attach_s = service.attach_s
        for i, batch in enumerate(batches):
            res, stats = service.submit(batch)
            identical = identical and same_results(references[i], res)
            resident_totals.append(stats.total_s)
            peak_bytes = max(peak_bytes, stats.peak_bytes)
        resident_session = aggregate_batch_stats(service.batch_stats)
        respawns = service.respawn_total
    resident_scatter = resident_session.scatter_bytes_max
    identical = identical and respawns == 0

    # -- pipelined: the same stream through the overlapped session ------
    completions = []
    with SearchService(
        db,
        ServiceConfig(n_workers=N_WORKERS, index=settings, max_pending=4),
    ) as service:
        pipe_open_s = service.open_s
        t_stream = time.perf_counter()
        for i, (res, stats) in enumerate(service.stream(iter(batches))):
            identical = identical and same_results(references[i], res)
            completions.append(time.perf_counter())
        pipe_wall = completions[-1] - t_stream
        pipe_session = aggregate_batch_stats(service.batch_stats)
        respawns_pipe = service.respawn_total
    identical = identical and respawns_pipe == 0
    overlap_total = pipe_session.overlap_s_total
    depth_max = pipe_session.pipeline_depth_max
    # Throughput view: per-batch completion intervals of the stream.
    gaps = [completions[0] - t_stream] + [
        b - a for a, b in zip(completions, completions[1:])
    ]
    pipe_steady = min(gaps[1:]) if len(gaps) > 1 else gaps[0]
    # Fault-free supervision must be invisible: any retry, hedge, or
    # respawn in a clean benchmark run invalidates the numbers.
    retries_total = resident_session.retries + pipe_session.retries
    hedged_total = resident_session.hedged + pipe_session.hedged
    identical = identical and retries_total == 0 and hedged_total == 0

    steady = resident_session.steady_batch_s
    mean_oneshot = sum(oneshot_totals) / len(oneshot_totals)

    # -- observability: bare vs ring vs traced, back-to-back ------------
    # Three paired sessions over the same repeated stream: a *bare*
    # session (flight recorder off, no tracer), the *ring* default (the
    # in-memory flight recorder every untraced session now carries),
    # and a *traced* session (JSONL file tracer).  Both enabled paths
    # must stay within a few percent of bare (the --obs-overhead
    # regression guard bounds each ratio) and the JSONL trace must be
    # schema-valid with zero violations.  Steady-state is a min over
    # many samples measured under the same machine state, so
    # single-scheduler-hiccup noise does not masquerade as overhead.
    obs_batches = batches * (3 if quick else 2)

    def obs_session(tracer, metrics, flight_recorder=False):
        ok = True
        with SearchService(
            db,
            ServiceConfig(
                n_workers=N_WORKERS,
                index=settings,
                tracer=tracer,
                metrics=metrics,
                flight_recorder=flight_recorder,
            ),
        ) as service:
            for i, batch in enumerate(obs_batches):
                res, stats = service.submit(batch)
                ok = ok and same_results(references[i % len(batches)], res)
            session = aggregate_batch_stats(service.batch_stats)
            ring = service.flight_recorder
            ring_seen = ring.n_seen if ring is not None else 0
        return session, ok, ring_seen

    bare_session, ok, _ = obs_session(NULL_TRACER, MetricsRegistry())
    identical = identical and ok
    ring_session, ok, ring_seen = obs_session(
        NULL_TRACER, MetricsRegistry(), flight_recorder=True
    )
    identical = identical and ok and ring_seen > 0
    fd, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="bench-trace-")
    os.close(fd)
    tracer = JsonlTracer(trace_path)
    traced_session, ok, _ = obs_session(tracer, MetricsRegistry())
    identical = identical and ok
    tracer.close()
    n_trace_records, trace_errors = validate_trace_file(trace_path)
    os.unlink(trace_path)
    traced_steady = traced_session.steady_batch_s
    ring_steady = ring_session.steady_batch_s
    untraced_steady = bare_session.steady_batch_s

    report = {
        "benchmark": "service_throughput",
        "quick": quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "start_method": "spawn",
            "n_workers": N_WORKERS,
        },
        "workload": {
            "n_entries": db.n_entries,
            "n_batches": n_batches,
            "batch_size": batch_size,
            "total_cpsms_per_batch": [r.total_cpsms for r in references],
        },
        "oneshot": {
            "per_batch_total_s": oneshot_totals,
            "mean_batch_s": mean_oneshot,
        },
        "resident": {
            "open_s": open_s,
            "attach_s": attach_s,
            "per_batch_total_s": resident_totals,
            "first_batch_s": resident_totals[0],
            "steady_batch_s": steady,
            "batches_per_sec": 1.0 / steady,
        },
        "pipelined": {
            "open_s": pipe_open_s,
            "stream_wall_s": pipe_wall,
            "per_batch_gap_s": gaps,
            "mean_batch_s": pipe_wall / n_batches,
            "steady_batch_s": pipe_steady,
            "batches_per_sec": 1.0 / pipe_steady,
            "overlap_s_total": overlap_total,
            "pipeline_depth_max": depth_max,
        },
        "scatter": {
            "oneshot_pickled_bytes_per_batch": oneshot_scatter,
            "resident_pickled_bytes_per_batch": resident_scatter,
            "resident_peak_bytes_equivalent": peak_bytes,
            "pickled_ratio": resident_scatter / oneshot_scatter,
        },
        "speedup": {
            # The headline: spawn + import + attach paid once per
            # session instead of once per batch.
            "resident_vs_oneshot": mean_oneshot / steady,
            "overhead_amortized_s": mean_oneshot - steady,
            # The pipeline headline: master stages hidden behind the
            # workers' rounds shrink the per-batch completion interval.
            "pipelined_vs_sequential": steady / pipe_steady,
        },
        "observability": {
            # Steady-state latency with the JSONL tracer / the default
            # in-memory flight recorder enabled, vs the bare session;
            # both ratios are what the --obs-overhead regression guard
            # bounds (<= 1.05).
            "traced_steady_batch_s": traced_steady,
            "ring_steady_batch_s": ring_steady,
            "untraced_steady_batch_s": untraced_steady,
            "overhead_ratio": traced_steady / untraced_steady,
            "ring_overhead_ratio": ring_steady / untraced_steady,
            "ring_records_seen": ring_seen,
            "n_batches_per_session": len(obs_batches),
            "trace_records": n_trace_records,
            "trace_schema_errors": len(trace_errors),
            "li_wall_mean": traced_session.query_li_mean,
            "li_wall_max": traced_session.query_li_max,
            "p50_batch_s": traced_session.p50_batch_s,
            "p95_batch_s": traced_session.p95_batch_s,
        },
        "resilience": {
            # Supervision-layer accounting over both sessions; a clean
            # run reports zeros (the retry/hedge paths are dormant).
            "retries": retries_total,
            "hedged": hedged_total,
            "respawns": respawns + respawns_pipe,
        },
        "identical_results": bool(identical),
        "note": (
            "oneshot.mean_batch_s includes per-run worker spawn + import "
            "+ arena attach; resident.steady_batch_s is a submit() on an "
            "already-attached session (min over batches >= 1); "
            "pipelined.steady_batch_s is the min completion interval of "
            "the overlapped stream (same-session throughput view).  The "
            "scatter figures are actual pipe bytes: the resident "
            "payload is an O(manifest) command pickled once per batch, "
            "the peak arrays travel via the memmap-shared spectra store."
        ),
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH, help="output JSON path"
    )
    args = parser.parse_args()
    report = run(quick=args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="ascii")
    w = report["workload"]
    print(
        f"entries={w['n_entries']} batches={w['n_batches']}x{w['batch_size']} "
        f"workers={report['machine']['n_workers']} "
        f"cpus={report['machine']['cpu_count']}"
    )
    print(f"one-shot mean batch : {report['oneshot']['mean_batch_s'] * 1e3:8.1f} ms")
    print(
        f"resident open       : {report['resident']['open_s'] * 1e3:8.1f} ms "
        f"(paid once per session)"
    )
    print(
        f"resident steady batch: {report['resident']['steady_batch_s'] * 1e3:7.1f} ms "
        f"({report['resident']['batches_per_sec']:.1f} batches/s)"
    )
    p = report["pipelined"]
    print(
        f"pipelined steady batch: {p['steady_batch_s'] * 1e3:6.1f} ms "
        f"({p['batches_per_sec']:.1f} batches/s, depth {p['pipeline_depth_max']}, "
        f"{p['overlap_s_total'] * 1e3:.1f} ms master work overlapped)"
    )
    o = report["observability"]
    print(
        f"traced steady batch : {o['traced_steady_batch_s'] * 1e3:8.1f} ms "
        f"(x{o['overhead_ratio']:.3f} of bare, {o['trace_records']} "
        f"records, {o['trace_schema_errors']} schema errors)"
    )
    print(
        f"ring steady batch   : {o['ring_steady_batch_s'] * 1e3:8.1f} ms "
        f"(x{o['ring_overhead_ratio']:.3f} of bare, "
        f"{o['ring_records_seen']} records through the flight recorder)"
    )
    s = report["scatter"]
    print(
        f"scatter bytes/batch : {s['oneshot_pickled_bytes_per_batch']} -> "
        f"{s['resident_pickled_bytes_per_batch']} "
        f"(x{s['pickled_ratio']:.4f})"
    )
    for key, value in report["speedup"].items():
        unit = " s" if key.endswith("_s") else "x"
        print(f"{key:>24}: {value:6.2f}{unit}")
    print(f"identical_results={report['identical_results']}")
    print(f"wrote {args.out}")
    if not report["identical_results"]:
        raise SystemExit(
            "service and serial engines disagree — refusing to report"
        )


if __name__ == "__main__":
    main()
