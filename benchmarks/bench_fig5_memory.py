"""Figure 5 — index memory footprint, shared vs LBE-distributed.

Paper: distributed SLM-Index averages 0.366 GB per million spectra vs
0.346 GB/M for the shared-memory implementation (≈6.4 % overhead), with
a temporary 2× ion-array footprint during construction (Section V-B).
Evaluated analytically at paper scale through the structural memory
model (the model itself is validated against live numpy indexes in the
unit tests).
"""

from repro.bench.reporting import series_table

HEADERS = [
    "size_M", "shared_GB", "distributed_GB", "overhead_%",
    "GB/M_shared", "GB/M_distributed", "peak/steady",
]


def test_fig5_memory_footprint(benchmark, suite):
    rows = benchmark.pedantic(suite.fig5_rows, rounds=1, iterations=1)
    print()
    print(series_table("Fig. 5: memory footprint (paper-scale model, 16 ranks)",
                       HEADERS, rows))

    for size_m, shared_gb, dist_gb, overhead, gbm_s, gbm_d, peak_ratio in rows:
        # Distributed costs more than shared, but only modestly.
        assert dist_gb > shared_gb
        assert overhead < 15.0, "distributed overhead should stay single-digit-%"
        # GB-per-million near the paper's 0.346 / 0.366 figures.
        assert 0.25 < gbm_s < 0.45
        assert gbm_d > gbm_s
        # Construction transiently needs ~2x the ion arrays.
        assert 1.3 < peak_ratio < 2.1
    # Overhead shrinks as partitions grow (paper: varies inversely
    # with partition size per MPI CPU).
    overheads = [r[3] for r in rows]
    assert overheads[-1] < overheads[0]
