"""Figure 9 — total execution time vs MPI processes (Cyclic policy).

Paper: execution time (serial prep + index build + query + gather +
merge) falls with rank count but less steeply than query time because
of the serial portion.
"""

from collections import defaultdict

from repro.bench.reporting import series_table

HEADERS = ["size_M", "ranks", "execution_time_s"]


def test_fig9_execution_time(benchmark, suite):
    rows = benchmark.pedantic(suite.fig9_rows, rounds=1, iterations=1)
    print()
    print(series_table("Fig. 9: total execution time vs MPI processes (cyclic)",
                       HEADERS, rows, float_fmt=".4f"))

    series = defaultdict(dict)
    for size_m, p, t in rows:
        series[size_m][p] = t

    for size_m, times in series.items():
        ps = sorted(times)
        for a, b in zip(ps, ps[1:]):
            assert times[b] < times[a], f"execution time rose {a}->{b} at {size_m}M"
        # Execution time exceeds query time at every point (serial part).
        q = {p: suite.run(size_m, "cyclic", p).query_time for p in ps}
        for p in ps:
            assert times[p] > q[p]
