#!/usr/bin/env python
"""Quickstart: the full LBE pipeline in ~60 lines.

Walks the paper's workflow end to end on a small synthetic workload:

1. generate a human-like proteome and digest it (tryptic, the paper's
   Section V-A settings),
2. expand variable PTMs into index *entries*,
3. synthesize an LC-MS/MS query run,
4. search with the shared-memory reference engine,
5. search with the LBE-distributed engine (Cyclic policy, 4 ranks) and
   confirm both agree, then compare load balance against Chunk.

Run:  python examples/quickstart.py
"""

from repro.db import ProteomeConfig
from repro.search import (
    DatabaseConfig,
    DistributedSearchEngine,
    EngineConfig,
    IndexedDatabase,
    SerialSearchEngine,
    load_imbalance,
)
from repro.spectra import SyntheticRunConfig, generate_run
from repro.util import format_table


def main() -> None:
    # 1-2. proteome -> digest -> dedup -> PTM expansion
    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=20, seed=7),
            max_variants_per_peptide=8,
        )
    )
    print(f"database: {db.n_bases} base peptides -> {db.n_entries} index entries")

    # 3. synthetic query run (skewed protein abundance, noise, dark matter)
    spectra = generate_run(db.entries, SyntheticRunConfig(n_spectra=80, seed=8))
    print(f"queries:  {len(spectra)} MS/MS spectra\n")

    # 4. shared-memory reference search
    serial = SerialSearchEngine(db).run(spectra)
    print(
        f"serial search: {serial.total_cpsms} candidate PSMs "
        f"({serial.cpsms_per_query:.0f}/query), "
        f"query time {serial.query_time * 1e3:.1f} ms (virtual)"
    )

    # 5. LBE-distributed search, then policy comparison
    rows = []
    for policy in ("chunk", "cyclic", "random"):
        engine = DistributedSearchEngine(
            db, EngineConfig(n_ranks=4, policy=policy)
        )
        res = engine.run(spectra)
        identical = all(
            a.n_candidates == b.n_candidates
            and [(p.entry_id, p.score) for p in a.psms]
            == [(p.entry_id, p.score) for p in b.psms]
            for a, b in zip(serial.spectra, res.spectra)
        )
        rows.append(
            (
                policy,
                f"{100 * load_imbalance(res.query_times):.1f}%",
                f"{res.query_time * 1e3:.2f} ms",
                "yes" if identical else "NO",
            )
        )
    print()
    print(
        format_table(
            ["policy", "load imbalance", "query time", "matches serial"],
            rows,
            title="LBE distribution policies, 4 ranks (virtual time)",
        )
    )
    best = serial.best_by_scan()
    correct = sum(
        1 for s in spectra if s.scan_id in best
        and best[s.scan_id].entry_id == s.true_peptide
    )
    print(f"identification sanity: {correct}/{len(spectra)} spectra "
          "rank their true peptide #1")


if __name__ == "__main__":
    main()
