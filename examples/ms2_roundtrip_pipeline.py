#!/usr/bin/env python
"""File-based pipeline: FASTA and MS2 on disk, like the paper's tooling.

The paper's toolchain passes data between stages as files: UniProt
FASTA → Digestor → DBToolkit → the grouping script's *clustered FASTA*
→ LBDSLIM, and raw spectra → msconvert → *MS2 files* → LBDSLIM.  This
example exercises those on-disk formats:

1. write the synthetic proteome as ``proteome.fasta``,
2. digest + deduplicate, run Algorithm 1, and write the clustered
   database as ``clustered.fasta`` (group runs recoverable on read),
3. write the synthetic query run as ``run.ms2`` and read it back,
4. search the file-loaded spectra on a 4-rank simulated cluster and
   print the top PSMs with their group provenance.

Run:  python examples/ms2_roundtrip_pipeline.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import GroupingConfig, group_peptides
from repro.db import (
    ProteomeConfig,
    generate_proteome,
    digest_proteome,
    deduplicate_peptides,
    read_grouped_fasta,
    write_fasta,
    write_grouped_fasta,
)
from repro.search import DistributedSearchEngine, EngineConfig, IndexedDatabase
from repro.spectra import SyntheticRunConfig, generate_run, read_ms2, write_ms2
from repro.util import format_table


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. proteome FASTA
    proteome = generate_proteome(ProteomeConfig(n_families=10, seed=33))
    fasta_path = out_dir / "proteome.fasta"
    write_fasta(fasta_path, proteome.records)
    print(f"wrote {len(proteome.records)} proteins -> {fasta_path}")

    # 2. digest, dedup, group, clustered FASTA
    peptides = deduplicate_peptides(digest_proteome(proteome.records))
    sequences = [p.sequence for p in peptides]
    grouping = group_peptides(sequences, GroupingConfig())
    clustered_path = out_dir / "clustered.fasta"
    write_grouped_fasta(
        clustered_path,
        [sequences[i] for i in grouping.order],
        grouping.group_sizes.tolist(),
    )
    print(
        f"wrote {grouping.n_sequences} peptides in {grouping.n_groups} "
        f"similarity groups -> {clustered_path}"
    )
    back_seqs, back_sizes = read_grouped_fasta(clustered_path)
    assert back_sizes == grouping.group_sizes.tolist(), "grouping not recoverable"

    # 3. MS2 query file
    db = IndexedDatabase.from_peptides(peptides, max_variants_per_peptide=6)
    run = generate_run(db.entries, SyntheticRunConfig(n_spectra=25, seed=34))
    ms2_path = out_dir / "run.ms2"
    write_ms2(ms2_path, run)
    spectra = list(read_ms2(ms2_path))
    print(f"wrote/read {len(spectra)} spectra -> {ms2_path}\n")

    # 4. distributed search on the file-loaded spectra
    engine = DistributedSearchEngine(db, EngineConfig(n_ranks=4, policy="cyclic"))
    results = engine.run(spectra)

    rows = []
    for sr in results.spectra[:10]:
        if not sr.psms:
            continue
        top = sr.psms[0]
        peptide = db.entries[top.entry_id]
        rows.append(
            (
                sr.scan_id,
                str(peptide),
                f"{top.score:.2f}",
                top.shared_peaks,
                sr.n_candidates,
            )
        )
    print(
        format_table(
            ["scan", "top match", "score", "shared ions", "cPSMs"],
            rows,
            title="Top PSMs (first 10 scans), 4-rank distributed search",
        )
    )
    print(f"outputs kept in {out_dir}")


if __name__ == "__main__":
    main()
