#!/usr/bin/env python
"""Heterogeneous clusters and the §VIII load-predicting partitioner.

The paper's experiments used "symmetrical or nearly symmetrical" CPUs
and its future work (§VIII) announces a load-predicting model for
*heterogeneous* memory-distributed architectures.  This example shows
why that matters and how the implemented predictive policy solves it:

1. build a cluster whose machines differ in speed (σ = 25 %),
2. run Cyclic: data is spread evenly, so the *slow* machines finish
   late — imbalance no data re-shuffling at equal counts can fix,
3. run the predictive LPT policy: per-base work predictions divided by
   measured machine speeds equalize *finishing times* instead of
   entry counts,
4. plot both, plus the per-rank picture (entries vs time) that shows
   LPT deliberately under-filling slow machines.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro.bench import WorkloadConfig, make_workload
from repro.search import DistributedSearchEngine, EngineConfig, load_imbalance
from repro.util import bar_chart, format_table, line_plot

RANKS = 8
JITTER = 0.25
SEED = 42


def main() -> None:
    workload = make_workload(WorkloadConfig(size_m=18.0, n_spectra=80))
    db, spectra = workload.database, workload.spectra

    cfg_common = dict(
        n_ranks=RANKS, machine_jitter=JITTER, machine_seed=SEED
    )
    runs = {
        policy: DistributedSearchEngine(
            db, EngineConfig(policy=policy, **cfg_common)
        ).run(spectra)
        for policy in ("cyclic", "lpt")
    }

    speeds = [
        1.0 / EngineConfig(policy="cyclic", **cfg_common).machine_speed(r)
        for r in range(RANKS)
    ]
    print(
        f"cluster: {RANKS} machines, speed factors "
        f"{np.round(speeds, 2).tolist()} (1.0 = nominal)\n"
    )

    rows = []
    for rank in range(RANKS):
        rows.append(
            (
                rank,
                f"{speeds[rank]:.2f}",
                runs["cyclic"].rank_stats[rank].n_entries,
                f"{runs['cyclic'].query_times[rank] * 1e3:.2f}",
                runs["lpt"].rank_stats[rank].n_entries,
                f"{runs['lpt'].query_times[rank] * 1e3:.2f}",
            )
        )
    print(
        format_table(
            ["rank", "speed", "cyclic entries", "cyclic ms",
             "lpt entries", "lpt ms"],
            rows,
            title="Per-rank placement and query time (virtual ms)",
        )
    )

    print(bar_chart(
        {
            f"cyclic (LI {100*load_imbalance(runs['cyclic'].query_times):.0f}%)":
                max(runs["cyclic"].query_times) * 1e3,
            f"lpt    (LI {100*load_imbalance(runs['lpt'].query_times):.0f}%)":
                max(runs["lpt"].query_times) * 1e3,
        },
        title="Query makespan (slowest rank, ms)",
        unit=" ms",
    ))

    # Entries-vs-speed scatter: LPT under-fills slow machines.
    print(line_plot(
        {
            "cyclic": [
                (speeds[r], runs["cyclic"].rank_stats[r].n_entries)
                for r in range(RANKS)
            ],
            "lpt": [
                (speeds[r], runs["lpt"].rank_stats[r].n_entries)
                for r in range(RANKS)
            ],
        },
        title="Entries assigned vs machine speed",
        x_label="machine speed factor",
        y_label="entries",
        width=50,
        height=12,
    ))
    print(
        "Cyclic gives every machine the same share regardless of speed;\n"
        "the predictive policy (paper §VIII) trades data for time —\n"
        "fast machines index more peptides so everyone finishes together."
    )


if __name__ == "__main__":
    main()
