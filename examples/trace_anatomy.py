#!/usr/bin/env python
"""Anatomy of a trace: from a live session to the paper's numbers.

PR 8 gave every serving session a span/event tracer and a metrics
registry; PR 9 built the consume side.  This example runs one traced
session and one *untraced* chaos-injected session, then walks both
artifacts through the analyzer:

* a traced 3-batch pipelined session → `analyze_trace_file`: stage
  breakdown, per-rank utilization, pipeline-overlap efficiency, and
  the paper's Eq.-1 load imbalance recomputed from `worker.query`
  spans — shown to agree with the live `service.batch_li_wall` gauge,
* an ASCII gantt of one batch (`render_gantt`) — the pipeline's
  overlap made visible,
* `diff_traces` of the session against itself — the all-zero
  attribution baseline a perf regression would perturb,
* a crash-injected session with **no tracer configured**: the default
  in-memory flight recorder black-boxes the failure and the dump
  analyzes exactly like a file trace.

Run:  PYTHONPATH=src python examples/trace_anatomy.py
"""

import tempfile
from pathlib import Path

from repro.db.proteome import ProteomeConfig
from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    analyze_trace_file,
    diff_traces,
    render_analysis,
    render_diff,
    render_gantt,
)
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.service import SearchService, ServiceConfig
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

N_WORKERS = 2


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="trace-anatomy-"))
    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=4, seed=4242),
            max_variants_per_peptide=4,
        )
    )
    spectra = generate_run(db.entries, SyntheticRunConfig(n_spectra=60, seed=7))
    batches = [spectra[i * 20 : (i + 1) * 20] for i in range(3)]

    # -- 1. a traced session -------------------------------------------
    trace_path = workdir / "trace.jsonl"
    tracer = JsonlTracer(trace_path)
    metrics = MetricsRegistry()
    config = ServiceConfig(
        n_workers=N_WORKERS, tracer=tracer, metrics=metrics, max_pending=4
    )
    with SearchService(db, config) as service:
        for _ in service.stream(iter(batches)):
            pass
        live_li = metrics.gauge("service.batch_li_wall").value
    tracer.close()

    analysis = analyze_trace_file(trace_path)
    print(render_analysis(analysis, source=trace_path.name))
    print()
    last = analysis.batches[-1]
    print(
        f"live gauge service.batch_li_wall = {live_li:.6f}; "
        f"analyzer recomputed Eq. 1 from worker.query spans = "
        f"{last.li_recomputed:.6f} (agreement: {analysis.li_agreement})"
    )

    # -- 2. one batch as an ASCII gantt --------------------------------
    print()
    print(render_gantt(analysis, batch=1, width=56))

    # -- 3. diff: the all-zero baseline --------------------------------
    print()
    diff = diff_traces(analysis, analysis)
    print(render_diff(diff, a_name="run", b_name="same-run"))

    # -- 4. the flight recorder: untraced chaos ------------------------
    # No tracer configured: the service installs its in-memory ring by
    # default.  Rank 1 crashes on batch 1 with retries disabled, so
    # the WorkerError surfaces carrying the black-box dump's path —
    # which analyzes like any other trace.
    print()
    plan = FaultPlan.scoped(
        FaultSpec(kind="crash", stage="query", rank=1, batch=1)
    )
    chaos = ServiceConfig(
        n_workers=N_WORKERS,
        max_retries=0,
        fault_plan=plan,
        metrics=MetricsRegistry(),
        flight_dir=workdir,
    )
    dump = None
    try:
        with SearchService(db, chaos) as service:
            for batch in batches:
                service.submit(batch)
    except Exception as exc:  # noqa: BLE001 - the demo inspects it
        dump = getattr(exc, "flight_record", None)
        print(f"session failed as injected: {exc.brief}")
    assert dump is not None, "expected the flight recorder to dump"
    print()
    flight = analyze_trace_file(dump)
    print(render_analysis(flight, source=f"flight record {Path(dump).name}"))


if __name__ == "__main__":
    main()
