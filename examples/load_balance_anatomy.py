#!/usr/bin/env python
"""Anatomy of the load imbalance: *why* Chunk partitioning fails.

The paper's Fig. 2 argues that contiguous partitioning of the sorted,
grouped peptide list strands whole similarity neighbourhoods on single
machines, so the machine owning a query's neighbourhood does all the
scoring work while the rest idle.  This example makes that mechanism
visible:

* per-rank entry counts (all policies balance these — placement is
  not the problem),
* per-group rank spread (Chunk ≈ 1 rank per group; Cyclic ≈ p),
* per-rank *candidates scored* and query-phase virtual time for one
  run under each policy — the actual skew,
* the resulting LI (Eq. 1) and wasted CPU time Twst = N·ΔTmax
  (Section VI), including the paper's worked example.

Run:  python examples/load_balance_anatomy.py
"""

import numpy as np

from repro.bench import WorkloadConfig, make_workload
from repro.core.partition import make_policy
from repro.search import DistributedSearchEngine, EngineConfig
from repro.search.metrics import load_imbalance, wasted_cpu_time
from repro.util import format_table

RANKS = 8


def main() -> None:
    workload = make_workload(WorkloadConfig(size_m=18.0, n_spectra=80))
    db, spectra = workload.database, workload.spectra
    grouping = db.group_bases()
    print(
        f"workload: {db.n_entries} entries from {db.n_bases} base peptides "
        f"in {grouping.n_groups} similarity groups; {len(spectra)} queries; "
        f"{RANKS} ranks\n"
    )

    # Placement statistics (no search needed).
    rows = []
    for name in ("chunk", "cyclic", "random"):
        assignment = make_policy(name, seed=7).assign(grouping, RANKS)
        spread = assignment.per_group_spread(grouping)
        rows.append(
            (
                name,
                f"{100 * assignment.count_imbalance():.2f}%",
                f"{spread.mean():.2f}",
            )
        )
    print(
        format_table(
            ["policy", "entry-count imbalance", "mean ranks per group"],
            rows,
            title="Placement: counts balance everywhere, spread does not",
        )
    )

    # Load statistics (actual distributed searches).
    rows = []
    for name in ("chunk", "cyclic", "random"):
        res = DistributedSearchEngine(
            db, EngineConfig(n_ranks=RANKS, policy=name)
        ).run(spectra)
        scored = np.array([s.candidates_scored for s in res.rank_stats])
        times = res.query_times
        rows.append(
            (
                name,
                f"{scored.min()}..{scored.max()}",
                f"{100 * load_imbalance(times):.1f}%",
                f"{wasted_cpu_time(times) * 1e3:.2f} ms",
            )
        )
    print(
        format_table(
            ["policy", "candidates scored (min..max)", "LI (Eq. 1)", "Twst"],
            rows,
            title="Load: the same queries, three placements",
        )
    )

    # The paper's Section VI worked example.
    n, t_avg, dt_max = 16, 100.0, 80.0
    times = [t_avg - dt_max / (n - 1)] * (n - 1) + [t_avg + dt_max]
    print(
        "Paper's worked example (N=16, Tavg=100 s, ΔTmax=80 s): "
        f"Twst = {wasted_cpu_time(times):.0f} s "
        "(paper: 1280 s, a 12.8x CPU-time degradation hiding behind an "
        "apparent 80 s wall-clock delay)."
    )


if __name__ == "__main__":
    main()
