#!/usr/bin/env python
"""Open search vs precursor-windowed search on "dark matter" spectra.

The paper's motivation (Section II-A): precursor-mass filtration
cannot identify spectra carrying *unknown* modifications — their
precursor mass is shifted away from every database peptide, so the
mass window excludes the true answer.  Shared-peak (fragment-ion)
open search still identifies them because most fragments are
unshifted.

This example generates a run where every spectrum carries an unknown
mass shift and compares:

* a windowed search (ΔM = 2 Da, classic closed search),
* the paper's open search (ΔM = ∞, shared-peak threshold 4).

It also shows the cost: the open search's candidate volume (cPSMs) is
orders of magnitude larger — the very workload explosion that drives
the paper's distributed-memory design.

Run:  python examples/open_search_dark_matter.py
"""

from repro.db import ProteomeConfig
from repro.index import SLMIndexSettings
from repro.search import DatabaseConfig, IndexedDatabase, SerialSearchEngine
from repro.spectra import SyntheticRunConfig, generate_run
from repro.util import format_table


def identification_rate(results, spectra) -> float:
    best = results.best_by_scan()
    hits = sum(
        1
        for s in spectra
        if s.scan_id in best and best[s.scan_id].entry_id == s.true_peptide
    )
    return hits / len(spectra)


def main() -> None:
    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=15, seed=21),
            max_variants_per_peptide=6,
        )
    )
    # Every query carries an unknown precursor shift of up to ±250 Da.
    spectra = generate_run(
        db.entries,
        SyntheticRunConfig(
            n_spectra=60,
            seed=22,
            dark_matter_fraction=1.0,
            dark_matter_delta=250.0,
            dropout=0.1,
        ),
    )
    print(
        f"database: {db.n_entries} entries; "
        f"queries: {len(spectra)} spectra, all with unknown mass shifts\n"
    )

    rows = []
    for label, settings in [
        ("closed (ΔM = 2 Da)", SLMIndexSettings(precursor_tolerance=2.0)),
        ("open   (ΔM = ∞)", SLMIndexSettings()),
    ]:
        res = SerialSearchEngine(db, settings).run(spectra)
        rows.append(
            (
                label,
                f"{100 * identification_rate(res, spectra):.0f}%",
                res.total_cpsms,
                f"{res.cpsms_per_query:.0f}",
                f"{res.query_time * 1e3:.1f} ms",
            )
        )

    print(
        format_table(
            ["search mode", "identified", "total cPSMs", "cPSMs/query", "query time"],
            rows,
            title="Dark-matter identification: closed vs open search",
        )
    )
    print(
        "The open search recovers the modified spectra the closed search\n"
        "misses, at a large candidate-volume (compute/memory) cost —\n"
        "the bottleneck LBE's distributed partitioning addresses."
    )


if __name__ == "__main__":
    main()
