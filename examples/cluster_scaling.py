#!/usr/bin/env python
"""Cluster-scaling study: the paper's Figures 7–10 in miniature.

Sweeps the simulated cluster from 2 to 16 ranks over two index sizes
and reports, per configuration:

* query time and query speedup (near-linear, Figs. 7/8),
* total execution time and execution speedup (Amdahl-saturating,
  Figs. 9/10) with the fitted serial fraction.

Everything runs on the deterministic virtual clock, so the printed
numbers are reproducible bit-for-bit.

Run:  python examples/cluster_scaling.py
"""

from repro.bench import WorkloadConfig, make_workload
from repro.search import (
    DistributedSearchEngine,
    EngineConfig,
    estimate_serial_fraction,
    speedup_series,
)
from repro.util import format_table

RANKS = (2, 4, 8, 16)
SIZES_M = (18.0, 49.45)


def main() -> None:
    for size_m in SIZES_M:
        workload = make_workload(WorkloadConfig(size_m=size_m, n_spectra=60))
        db, spectra = workload.database, workload.spectra
        print(
            f"--- index size {workload.label} (scaled: {db.n_entries} entries), "
            f"{len(spectra)} queries ---"
        )

        query_t, exec_t = {}, {}
        for p in RANKS:
            res = DistributedSearchEngine(
                db, EngineConfig(n_ranks=p, policy="cyclic")
            ).run(spectra)
            query_t[p] = res.query_time
            exec_t[p] = res.execution_time

        q_speedup = speedup_series(query_t)
        e_speedup = speedup_series(exec_t)
        serial_fraction = estimate_serial_fraction(exec_t)

        rows = [
            (
                p,
                f"{query_t[p] * 1e3:.2f} ms",
                f"{q_speedup[p]:.2f}x",
                f"{exec_t[p] * 1e3:.2f} ms",
                f"{e_speedup[p]:.2f}x",
                f"{p}x",
            )
            for p in RANKS
        ]
        print(
            format_table(
                ["ranks", "query time", "query speedup",
                 "exec time", "exec speedup", "ideal"],
                rows,
            )
        )
        print(f"fitted serial fraction: {serial_fraction:.3f} "
              f"(Amdahl ceiling {1 / serial_fraction:.1f}x)\n")

    print(
        "Query speedup tracks the ideal line (Fig. 8); execution speedup\n"
        "saturates on the serial fraction (Fig. 10) and improves with\n"
        "index size, exactly as the paper reports."
    )


if __name__ == "__main__":
    main()
