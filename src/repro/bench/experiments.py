"""One callable per paper figure, with shared run caching.

:class:`ExperimentSuite` owns the workloads and memoizes every
distributed-search run keyed by (size, policy, rank count), so the
seven figure benchmarks share rather than repeat the expensive
searches.  Each ``figN_rows`` method returns plain tuples ready for
:func:`repro.util.tables.format_table` — the same rows/series the
paper's figures plot.

Paper ↔ method map:

=========  ==================================================
Fig. 5     :meth:`ExperimentSuite.fig5_rows` (memory model)
Fig. 6     :meth:`ExperimentSuite.fig6_rows` (load imbalance)
Fig. 7     :meth:`ExperimentSuite.fig7_rows` (query time)
Fig. 8     :meth:`ExperimentSuite.fig8_rows` (query speedup)
Fig. 9     :meth:`ExperimentSuite.fig9_rows` (execution time)
Fig. 10    :meth:`ExperimentSuite.fig10_rows` (execution speedup)
Fig. 11    :meth:`ExperimentSuite.fig11_rows` (policy CPU speedup)
§V-A       :meth:`ExperimentSuite.cpsm_rows` (candidate volume)
=========  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.bench.workloads import PAPER_SIZES_M, Workload, WorkloadConfig, make_workload
from repro.index.memory import IndexMemoryModel
from repro.search.engine import DistributedSearchEngine, EngineConfig
from repro.search.metrics import (
    estimate_serial_fraction,
    load_imbalance,
    policy_cpu_speedup,
    speedup_series,
    wasted_cpu_time,
)
from repro.search.psm import SearchResults
from repro.search.serial import SerialSearchEngine

__all__ = ["ExperimentConfig", "ExperimentSuite", "default_suite"]

Row = Tuple[object, ...]


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Suite-wide experiment parameters.

    Attributes
    ----------
    sizes_m:
        Nominal index sizes (paper-scale millions).
    n_spectra:
        Queries per workload.
    imbalance_ranks:
        Rank count of the load-imbalance experiments (paper: 16).
    rank_sweep:
        Rank counts of the scalability experiments.
    policies:
        Policies compared in Fig. 6/11.
    seed:
        Master seed.
    """

    sizes_m: Tuple[float, ...] = PAPER_SIZES_M
    n_spectra: int = 120
    imbalance_ranks: int = 16
    rank_sweep: Tuple[int, ...] = (2, 4, 8, 16)
    policies: Tuple[str, ...] = ("chunk", "cyclic", "random")
    seed: int = 29


class ExperimentSuite:
    """Workload + run cache with one method per paper figure."""

    def __init__(self, config: ExperimentConfig = ExperimentConfig()) -> None:
        self.config = config
        self._workloads: Dict[float, Workload] = {}
        self._runs: Dict[Tuple[float, str, int], SearchResults] = {}
        self._serial_runs: Dict[float, SearchResults] = {}

    # -- building blocks -------------------------------------------------

    def workload(self, size_m: float) -> Workload:
        """The (cached) workload of nominal size ``size_m``."""
        wl = self._workloads.get(size_m)
        if wl is None:
            wl = make_workload(
                WorkloadConfig(
                    size_m=size_m,
                    n_spectra=self.config.n_spectra,
                    seed=self.config.seed,
                )
            )
            self._workloads[size_m] = wl
        return wl

    def run(self, size_m: float, policy: str, n_ranks: int) -> SearchResults:
        """The (cached) distributed search for one configuration."""
        key = (size_m, policy, n_ranks)
        res = self._runs.get(key)
        if res is None:
            wl = self.workload(size_m)
            engine = DistributedSearchEngine(
                wl.database,
                EngineConfig(n_ranks=n_ranks, policy=policy, policy_seed=self.config.seed),
            )
            res = engine.run(wl.spectra)
            self._runs[key] = res
        return res

    def serial_run(self, size_m: float) -> SearchResults:
        """The (cached) shared-memory reference search."""
        res = self._serial_runs.get(size_m)
        if res is None:
            wl = self.workload(size_m)
            res = SerialSearchEngine(wl.database).run(wl.spectra)
            self._serial_runs[size_m] = res
        return res

    # -- Fig. 5: memory footprint -----------------------------------------

    def fig5_rows(self) -> List[Row]:
        """(size_m, shared GB, distributed GB, overhead %, GB/M shared,
        GB/M distributed, peak/steady ratio).

        Evaluated analytically at *paper scale* through the structural
        memory model (cross-validated against live indexes in the test
        suite), with the paper's 16 ranks.
        """
        model = IndexMemoryModel()
        rows: List[Row] = []
        p = self.config.imbalance_ranks
        for size_m in self.config.sizes_m:
            n = int(size_m * 1e6)
            shared = model.shared(n)
            dist = model.distributed(n, p)
            overhead = (dist.steady_bytes - shared.steady_bytes) / shared.steady_bytes
            rows.append(
                (
                    size_m,
                    shared.steady_gb,
                    dist.steady_gb,
                    100.0 * overhead,
                    model.gb_per_million(n),
                    model.gb_per_million(n, p),
                    dist.peak_bytes / dist.steady_bytes,
                )
            )
        return rows

    # -- Fig. 6: load imbalance ---------------------------------------------

    def fig6_rows(self) -> List[Row]:
        """(size_m, entries, policy, LI %) at ``imbalance_ranks``."""
        rows: List[Row] = []
        p = self.config.imbalance_ranks
        for size_m in self.config.sizes_m:
            wl = self.workload(size_m)
            for policy in self.config.policies:
                res = self.run(size_m, policy, p)
                rows.append(
                    (size_m, wl.n_entries, policy, 100.0 * load_imbalance(res.query_times))
                )
        return rows

    # -- Fig. 7/8: query time & speedup ---------------------------------------

    def _query_times(self, size_m: float) -> Dict[int, float]:
        return {
            p: self.run(size_m, "cyclic", p).query_time
            for p in self.config.rank_sweep
        }

    def fig7_rows(self) -> List[Row]:
        """(size_m, ranks, query time s) for the Cyclic policy."""
        rows: List[Row] = []
        for size_m in self.config.sizes_m:
            for p, t in sorted(self._query_times(size_m).items()):
                rows.append((size_m, p, t))
        return rows

    def fig8_rows(self) -> List[Row]:
        """(size_m, ranks, query speedup, ideal)."""
        rows: List[Row] = []
        for size_m in self.config.sizes_m:
            series = speedup_series(self._query_times(size_m))
            for p, s in sorted(series.items()):
                rows.append((size_m, p, s, float(p)))
        return rows

    # -- Fig. 9/10: execution time & speedup -----------------------------------

    def _execution_times(self, size_m: float) -> Dict[int, float]:
        return {
            p: self.run(size_m, "cyclic", p).execution_time
            for p in self.config.rank_sweep
        }

    def fig9_rows(self) -> List[Row]:
        """(size_m, ranks, total execution time s) for Cyclic."""
        rows: List[Row] = []
        for size_m in self.config.sizes_m:
            for p, t in sorted(self._execution_times(size_m).items()):
                rows.append((size_m, p, t))
        return rows

    def fig10_rows(self) -> List[Row]:
        """(size_m, ranks, execution speedup, ideal, fitted serial fraction)."""
        rows: List[Row] = []
        for size_m in self.config.sizes_m:
            times = self._execution_times(size_m)
            series = speedup_series(times)
            serial_frac = estimate_serial_fraction(times)
            for p, s in sorted(series.items()):
                rows.append((size_m, p, s, float(p), serial_frac))
        return rows

    # -- Fig. 11: policy CPU-time speedup ----------------------------------------

    def fig11_rows(self) -> List[Row]:
        """(size_m, policy, CPU speedup over chunk, Twst seconds)."""
        rows: List[Row] = []
        p = self.config.imbalance_ranks
        for size_m in self.config.sizes_m:
            chunk_times = self.run(size_m, "chunk", p).query_times
            for policy in self.config.policies:
                times = self.run(size_m, policy, p).query_times
                rows.append(
                    (
                        size_m,
                        policy,
                        policy_cpu_speedup(times, chunk_times),
                        wasted_cpu_time(times),
                    )
                )
        return rows

    # -- §V-A: candidate volume ------------------------------------------------

    def cpsm_rows(self) -> List[Row]:
        """(size_m, entries, total cPSMs, cPSMs per query)."""
        rows: List[Row] = []
        for size_m in self.config.sizes_m:
            wl = self.workload(size_m)
            res = self.serial_run(size_m)
            rows.append((size_m, wl.n_entries, res.total_cpsms, res.cpsms_per_query))
        return rows


@dataclass
class _SuiteHolder:
    suite: ExperimentSuite | None = None
    config: ExperimentConfig = field(default_factory=ExperimentConfig)


_HOLDER = _SuiteHolder()


def default_suite() -> ExperimentSuite:
    """Process-wide shared suite (the benchmark files' run cache)."""
    if _HOLDER.suite is None:
        _HOLDER.suite = ExperimentSuite(_HOLDER.config)
    return _HOLDER.suite
