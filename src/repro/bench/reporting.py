"""Rendering helpers shared by the benchmark files and examples.

The benchmark harness's contract is to *print the same rows/series the
paper's figures plot*; these helpers render them as aligned text tables
and optionally persist them as CSV for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.util.tables import format_table

__all__ = ["series_table", "rows_to_csv"]


def series_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".3f",
) -> str:
    """Render one figure's rows with a title banner."""
    banner = f"== {title} =="
    return format_table(headers, rows, float_fmt=float_fmt, title=banner)


def rows_to_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write rows as CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path
