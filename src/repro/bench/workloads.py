"""Standard scaled workloads for the figure experiments.

The paper sweeps index sizes {18 M, 30 M, 41 M, 49.45 M} entries
(peptides + modified-variant spectra) and queries a 23,264-spectrum MS2
file.  A pure-Python single container cannot hold 50 M-entry indexes,
so the suite scales sizes down **ratio-preserving** (default ×600:
30 k … 82 k entries) and scales query counts accordingly; every
reported quantity (imbalance %, speedup ×, GB per million entries) is
normalized, so the downscale preserves the figures' shapes (DESIGN.md
§2 discusses validity).

Index size is controlled through the number of synthetic protein
families, which entries track nearly linearly; the realized entry
count is reported alongside every figure row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.db.proteome import ProteomeConfig
from repro.errors import ConfigurationError
from repro.search.database import DatabaseConfig, IndexedDatabase
from repro.spectra.model import Spectrum
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

__all__ = ["PAPER_SIZES_M", "Workload", "WorkloadConfig", "make_workload"]

#: The paper's index sizes in millions of entries (Fig. 5–11 x-axis).
PAPER_SIZES_M: Tuple[float, ...] = (18.0, 30.0, 41.0, 49.45)

#: Families needed per million (paper-scale) entries at the default
#: digestion/modification settings, calibrated once for seed stability:
#: ~1.66 families per paper-million gives ~1.0 k entries per family.
_FAMILIES_PER_MILLION = 1.66


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Workload sizing parameters.

    Attributes
    ----------
    size_m:
        Nominal index size in paper-scale millions (one of
        :data:`PAPER_SIZES_M` in the standard sweeps).
    n_spectra:
        Query spectra to generate.
    seed:
        Master seed (proteome and run derive independent streams).
    max_variants_per_peptide:
        Variant-enumeration truncation (index density knob).
    """

    size_m: float = 18.0
    n_spectra: int = 120
    seed: int = 29
    max_variants_per_peptide: int = 8

    def __post_init__(self) -> None:
        if self.size_m <= 0:
            raise ConfigurationError(f"size_m must be > 0, got {self.size_m}")
        if self.n_spectra <= 0:
            raise ConfigurationError(f"n_spectra must be > 0, got {self.n_spectra}")

    @property
    def n_families(self) -> int:
        """Protein families realizing the nominal size."""
        return max(4, round(self.size_m * _FAMILIES_PER_MILLION))


@dataclass(frozen=True, slots=True)
class Workload:
    """A realized workload: database + query spectra.

    Attributes
    ----------
    config:
        The generating configuration.
    database:
        The indexed database.
    spectra:
        The synthetic query run.
    """

    config: WorkloadConfig
    database: IndexedDatabase
    spectra: List[Spectrum]

    @property
    def n_entries(self) -> int:
        """Realized index size (entries)."""
        return self.database.n_entries

    @property
    def label(self) -> str:
        """Figure-axis label, e.g. ``"18M"`` (nominal paper scale)."""
        if float(self.config.size_m).is_integer():
            return f"{int(self.config.size_m)}M"
        return f"{self.config.size_m}M"


def make_workload(config: WorkloadConfig = WorkloadConfig()) -> Workload:
    """Generate the workload for ``config`` (deterministic)."""
    db = IndexedDatabase.build(
        DatabaseConfig(
            proteome=ProteomeConfig(n_families=config.n_families, seed=config.seed),
            max_variants_per_peptide=config.max_variants_per_peptide,
        )
    )
    spectra = generate_run(
        db.entries,
        SyntheticRunConfig(n_spectra=config.n_spectra, seed=config.seed + 1),
    )
    return Workload(config=config, database=db, spectra=spectra)
