"""Experiment harness for the paper's evaluation (Figures 5–11).

* :mod:`~repro.bench.workloads` — scaled standard workloads: the
  paper's four index sizes (18 M / 30 M / 41 M / 49.45 M entries)
  mapped ratio-preserving onto laptop-scale synthetic databases.
* :mod:`~repro.bench.experiments` — :class:`ExperimentSuite`, one
  method per paper figure, with run caching so the pytest-benchmark
  files can share expensive searches.
* :mod:`~repro.bench.reporting` — table/CSV rendering of the series.
"""

from repro.bench.workloads import Workload, WorkloadConfig, make_workload
from repro.bench.experiments import ExperimentConfig, ExperimentSuite, default_suite
from repro.bench.reporting import rows_to_csv, series_table

__all__ = [
    "Workload",
    "WorkloadConfig",
    "make_workload",
    "ExperimentConfig",
    "ExperimentSuite",
    "default_suite",
    "rows_to_csv",
    "series_table",
]
