"""Peptide chemistry substrate.

Provides the value types and mass arithmetic that every layer above
(digestion, indexing, search) relies on:

* :class:`~repro.chem.peptide.Peptide` — an immutable peptide with an
  optional set of localized modifications and cached neutral mass.
* :mod:`~repro.chem.modifications` — variable-PTM specification and the
  enumeration of modified variants (the mechanism by which the paper's
  index sizes "grow exponentially").
* :mod:`~repro.chem.fragments` — theoretical b/y fragment generation,
  the source of the ions the SLM index stores.
"""

from repro.chem.peptide import Peptide, peptide_mass, validate_sequence
from repro.chem.modifications import (
    Modification,
    ModificationSet,
    VariantEnumerator,
    paper_modifications,
)
from repro.chem.fragments import FragmentationSettings, fragment_mzs, theoretical_spectrum

__all__ = [
    "Peptide",
    "peptide_mass",
    "validate_sequence",
    "Modification",
    "ModificationSet",
    "VariantEnumerator",
    "paper_modifications",
    "FragmentationSettings",
    "fragment_mzs",
    "theoretical_spectrum",
]
