"""Theoretical fragment (b/y ion) generation.

A tandem MS/MS spectrum of a peptide is dominated by its *b* ions
(N-terminal prefixes) and *y* ions (C-terminal suffixes).  The SLM
index stores exactly these fragment m/z values; the synthetic query
generator perturbs them.  Masses follow the standard relations::

    b_i  = sum(residues[:i])  + sum(mod deltas in prefix)  + PROTON
    y_i  = sum(residues[-i:]) + sum(mod deltas in suffix) + WATER + PROTON

Higher charge states divide the neutral fragment mass accordingly:
``mz = (M + z * PROTON) / z``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.chem.peptide import Peptide
from repro.constants import AA_MONO, PROTON, WATER_MONO
from repro.errors import ConfigurationError

__all__ = ["FragmentationSettings", "fragment_mzs", "theoretical_spectrum"]


@dataclass(frozen=True, slots=True)
class FragmentationSettings:
    """Controls which fragment series are generated.

    Attributes
    ----------
    charges:
        Fragment charge states to emit (the SLM-Transform default
        indexes 1+ and 2+ fragments; the paper's ~2L ions per length-L
        peptide corresponds to 1+ only, which is our default).
    include_b:
        Emit the b-ion series.
    include_y:
        Emit the y-ion series.
    """

    charges: Tuple[int, ...] = (1,)
    include_b: bool = True
    include_y: bool = True

    def __post_init__(self) -> None:
        if not self.charges:
            raise ConfigurationError("at least one fragment charge state is required")
        if any(z < 1 for z in self.charges):
            raise ConfigurationError(f"fragment charges must be >= 1, got {self.charges}")
        if not (self.include_b or self.include_y):
            raise ConfigurationError("at least one ion series must be enabled")

    @property
    def ions_per_residue(self) -> float:
        """Expected number of generated ions per residue.

        A length-L peptide has L-1 cleavage sites; each enabled series
        contributes one ion per site per charge.  Used by the memory
        model to size index structures without generating fragments.
        """
        series = int(self.include_b) + int(self.include_y)
        return series * len(self.charges) * 1.0


def _prefix_masses(peptide: Peptide) -> np.ndarray:
    """Cumulative neutral residue masses of prefixes 1..L-1 (with mods)."""
    seq = peptide.sequence
    residue = np.fromiter((AA_MONO[aa] for aa in seq), dtype=np.float64, count=len(seq))
    for pos, delta in peptide.mods:
        residue[pos] += delta
    return np.cumsum(residue)


def fragment_mzs(
    peptide: Peptide,
    settings: FragmentationSettings = FragmentationSettings(),
) -> np.ndarray:
    """Return the sorted m/z values of all configured fragments.

    Fragments of length-1 .. length-(L-1) prefixes (b) and suffixes (y)
    are generated for every configured charge state.  A length-1
    peptide has no internal cleavage site and yields an empty array.

    Returns
    -------
    numpy.ndarray
        Sorted float64 array of fragment m/z values.
    """
    length = peptide.length
    if length < 2:
        return np.empty(0, dtype=np.float64)
    cumulative = _prefix_masses(peptide)
    total = cumulative[-1]
    prefix_neutral = cumulative[:-1]  # b fragments: residues[:i], i = 1..L-1
    pieces: list[np.ndarray] = []
    for z in settings.charges:
        if settings.include_b:
            pieces.append((prefix_neutral + z * PROTON) / z)
        if settings.include_y:
            suffix_neutral = total - prefix_neutral + WATER_MONO
            pieces.append((suffix_neutral + z * PROTON) / z)
    mzs = np.concatenate(pieces)
    mzs.sort()
    return mzs


def theoretical_spectrum(
    peptide: Peptide,
    settings: FragmentationSettings = FragmentationSettings(),
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(mzs, intensities)`` for a theoretical spectrum.

    Theoretical intensities follow the simple triangular profile used
    by shared-peak engines: mid-sequence fragments are most intense.
    The intensity model only matters to the synthetic spectra
    generator; shared-peak filtration ignores intensities.
    """
    mzs = fragment_mzs(peptide, settings)
    n = mzs.size
    if n == 0:
        return mzs, np.empty(0, dtype=np.float64)
    # Triangular profile over the sorted m/z order, normalized to max 1.
    ramp = np.minimum(np.arange(1, n + 1), np.arange(n, 0, -1)).astype(np.float64)
    intensities = ramp / ramp.max()
    return mzs, intensities
