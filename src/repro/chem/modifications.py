"""Variable post-translational modification (PTM) handling.

The paper's index sizes are driven by *variable* modifications: every
peptide that contains modifiable residues spawns additional "modified
variant" entries, one per admissible combination of site assignments,
subject to a cap on the number of modified residues per peptide
(default 5, Section V-A.3).  This module implements:

* :class:`Modification` — a named mass delta applicable to a set of
  residues.
* :class:`ModificationSet` — a collection of modifications plus the
  per-peptide cap.
* :class:`VariantEnumerator` — deterministic enumeration of the variant
  peptides of a base sequence, optionally truncated (the knob the paper
  turns to sweep index size).

The default :func:`paper_modifications` reproduces the paper's setting:
deamidation on N/Q, Gly-Gly adduct on K/C, oxidation on M.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.chem.peptide import Peptide, validate_sequence
from repro.constants import DEFAULT_MAX_MODIFIED_RESIDUES
from repro.errors import ConfigurationError

__all__ = [
    "Modification",
    "ModificationSet",
    "VariantEnumerator",
    "paper_modifications",
]

#: Unimod monoisotopic deltas for the paper's modifications.
DEAMIDATION_DELTA = 0.98401558
GLYGLY_DELTA = 114.04292744
OXIDATION_DELTA = 15.99491462


@dataclass(frozen=True, slots=True)
class Modification:
    """A variable modification: a mass delta applicable to some residues.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"oxidation"``.
    residues:
        The amino acids this modification can attach to, e.g. ``"M"``.
    delta:
        Monoisotopic mass shift in Da.
    """

    name: str
    residues: str
    delta: float

    def __post_init__(self) -> None:
        if not self.residues:
            raise ConfigurationError(f"modification {self.name!r} targets no residues")
        validate_sequence(self.residues)

    def sites(self, sequence: str) -> Tuple[int, ...]:
        """Return the 0-based positions in ``sequence`` this mod can occupy."""
        targets = set(self.residues)
        return tuple(i for i, aa in enumerate(sequence) if aa in targets)


def paper_modifications() -> "ModificationSet":
    """The modification set of the paper's experiments (Section V-A.3).

    Deamidation on asparagine/glutamine, Gly-Gly adducts on
    lysine/cysteine, and oxidation on methionine, with at most 5
    modified residues per peptide.
    """
    return ModificationSet(
        (
            Modification("deamidation", "NQ", DEAMIDATION_DELTA),
            Modification("glygly", "KC", GLYGLY_DELTA),
            Modification("oxidation", "M", OXIDATION_DELTA),
        ),
        max_modified_residues=DEFAULT_MAX_MODIFIED_RESIDUES,
    )


class ModificationSet:
    """A collection of variable modifications plus the per-peptide cap.

    Parameters
    ----------
    modifications:
        The variable modifications to consider.  Two modifications may
        target overlapping residue sets; a single residue position
        carries at most one modification in any variant.
    max_modified_residues:
        Upper bound on simultaneously modified residues per peptide
        (the paper uses 5).
    """

    def __init__(
        self,
        modifications: Sequence[Modification],
        *,
        max_modified_residues: int = DEFAULT_MAX_MODIFIED_RESIDUES,
    ) -> None:
        if max_modified_residues < 0:
            raise ConfigurationError(
                f"max_modified_residues must be >= 0, got {max_modified_residues}"
            )
        names = [m.name for m in modifications]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate modification names in {names!r}")
        self.modifications: Tuple[Modification, ...] = tuple(modifications)
        self.max_modified_residues = int(max_modified_residues)

    def __iter__(self) -> Iterator[Modification]:
        return iter(self.modifications)

    def __len__(self) -> int:
        return len(self.modifications)

    def site_deltas(self, sequence: str) -> Dict[int, List[float]]:
        """Map each modifiable position of ``sequence`` to its candidate deltas.

        A position targeted by several modifications lists every delta;
        variants choose at most one delta per position.
        """
        out: Dict[int, List[float]] = {}
        for mod in self.modifications:
            for pos in mod.sites(sequence):
                out.setdefault(pos, []).append(mod.delta)
        return out


class VariantEnumerator:
    """Deterministic enumeration of modified variants of base peptides.

    The enumeration order is: increasing number of modified residues,
    then lexicographic over (sorted) site combinations, then over the
    per-site delta choices in modification-set order.  This order is
    stable, so truncating with ``max_variants_per_peptide`` keeps the
    *same* variants regardless of platform — important because the
    benchmark harness sweeps index size by truncating enumeration.

    Parameters
    ----------
    mods:
        The modification set.
    max_variants_per_peptide:
        If not ``None``, at most this many *modified* variants are
        produced per base peptide (the unmodified peptide is always
        produced and does not count against the cap).
    """

    def __init__(
        self,
        mods: ModificationSet,
        *,
        max_variants_per_peptide: int | None = None,
    ) -> None:
        if max_variants_per_peptide is not None and max_variants_per_peptide < 0:
            raise ConfigurationError(
                "max_variants_per_peptide must be None or >= 0, "
                f"got {max_variants_per_peptide}"
            )
        self.mods = mods
        self.max_variants_per_peptide = max_variants_per_peptide

    def variants(self, peptide: Peptide) -> Iterator[Peptide]:
        """Yield the unmodified peptide followed by its modified variants.

        Variants inherit ``protein_id`` from the base peptide.
        """
        yield peptide
        produced = 0
        budget = self.max_variants_per_peptide
        site_deltas = self.mods.site_deltas(peptide.sequence)
        if not site_deltas:
            return
        positions = sorted(site_deltas)
        max_k = min(self.mods.max_modified_residues, len(positions))
        for k in range(1, max_k + 1):
            for combo in itertools.combinations(positions, k):
                for deltas in itertools.product(*(site_deltas[p] for p in combo)):
                    if budget is not None and produced >= budget:
                        return
                    yield Peptide(
                        peptide.sequence,
                        tuple(zip(combo, deltas)),
                        protein_id=peptide.protein_id,
                    )
                    produced += 1

    def count_variants(self, sequence: str) -> int:
        """Return the number of *modified* variants of ``sequence``.

        Counts without materializing (respects the truncation cap), so
        the workload builder can size an index cheaply.
        """
        site_deltas = self.mods.site_deltas(validate_sequence(sequence))
        if not site_deltas:
            return 0
        positions = sorted(site_deltas)
        choice_counts = [len(site_deltas[p]) for p in positions]
        max_k = min(self.mods.max_modified_residues, len(positions))
        total = 0
        for k in range(1, max_k + 1):
            for combo in itertools.combinations(range(len(positions)), k):
                prod = 1
                for idx in combo:
                    prod *= choice_counts[idx]
                total += prod
                if (
                    self.max_variants_per_peptide is not None
                    and total >= self.max_variants_per_peptide
                ):
                    return self.max_variants_per_peptide
        return total

    def expand(self, peptides: Sequence[Peptide]) -> List[Peptide]:
        """Expand every base peptide into itself plus its variants."""
        out: List[Peptide] = []
        for pep in peptides:
            out.extend(self.variants(pep))
        return out
