"""Peptide value type and neutral-mass arithmetic.

A :class:`Peptide` couples an amino-acid sequence with an optional
tuple of localized modifications ``(position, delta_mass)``.  Peptides
are immutable and hashable so they can be used as dictionary keys in
the deduplication and mapping layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.constants import AA_MONO, ALPHABET_SET, WATER_MONO
from repro.errors import InvalidSequenceError

__all__ = ["Peptide", "peptide_mass", "validate_sequence"]


def validate_sequence(sequence: str) -> str:
    """Validate and return ``sequence``.

    Raises
    ------
    InvalidSequenceError
        If the sequence is empty or contains characters outside the
        canonical 20-letter alphabet.
    """
    if not sequence:
        raise InvalidSequenceError("peptide sequence must be non-empty")
    bad = set(sequence) - ALPHABET_SET
    if bad:
        raise InvalidSequenceError(
            f"sequence {sequence!r} contains invalid residues {sorted(bad)!r}"
        )
    return sequence


def peptide_mass(sequence: str, mods: Iterable[Tuple[int, float]] = ()) -> float:
    """Return the neutral monoisotopic mass of ``sequence`` with ``mods``.

    Parameters
    ----------
    sequence:
        Amino-acid sequence (validated).
    mods:
        Iterable of ``(position, delta_mass)`` pairs; positions are
        0-based residue indices and only used for bounds checking here
        (fragment generation needs them).

    Returns
    -------
    float
        ``sum(residue masses) + H2O + sum(mod deltas)``.
    """
    validate_sequence(sequence)
    total = WATER_MONO
    for aa in sequence:
        total += AA_MONO[aa]
    for pos, delta in mods:
        if not 0 <= pos < len(sequence):
            raise InvalidSequenceError(
                f"modification position {pos} outside sequence of length {len(sequence)}"
            )
        total += delta
    return total


@dataclass(frozen=True, slots=True)
class Peptide:
    """An immutable peptide, optionally carrying localized modifications.

    Attributes
    ----------
    sequence:
        The unmodified amino-acid sequence.
    mods:
        Sorted tuple of ``(position, delta_mass)`` pairs; empty for the
        unmodified ("normal") peptide.  Positions are 0-based.
    protein_id:
        Index of the parent protein in the source database, ``-1`` when
        unknown (e.g. synthetic peptides).
    """

    sequence: str
    mods: Tuple[Tuple[int, float], ...] = ()
    protein_id: int = -1
    _mass: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        # Normalize modification order so equal peptides hash equally.
        ordered = tuple(sorted((int(p), float(d)) for p, d in self.mods))
        object.__setattr__(self, "mods", ordered)
        object.__setattr__(self, "_mass", peptide_mass(self.sequence, ordered))

    @property
    def mass(self) -> float:
        """Neutral monoisotopic mass in Da (cached at construction)."""
        return self._mass

    @property
    def is_modified(self) -> bool:
        """True when the peptide carries at least one modification."""
        return bool(self.mods)

    @property
    def length(self) -> int:
        """Number of residues."""
        return len(self.sequence)

    def mod_count(self) -> int:
        """Number of modified residues."""
        return len(self.mods)

    def annotated(self) -> str:
        """Human-readable form, e.g. ``PEPT[+15.995]IDE``.

        The delta is printed after the modified residue with three
        decimals, mirroring common search-engine output.
        """
        if not self.mods:
            return self.sequence
        deltas = dict(self.mods)
        parts: list[str] = []
        for i, aa in enumerate(self.sequence):
            parts.append(aa)
            if i in deltas:
                parts.append(f"[{deltas[i]:+.3f}]")
        return "".join(parts)

    def __str__(self) -> str:
        return self.annotated()
