"""Physical and chemical constants for mass-spectrometry proteomics.

All masses are **monoisotopic** and expressed in unified atomic mass
units (Da).  The residue masses are the masses of amino-acid residues
*inside* a peptide chain, i.e. the free amino-acid mass minus one water
molecule; a peptide's neutral mass is therefore ``sum(residues) +
WATER_MONO``.

The values follow the standard unimod / ExPASy tables and match the ones
used by the SLM-Transform code base that the LBE paper builds on.
"""

from __future__ import annotations

from typing import Final, Mapping

#: Monoisotopic mass of a water molecule (H2O), Da.
WATER_MONO: Final[float] = 18.0105646863

#: Monoisotopic mass of a proton (H+), Da.  Used to convert between
#: neutral masses and m/z values: ``mz = (M + z * PROTON) / z``.
PROTON: Final[float] = 1.00727646688

#: Monoisotopic mass of a hydrogen atom (H), Da.
HYDROGEN_MONO: Final[float] = 1.0078250319

#: Monoisotopic mass of an ammonia molecule (NH3), Da.  Needed for
#: a/b/y-NH3 neutral-loss series (not indexed by default, available to
#: extensions).
AMMONIA_MONO: Final[float] = 17.0265491015

#: Monoisotopic residue masses of the 20 proteinogenic amino acids, Da.
#: Leucine and isoleucine are isobaric; both are retained because the
#: grouping stage works on *sequences*, not masses.
AA_MONO: Final[Mapping[str, float]] = {
    "G": 57.02146372,
    "A": 71.03711378,
    "S": 87.03202840,
    "P": 97.05276384,
    "V": 99.06841390,
    "T": 101.04767846,
    "C": 103.00918447,
    "L": 113.08406396,
    "I": 113.08406396,
    "N": 114.04292744,
    "D": 115.02694302,
    "Q": 128.05857750,
    "K": 128.09496300,
    "E": 129.04259308,
    "M": 131.04048508,
    "H": 137.05891186,
    "F": 147.06841390,
    "R": 156.10111102,
    "Y": 163.06332852,
    "W": 186.07931294,
}

#: The canonical amino-acid alphabet in the order used for
#: lexicographic operations throughout the package.
ALPHABET: Final[str] = "ACDEFGHIKLMNPQRSTVWY"

#: Set view of :data:`ALPHABET` for O(1) membership tests.
ALPHABET_SET: Final[frozenset[str]] = frozenset(ALPHABET)

#: Human-proteome-like amino-acid background frequencies (UniProt
#: statistics, normalised).  Used by the synthetic proteome generator so
#: that digests of generated proteins have realistic composition.
AA_FREQUENCIES: Final[Mapping[str, float]] = {
    "A": 0.0702,
    "C": 0.0230,
    "D": 0.0473,
    "E": 0.0710,
    "F": 0.0365,
    "G": 0.0657,
    "H": 0.0263,
    "I": 0.0433,
    "K": 0.0573,
    "L": 0.0996,
    "M": 0.0213,
    "N": 0.0359,
    "P": 0.0631,
    "Q": 0.0477,
    "R": 0.0564,
    "S": 0.0833,
    "T": 0.0536,
    "V": 0.0597,
    "W": 0.0122,
    "Y": 0.0266,
}

#: Default digestion settings from the paper's experimental setup
#: (Section V-A.1): fully tryptic, up to 2 missed cleavages, peptide
#: lengths 6..40, peptide masses 100..5000 Da.
DIGEST_MIN_LENGTH: Final[int] = 6
DIGEST_MAX_LENGTH: Final[int] = 40
DIGEST_MIN_MASS: Final[float] = 100.0
DIGEST_MAX_MASS: Final[float] = 5000.0
DIGEST_MISSED_CLEAVAGES: Final[int] = 2

#: Default SLM-Transform settings from the paper (Section V-A.3).
DEFAULT_RESOLUTION: Final[float] = 0.01  # m/z bin width `r`
DEFAULT_FRAGMENT_TOLERANCE: Final[float] = 0.05  # ΔF, Da
DEFAULT_SHARED_PEAK_THRESHOLD: Final[int] = 4  # Shpeak
DEFAULT_TOP_PEAKS: Final[int] = 100  # peaks retained per query spectrum
DEFAULT_MAX_MODIFIED_RESIDUES: Final[int] = 5

#: Default LBE grouping parameters from Algorithm 1 / Section III-C.
DEFAULT_GROUP_SIZE: Final[int] = 20  # gsize
DEFAULT_EDIT_DISTANCE: Final[int] = 2  # d  (criterion 1)
DEFAULT_NORMALIZED_CUTOFF: Final[float] = 0.86  # d' (criterion 2)


def mass_of_residue(aa: str) -> float:
    """Return the monoisotopic residue mass of a single amino acid.

    Raises :class:`KeyError` with a helpful message for characters
    outside the canonical alphabet (e.g. B, J, O, U, X, Z, which the
    database layer strips before peptides reach the chemistry layer).
    """
    try:
        return AA_MONO[aa]
    except KeyError:
        raise KeyError(
            f"unknown amino acid {aa!r}; expected one of {ALPHABET}"
        ) from None
