"""Trace-record taxonomy and JSONL validation.

This module is the single source of truth for what a trace may
contain: every span name and event kind the serving stack emits,
with the attribute keys each record must carry.  The CI ``obs-smoke``
job runs it directly::

    PYTHONPATH=src python -m repro.obs.schema trace.jsonl
    PYTHONPATH=src python -m repro.obs.schema --stats trace.jsonl \
        --require respawn>=1 --require worker.query>=1

and exits non-zero if any line is malformed, any span/event is
unknown, any required attribute is missing, or a ``--require``d
span/event count falls short.  ``--stats`` prints per-name record
counts and span-duration sums (the structured replacement for
grepping raw JSONL).  Tests reuse :func:`validate_trace_file` /
:func:`validate_record` so the schema checked in CI is the schema
asserted in the suite.

See the package docstring (:mod:`repro.obs`) for the human-readable
taxonomy table; this module is its executable form.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

__all__ = [
    "SPAN_ATTRS",
    "EVENT_ATTRS",
    "validate_record",
    "validate_trace_lines",
    "validate_trace_file",
    "trace_stats",
]

#: Required attribute keys per span name (beyond ``type``/``name``/
#: ``ts``/``dur``, which every span carries).
SPAN_ATTRS: Dict[str, Tuple[str, ...]] = {
    # Master-side pipeline stages (service.py).
    "prepare": ("batch",),
    "spill": ("batch",),
    "dispatch": ("batch",),
    "collect": ("batch",),
    "merge": ("batch",),
    # Worker-side spans re-anchored at merge time from reply payloads.
    "worker.open": ("batch", "rank"),
    "worker.query": ("batch", "rank", "cpu_s"),
    # Shard-router stages (sharding.py).
    "route": ("batch", "dispatched", "skipped"),
    "demux": ("batch",),
}

#: Required attribute keys per event kind (beyond ``type``/``kind``/
#: ``ts``).
EVENT_ATTRS: Dict[str, Tuple[str, ...]] = {
    # Session lifecycle (service.py / sharding.py).
    "session.open": ("n_workers",),
    "session.close": (),
    # Per-batch summary: the live LI gauge plus supervision totals.
    "batch": (
        "batch",
        "n_spectra",
        "total_s",
        "li_wall",
        "li_cpu",
        "retries",
        "hedged",
        "respawned",
    ),
    # Supervision transitions (persistent.py).
    "retry": ("rank", "attempt"),
    "backoff": ("rank", "delay_s"),
    "respawn": ("rank",),
    "hedge.launch": ("rank",),
    "hedge.win": ("rank",),
    "hedge.loss": ("rank",),
    "degraded.rank": ("rank",),
    # Shard-level degradation (sharding.py).
    "degraded.shard": ("shard",),
    # Elastic rebalancing (service.py / rebalance.py): a window
    # tripping the trigger, the applied migration, and the pool's
    # size change (persistent.py emits the resize).
    "rebalance.trigger": ("batch", "reason", "window_li", "n_workers"),
    "rebalance.migrate": ("reason", "n_from", "n_to", "changed_ranks"),
    "pool.resize": ("n_from", "n_to"),
    # Flight-recorder dump marker (ring.py): the last record written
    # before a black box is cut, naming why it exists.
    "flight.dump": ("reason",),
}


def validate_record(obj: Any) -> List[str]:
    """Return the list of schema violations for one decoded record."""
    errors: List[str] = []
    if not isinstance(obj, Mapping):
        return [f"record is not an object: {obj!r}"]
    rtype = obj.get("type")
    if rtype == "span":
        name = obj.get("name")
        if not isinstance(name, str):
            return [f"span without a string name: {obj!r}"]
        if name not in SPAN_ATTRS:
            return [f"unknown span name {name!r}"]
        for key in ("ts", "dur"):
            if not isinstance(obj.get(key), (int, float)):
                errors.append(f"span {name!r}: missing numeric {key!r}")
        dur = obj.get("dur")
        if isinstance(dur, (int, float)) and dur < 0:
            errors.append(f"span {name!r}: negative dur {dur!r}")
        for key in SPAN_ATTRS[name]:
            if key not in obj:
                errors.append(f"span {name!r}: missing attr {key!r}")
    elif rtype == "event":
        kind = obj.get("kind")
        if not isinstance(kind, str):
            return [f"event without a string kind: {obj!r}"]
        if kind not in EVENT_ATTRS:
            return [f"unknown event kind {kind!r}"]
        if not isinstance(obj.get("ts"), (int, float)):
            errors.append(f"event {kind!r}: missing numeric 'ts'")
        for key in EVENT_ATTRS[kind]:
            if key not in obj:
                errors.append(f"event {kind!r}: missing attr {key!r}")
    else:
        errors.append(f"unknown record type {rtype!r}")
    return errors


def validate_trace_lines(
    lines: Iterable[str],
) -> Tuple[int, List[str]]:
    """Validate decoded-or-not JSONL lines.

    Returns ``(n_records, errors)`` where each error is prefixed with
    its 1-based line number.  Blank lines are ignored.
    """
    n = 0
    errors: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        n += 1
        errors.extend(f"line {lineno}: {e}" for e in validate_record(obj))
    return n, errors


def validate_trace_file(path: Union[str, Path]) -> Tuple[int, List[str]]:
    """Validate a JSONL trace file; returns ``(n_records, errors)``."""
    with open(path, "r", encoding="ascii") as fh:
        return validate_trace_lines(fh)


def trace_stats(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Per-name counts (and span-duration sums) for one trace file.

    Returns ``{name: {"type": "span"|"event", "count": int,
    "dur_s": float}}`` where ``dur_s`` is the summed span duration
    (0.0 for events).  Only schema-known names appear; validation is
    a separate concern (:func:`validate_trace_file`).
    """
    stats: Dict[str, Dict[str, Any]] = {}
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(obj, Mapping):
                continue
            if obj.get("type") == "span":
                name, rtype = obj.get("name"), "span"
            elif obj.get("type") == "event":
                name, rtype = obj.get("kind"), "event"
            else:
                continue
            if not isinstance(name, str):
                continue
            entry = stats.setdefault(
                name, {"type": rtype, "count": 0, "dur_s": 0.0}
            )
            entry["count"] += 1
            dur = obj.get("dur")
            if rtype == "span" and isinstance(dur, (int, float)):
                entry["dur_s"] += float(dur)
    return stats


def _parse_requirement(spec: str) -> Tuple[str, str, int]:
    """Parse ``NAME>=N`` / ``NAME=N`` into ``(name, op, n)``."""
    for op in (">=", "="):
        if op in spec:
            name, _, count = spec.partition(op)
            name, count = name.strip(), count.strip()
            if name and count.isdigit():
                return name, op, int(count)
    raise ValueError(f"bad --require spec {spec!r} (want NAME>=N or NAME=N)")


def main(argv: List[str]) -> int:
    show_stats = False
    requirements: List[Tuple[str, str, int]] = []
    paths: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--stats":
            show_stats = True
        elif arg == "--require":
            try:
                requirements.append(_parse_requirement(next(it, "")))
            except ValueError as exc:
                print(f"SCHEMA: {exc}", file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(
            "usage: python -m repro.obs.schema [--stats] "
            "[--require NAME>=N]... TRACE.jsonl",
            file=sys.stderr,
        )
        return 2
    path = paths[0]
    n, errors = validate_trace_file(path)
    spans = sum(1 for _ in SPAN_ATTRS)
    if errors:
        for e in errors[:50]:
            print(f"SCHEMA: {e}", file=sys.stderr)
        print(
            f"{path}: {n} records, {len(errors)} schema violations",
            file=sys.stderr,
        )
        return 1
    print(
        f"{path}: {n} records OK "
        f"({spans} span names, {len(EVENT_ATTRS)} event kinds known)"
    )
    stats = trace_stats(path) if (show_stats or requirements) else {}
    if show_stats:
        for name in sorted(stats):
            entry = stats[name]
            line = f"  {entry['type']:5s} {name}: {entry['count']}"
            if entry["type"] == "span":
                line += f" ({entry['dur_s']:.6f} s total)"
            print(line)
    failed = False
    for name, op, want in requirements:
        have = stats.get(name, {}).get("count", 0)
        ok = have >= want if op == ">=" else have == want
        if not ok:
            print(
                f"SCHEMA: requirement {name}{op}{want} not met "
                f"(found {have})",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main(sys.argv[1:]))
