"""Process-wide metrics registry: counters, gauges, latency histograms.

The registry is the *aggregated* side of the observability layer: the
tracer (:mod:`repro.obs.trace`) records individual spans and events,
the registry keeps running totals and distributions cheap enough to
update on every batch.  Everything here is stdlib-only and
thread-safe at the granularity the serving stack needs: metric
*creation* is locked; single updates (``inc``/``set``/``observe``)
are plain attribute writes protected by the GIL, matching how the
pipeline thread and shard callbacks interleave.

Three instrument kinds:

* :class:`Counter` — monotonically increasing totals (batches served,
  retries, respawns, hedges).
* :class:`Gauge` — last-written value with min/max watermarks.  The
  serving stack's headline gauge is the **per-batch load imbalance**
  (``service.batch_li_wall``): the paper's Eq.-1 LI computed live
  from the full per-rank query-wall vector each batch.
* :class:`Histogram` — fixed-bucket latency histogram with
  interpolated p50/p95/p99.  Buckets are geometric from 1 ms to
  120 s by default (:data:`DEFAULT_LATENCY_BUCKETS_S`); quantiles
  clamp to the observed min/max so a single-bucket distribution
  still reports sane numbers.

:func:`quantile` is the exact (sorted, linearly interpolated)
companion used offline by
:func:`repro.service.aggregate_batch_stats` — the histogram's
bucketed estimate and the exact helper agree to within one bucket
width by construction.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "quantile",
    "global_registry",
]

#: Geometric 1-2.5-5 ladder from 1 ms to 120 s: wide enough for a
#: worker-spawn-dominated first batch, fine enough near the ~10-100 ms
#: steady-state per-batch latencies the service actually serves.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0,
)


def quantile(values: Sequence[float], q: float) -> float:
    """Exact linearly-interpolated quantile of ``values``.

    Matches numpy's default (``method='linear'``) so offline
    recomputations agree with array-based checks.  Raises on an empty
    sequence — the caller decides what "no data" means.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q!r} outside [0, 1]")
    if not values:
        raise ValueError("quantile of empty sequence")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0:
        return data[lo]
    return data[lo] + (data[lo + 1] - data[lo]) * frac


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def as_dict(self) -> Dict[str, int]:
        return {"value": self.value}


class Gauge:
    """Last-written value with min/max watermarks and update count.

    Two watermark scopes coexist: the lifetime ``min``/``max`` (what
    :meth:`as_dict` reports) never reset, while a second *windowed*
    pair feeds periodic consumers — :meth:`read_watermarks` returns
    the extremes since the previous reset-read and (with
    ``reset=True``) starts a fresh window.  The rebalance trigger
    polls the window so it reacts to *recent* peaks, not to a spike a
    thousand batches ago.
    """

    __slots__ = (
        "name", "value", "min", "max", "n_updates",
        "window_min", "window_max", "window_updates",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.n_updates = 0
        self.window_min = float("inf")
        self.window_max = float("-inf")
        self.window_updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n_updates += 1
        if value < self.window_min:
            self.window_min = value
        if value > self.window_max:
            self.window_max = value
        self.window_updates += 1

    def read_watermarks(self, reset: bool = False) -> Dict[str, float]:
        """Extremes since the last reset-read: ``{min, max, n_updates}``.

        An empty window reports zeros (mirroring :meth:`as_dict`).
        ``reset=True`` atomically-enough (GIL granularity, like
        :meth:`set`) clears the window so the next read starts fresh;
        lifetime watermarks are untouched.
        """
        if self.window_updates == 0:
            out = {"min": 0.0, "max": 0.0, "n_updates": 0}
        else:
            out = {
                "min": self.window_min,
                "max": self.window_max,
                "n_updates": self.window_updates,
            }
        if reset:
            self.window_min = float("inf")
            self.window_max = float("-inf")
            self.window_updates = 0
        return out

    def as_dict(self) -> Dict[str, float]:
        if self.n_updates == 0:
            return {"value": 0.0, "min": 0.0, "max": 0.0, "n_updates": 0}
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "n_updates": self.n_updates,
        }


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``bounds`` are the inclusive upper edges of the first
    ``len(bounds)`` buckets; one implicit overflow bucket catches the
    rest.  Quantiles interpolate linearly inside the winning bucket
    and clamp to the observed min/max, so estimates never leave the
    observed range.
    """

    __slots__ = ("name", "bounds", "counts", "n", "sum", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> None:
        b = tuple(float(x) for x in bounds)
        if not b or any(x >= y for x, y in zip(b, b[1:])):
            raise ValueError(
                f"histogram {name!r}: bounds must be strictly "
                f"increasing and non-empty"
            )
        self.name = name
        self.bounds = b
        self.counts: List[int] = [0] * (len(b) + 1)
        self.n = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.n += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (requires data)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.n == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        target = q * self.n
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (target - cum) / c
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            cum += c
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    def as_dict(self) -> Dict[str, object]:
        if self.n == 0:
            return {"n": 0}
        return {
            "n": self.n,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    One registry per serving process is the intended shape
    (:func:`global_registry`); tests inject a fresh instance through
    ``ServiceConfig.metrics`` so assertions never see another test's
    totals.  Creation is locked; re-requesting a name returns the
    same instrument (a kind mismatch is an error).
    """

    __slots__ = ("_lock", "_metrics")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, factory, kind: type):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = factory()
                self._metrics[name] = m
            elif not isinstance(m, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(m).__name__}, not {kind.__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(
            name,
            lambda: Histogram(name, bounds or DEFAULT_LATENCY_BUCKETS_S),
            Histogram,
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict dump of every instrument (JSON-serializable)."""
        with self._lock:
            items = list(self._metrics.items())
        out: Dict[str, Dict[str, object]] = {}
        for name, m in sorted(items):
            d = m.as_dict()  # type: ignore[attr-defined]
            d["kind"] = type(m).__name__.lower()
            out[name] = d
        return out

    def reset(self) -> None:
        """Drop every instrument (test isolation helper)."""
        with self._lock:
            self._metrics.clear()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL
