"""Span/event tracer with explicit clock injection.

The tracer is the write side of the observability layer: the service,
the persistent pool, and the shard router call :meth:`Tracer.span` /
:meth:`Tracer.event` at instrumentation points, and a concrete sink
(:class:`JsonlTracer`) turns those calls into one JSON object per
line.  Two design rules keep it out of the hot path:

* **No ambient time.**  Every timestamp comes from an injected
  ``Clock`` (a zero-argument callable returning seconds as a float,
  default :func:`time.perf_counter`).  Callers that already hold a
  ``t0``/``dur`` pair — every pipeline stage does — pass them in, so
  enabling tracing never adds a second clock read to code that
  already timed itself.
* **Free when off.**  The base :class:`Tracer` is the no-op: every
  method is ``pass`` and :attr:`Tracer.enabled` is ``False``, so
  instrumentation sites guard attribute packing with
  ``if tracer.enabled:`` and the disabled path costs one attribute
  load + branch, allocating nothing.

Timestamps are in the injected clock's timebase (``perf_counter`` by
default: arbitrary epoch, monotonic, comparable only within one
master process).  Worker-side spans are therefore shipped as
*relative* (offset, duration) pairs inside the existing reply
payloads and re-anchored on the master's clock at merge time — see
:func:`repro.search.rank.worker_spans_from_report`.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

__all__ = [
    "Clock",
    "default_clock",
    "Tracer",
    "NULL_TRACER",
    "JsonlTracer",
]

#: A clock is any zero-argument callable returning seconds as a float.
#: The timebase is the caller's business; the default is
#: :func:`time.perf_counter` (monotonic, process-local epoch).
Clock = Callable[[], float]

#: The default clock shared by the tracer and :class:`~repro.util.timing.PhaseTimer`.
default_clock: Clock = time.perf_counter


class Tracer:
    """No-op tracer: the default everywhere, and the common interface.

    Subclasses override :meth:`span`, :meth:`event`, and
    :attr:`enabled`.  Instrumentation sites MUST guard any work that
    builds attribute dicts with ``if tracer.enabled:`` so the
    disabled path stays allocation-free.
    """

    __slots__ = ()

    #: Class attribute, not a property: reading it is one dict lookup.
    enabled: bool = False

    def span(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a completed span ``[start, start + duration]``."""

    def event(
        self, kind: str, attrs: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Record a point-in-time event, stamped with the sink's clock."""

    def bind(self, **attrs: Any) -> "Tracer":
        """Return a tracer that adds ``attrs`` to every record.

        The no-op tracer binds to itself — binding is free when
        tracing is off, so layers (e.g. the shard router tagging each
        inner service with ``shard=<id>``) bind unconditionally.
        """
        return self

    def flush(self) -> None:
        """Flush any buffered records to the sink."""

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""


#: Shared no-op instance: the default value of every ``tracer`` knob.
NULL_TRACER = Tracer()


class _JsonlSink:
    """Locked line writer shared by a tracer and all its bound views."""

    __slots__ = ("_fh", "_owns", "lock", "n_records")

    def __init__(self, fh: io.TextIOBase, owns: bool) -> None:
        self._fh: Optional[io.TextIOBase] = fh
        self._owns = owns
        self.lock = threading.Lock()
        self.n_records = 0

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self.lock:
            if self._fh is None:
                return
            self._fh.write(line + "\n")
            self.n_records += 1

    def flush(self) -> None:
        with self.lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self.lock:
            fh, self._fh = self._fh, None
            if fh is not None:
                fh.flush()
                if self._owns:
                    fh.close()


class JsonlTracer(Tracer):
    """Tracer writing one JSON object per line to a file or stream.

    Records are flat dicts::

        {"type": "span", "name": "collect", "ts": 1.23, "dur": 0.04,
         "batch": 7}
        {"type": "event", "kind": "retry", "ts": 2.56, "rank": 1,
         "attempt": 2}

    ``ts`` is in the injected clock's timebase.  Bound attributes
    (:meth:`bind`) and call-site ``attrs`` are merged into the top
    level; the reserved keys (``type``/``name``/``kind``/``ts``/
    ``dur``) win on collision.  Writes are serialized with a lock —
    the pipeline thread, the caller's thread, and per-shard callbacks
    all emit concurrently.  :meth:`bind` returns a view sharing the
    sink, so closing any view (or the parent) closes the file once.
    """

    __slots__ = ("_sink", "_clock", "_bound")

    enabled = True

    def __init__(
        self,
        sink: Union[str, Path, io.TextIOBase],
        *,
        clock: Clock = default_clock,
    ) -> None:
        if isinstance(sink, (str, Path)):
            self._sink = _JsonlSink(
                open(sink, "w", encoding="ascii"), owns=True
            )
        else:
            self._sink = _JsonlSink(sink, owns=False)
        self._clock = clock
        self._bound: Dict[str, Any] = {}

    @property
    def n_records(self) -> int:
        """Records written through this sink (all bound views included)."""
        return self._sink.n_records

    def span(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        record: Dict[str, Any] = dict(self._bound)
        if attrs:
            record.update(attrs)
        record.update(
            type="span",
            name=name,
            ts=round(float(start), 9),
            dur=round(float(duration), 9),
        )
        self._sink.emit(record)

    def event(
        self, kind: str, attrs: Optional[Mapping[str, Any]] = None
    ) -> None:
        record: Dict[str, Any] = dict(self._bound)
        if attrs:
            record.update(attrs)
        record.update(type="event", kind=kind, ts=round(self._clock(), 9))
        self._sink.emit(record)

    def bind(self, **attrs: Any) -> "JsonlTracer":
        child = object.__new__(JsonlTracer)
        child._sink = self._sink
        child._clock = self._clock
        child._bound = {**self._bound, **attrs}
        return child

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
