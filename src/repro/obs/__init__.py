"""Observability: structured tracing + live metrics for the serving stack.

The LBE paper's central quantity — per-rank load imbalance during the
query phase (Eq. 1) — was previously visible only in offline
benchmarks, and the supervision layer's transitions (retries, hedges,
respawns, degraded ranks/shards) evaporated when a batch completed.
This package makes both observable in live sessions:

* :mod:`repro.obs.trace` — span/event tracer with explicit clock
  injection; :class:`JsonlTracer` writes one JSON object per line
  (``repro serve --trace FILE``), :data:`NULL_TRACER` is the free
  default.
* :mod:`repro.obs.metrics` — process-wide registry of counters,
  gauges, and fixed-bucket latency histograms (p50/p95/p99),
  including the live per-batch **load-imbalance gauge** computed
  from the full per-rank query wall/CPU vectors on ``BatchStats``.
* :mod:`repro.obs.ring` — the flight recorder: :class:`RingTracer`
  keeps the last N records in a bounded in-memory ring (installed by
  default when no file tracer is configured) and dumps a schema-valid
  JSONL black box on ``WorkerError``/``ShardError``/degraded batches.
* :mod:`repro.obs.schema` — the executable taxonomy below;
  ``python -m repro.obs.schema FILE`` validates a trace in CI, and
  ``--stats`` / ``--require NAME>=N`` turn CI greps into structured
  assertions.
* :mod:`repro.obs.analyze` — the consume side: reconstructs per-batch
  timelines, stage breakdown, per-rank utilization, overlap
  efficiency, the critical path, and a recomputed Eq.-1 LI from a
  trace (``repro trace analyze | gantt | diff``).

Event taxonomy
==============

Spans (``{"type": "span", "name": ..., "ts": ..., "dur": ...}``; all
timestamps are seconds on the injected master clock):

==============  ======================  ==================================
span name       required attrs          emitted by / meaning
==============  ======================  ==================================
``prepare``     ``batch``               master: preprocess one batch
``spill``       ``batch``               master: spill peaks to the store
``dispatch``    ``batch``               master: scatter commands to ranks
``collect``     ``batch``               master: wait for worker replies
``merge``       ``batch``               master: merge rank payloads
``worker.open`` ``batch, rank``         worker: per-rank store open/read
                                        (re-anchored from reply payload)
``worker.query``  ``batch, rank,        worker: per-rank query phase —
                  cpu_s``               the LI vector's wall entries;
                                        ``cpu_s`` is the CPU-time twin
``route``       ``batch, dispatched,    shard router: precursor-window
                ``skipped``             routing predicate over shards
``demux``       ``batch``               shard router: scan-id demux +
                                        fleet merge
==============  ======================  ==================================

Events (``{"type": "event", "kind": ..., "ts": ...}``):

===================  ====================  ==============================
event kind           required attrs        emitted when
===================  ====================  ==============================
``session.open``     ``n_workers``         pool attached, session ready
``session.close``    —                     session closed
``batch``            ``batch, n_spectra,   per-batch summary: the live
                     total_s, li_wall,     LI gauge (Eq. 1 over the
                     li_cpu, retries,      per-rank wall/CPU vectors)
                     hedged, respawned``   plus supervision totals
``retry``            ``rank, attempt``     rank failed, will re-dispatch
``backoff``          ``rank, delay_s``     sleeping before the retry
``respawn``          ``rank``              dead worker replaced
``hedge.launch``     ``rank``              speculative duplicate started
``hedge.win``        ``rank``              hedge answered first, promoted
``hedge.loss``       ``rank``              hedge (or original) discarded
``degraded.rank``    ``rank``              retries exhausted, rank masked
``degraded.shard``   ``shard``             whole shard degraded in fleet
``flight.dump``      ``reason``            flight recorder cut a black
                                           box (last record before dump)
===================  ====================  ==============================

Extra attributes are always allowed (bound views add e.g.
``shard=<id>`` to every record of an inner service); the schema
checks required keys only.
"""

from repro.obs.analyze import (
    TraceAnalysis,
    TraceDiff,
    analyze_trace,
    analyze_trace_file,
    diff_traces,
    load_trace,
    render_analysis,
    render_diff,
    render_gantt,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    quantile,
)
from repro.obs.ring import DEFAULT_CAPACITY, RingTracer, flight_dump
from repro.obs.schema import (
    EVENT_ATTRS,
    SPAN_ATTRS,
    trace_stats,
    validate_record,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs.trace import (
    NULL_TRACER,
    Clock,
    JsonlTracer,
    Tracer,
    default_clock,
)

__all__ = [
    "Clock",
    "default_clock",
    "Tracer",
    "NULL_TRACER",
    "JsonlTracer",
    "RingTracer",
    "DEFAULT_CAPACITY",
    "flight_dump",
    "TraceAnalysis",
    "TraceDiff",
    "load_trace",
    "analyze_trace",
    "analyze_trace_file",
    "diff_traces",
    "render_analysis",
    "render_gantt",
    "render_diff",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "quantile",
    "DEFAULT_LATENCY_BUCKETS_S",
    "SPAN_ATTRS",
    "EVENT_ATTRS",
    "validate_record",
    "validate_trace_lines",
    "validate_trace_file",
    "trace_stats",
]
