"""Flight recorder: a bounded in-memory ring of trace records.

:class:`RingTracer` is the always-on counterpart of
:class:`~repro.obs.trace.JsonlTracer`: it produces **identical record
dicts** (same reserved keys, same bound-attribute merge, same
rounding) but appends them to a bounded ``deque`` instead of a file —
holding the last N records of the session, whatever happens.  The
serving tier installs one by default whenever no file tracer was
configured, so a session that never asked for ``--trace`` still
carries its recent timeline in memory; when a
:class:`~repro.errors.WorkerError` / :class:`~repro.errors.ShardError`
surfaces or a batch degrades, the ring is dumped to a schema-valid
JSONL "black box" (see :func:`flight_dump`) whose path travels on the
error / the batch's stats.  Every production fault thus comes with its
last-seconds timeline, without paying for always-on file tracing.

Cost model: an emit is one dict build plus a locked ``deque.append``
— no JSON encoding, no I/O (both deferred to :meth:`RingTracer.dump`,
which only runs on the failure path).  The throughput benchmark's
``observability`` section measures the ring against a bare session
and the perf guard holds it under the same overhead ceiling as file
tracing (``--obs-overhead``).

Like the file tracer, :meth:`RingTracer.bind` returns a view sharing
the ring, so per-shard bound tracers of a fleet interleave their
records into one fleet-wide black box in arrival order.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.trace import Clock, Tracer, default_clock

__all__ = ["DEFAULT_CAPACITY", "RingTracer", "flight_dump"]

#: Records the default flight recorder retains — a few hundred batches
#: of the serving pipeline's span/event volume, a few MB at most.
DEFAULT_CAPACITY = 4096


class _RingBuffer:
    """Locked bounded record store shared by a tracer and its views."""

    __slots__ = ("lock", "records", "n_seen")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.records: deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.n_seen = 0

    def emit(self, record: Dict[str, Any]) -> None:
        with self.lock:
            self.records.append(record)
            self.n_seen += 1


class RingTracer(Tracer):
    """Tracer retaining the last ``capacity`` records in memory.

    Record shape is bit-for-bit the :class:`~repro.obs.trace.JsonlTracer`
    shape (the schema validates dumps of either interchangeably);
    emission order across threads is the ring's arrival order, exactly
    as the file tracer's lock serializes lines.  :meth:`bind` returns
    a view sharing the ring; :meth:`dump` writes the current contents
    as schema-valid JSONL.
    """

    __slots__ = ("_ring", "_clock", "_bound")

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        clock: Clock = default_clock,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self._ring = _RingBuffer(capacity)
        self._clock = clock
        self._bound: Dict[str, Any] = {}

    @property
    def capacity(self) -> int:
        """Maximum records retained (older records are evicted)."""
        return self._ring.records.maxlen or 0

    @property
    def n_records(self) -> int:
        """Records currently held (``<= capacity``)."""
        with self._ring.lock:
            return len(self._ring.records)

    @property
    def n_seen(self) -> int:
        """Lifetime records emitted through this ring (all views)."""
        return self._ring.n_seen

    def span(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        record: Dict[str, Any] = dict(self._bound)
        if attrs:
            record.update(attrs)
        record.update(
            type="span",
            name=name,
            ts=round(float(start), 9),
            dur=round(float(duration), 9),
        )
        self._ring.emit(record)

    def event(
        self, kind: str, attrs: Optional[Mapping[str, Any]] = None
    ) -> None:
        record: Dict[str, Any] = dict(self._bound)
        if attrs:
            record.update(attrs)
        record.update(type="event", kind=kind, ts=round(self._clock(), 9))
        self._ring.emit(record)

    def bind(self, **attrs: Any) -> "RingTracer":
        child = object.__new__(RingTracer)
        child._ring = self._ring
        child._clock = self._clock
        child._bound = {**self._bound, **attrs}
        return child

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of the ring's current contents, oldest first."""
        with self._ring.lock:
            return list(self._ring.records)

    def dump(self, path: Union[str, Path]) -> int:
        """Write the ring's contents to ``path`` as JSONL; returns the
        record count.  The output validates against
        :mod:`repro.obs.schema` exactly as a file trace would."""
        records = self.records()
        with open(path, "w", encoding="ascii") as fh:
            for record in records:
                fh.write(
                    json.dumps(record, separators=(",", ":"), default=str)
                    + "\n"
                )
        return len(records)

    def dump_to_dir(
        self,
        directory: Union[str, Path, None] = None,
        *,
        prefix: str = "repro-flight-",
    ) -> str:
        """Dump into a fresh uniquely-named file under ``directory``
        (default: the system temp dir); returns the file's path."""
        target = Path(directory) if directory is not None else Path(
            tempfile.gettempdir()
        )
        target.mkdir(parents=True, exist_ok=True)
        fd, path = tempfile.mkstemp(
            prefix=prefix, suffix=".jsonl", dir=str(target)
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as fh:
                for record in self.records():
                    fh.write(
                        json.dumps(record, separators=(",", ":"), default=str)
                        + "\n"
                    )
        except BaseException:
            os.unlink(path)
            raise
        return path

    # The ring owns no file handle: flush/close are inherited no-ops,
    # so the serving tier can treat any tracer uniformly at shutdown.


def flight_dump(
    ring: Optional[RingTracer],
    directory: Union[str, Path, None],
    reason: str,
    *,
    batch: Optional[int] = None,
) -> Optional[str]:
    """Dump a service-owned flight recorder on a failure path.

    Appends a ``flight.dump`` event naming the trigger (so the black
    box records *why* it exists), writes the ring to a fresh file
    under ``directory``, and returns its path — or ``None`` when
    there is no recorder, it is empty, or the dump itself fails (a
    black-box hiccup must never mask the original fault).
    """
    if ring is None or ring.n_records == 0:
        return None
    attrs: Dict[str, Any] = {"reason": reason}
    if batch is not None:
        attrs["batch"] = batch
    ring.event("flight.dump", attrs)
    try:
        return ring.dump_to_dir(directory)
    except OSError:
        return None
