"""Trace analyzer: turn recorded span/event JSONL into answers.

The write side (:mod:`repro.obs.trace` / :mod:`repro.obs.ring`)
records *what happened when*; this module reconstructs *where the
time went* — the question the paper's whole argument (Eq.-1 load
imbalance over per-rank query walls) is about.  Three consumers,
surfaced as the ``repro trace`` CLI family:

* :func:`analyze_trace` → :class:`TraceAnalysis` — per-batch stage
  breakdown, per-rank utilization, pipeline-overlap efficiency, the
  critical path, and a **recomputed Eq.-1 LI** from the re-anchored
  ``worker.query`` spans that must agree with the ``batch`` events'
  ``li_wall`` (which is the live ``service.batch_li_wall`` gauge's
  value, emitted from the same vector) — the agreement is
  test-enforced, so the offline and live views can never drift.
* :func:`render_gantt` — ASCII per-batch timelines over the
  :func:`repro.util.ascii_plot.gantt_chart` machinery.
* :func:`diff_traces` → :class:`TraceDiff` — attribute a latency
  regression between two traces to specific stages and ranks.

Sharded traces: fleet-level records (``route`` / ``demux`` spans,
``fleet: true`` batch events) are analyzed at the fleet level; every
inner-service record carries its bound ``shard`` attribute, so
``analyze_trace(records, shard=N)`` re-runs the full single-service
analysis on one shard's slice.  The fleet LI is recomputed from
worker spans only when no batch skipped a shard (skips desynchronize
inner batch numbering from fleet batch numbering; the event-carried
``li_wall`` is always reported).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.metrics import quantile
from repro.util.ascii_plot import gantt_chart
from repro.util.tables import format_table

__all__ = [
    "BatchTimeline",
    "StageStat",
    "TraceAnalysis",
    "TraceDiff",
    "load_trace",
    "analyze_trace",
    "analyze_trace_file",
    "diff_traces",
    "render_analysis",
    "render_gantt",
    "render_diff",
]

#: Master pipeline stages of one service, in execution order.
_SERVICE_STAGES = ("prepare", "spill", "dispatch", "collect", "merge")
#: Fleet-level stages of the shard router.
_FLEET_STAGES = ("route", "demux")
#: LI agreement tolerance: events carry ``li_wall`` rounded to 9
#: decimals and span durations are rounded the same way, so the
#: recomputation can differ from the live gauge only in the last
#: digits of that rounding.
LI_TOLERANCE = 1e-6


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Decode a JSONL trace file into a list of record dicts."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}: line {lineno} is not valid JSON ({exc})"
                ) from None
            if isinstance(obj, dict):
                records.append(obj)
    return records


@dataclass(slots=True)
class StageStat:
    """Aggregate over every span of one name in the trace."""

    name: str
    count: int
    total_s: float
    mean_s: float
    max_s: float


@dataclass(slots=True)
class BatchTimeline:
    """One batch's reconstructed timeline.

    ``stages`` maps each master stage name to its summed wall seconds
    for this batch; ``worker_spans`` maps rank → list of
    ``(name, ts, dur)`` re-anchored worker spans; ``li_recomputed``
    is Eq. 1 over the per-rank ``worker.query`` durations (``None``
    when the trace carries no usable worker spans for this batch);
    ``li_event`` / ``total_event_s`` come from the batch's summary
    event (the live gauge's value at the time).  ``critical_path``
    lists the serial chain ``(label, seconds)`` whose largest entry is
    ``critical_stage``; ``overlap_s`` is the portion of this batch's
    master-stage work that ran while another batch's round was on the
    pipe.
    """

    batch: int
    t0: float
    t1: float
    stages: Dict[str, float]
    stage_spans: Dict[str, List[Tuple[float, float]]]
    worker_spans: Dict[int, List[Tuple[str, float, float]]]
    li_recomputed: Optional[float]
    li_event: Optional[float]
    total_event_s: Optional[float]
    critical_path: List[Tuple[str, float]]
    critical_stage: str
    overlap_s: float

    @property
    def worker_wall(self) -> Dict[int, float]:
        """Per-rank ``worker.query`` wall seconds for this batch."""
        return {
            rank: sum(d for n, _, d in spans if n == "worker.query")
            for rank, spans in self.worker_spans.items()
        }


@dataclass(slots=True)
class TraceAnalysis:
    """The full reconstruction of one trace (or one shard's slice)."""

    n_records: int
    fleet: bool
    n_workers: Optional[int]
    n_shards: Optional[int]
    session_span_s: float
    batches: List[BatchTimeline]
    stage_totals: Dict[str, StageStat]
    rank_busy_s: Dict[int, float]
    rank_util: Dict[int, float]
    event_counts: Dict[str, int]
    p50_total_s: float
    p95_total_s: float
    li_mean: float
    li_max: float
    li_agreement: bool
    overlap_total_s: float
    overlap_efficiency: float

    @property
    def n_batches(self) -> int:
        """Batches with a summary event or at least one span."""
        return len(self.batches)


def _merged_intervals(
    intervals: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Union of ``(start, end)`` intervals as a sorted disjoint list."""
    out: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if out and start <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def _overlap_with(
    span: Tuple[float, float], windows: Sequence[Tuple[float, float]]
) -> float:
    """Seconds of ``span = (start, dur)`` inside the window union."""
    start, dur = span
    end = start + dur
    covered = 0.0
    for w_start, w_end in windows:
        covered += max(0.0, min(end, w_end) - max(start, w_start))
    return covered


def analyze_trace(
    records: Sequence[Mapping[str, Any]], *, shard: Optional[int] = None
) -> TraceAnalysis:
    """Reconstruct per-batch timelines from decoded trace records.

    With ``shard`` set, only that shard's bound records are analyzed
    (an inner service of a fleet trace, treated as a standalone
    session); otherwise fleet traces are analyzed at the fleet level
    and flat traces at the service level.
    """
    # Deferred: repro.search pulls in the whole engine stack, which
    # imports repro.obs — importing it at module scope would cycle.
    from repro.search.metrics import load_imbalance


    if shard is not None:
        records = [r for r in records if r.get("shard") == shard]
        fleet = False
    else:
        fleet = any(r.get("fleet") for r in records)

    n_workers: Optional[int] = None
    n_shards: Optional[int] = None
    for r in records:
        if r.get("type") == "event" and r.get("kind") == "session.open":
            if fleet and not r.get("fleet"):
                continue
            n_workers = int(r.get("n_workers", 0)) or None
            if r.get("n_shards") is not None:
                n_shards = int(r["n_shards"])
            break

    stage_names = _FLEET_STAGES if fleet else _SERVICE_STAGES
    # Fleet view: inner-service records carry a shard binding and use
    # the inner session's batch numbering; only unbound (fleet-level)
    # spans and fleet events key the per-batch view.
    def is_fleet_level(r: Mapping[str, Any]) -> bool:
        return not fleet or "shard" not in r

    batch_events: Dict[int, Mapping[str, Any]] = {}
    stage_spans: Dict[int, Dict[str, List[Tuple[float, float]]]] = {}
    worker_spans: Dict[int, Dict[int, List[Tuple[str, float, float]]]] = {}
    event_counts: Dict[str, int] = {}
    t_min, t_max = float("inf"), float("-inf")
    shards_skipped = 0
    for r in records:
        rtype = r.get("type")
        ts = r.get("ts")
        if isinstance(ts, (int, float)):
            t_min = min(t_min, float(ts))
            end = float(ts) + float(r.get("dur", 0.0) or 0.0)
            t_max = max(t_max, end)
        if rtype == "event":
            kind = str(r.get("kind"))
            event_counts[kind] = event_counts.get(kind, 0) + 1
            if kind == "batch" and isinstance(r.get("batch"), int):
                if fleet and not r.get("fleet"):
                    continue
                batch_events[int(r["batch"])] = r
            continue
        if rtype != "span":
            continue
        name = str(r.get("name"))
        bi = r.get("batch")
        if not isinstance(bi, int):
            continue
        if name == "route":
            shards_skipped += int(r.get("skipped", 0) or 0)
        if name in stage_names and is_fleet_level(r):
            stage_spans.setdefault(bi, {}).setdefault(name, []).append(
                (float(r["ts"]), float(r["dur"]))
            )
        elif name.startswith("worker.") and isinstance(r.get("rank"), int):
            if fleet:
                # Flatten (shard, rank) into the fleet rank space —
                # shard s's rank r sits at s * workers_per_shard + r,
                # matching ShardedBatchStats.query_wall_s ordering.
                sid = r.get("shard")
                if not isinstance(sid, int) or not n_shards or not n_workers:
                    continue
                w = n_workers // n_shards
                rank = sid * w + int(r["rank"])
            else:
                rank = int(r["rank"])
            worker_spans.setdefault(bi, {}).setdefault(rank, []).append(
                (name, float(r["ts"]), float(r["dur"]))
            )

    # Fleet batch numbering desyncs from inner numbering as soon as a
    # shard is skipped for some batch (each inner session numbers only
    # the batches it received) — recompute LI only when provably safe.
    worker_mapping_safe = not fleet or shards_skipped == 0

    all_batches = sorted(
        set(batch_events) | set(stage_spans) | set(worker_spans)
    )
    # Round windows (dispatch → collect end, or the worker spans'
    # extent) per batch, for the overlap computation below.
    windows: Dict[int, Tuple[float, float]] = {}
    for bi in all_batches:
        spans = stage_spans.get(bi, {})
        lo, hi = float("inf"), float("-inf")
        for name in ("dispatch", "collect", "route"):
            for ts, dur in spans.get(name, ()):
                lo, hi = min(lo, ts), max(hi, ts + dur)
        for rank_spans in worker_spans.get(bi, {}).values():
            for _, ts, dur in rank_spans:
                lo, hi = min(lo, ts), max(hi, ts + dur)
        if lo < hi:
            windows[bi] = (lo, hi)

    batches: List[BatchTimeline] = []
    li_agreement = True
    for bi in all_batches:
        spans = stage_spans.get(bi, {})
        wspans = worker_spans.get(bi, {}) if worker_mapping_safe else {}
        stages = {
            name: sum(d for _, d in spans.get(name, ()))
            for name in stage_names
            if name in spans
        }
        ev = batch_events.get(bi)
        t0 = min(
            [ts for s in spans.values() for ts, _ in s]
            + [ts for rs in wspans.values() for _, ts, _ in rs],
            default=0.0,
        )
        t1 = max(
            [ts + d for s in spans.values() for ts, d in s]
            + [ts + d for rs in wspans.values() for _, ts, d in rs],
            default=t0,
        )
        # Eq. 1 recomputation over the full rank vector (0.0 for ranks
        # with no span — exactly how a degraded rank enters the live
        # gauge's vector on BatchStats).
        li_rec: Optional[float] = None
        if wspans and n_workers:
            vec = [0.0] * n_workers
            for rank, rank_spans in wspans.items():
                if 0 <= rank < n_workers:
                    vec[rank] = sum(
                        d for n, _, d in rank_spans if n == "worker.query"
                    )
            li_rec = load_imbalance(vec) if any(vec) else 0.0
        li_event = (
            float(ev["li_wall"]) if ev and "li_wall" in ev else None
        )
        if li_rec is not None and li_event is not None:
            if abs(li_rec - li_event) > LI_TOLERANCE:
                li_agreement = False
        # Critical path: the serial chain a batch cannot go faster
        # than — master stages, the slowest rank's worker time, and
        # the residual collect wait the workers did not explain.
        worker_totals = {
            rank: sum(d for _, _, d in rank_spans)
            for rank, rank_spans in wspans.items()
        }
        chain: List[Tuple[str, float]] = []
        for name in stage_names:
            if name in ("collect",):
                continue
            if name in stages:
                chain.append((name, stages[name]))
        if worker_totals:
            slow_rank = max(worker_totals, key=lambda r: worker_totals[r])
            chain.append((f"worker[{slow_rank}]", worker_totals[slow_rank]))
            residual = stages.get("collect", 0.0) - worker_totals[slow_rank]
            if residual > 0:
                chain.append(("collect.wait", residual))
        elif "collect" in stages:
            chain.append(("collect", stages["collect"]))
        critical = max(chain, key=lambda e: e[1])[0] if chain else ""
        # Overlap: this batch's prepare/spill/merge seconds that ran
        # inside any *other* batch's round window — the master work
        # the pipeline hid behind worker compute.
        other_windows = _merged_intervals(
            [w for obi, w in windows.items() if obi != bi]
        )
        overlap = 0.0
        for name in ("prepare", "spill", "merge", "demux"):
            for span in spans.get(name, ()):
                overlap += _overlap_with(span, other_windows)
        batches.append(
            BatchTimeline(
                batch=bi,
                t0=t0,
                t1=t1,
                stages=stages,
                stage_spans=spans,
                worker_spans=wspans,
                li_recomputed=li_rec,
                li_event=li_event,
                total_event_s=(
                    float(ev["total_s"]) if ev and "total_s" in ev else None
                ),
                critical_path=chain,
                critical_stage=critical,
                overlap_s=overlap,
            )
        )

    # Session-level aggregates.
    stage_totals: Dict[str, StageStat] = {}
    for r in records:
        if r.get("type") != "span":
            continue
        name = str(r.get("name"))
        dur = float(r.get("dur", 0.0) or 0.0)
        st = stage_totals.get(name)
        if st is None:
            stage_totals[name] = StageStat(name, 1, dur, dur, dur)
        else:
            st.count += 1
            st.total_s += dur
            st.max_s = max(st.max_s, dur)
    for st in stage_totals.values():
        st.mean_s = st.total_s / st.count

    session_span = max(0.0, t_max - t_min) if t_min < t_max else 0.0
    rank_busy: Dict[int, float] = {}
    for per_rank in worker_spans.values():
        for rank, rank_spans in per_rank.items():
            rank_busy[rank] = rank_busy.get(rank, 0.0) + sum(
                d for _, _, d in rank_spans
            )
    rank_util = {
        rank: (busy / session_span if session_span > 0 else 0.0)
        for rank, busy in sorted(rank_busy.items())
    }

    totals = [
        b.total_event_s
        for b in batches
        if b.total_event_s is not None
    ]
    # Steady-state population matches aggregate_batch_stats: batches
    # after the first (cold-cache) one; a one-batch trace falls back.
    steady = totals[1:] if len(totals) > 1 else totals
    lis = [b.li_event for b in batches if b.li_event is not None]
    overlap_total = sum(b.overlap_s for b in batches)
    master_total = sum(
        sum(b.stages.get(n, 0.0) for n in ("prepare", "spill", "merge", "demux"))
        for b in batches
    )
    return TraceAnalysis(
        n_records=len(records),
        fleet=fleet,
        n_workers=n_workers,
        n_shards=n_shards,
        session_span_s=session_span,
        batches=batches,
        stage_totals=stage_totals,
        rank_busy_s=dict(sorted(rank_busy.items())),
        rank_util=rank_util,
        event_counts=dict(sorted(event_counts.items())),
        p50_total_s=quantile(steady, 0.50) if steady else 0.0,
        p95_total_s=quantile(steady, 0.95) if steady else 0.0,
        li_mean=sum(lis) / len(lis) if lis else 0.0,
        li_max=max(lis) if lis else 0.0,
        li_agreement=li_agreement,
        overlap_total_s=overlap_total,
        overlap_efficiency=(
            overlap_total / master_total if master_total > 0 else 0.0
        ),
    )


def analyze_trace_file(
    path: Union[str, Path], *, shard: Optional[int] = None
) -> TraceAnalysis:
    """Load + analyze a JSONL trace file."""
    return analyze_trace(load_trace(path), shard=shard)


# -- rendering ---------------------------------------------------------


def _ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{1e3 * value:.2f}"


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{100 * value:.1f}%"


def render_analysis(analysis: TraceAnalysis, *, source: str = "trace") -> str:
    """Human-readable report of one :class:`TraceAnalysis`."""
    a = analysis
    lines: List[str] = []
    topo = []
    if a.n_workers:
        topo.append(f"{a.n_workers} workers")
    if a.n_shards:
        topo.append(f"{a.n_shards} shards")
    lines.append(
        f"{source}: {a.n_records} records, {a.n_batches} batches"
        + (", " + ", ".join(topo) if topo else "")
        + f", session span {a.session_span_s:.3f} s"
    )
    if a.batches:
        lines.append(
            f"steady-state batch latency: p50 {_ms(a.p50_total_s)} ms, "
            f"p95 {_ms(a.p95_total_s)} ms (from batch events)"
        )
        agreement = (
            "agrees with the live gauge" if a.li_agreement
            else "DISAGREES with the live gauge"
        )
        lines.append(
            f"load imbalance (Eq. 1): mean {_pct(a.li_mean)}, max "
            f"{_pct(a.li_max)}; recomputed from worker.query spans "
            f"{agreement} (tolerance {LI_TOLERANCE:g})"
        )
        lines.append(
            f"pipeline overlap: {1e3 * a.overlap_total_s:.2f} ms of "
            f"master-stage work hidden behind worker rounds "
            f"({_pct(a.overlap_efficiency)} of master-stage seconds)"
        )
    supervision = {
        k: v
        for k, v in a.event_counts.items()
        if k not in ("session.open", "session.close", "batch")
    }
    if supervision:
        lines.append(
            "supervision events: "
            + ", ".join(f"{k} x{v}" for k, v in supervision.items())
        )
    if a.stage_totals:
        rows = [
            (st.name, st.count, _ms(st.total_s), _ms(st.mean_s), _ms(st.max_s))
            for st in sorted(
                a.stage_totals.values(), key=lambda s: -s.total_s
            )
        ]
        lines.append("")
        lines.append(format_table(
            ["stage", "spans", "total ms", "mean ms", "max ms"], rows,
            title="stage breakdown (all batches)",
        ))
    if a.batches:
        rows = []
        for b in a.batches:
            worker_max = max(b.worker_wall.values(), default=None)
            rows.append((
                b.batch,
                _ms(b.total_event_s),
                _ms(b.stages.get("prepare")) if "prepare" in b.stages else "-",
                _ms(b.stages.get("dispatch", b.stages.get("route"))),
                _ms(b.stages.get("collect")) if "collect" in b.stages else "-",
                _ms(b.stages.get("merge", b.stages.get("demux"))),
                _ms(worker_max),
                _pct(b.li_event),
                _pct(b.li_recomputed),
                _ms(b.overlap_s),
                b.critical_stage or "-",
            ))
        lines.append(format_table(
            ["batch", "total ms", "prep", "disp", "collect", "merge",
             "worker max", "LI", "LI rec", "overlap", "critical"],
            rows, title="per-batch timelines",
        ))
    if a.rank_busy_s:
        rows = [
            (rank, _ms(busy), _pct(a.rank_util.get(rank)))
            for rank, busy in a.rank_busy_s.items()
        ]
        lines.append(format_table(
            ["rank", "busy ms", "utilization"], rows,
            title="per-rank utilization (worker spans / session span)",
        ))
    return "\n".join(lines)


def render_gantt(
    analysis: TraceAnalysis,
    *,
    batch: Optional[int] = None,
    width: int = 64,
) -> str:
    """ASCII per-batch timelines (one chart per batch).

    With ``batch`` set, renders only that batch.  Rows are the master
    stages in execution order plus one row per rank's worker spans;
    the time axis is seconds relative to the batch's first span.
    """
    selected = [
        b for b in analysis.batches if batch is None or b.batch == batch
    ]
    if not selected:
        raise ConfigurationError(
            f"no batch {batch} in this trace"
            if batch is not None
            else "trace contains no batch spans to chart"
        )
    charts: List[str] = []
    stage_order = _FLEET_STAGES if analysis.fleet else _SERVICE_STAGES
    for b in selected:
        rows: List[Tuple[str, List[Tuple[float, float]]]] = []
        for name in stage_order:
            if name in b.stage_spans:
                rows.append((
                    name,
                    [(ts - b.t0, dur) for ts, dur in b.stage_spans[name]],
                ))
        for rank in sorted(b.worker_spans):
            rows.append((
                f"rank {rank}",
                [
                    (ts - b.t0, dur)
                    for _, ts, dur in b.worker_spans[rank]
                ],
            ))
        title = f"batch {b.batch} — {1e3 * (b.t1 - b.t0):.2f} ms wall"
        if b.li_event is not None:
            title += f", LI {_pct(b.li_event)}"
        charts.append(gantt_chart(rows, width=width, title=title))
    return "\n".join(charts)


# -- regression attribution --------------------------------------------


@dataclass(slots=True)
class StageDelta:
    """Mean per-batch seconds of one stage in trace A vs trace B."""

    name: str
    a_mean_s: float
    b_mean_s: float

    @property
    def delta_s(self) -> float:
        """B minus A (positive = B is slower here)."""
        return self.b_mean_s - self.a_mean_s


@dataclass(slots=True)
class TraceDiff:
    """Latency attribution between two traces of comparable sessions."""

    a: TraceAnalysis
    b: TraceAnalysis
    p50_delta_s: float
    li_delta: float
    stage_deltas: List[StageDelta] = field(default_factory=list)
    rank_deltas: List[StageDelta] = field(default_factory=list)


def _steady_batches(analysis: TraceAnalysis) -> List[BatchTimeline]:
    batches = analysis.batches
    return batches[1:] if len(batches) > 1 else list(batches)


def _stage_means(analysis: TraceAnalysis) -> Dict[str, float]:
    """Mean per-batch seconds per stage over the steady population,
    plus the ``worker`` pseudo-stage (slowest rank per batch)."""
    batches = _steady_batches(analysis)
    if not batches:
        return {}
    sums: Dict[str, float] = {}
    for b in batches:
        for name, secs in b.stages.items():
            sums[name] = sums.get(name, 0.0) + secs
        worker_max = max(b.worker_wall.values(), default=None)
        if worker_max is not None:
            sums["worker"] = sums.get("worker", 0.0) + worker_max
    return {name: total / len(batches) for name, total in sums.items()}


def _rank_means(analysis: TraceAnalysis) -> Dict[int, float]:
    batches = _steady_batches(analysis)
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for b in batches:
        for rank, wall in b.worker_wall.items():
            sums[rank] = sums.get(rank, 0.0) + wall
            counts[rank] = counts.get(rank, 0) + 1
    return {rank: sums[rank] / counts[rank] for rank in sums}


def diff_traces(a: TraceAnalysis, b: TraceAnalysis) -> TraceDiff:
    """Attribute the latency difference B − A to stages and ranks.

    Stage deltas compare mean per-batch stage seconds over each
    trace's steady batches (sorted by absolute delta — the top entry
    is the regression's primary suspect); rank deltas do the same for
    each rank's ``worker.query`` wall.
    """
    a_stages, b_stages = _stage_means(a), _stage_means(b)
    stage_deltas = [
        StageDelta(name, a_stages.get(name, 0.0), b_stages.get(name, 0.0))
        for name in sorted(set(a_stages) | set(b_stages))
    ]
    stage_deltas.sort(key=lambda d: -abs(d.delta_s))
    a_ranks, b_ranks = _rank_means(a), _rank_means(b)
    rank_deltas = [
        StageDelta(f"rank {r}", a_ranks.get(r, 0.0), b_ranks.get(r, 0.0))
        for r in sorted(set(a_ranks) | set(b_ranks))
    ]
    return TraceDiff(
        a=a,
        b=b,
        p50_delta_s=b.p50_total_s - a.p50_total_s,
        li_delta=b.li_max - a.li_max,
        stage_deltas=stage_deltas,
        rank_deltas=rank_deltas,
    )


def render_diff(diff: TraceDiff, *, a_name: str = "A", b_name: str = "B") -> str:
    """Human-readable attribution report for one :class:`TraceDiff`."""
    lines: List[str] = []
    a, b = diff.a, diff.b
    direction = "slower" if diff.p50_delta_s > 0 else "faster"
    pct = (
        abs(diff.p50_delta_s) / a.p50_total_s * 100
        if a.p50_total_s > 0
        else 0.0
    )
    lines.append(
        f"steady p50: {a_name} {_ms(a.p50_total_s)} ms -> {b_name} "
        f"{_ms(b.p50_total_s)} ms ({b_name} is {_ms(abs(diff.p50_delta_s))} "
        f"ms / {pct:.1f}% {direction})"
    )
    lines.append(
        f"max LI: {a_name} {_pct(a.li_max)} -> {b_name} {_pct(b.li_max)}"
    )
    if diff.stage_deltas:
        top = diff.stage_deltas[0]
        lines.append(
            f"top contributor: {top.name} "
            f"({'+' if top.delta_s >= 0 else ''}{_ms(top.delta_s)} ms/batch)"
        )
        rows = [
            (
                d.name,
                _ms(d.a_mean_s),
                _ms(d.b_mean_s),
                f"{'+' if d.delta_s >= 0 else ''}{_ms(d.delta_s)}",
                (
                    f"{'+' if d.delta_s >= 0 else ''}"
                    f"{d.delta_s / d.a_mean_s * 100:.1f}%"
                    if d.a_mean_s > 0
                    else "-"
                ),
            )
            for d in diff.stage_deltas
        ]
        lines.append("")
        lines.append(format_table(
            ["stage", f"{a_name} ms", f"{b_name} ms", "delta ms", "delta %"],
            rows, title="per-stage attribution (mean per steady batch)",
        ))
    if diff.rank_deltas:
        rows = [
            (
                d.name,
                _ms(d.a_mean_s),
                _ms(d.b_mean_s),
                f"{'+' if d.delta_s >= 0 else ''}{_ms(d.delta_s)}",
            )
            for d in diff.rank_deltas
        ]
        lines.append(format_table(
            ["rank", f"{a_name} ms", f"{b_name} ms", "delta ms"],
            rows, title="per-rank query wall (mean per steady batch)",
        ))
    return "\n".join(lines)
