"""Synthetic LC-MS/MS run generation (PRIDE PXD009072 stand-in).

The paper benchmarks against a real platelet-proteome run.  Offline we
generate query spectra from the (modified) database peptides with the
statistical properties that drive the paper's load-balance phenomena:

* **Skewed protein abundance.**  Real runs sample peptides from a
  heavy-tailed protein abundance distribution (a few proteins dominate
  the ion current).  We draw source proteins Zipf-like, so queries hit
  *hot* similarity neighbourhoods — contiguous runs of the
  grouped/sorted peptide axis.  This is what makes contiguous Chunk
  partitions imbalanced while fine-grained Cyclic/Random stay balanced.
* **Instrument imperfections.**  Fragment m/z error (Gaussian, within
  the ΔF tolerance), random peak dropout, and uniform chemical-noise
  peaks keep shared-peak filtration non-trivial.
* **Dark matter.**  A fraction of spectra carry an *unknown* mass
  shift (PTM absent from the index), reproducing the open-search
  motivation (Section II-A.1): they can only match via fragment ions,
  never via precursor mass.

All draws are deterministic under the config seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.chem.fragments import FragmentationSettings, theoretical_spectrum
from repro.chem.peptide import Peptide
from repro.constants import PROTON
from repro.errors import ConfigurationError
from repro.spectra.model import Spectrum
from repro.util.rng import rng_from

__all__ = ["SyntheticRunConfig", "generate_run"]


@dataclass(frozen=True, slots=True)
class SyntheticRunConfig:
    """Parameters of the synthetic LC-MS/MS run.

    Attributes
    ----------
    n_spectra:
        Number of query spectra to generate.
    abundance_zipf:
        Zipf exponent of the protein abundance distribution (1.0–1.6
        is typical for shotgun runs; higher = more skew = hotter
        neighbourhoods).
    dropout:
        Per-fragment probability of *not* being observed.
    noise_peaks:
        Number of uniform random noise peaks added per spectrum.
    mz_sigma:
        Gaussian fragment m/z error (Da); should stay well inside the
        fragment tolerance ΔF = 0.05 for matches to survive.
    dark_matter_fraction:
        Fraction of spectra given an unknown precursor mass shift.
    dark_matter_delta:
        Upper bound of the unknown shift (uniform in ±this value).
    charge_probs:
        Probabilities of precursor charges 1..len(charge_probs).
    seed:
        Master seed for the run.
    """

    n_spectra: int = 1000
    abundance_zipf: float = 1.3
    dropout: float = 0.15
    noise_peaks: int = 20
    mz_sigma: float = 0.008
    dark_matter_fraction: float = 0.15
    dark_matter_delta: float = 250.0
    charge_probs: tuple[float, ...] = (0.1, 0.6, 0.3)
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_spectra <= 0:
            raise ConfigurationError(f"n_spectra must be > 0, got {self.n_spectra}")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigurationError(f"dropout must be in [0,1), got {self.dropout}")
        if self.noise_peaks < 0:
            raise ConfigurationError(f"noise_peaks must be >= 0, got {self.noise_peaks}")
        if self.mz_sigma < 0:
            raise ConfigurationError(f"mz_sigma must be >= 0, got {self.mz_sigma}")
        if not 0.0 <= self.dark_matter_fraction <= 1.0:
            raise ConfigurationError(
                f"dark_matter_fraction must be in [0,1], got {self.dark_matter_fraction}"
            )
        if abs(sum(self.charge_probs) - 1.0) > 1e-9 or any(
            p < 0 for p in self.charge_probs
        ):
            raise ConfigurationError(
                f"charge_probs must be a probability vector, got {self.charge_probs}"
            )
        if self.abundance_zipf < 0:
            raise ConfigurationError(
                f"abundance_zipf must be >= 0, got {self.abundance_zipf}"
            )


def _protein_weights(
    peptides: Sequence[Peptide], zipf_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-peptide sampling weights from a Zipf protein abundance model.

    Proteins are ranked in a random (seeded) order; protein at rank k
    receives weight 1/k**s.  Peptides inherit their parent protein's
    weight; orphan peptides (protein_id < 0) share one pseudo-protein.
    """
    protein_ids = np.array([max(p.protein_id, -1) for p in peptides], dtype=np.int64)
    unique = np.unique(protein_ids)
    ranks = rng.permutation(unique.size) + 1
    weight_of = {int(pid): 1.0 / ranks[i] ** zipf_s for i, pid in enumerate(unique)}
    weights = np.array([weight_of[int(pid)] for pid in protein_ids], dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("degenerate abundance weights")
    return weights / total


def generate_run(
    peptides: Sequence[Peptide],
    config: SyntheticRunConfig = SyntheticRunConfig(),
    *,
    fragmentation: FragmentationSettings = FragmentationSettings(),
) -> List[Spectrum]:
    """Generate a synthetic MS/MS run querying ``peptides``.

    ``peptides`` is the indexed peptide list (base + modified
    variants); each spectrum records the index of its source peptide in
    ``true_peptide`` so tests can verify search correctness.

    Returns spectra with ascending ``scan_id`` starting at 1.
    """
    if not peptides:
        raise ConfigurationError("cannot generate spectra from an empty peptide list")
    rng = rng_from(config.seed, "run")
    weights = _protein_weights(peptides, config.abundance_zipf, rng)
    source_idx = rng.choice(len(peptides), size=config.n_spectra, p=weights)
    charges = rng.choice(
        np.arange(1, len(config.charge_probs) + 1),
        size=config.n_spectra,
        p=np.asarray(config.charge_probs),
    )
    dark = rng.random(config.n_spectra) < config.dark_matter_fraction

    spectra: List[Spectrum] = []
    for scan, (pep_idx, charge) in enumerate(zip(source_idx, charges), start=1):
        peptide = peptides[pep_idx]
        mzs, intens = theoretical_spectrum(peptide, fragmentation)
        if mzs.size:
            keep = rng.random(mzs.size) >= config.dropout
            if not keep.any():  # always observe at least one real fragment
                keep[int(rng.integers(mzs.size))] = True
            mzs = mzs[keep] + rng.normal(0.0, config.mz_sigma, size=int(keep.sum()))
            intens = intens[keep] * rng.uniform(0.5, 1.0, size=int(keep.sum()))
        if config.noise_peaks:
            lo = 100.0
            hi = max(float(mzs.max()) * 1.1, 500.0) if mzs.size else 2000.0
            noise_mz = rng.uniform(lo, hi, size=config.noise_peaks)
            noise_in = rng.uniform(0.01, 0.25, size=config.noise_peaks)
            mzs = np.concatenate([mzs, noise_mz])
            intens = np.concatenate([intens, noise_in])
        mzs = np.abs(mzs)  # guard against a noise/error draw crossing zero
        neutral = peptide.mass
        if dark[scan - 1]:
            neutral += float(rng.uniform(-1.0, 1.0) * config.dark_matter_delta)
            neutral = max(neutral, 200.0)
        precursor_mz = (neutral + charge * PROTON) / charge
        spectra.append(
            Spectrum(
                scan_id=scan,
                precursor_mz=precursor_mz,
                charge=int(charge),
                mzs=mzs,
                intensities=intens,
                true_peptide=int(pep_idx),
            )
        )
    return spectra
