"""The :class:`Spectrum` value type.

A tandem MS/MS spectrum: a precursor (m/z and charge) plus peak arrays.
Instances are lightweight wrappers around numpy arrays; the arrays are
never copied on construction, only validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.constants import PROTON
from repro.errors import InvalidSpectrumError

__all__ = ["Spectrum"]


@dataclass(slots=True)
class Spectrum:
    """One experimental MS/MS spectrum.

    Attributes
    ----------
    scan_id:
        Scan number within its source file (unique per run).
    precursor_mz:
        Measured precursor mass-to-charge ratio.
    charge:
        Assumed precursor charge state (>= 1).
    mzs:
        Fragment peak m/z values, float64, ascending.
    intensities:
        Fragment peak intensities, float64, same length as ``mzs``.
    true_peptide:
        Ground-truth generating peptide index for synthetic data
        (``None`` for real/unknown spectra).  Used only by validation
        tests, never by the search path.
    """

    scan_id: int
    precursor_mz: float
    charge: int
    mzs: np.ndarray
    intensities: np.ndarray
    true_peptide: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        self.mzs = np.asarray(self.mzs, dtype=np.float64)
        self.intensities = np.asarray(self.intensities, dtype=np.float64)
        if self.mzs.ndim != 1 or self.intensities.ndim != 1:
            raise InvalidSpectrumError("peak arrays must be one-dimensional")
        if self.mzs.shape != self.intensities.shape:
            raise InvalidSpectrumError(
                f"mzs ({self.mzs.size}) and intensities ({self.intensities.size}) differ"
            )
        if self.charge < 1:
            raise InvalidSpectrumError(f"charge must be >= 1, got {self.charge}")
        if self.precursor_mz <= 0:
            raise InvalidSpectrumError(
                f"precursor m/z must be positive, got {self.precursor_mz}"
            )
        if self.mzs.size and np.any(self.mzs <= 0):
            raise InvalidSpectrumError("fragment m/z values must be positive")
        if self.mzs.size and np.any(np.diff(self.mzs) < 0):
            # Sort once here so every consumer can assume ascending order.
            order = np.argsort(self.mzs, kind="stable")
            self.mzs = self.mzs[order]
            self.intensities = self.intensities[order]
        if self.mzs.size and np.any(self.intensities < 0):
            raise InvalidSpectrumError("intensities must be non-negative")

    @property
    def n_peaks(self) -> int:
        """Number of fragment peaks."""
        return int(self.mzs.size)

    @property
    def neutral_mass(self) -> float:
        """Neutral precursor mass implied by ``precursor_mz`` and ``charge``."""
        return self.precursor_mz * self.charge - self.charge * PROTON

    def copy(self) -> "Spectrum":
        """Deep copy (peak arrays are copied)."""
        return Spectrum(
            scan_id=self.scan_id,
            precursor_mz=self.precursor_mz,
            charge=self.charge,
            mzs=self.mzs.copy(),
            intensities=self.intensities.copy(),
            true_peptide=self.true_peptide,
        )
