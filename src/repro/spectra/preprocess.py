"""Query-spectrum preprocessing (SLM-Transform fragment extraction).

The paper configures SLM-Transform to "extract the 100 most intense
peaks from each query spectrum" (Section V-A.3).  Preprocessing is part
of the *parallel* work each rank performs on every query, so the
distributed engine charges its cost to the rank clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import DEFAULT_TOP_PEAKS
from repro.errors import ConfigurationError
from repro.spectra.model import Spectrum

__all__ = [
    "PreprocessConfig",
    "preprocess_spectrum",
    "preprocess_batch",
    "spectra_peak_bytes",
]


@dataclass(frozen=True, slots=True)
class PreprocessConfig:
    """Peak-picking parameters.

    Attributes
    ----------
    top_peaks:
        Keep at most this many most-intense peaks (paper: 100).
    min_mz:
        Discard peaks below this m/z (instrument low-mass cutoff).
    normalize:
        Rescale retained intensities to max 1.0.
    """

    top_peaks: int = DEFAULT_TOP_PEAKS
    min_mz: float = 0.0
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.top_peaks < 1:
            raise ConfigurationError(f"top_peaks must be >= 1, got {self.top_peaks}")
        if self.min_mz < 0:
            raise ConfigurationError(f"min_mz must be >= 0, got {self.min_mz}")


def preprocess_spectrum(
    spectrum: Spectrum, config: PreprocessConfig = PreprocessConfig()
) -> Spectrum:
    """Return a new spectrum with only the top-N most intense peaks.

    Peaks below ``min_mz`` are dropped first; the remaining peaks are
    ranked by intensity (ties broken by m/z for determinism) and the
    strongest ``top_peaks`` survive, re-sorted by m/z.
    """
    mzs, intens = spectrum.mzs, spectrum.intensities
    if config.min_mz > 0 and mzs.size:
        keep = mzs >= config.min_mz
        mzs, intens = mzs[keep], intens[keep]
    if mzs.size > config.top_peaks:
        # argsort on (-intensity, mz): lexsort keys are last-key-major.
        order = np.lexsort((mzs, -intens))[: config.top_peaks]
        mzs, intens = mzs[order], intens[order]
        order = np.argsort(mzs, kind="stable")
        mzs, intens = mzs[order], intens[order]
    else:
        mzs, intens = mzs.copy(), intens.copy()
    if config.normalize and intens.size and intens.max() > 0:
        intens = intens / intens.max()
    return Spectrum(
        scan_id=spectrum.scan_id,
        precursor_mz=spectrum.precursor_mz,
        charge=spectrum.charge,
        mzs=mzs,
        intensities=intens,
        true_peptide=spectrum.true_peptide,
    )


def preprocess_batch(
    spectra: Sequence[Spectrum], config: PreprocessConfig = PreprocessConfig()
) -> List[Spectrum]:
    """Preprocess every spectrum in ``spectra``."""
    return [preprocess_spectrum(s, config) for s in spectra]


def spectra_peak_bytes(spectra: Sequence[Spectrum]) -> int:
    """Total peak-array bytes (m/z + intensity) across ``spectra``.

    The scatter-accounting baseline: what pickling a batch's peak
    arrays to one worker would cost, against which the service's
    O(manifest) command payloads are compared.
    """
    return int(sum(s.mzs.nbytes + s.intensities.nbytes for s in spectra))
