"""Query-spectrum preprocessing (SLM-Transform fragment extraction).

The paper configures SLM-Transform to "extract the 100 most intense
peaks from each query spectrum" (Section V-A.3).  Preprocessing is part
of the *parallel* work each rank performs on every query, so the
distributed engine charges its cost to the rank clocks.

:func:`preprocess_batch` runs a **batched selection kernel**: spectra
needing top-N selection are packed into one padded matrix and the
selection runs as a single ``np.argpartition`` over the batch (O(peaks)
instead of a per-spectrum O(n log n) double sort), with intensity ties
at the cut resolved by m/z through a second masked partition.  Results
are bit-identical to per-spectrum :func:`preprocess_spectrum` calls —
the selected peak *sets* and their output order match exactly
(test-enforced) — so the serial, parallel, and service engines all see
the same query peaks regardless of which path preprocessed them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import DEFAULT_TOP_PEAKS
from repro.errors import ConfigurationError
from repro.spectra.model import Spectrum

__all__ = [
    "PreprocessConfig",
    "preprocess_spectrum",
    "preprocess_batch",
    "spectra_peak_bytes",
]

#: Element budget of one padded selection matrix (rows × max peaks).
#: Rows are grouped by ascending width and chunked under this bound,
#: so a stray million-peak spectrum cannot blow the padding up to
#: rows × 1e6 for the whole batch.  8M float64 elements ≈ 64 MB per
#: matrix, two matrices live at once.
_SELECT_BUDGET = 1 << 23


@dataclass(frozen=True, slots=True)
class PreprocessConfig:
    """Peak-picking parameters.

    Attributes
    ----------
    top_peaks:
        Keep at most this many most-intense peaks (paper: 100).
    min_mz:
        Discard peaks below this m/z (instrument low-mass cutoff).
    normalize:
        Rescale retained intensities to max 1.0.
    """

    top_peaks: int = DEFAULT_TOP_PEAKS
    min_mz: float = 0.0
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.top_peaks < 1:
            raise ConfigurationError(f"top_peaks must be >= 1, got {self.top_peaks}")
        if self.min_mz < 0:
            raise ConfigurationError(f"min_mz must be >= 0, got {self.min_mz}")


def preprocess_spectrum(
    spectrum: Spectrum, config: PreprocessConfig = PreprocessConfig()
) -> Spectrum:
    """Return a new spectrum with only the top-N most intense peaks.

    Peaks below ``min_mz`` are dropped first; the remaining peaks are
    ranked by intensity (ties broken by m/z for determinism) and the
    strongest ``top_peaks`` survive, re-sorted by m/z.
    """
    mzs, intens = spectrum.mzs, spectrum.intensities
    if config.min_mz > 0 and mzs.size:
        keep = mzs >= config.min_mz
        mzs, intens = mzs[keep], intens[keep]
    if mzs.size > config.top_peaks:
        # argsort on (-intensity, mz): lexsort keys are last-key-major.
        order = np.lexsort((mzs, -intens))[: config.top_peaks]
        mzs, intens = mzs[order], intens[order]
        order = np.argsort(mzs, kind="stable")
        mzs, intens = mzs[order], intens[order]
    else:
        mzs, intens = mzs.copy(), intens.copy()
    if config.normalize and intens.size and intens.max() > 0:
        intens = intens / intens.max()
    return Spectrum(
        scan_id=spectrum.scan_id,
        precursor_mz=spectrum.precursor_mz,
        charge=spectrum.charge,
        mzs=mzs,
        intensities=intens,
        true_peptide=spectrum.true_peptide,
    )


def _select_top_peaks(
    mz_rows: List[np.ndarray], int_rows: List[np.ndarray], k: int
) -> List[np.ndarray]:
    """Batched top-``k`` selection over rows that all exceed ``k`` peaks.

    Packs the rows into one padded matrix (m/z padded with ``+inf``,
    intensity with ``-inf`` so padding can never be selected) and picks
    each row's ``k`` most intense peaks with a single axis-1
    ``np.argpartition``.  Intensity ties straddling the cut are
    resolved exactly as the per-spectrum path's ``lexsort((mz,
    -intensity))`` does — smaller m/z wins — via a second partition
    over the tie pool's m/z values; peaks tied on *both* intensity and
    m/z at the cut are value-identical, so taking first occurrences
    preserves bit-identity.  Both tie stages are skipped outright when
    no row has a contested cut (the common case for real intensity
    data).

    Each row's m/z values must be ascending (every
    :class:`~repro.spectra.model.Spectrum` guarantees this), which is
    what lets the kernel read the final (m/z asc, intensity desc,
    position asc) output order straight off the selection mask in
    column order — only rows with duplicate selected m/z values (rare)
    pay a small per-row re-sort.

    Returns per-row index arrays into the original rows, ordered as the
    per-spectrum path orders its output.
    """
    m = len(mz_rows)
    widths = np.fromiter((a.size for a in mz_rows), dtype=np.int64, count=m)
    w = int(widths.max())
    M = np.full((m, w), np.inf)
    I = np.full((m, w), -np.inf)
    for i, (mz, it) in enumerate(zip(mz_rows, int_rows)):
        M[i, : mz.size] = mz
        I[i, : it.size] = it

    # Indices of each row's k largest intensities (boundary ties
    # arbitrary — only the threshold value is read off them).
    part = np.argpartition(I, w - k, axis=1)[:, w - k :]
    thresh = np.take_along_axis(I, part, axis=1).min(axis=1)
    above = I > thresh[:, None]
    # The threshold element itself always ties, so 1 <= need <= k.
    need = k - above.sum(axis=1)
    tie = I == thresh[:, None]

    if np.array_equal(tie.sum(axis=1), need):
        # No contested cut anywhere: every tie is selected.
        keep = above | tie
    else:
        mz_tie = np.where(tie, M, np.inf)
        # need-th smallest tie m/z per row; np.partition with the set
        # of needed positions places each in sorted position rowwise.
        kths = np.unique(need - 1)
        part_mz = np.partition(mz_tie, kths, axis=1)
        cutoff = part_mz[np.arange(m), need - 1]
        below_cut = tie & (M < cutoff[:, None])
        at_cut = tie & (M == cutoff[:, None])
        need_at = need - below_cut.sum(axis=1)
        # First `need_at` of the (value-identical) peaks at the cutoff.
        at_rank = np.cumsum(at_cut, axis=1)
        keep = above | below_cut | (at_cut & (at_rank <= need_at[:, None]))

    # keep has exactly k true cells per row; nonzero's row-major order
    # yields them per row in column order = ascending m/z already.
    cols_kept = np.nonzero(keep)[1]
    mz_kept = M[keep]
    # Rows holding duplicate m/z values among their selected peaks need
    # the per-spectrum path's (m/z asc, intensity desc, position asc)
    # tie order restored; everyone else is already in final order.
    dup = mz_kept[1:] == mz_kept[:-1]
    dup[k - 1 :: k] = False  # row boundaries are not ties
    orders = [cols_kept[i * k : (i + 1) * k] for i in range(m)]
    if dup.any():
        int_kept = I[keep]
        for i in set((np.flatnonzero(dup) // k).tolist()):
            seg = slice(i * k, (i + 1) * k)
            fix = np.lexsort((-int_kept[seg], mz_kept[seg]))
            orders[i] = orders[i][fix]
    return orders


def _normalized(intens: np.ndarray, normalize: bool) -> np.ndarray:
    if normalize and intens.size and intens.max() > 0:
        return intens / intens.max()
    return intens


def preprocess_batch(
    spectra: Sequence[Spectrum], config: PreprocessConfig = PreprocessConfig()
) -> List[Spectrum]:
    """Preprocess every spectrum in ``spectra`` (batched kernel).

    Bit-identical to mapping :func:`preprocess_spectrum` over the
    batch — same peak sets, same order, same normalized values — but
    the top-N selection of every spectrum that needs one runs in a
    handful of whole-batch ``np.argpartition`` calls instead of two
    sorts per spectrum.
    """
    spectra = list(spectra)
    k = config.top_peaks

    # Per-spectrum post-min_mz views, and which spectra need selection.
    kept_mzs: List[np.ndarray] = []
    kept_int: List[np.ndarray] = []
    select: List[int] = []
    for i, s in enumerate(spectra):
        mzs, intens = s.mzs, s.intensities
        if config.min_mz > 0 and mzs.size:
            mask = mzs >= config.min_mz
            mzs, intens = mzs[mask], intens[mask]
        kept_mzs.append(mzs)
        kept_int.append(intens)
        if mzs.size > k:
            select.append(i)

    if select:
        # Group by ascending width and chunk under the padding budget,
        # so one huge spectrum cannot inflate every row's padding.
        select.sort(key=lambda i: kept_mzs[i].size)
        pos = 0
        while pos < len(select):
            end = pos + 1
            while end < len(select):
                rows = end - pos + 1
                if rows * kept_mzs[select[end]].size > _SELECT_BUDGET:
                    break
                end += 1
            chunk = select[pos:end]
            orders = _select_top_peaks(
                [kept_mzs[i] for i in chunk],
                [kept_int[i] for i in chunk],
                k,
            )
            for i, order in zip(chunk, orders):
                kept_mzs[i] = kept_mzs[i][order]
                kept_int[i] = kept_int[i][order]
            pos = end

    out: List[Spectrum] = []
    for s, mzs, intens in zip(spectra, kept_mzs, kept_int):
        # min_mz masking and top-N gathers already produced fresh
        # arrays; only the pass-through case still aliases the input.
        if mzs is s.mzs:
            mzs = mzs.copy()
        if intens is s.intensities:
            intens = intens.copy()
        out.append(
            Spectrum(
                scan_id=s.scan_id,
                precursor_mz=s.precursor_mz,
                charge=s.charge,
                mzs=mzs,
                intensities=_normalized(intens, config.normalize),
                true_peptide=s.true_peptide,
            )
        )
    return out


def spectra_peak_bytes(spectra: Sequence[Spectrum]) -> int:
    """Total peak-array bytes (m/z + intensity) across ``spectra``.

    The scatter-accounting baseline: what pickling a batch's peak
    arrays to one worker would cost, against which the service's
    O(manifest) command payloads are compared.
    """
    return int(sum(s.mzs.nbytes + s.intensities.nbytes for s in spectra))
