"""Experimental MS/MS spectra substrate.

Stands in for the paper's query-side pipeline (Section V-A.2):

* PRIDE dataset PXD009072 → :mod:`~repro.spectra.synthetic` (synthetic
  LC-MS/MS run generator),
* ``msconvert`` MS2 output → :mod:`~repro.spectra.ms2` (reader/writer),
* SLM-Transform's fragment extraction → :mod:`~repro.spectra.preprocess`
  (top-N peak picking and normalization).
"""

from repro.spectra.model import Spectrum
from repro.spectra.ms2 import read_ms2, write_ms2
from repro.spectra.mzml_lite import read_mzml_lite, write_mzml_lite
from repro.spectra.preprocess import PreprocessConfig, preprocess_spectrum, preprocess_batch
from repro.spectra.synthetic import SyntheticRunConfig, generate_run

__all__ = [
    "Spectrum",
    "read_ms2",
    "write_ms2",
    "read_mzml_lite",
    "write_mzml_lite",
    "PreprocessConfig",
    "preprocess_spectrum",
    "preprocess_batch",
    "SyntheticRunConfig",
    "generate_run",
]
