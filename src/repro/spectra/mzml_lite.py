"""Minimal mzML-style XML spectra format ("mzML-lite").

The paper converts raw data "to mzML or MS2 format using msconvert"
(Section III-E); :mod:`repro.spectra.ms2` covers MS2, and this module
covers the mzML side with a faithful-in-spirit subset: an XML document
whose ``<spectrum>`` elements carry precursor metadata as attributes
and peak data as base64-encoded little-endian float64 arrays — the
same encoding real mzML uses — so files are round-trippable and
binary-exact.

This is intentionally *not* a full PSI mzML implementation (no CV
params, no indexed wrapper); DESIGN.md lists it as a substitution.
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.errors import FormatError
from repro.spectra.model import Spectrum

__all__ = ["write_mzml_lite", "read_mzml_lite"]

_ROOT_TAG = "mzMLLite"
_VERSION = "1.0"


def _encode(array: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(array, dtype="<f8").tobytes()
    ).decode("ascii")


def _decode(text: str) -> np.ndarray:
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception:
        raise FormatError("invalid base64 peak data") from None
    if len(raw) % 8:
        raise FormatError("peak data length is not a multiple of 8 bytes")
    return np.frombuffer(raw, dtype="<f8").astype(np.float64)


def write_mzml_lite(path: Union[str, Path], spectra: Sequence[Spectrum]) -> int:
    """Write ``spectra`` to ``path``; returns the number written."""
    root = ET.Element(_ROOT_TAG, version=_VERSION, count=str(len(spectra)))
    run = ET.SubElement(root, "run")
    for spec in spectra:
        attrs = {
            "scan": str(spec.scan_id),
            "precursorMz": f"{spec.precursor_mz:.8f}",
            "charge": str(spec.charge),
        }
        if spec.true_peptide is not None:
            attrs["truePeptide"] = str(spec.true_peptide)
        elem = ET.SubElement(run, "spectrum", attrs)
        ET.SubElement(elem, "mzArray").text = _encode(spec.mzs)
        ET.SubElement(elem, "intensityArray").text = _encode(spec.intensities)
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(path, encoding="unicode", xml_declaration=True)
    return len(spectra)


def read_mzml_lite(path: Union[str, Path]) -> List[Spectrum]:
    """Read spectra written by :func:`write_mzml_lite`."""
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise FormatError(f"not well-formed XML: {exc}") from None
    root = tree.getroot()
    if root.tag != _ROOT_TAG:
        raise FormatError(f"unexpected root element {root.tag!r}")
    spectra: List[Spectrum] = []
    for elem in root.iter("spectrum"):
        try:
            scan = int(elem.attrib["scan"])
            precursor_mz = float(elem.attrib["precursorMz"])
            charge = int(elem.attrib["charge"])
        except (KeyError, ValueError):
            raise FormatError(
                f"spectrum element missing/invalid attributes: {elem.attrib!r}"
            ) from None
        true_peptide = (
            int(elem.attrib["truePeptide"]) if "truePeptide" in elem.attrib else None
        )
        mz_elem = elem.find("mzArray")
        in_elem = elem.find("intensityArray")
        if mz_elem is None or in_elem is None:
            raise FormatError(f"spectrum {scan}: missing peak arrays")
        mzs = _decode(mz_elem.text or "")
        intensities = _decode(in_elem.text or "")
        if mzs.size != intensities.size:
            raise FormatError(f"spectrum {scan}: peak array length mismatch")
        spectra.append(
            Spectrum(
                scan_id=scan,
                precursor_mz=precursor_mz,
                charge=charge,
                mzs=mzs,
                intensities=intensities,
                true_peptide=true_peptide,
            )
        )
    return spectra
