"""MS2 file format reader/writer.

The MS2 format (McDonald et al., 2004) is the text format the paper
converts its PRIDE dataset into with ``msconvert`` before searching.
Layout::

    H   <header lines, ignored semantically>
    S   <scan#> <scan#> <precursor m/z>
    Z   <charge> <neutral (M+H)+ mass>
    I   <key> <value>        (optional per-scan info)
    <mz> <intensity>         (peak lines)

We write one ``Z`` line per spectrum (the common single-charge-assigned
case) and round-trip the ``I  TruePeptide`` annotation used by the
synthetic generator so ground truth survives serialization.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Sequence, TextIO, Union

import numpy as np

from repro.constants import PROTON
from repro.errors import FormatError
from repro.spectra.model import Spectrum

__all__ = ["read_ms2", "write_ms2"]

PathOrHandle = Union[str, Path, TextIO]


def _open(source: PathOrHandle, mode: str) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, mode, encoding="ascii"), True
    return source, False


def write_ms2(target: PathOrHandle, spectra: Sequence[Spectrum]) -> int:
    """Write ``spectra`` to ``target`` in MS2 format; returns the count."""
    handle, owned = _open(target, "w")
    try:
        handle.write("H\tCreationTool\trepro.spectra.ms2\n")
        handle.write("H\tExtractor\tLBE reproduction synthetic pipeline\n")
        for spec in spectra:
            handle.write(f"S\t{spec.scan_id}\t{spec.scan_id}\t{spec.precursor_mz:.5f}\n")
            mh = spec.neutral_mass + PROTON  # MS2 convention: singly-protonated mass
            handle.write(f"Z\t{spec.charge}\t{mh:.5f}\n")
            if spec.true_peptide is not None:
                handle.write(f"I\tTruePeptide\t{spec.true_peptide}\n")
            for mz, inten in zip(spec.mzs, spec.intensities):
                handle.write(f"{mz:.5f} {inten:.2f}\n")
        return len(spectra)
    finally:
        if owned:
            handle.close()


def _finish_scan(
    scan_id: int | None,
    precursor_mz: float,
    charge: int | None,
    true_peptide: int | None,
    mzs: List[float],
    intensities: List[float],
) -> Spectrum:
    if scan_id is None:
        raise FormatError("peak data before the first 'S' line")
    if charge is None:
        raise FormatError(f"scan {scan_id} lacks a 'Z' (charge) line")
    return Spectrum(
        scan_id=scan_id,
        precursor_mz=precursor_mz,
        charge=charge,
        mzs=np.asarray(mzs, dtype=np.float64),
        intensities=np.asarray(intensities, dtype=np.float64),
        true_peptide=true_peptide,
    )


def read_ms2(source: PathOrHandle) -> Iterator[Spectrum]:
    """Yield :class:`Spectrum` objects from an MS2 file or handle.

    Raises :class:`~repro.errors.FormatError` on malformed lines.
    """
    handle, owned = _open(source, "r")
    try:
        scan_id: int | None = None
        precursor_mz = 0.0
        charge: int | None = None
        true_peptide: int | None = None
        mzs: List[float] = []
        intensities: List[float] = []
        in_scan = False
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            tag = line.split("\t", 1)[0] if "\t" in line else line.split(" ", 1)[0]
            if tag == "H":
                continue
            if tag == "S":
                if in_scan:
                    yield _finish_scan(
                        scan_id, precursor_mz, charge, true_peptide, mzs, intensities
                    )
                fields = line.split()
                if len(fields) < 4:
                    raise FormatError(f"line {lineno}: malformed S line {line!r}")
                scan_id = int(fields[1])
                precursor_mz = float(fields[3])
                charge = None
                true_peptide = None
                mzs, intensities = [], []
                in_scan = True
            elif tag == "Z":
                fields = line.split()
                if len(fields) < 3:
                    raise FormatError(f"line {lineno}: malformed Z line {line!r}")
                charge = int(fields[1])
            elif tag == "I":
                fields = line.split()
                if len(fields) >= 3 and fields[1] == "TruePeptide":
                    true_peptide = int(fields[2])
            elif tag == "D":  # charge-dependent data, ignored
                continue
            else:
                if not in_scan:
                    raise FormatError(
                        f"line {lineno}: peak data before the first 'S' line"
                    )
                fields = line.split()
                if len(fields) != 2:
                    raise FormatError(f"line {lineno}: malformed peak line {line!r}")
                try:
                    mzs.append(float(fields[0]))
                    intensities.append(float(fields[1]))
                except ValueError:
                    raise FormatError(
                        f"line {lineno}: non-numeric peak line {line!r}"
                    ) from None
        if in_scan:
            yield _finish_scan(
                scan_id, precursor_mz, charge, true_peptide, mzs, intensities
            )
    finally:
        if owned:
            handle.close()
