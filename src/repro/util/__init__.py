"""Shared utilities: deterministic RNG handling, timers, text tables.

These helpers are intentionally tiny and dependency-free so that every
other subpackage can import them without cycles.
"""

from repro.util.ascii_plot import bar_chart, line_plot
from repro.util.rng import derive_seed, rng_from
from repro.util.tables import format_table
from repro.util.timing import PhaseTimer
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_range,
)

__all__ = [
    "bar_chart",
    "line_plot",
    "derive_seed",
    "rng_from",
    "format_table",
    "PhaseTimer",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_range",
]
