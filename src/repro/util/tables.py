"""Plain-text table rendering shared by benchmarks and examples.

The benchmark harness prints the same rows/series the paper's figures
plot; a tiny fixed-width formatter keeps that output readable without
pulling in plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row tuples; each row must have ``len(headers)``
        entries.  Floats are formatted with ``float_fmt``.
    float_fmt:
        Format spec applied to float cells (default three decimals).
    title:
        Optional title line printed above the table.

    Returns
    -------
    str
        The rendered table, newline-terminated.
    """
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [_render_cell(v, float_fmt) for v in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells, expected {len(headers)}"
            )
        rendered.append(cells)

    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for idx, cells in enumerate(rendered):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(cells, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines) + "\n"
