"""Small argument-validation helpers.

Raising :class:`repro.errors.ConfigurationError` consistently (rather
than ad-hoc ``ValueError``\\ s) lets callers distinguish bad parameter
objects from bad data files.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_range",
]


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise unless ``value`` is >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value!r}")


def check_range(name: str, low: float, high: float) -> None:
    """Raise unless ``low <= high``."""
    if low > high:
        raise ConfigurationError(
            f"{name}: lower bound {low!r} exceeds upper bound {high!r}"
        )
