"""Phase timing helpers used by the engine's serial/parallel accounting.

The distributed engine needs to attribute elapsed (virtual) time to
named phases -- index build, query, merge -- to reproduce the paper's
distinction between *query time* (Fig. 7/8) and *total execution time*
(Fig. 9/10).  :class:`PhaseTimer` is a small ledger of named durations
that supports both measured wall time and externally-charged virtual
time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.trace import Clock, default_clock

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates named durations in seconds.

    The timer can mix two kinds of charges:

    * wall-clock measurement via the :meth:`measure` context manager,
    * explicit charges via :meth:`charge` (used for virtual time from
      the simulated cluster's cost model).

    Phases accumulate: charging the same phase twice adds up.

    Wall measurement reads the same injected-clock protocol as the
    tracer (:data:`repro.obs.trace.default_clock`, i.e.
    ``time.perf_counter`` unless overridden), so engine phase ledgers
    and service spans cannot drift apart on what "query time" means;
    pass a fake ``clock`` for deterministic tests.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._phases: Dict[str, float] = {}
        self._clock: Clock = clock if clock is not None else default_clock

    def charge(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` (creating it if needed)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds!r} to {phase!r}")
        self._phases[phase] = self._phases.get(phase, 0.0) + float(seconds)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager charging measured wall time to ``phase``."""
        start = self._clock()
        try:
            yield
        finally:
            self.charge(phase, self._clock() - start)

    def get(self, phase: str) -> float:
        """Return the accumulated seconds of ``phase`` (0.0 if absent)."""
        return self._phases.get(phase, 0.0)

    def total(self) -> float:
        """Return the sum over all phases."""
        return sum(self._phases.values())

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the ledger."""
        return dict(self._phases)

    def merge(self, other: "PhaseTimer") -> None:
        """Add every phase of ``other`` into this ledger."""
        for phase, seconds in other._phases.items():
            self.charge(phase, seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.6f}s" for k, v in sorted(self._phases.items()))
        return f"PhaseTimer({inner})"
