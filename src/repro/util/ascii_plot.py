"""ASCII line/bar charts for terminal figure output.

The benchmark harness prints the series the paper's figures plot; a
tiny plotter renders them visually in environments without matplotlib
(this reproduction is offline by design).  Only two chart types are
needed:

* :func:`line_plot` — multi-series scatter/line over a numeric x axis
  (used for the speedup/time figures),
* :func:`bar_chart` — horizontal labelled bars (used for imbalance
  comparisons),
* :func:`gantt_chart` — labelled horizontal timeline rows (used by
  ``repro trace gantt`` for per-batch span timelines).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["line_plot", "bar_chart", "gantt_chart"]

#: Marker characters assigned to series in insertion order.
_MARKERS = "ox+*#@%&"


def line_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``series`` (name → [(x, y), ...]) as an ASCII chart.

    Points are plotted on a ``width``×``height`` grid scaled to the
    data's bounding box; each series uses its own marker, listed in
    the legend.  Later series overwrite earlier ones on collisions.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small to render")
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        raise ConfigurationError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    margin = max(len(y_hi_label), len(y_lo_label), len(y_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_label
        elif r == height - 1:
            label = y_lo_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(label.rjust(margin) + " |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - len(f"{x_hi:.4g}")) + f"{x_hi:.4g}"
    lines.append(" " * (margin + 2) + x_axis)
    if x_label:
        lines.append(" " * (margin + 2) + x_label.center(width))
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines) + "\n"


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if not values:
        raise ConfigurationError("need at least one bar")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar values must be >= 0")
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{name.rjust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines) + "\n"


def gantt_chart(
    rows: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    *,
    width: int = 64,
    title: str | None = None,
) -> str:
    """Render labelled timeline rows of ``(start, duration)`` intervals.

    Each row is ``(label, [(start, dur), ...])`` in a shared time unit
    (typically seconds relative to a common origin); intervals render
    as ``#`` runs on a ``width``-column axis scaled to the rows'
    combined extent.  An interval too short for one column still
    paints a single cell, so sub-resolution spans stay visible.
    """
    if not rows:
        raise ConfigurationError("need at least one timeline row")
    if width < 10:
        raise ConfigurationError("chart too small to render")
    intervals = [iv for _, ivs in rows for iv in ivs]
    if not intervals:
        raise ConfigurationError("timeline rows contain no intervals")
    if any(dur < 0 for _, dur in intervals):
        raise ConfigurationError("interval durations must be >= 0")
    t_lo = min(start for start, _ in intervals)
    t_hi = max(start + dur for start, dur in intervals)
    span = (t_hi - t_lo) or 1.0

    label_w = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, ivs in rows:
        cells = [" "] * width
        for start, dur in ivs:
            lo = round((start - t_lo) / span * (width - 1))
            hi = round((start + dur - t_lo) / span * (width - 1))
            for col in range(lo, max(hi, lo) + 1):
                cells[col] = "#"
        lines.append(f"{label.rjust(label_w)} |{''.join(cells)}|")
    axis = f"{t_lo:.4g}".ljust(width - len(f"{t_hi:.4g}")) + f"{t_hi:.4g}"
    lines.append(" " * label_w + "  " + axis)
    return "\n".join(lines) + "\n"
