"""ASCII line/bar charts for terminal figure output.

The benchmark harness prints the series the paper's figures plot; a
tiny plotter renders them visually in environments without matplotlib
(this reproduction is offline by design).  Only two chart types are
needed:

* :func:`line_plot` — multi-series scatter/line over a numeric x axis
  (used for the speedup/time figures),
* :func:`bar_chart` — horizontal labelled bars (used for imbalance
  comparisons).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["line_plot", "bar_chart"]

#: Marker characters assigned to series in insertion order.
_MARKERS = "ox+*#@%&"


def line_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``series`` (name → [(x, y), ...]) as an ASCII chart.

    Points are plotted on a ``width``×``height`` grid scaled to the
    data's bounding box; each series uses its own marker, listed in
    the legend.  Later series overwrite earlier ones on collisions.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small to render")
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        raise ConfigurationError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    margin = max(len(y_hi_label), len(y_lo_label), len(y_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_label
        elif r == height - 1:
            label = y_lo_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(label.rjust(margin) + " |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - len(f"{x_hi:.4g}")) + f"{x_hi:.4g}"
    lines.append(" " * (margin + 2) + x_axis)
    if x_label:
        lines.append(" " * (margin + 2) + x_label.center(width))
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines) + "\n"


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if not values:
        raise ConfigurationError("need at least one bar")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar values must be >= 0")
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{name.rjust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines) + "\n"
