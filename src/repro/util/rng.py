"""Deterministic random-number-generator plumbing.

Every stochastic component of the package (synthetic proteome, spectra
noise, the Random partition policy, ...) takes an integer seed and
derives an independent :class:`numpy.random.Generator` from it.  Seeds
for sub-components are derived with :func:`derive_seed` so two
components never consume the same stream, which keeps experiments
reproducible bit-for-bit regardless of evaluation order.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_from"]


def derive_seed(base_seed: int, *names: object) -> int:
    """Derive a stable 63-bit sub-seed from ``base_seed`` and a label path.

    The derivation hashes the textual representation of the base seed
    and each label with SHA-256, so it is stable across Python versions
    and processes (unlike ``hash()``, which is salted).

    Parameters
    ----------
    base_seed:
        The experiment's master seed.
    names:
        Any number of labels identifying the consumer, e.g.
        ``derive_seed(42, "spectra", file_index)``.

    Returns
    -------
    int
        A non-negative integer < 2**63 suitable for seeding numpy.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("ascii"))
    for name in names:
        digest.update(b"\x1f")
        digest.update(repr(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") >> 1


def rng_from(base_seed: int, *names: object) -> np.random.Generator:
    """Return a numpy Generator seeded with :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, *names))
