"""Sharded multi-pool serving tier: mass-range shards + a shard router.

One :class:`~repro.service.service.SearchService` is bounded by a
single resident pool's memory and cores; the paper's LBE plan balances
*within* that pool.  This module adds the HiCOPS-style step above it:
partition the **database itself** into contiguous precursor-mass
ranges (:class:`ShardPlan`), give every shard its own resident pool +
arena spill (an inner ``SearchService``), and route each batch's
spectra only to the shards whose mass range can intersect their
precursor windows (:class:`ShardedSearchService`) — the
communication-aware fan-out of the distributed-memory MS lower-bounds
line of work, composed from the PR 4–6 session contract.

Routing model (agrees exactly with flat filtration)
---------------------------------------------------
Shard boundaries live in the same numeric universe as the index:
per-shard mass extrema are float32-rounded entry masses widened to
float64 (exactly the :class:`~repro.index.arena.FragmentArena`
storage), and the shard predicate is the
:meth:`~repro.index.chunks.ChunkedIndex.chunks_for` difference form::

    shard s may hold candidates for nm ± tol
        iff  s.mass_max - nm >= -tol  and  s.mass_min - nm <= tol

Both comparisons run in float64 over float32-rounded endpoints — the
flat filter's own predicate (``|mass64 - nm| > tol``) applied to the
extrema — so a skipped shard provably contains **no** entry the flat
filter would keep, even exactly at window edges.  Open search (no
precursor tolerance) routes every spectrum to every shard.  Routing
therefore changes *where* filtration work happens, never *what* it
computes: merged results are bit-identical to the unsharded engine.

Bit-identity of the merge
-------------------------
Within each shard, member bases keep their **ascending global base-id
order**, so shard-local entry ids map to global entry ids through a
strictly increasing table (``DatabaseShard.entry_ids``).  The inner
engines' per-rank and per-shard top-K tie-breaks (score desc, entry id
asc) are then order-isomorphic to the global id space, and the fleet
merge — translate each shard's PSMs to global ids, re-run
:func:`~repro.search.serial.top_k_psms` over the union — reproduces
the serial engine's selection exactly (global entry ids are disjoint
across shards, and the score arithmetic is untouched).  Demux is keyed
by spectrum scan id (validated per result), not trusted batch
position.

Failure semantics (shard × fault → behavior)
--------------------------------------------
Per-shard supervision is the resident pool's matrix
(:mod:`repro.parallel.persistent`), applied inside each shard's pool;
this layer adds shard-level isolation on top.  With R =
``max_retries`` and W = workers per shard:

=========================  =============================================
fault at shard level       observed behavior
=========================  =============================================
one rank of one shard      invisible for R >= 1 (the shard's pool
crashes / raises / hangs   retries only that rank's payload; batch
mid-batch                  bit-identical); for R = 0 without
                           ``degraded_ok`` the batch's future fails
                           with :class:`~repro.errors.ShardError`
                           naming the shard (chained to the pool's
                           :class:`~repro.errors.WorkerError`) — the
                           *session* survives, later batches heal on
                           respawned workers.
some ranks of a shard      partial shard coverage: the fleet mask
exhaust retries            ``degraded_ranks`` names them as
(``degraded_ok=True``)     ``shard * W + rank``; the shard still
                           contributes its surviving ranks'
                           partitions.
every rank of a shard      the whole shard's mass range is lost:
exhausts retries, or its   ``degraded_shards`` names it (its ranks all
session breaks             appear in ``degraded_ranks``), results
(``degraded_ok=True``)     cover the remaining shards, and the TSV
                           report carries ``# degraded_shards:``.
shard not routed           not a fault: a batch whose windows cannot
                           reach a shard never dispatches to it
                           (counted in ``shards_skipped``), and a
                           spectrum reaching no shard reports zero
                           candidates — exactly the flat filter's
                           verdict.
sharded-session close      drains every inner session: all admitted
                           futures resolve deterministically.
=========================  =============================================
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ServiceError, ShardError
from repro.index.arena import concat_ranges
from repro.index.slm import SLMIndexSettings
from repro.obs.ring import RingTracer, flight_dump
from repro.parallel.faults import FaultPlan
from repro.search.database import IndexedDatabase
from repro.search.psm import RankStats, SearchResults, SpectrumResult
from repro.search.serial import top_k_psms
from repro.service.service import (
    _STATS_RETENTION,
    BatchStats,
    SearchService,
    ServiceConfig,
)
from repro.spectra.model import Spectrum

__all__ = [
    "DatabaseShard",
    "ShardPlan",
    "ShardedBatchStats",
    "ShardedSearchService",
]


@dataclass(slots=True)
class DatabaseShard:
    """One contiguous precursor-mass slice of an indexed database.

    Attributes
    ----------
    shard_id:
        Position in the plan (ascending mass ranges).
    database:
        A self-contained :class:`~repro.search.database.IndexedDatabase`
        over the shard's bases + entries — what the shard's inner
        service attaches, spills, and queries.
    base_ids / entry_ids:
        Global base / entry ids of the shard's members, **ascending** —
        ``entry_ids[local]`` is the strictly increasing local → global
        translation the fleet merge relies on for tie-break fidelity.
    mass_min / mass_max:
        Float32-rounded entry-mass extrema widened to float64 (the
        arena's numeric universe) — the routing predicate's endpoints.
        Ranges of neighbouring shards may overlap by up to one float32
        rounding step; that only costs routing selectivity, never
        correctness.
    """

    shard_id: int
    database: IndexedDatabase
    base_ids: np.ndarray
    entry_ids: np.ndarray
    mass_min: float
    mass_max: float

    @property
    def n_bases(self) -> int:
        """Base peptides in the shard."""
        return int(self.base_ids.size)

    @property
    def n_entries(self) -> int:
        """Index entries in the shard."""
        return int(self.entry_ids.size)


class ShardPlan:
    """Split an :class:`~repro.search.database.IndexedDatabase` into
    contiguous precursor-mass shards, and route spectra to them.

    Build with :meth:`from_database`; the plan validates that the
    shards are a disjoint cover of the entry space.  Shards split at
    **base-peptide** granularity (a base and all its modified variants
    stay together) so each shard is itself a well-formed database.
    """

    def __init__(self, database: IndexedDatabase, shards: List[DatabaseShard]) -> None:
        self.database = database
        self.shards = shards
        covered = np.sort(np.concatenate([s.entry_ids for s in shards]))
        if covered.size != database.n_entries or not np.array_equal(
            covered, np.arange(database.n_entries, dtype=np.int64)
        ):
            raise ConfigurationError(
                "shards are not a disjoint cover of the entry space"
            )

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @classmethod
    def from_database(
        cls,
        database: IndexedDatabase,
        n_shards: int,
        boundaries: Optional[Sequence[float]] = None,
    ) -> "ShardPlan":
        """Partition ``database`` into ``n_shards`` mass-range shards.

        Without ``boundaries``, bases are sorted by mass and the
        sorted sequence is cut into contiguous runs balanced by entry
        count (each cut adjusted so no shard is empty).  With
        ``boundaries`` — ``n_shards - 1`` ascending masses in Da — a
        base with mass ``>= boundaries[k]`` lands in shard ``k + 1``
        or later; every resulting shard must be non-empty.
        """
        n_bases = len(database.base_peptides)
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        if n_shards > n_bases:
            raise ConfigurationError(
                f"cannot cut {n_bases} base peptides into {n_shards} "
                f"non-empty shards"
            )
        base_masses = np.array(
            [p.mass for p in database.base_peptides], dtype=np.float64
        )
        order = np.argsort(base_masses, kind="stable")
        offsets = np.asarray(database.entry_offsets, dtype=np.int64)
        counts = np.diff(offsets)
        if boundaries is not None:
            cuts_list = [float(b) for b in boundaries]
            if len(cuts_list) != n_shards - 1:
                raise ConfigurationError(
                    f"{n_shards} shards need {n_shards - 1} boundaries, "
                    f"got {len(cuts_list)}"
                )
            if any(b <= a for a, b in zip(cuts_list, cuts_list[1:])):
                raise ConfigurationError(
                    "shard boundaries must be strictly ascending"
                )
            # Mass-sorted bases cut at the boundary masses: the k-th
            # cut is the first sorted position whose base mass reaches
            # boundaries[k].
            sorted_masses = base_masses[order]
            cut_positions = [
                int(np.searchsorted(sorted_masses, b, side="left"))
                for b in cuts_list
            ]
        else:
            # Balance by entry count over the mass-sorted base runs.
            sorted_counts = counts[order]
            cum = np.cumsum(sorted_counts)
            total = int(cum[-1])
            targets = [
                total * (k + 1) / n_shards for k in range(n_shards - 1)
            ]
            cut_positions = [
                int(np.searchsorted(cum, t, side="left")) + 1 for t in targets
            ]
            # Keep every shard non-empty: cuts strictly increasing and
            # leaving room for the remaining shards.
            prev = 0
            for k in range(len(cut_positions)):
                c = max(cut_positions[k], prev + 1)
                c = min(c, n_bases - (n_shards - 1 - k))
                cut_positions[k] = c
                prev = c
        edges = [0, *cut_positions, n_bases]
        shards: List[DatabaseShard] = []
        for sid in range(n_shards):
            start, stop = edges[sid], edges[sid + 1]
            if stop <= start:
                raise ConfigurationError(
                    f"shard {sid} is empty (boundary masses leave it no "
                    f"base peptides)"
                )
            # Ascending global base-id order *within* the shard keeps
            # the local -> global entry-id map strictly increasing
            # (membership is still a contiguous run of the mass-sorted
            # base sequence) — the property the merge's tie-break
            # fidelity rests on.
            base_ids = np.sort(order[start:stop])
            entry_ids = concat_ranges(offsets[base_ids], offsets[base_ids + 1])
            entries = database.entries_at(entry_ids)
            shard_offsets = np.concatenate(
                ([0], np.cumsum(counts[base_ids]))
            ).astype(np.int64)
            shard_db = IndexedDatabase(
                [database.base_peptides[b] for b in base_ids],
                entries,
                shard_offsets,
            )
            # Extrema over the entries' float32-rounded masses, widened
            # back to float64: the exact values the shard's arena (and
            # the flat filter) will compare against.
            masses32 = np.array([p.mass for p in entries], dtype=np.float32)
            shards.append(
                DatabaseShard(
                    shard_id=sid,
                    database=shard_db,
                    base_ids=base_ids,
                    entry_ids=entry_ids,
                    mass_min=float(masses32.min()),
                    mass_max=float(masses32.max()),
                )
            )
        return cls(database, shards)

    def shards_for(self, neutral_mass: float, tolerance: Optional[float]) -> List[int]:
        """Shard ids that may hold candidates for ``neutral_mass ± tol``.

        ``None`` / infinite tolerance = open search = every shard.
        The windowed predicate is the chunked index's difference form
        (see the module docstring) — it can never skip a shard holding
        an entry the flat filter would keep.
        """
        if tolerance is None or np.isinf(tolerance):
            return [s.shard_id for s in self.shards]
        tol = float(tolerance)
        nm = neutral_mass
        return [
            s.shard_id
            for s in self.shards
            if s.mass_max - nm >= -tol and s.mass_min - nm <= tol
        ]

    def route(
        self, spectra: Sequence[Spectrum], settings: SLMIndexSettings
    ) -> List[List[int]]:
        """Per-shard lists of batch positions to dispatch.

        ``route(batch, settings)[s]`` are the indices into ``spectra``
        whose precursor windows intersect shard ``s``'s mass range —
        the shard's sub-batch, in original batch order.  Open search
        broadcasts every position to every shard.
        """
        routed: List[List[int]] = [[] for _ in self.shards]
        if settings.is_open_search:
            everyone = list(range(len(spectra)))
            return [list(everyone) for _ in self.shards]
        tol = float(settings.precursor_tolerance)  # type: ignore[arg-type]
        for i, spectrum in enumerate(spectra):
            for sid in self.shards_for(spectrum.neutral_mass, tol):
                routed[sid].append(i)
        return routed


@dataclass(slots=True)
class ShardedBatchStats(BatchStats):
    """Fleet-level :class:`BatchStats` plus per-shard breakdown.

    The inherited fields aggregate over the dispatched shards: wall
    phases (``preprocess_s`` / ``spill_s`` / ``parallel_s``) take the
    **max** (the shards run concurrently), counters (``merge_s`` /
    ``scatter_bytes`` / ``peak_bytes`` / ``respawned`` / ``retries`` /
    ``hedged``) take the **sum**, and ``degraded_ranks`` is the
    flattened fleet mask (shard ``s``'s rank ``r`` as
    ``s * n_workers + r``).  ``total_s`` spans submit → merged at the
    sharded layer.  The inherited ``query_wall_s`` / ``query_cpu_s``
    vectors cover the **full fleet rank space** in that same order,
    with 0.0 at the slots of skipped or wholly-failed shards — so the
    fleet-level LI properties read routing selectivity as imbalance
    by design (an undispatched shard *is* idle capacity).

    Attributes
    ----------
    shards_dispatched / shards_skipped:
        Shards this batch was sent to vs shards routing proved
        unreachable (dispatched + skipped = plan shards).
    degraded_shards:
        Shards whose entire mass range is missing from the batch's
        results.
    shard_stats:
        Per-shard inner :class:`BatchStats` (``None`` for skipped or
        wholly-failed shards), index = shard id.
    """

    shards_dispatched: int = 0
    shards_skipped: int = 0
    degraded_shards: Tuple[int, ...] = ()
    shard_stats: List[Optional[BatchStats]] = field(default_factory=list)


class _ShardedBatch:
    """One admitted batch's trip through the shard fan-out."""

    __slots__ = (
        "spectra", "routed", "future", "futures", "errors", "batch_index",
        "remaining", "ready", "depth", "t_submit",
    )

    def __init__(self, spectra: List[Spectrum], routed: List[List[int]]) -> None:
        self.spectra = spectra
        self.routed = routed
        self.future: Future = Future()
        self.futures: Dict[int, Future] = {}
        self.errors: Dict[int, BaseException] = {}
        self.batch_index = -1
        self.remaining = 0
        self.ready = False
        self.depth = 1
        self.t_submit = 0.0


class ShardedSearchService:
    """A routed fleet of per-shard resident sessions, one session API.

    Mirrors :class:`~repro.service.service.SearchService`'s
    ``open / submit / submit_async / stream / close`` contract exactly:
    futures resolve strictly in submission order to ``(SearchResults,
    ShardedBatchStats)``, results are bit-identical to the unsharded
    engine, a failing batch fails only its own future, and ``close()``
    drains.  See the module docstring for the routing model and the
    shard-level failure matrix.

    Parameters
    ----------
    database:
        The full indexed database (sharded internally).
    config:
        Per-shard service configuration: each shard runs its own inner
        :class:`~repro.service.service.SearchService` with this config
        (``n_workers`` resident workers *per shard*,
        ``max_pending`` also bounds the sharded session's admission).
        A ``rebalance_li`` setting arms elastic rebalancing **per
        shard**: each inner session watches its own LI window and
        migrates / resizes its own pool independently
        (:attr:`rebalance_total` aggregates the fleet's migrations).
    n_shards:
        Mass-range shards to cut (1 is legal — a routed singleton).
    boundaries:
        Optional explicit shard boundary masses (Da), ascending,
        ``n_shards - 1`` of them; default balances entry counts.
    shard_fault_plans:
        Chaos-testing seam: one optional
        :class:`~repro.parallel.faults.FaultPlan` per shard,
        overriding ``config.fault_plan`` shard-by-shard (a single
        shared once-ledger plan would fire in whichever shard's worker
        claims it first — per-shard plans make chaos deterministic).
    """

    def __init__(
        self,
        database: IndexedDatabase,
        config: ServiceConfig = ServiceConfig(),
        *,
        n_shards: int = 2,
        boundaries: Optional[Sequence[float]] = None,
        shard_fault_plans: Optional[Sequence[Optional[FaultPlan]]] = None,
    ) -> None:
        if shard_fault_plans is not None and len(shard_fault_plans) != n_shards:
            raise ConfigurationError(
                f"{len(shard_fault_plans)} shard fault plans for "
                f"{n_shards} shards"
            )
        self.database = database
        self.config = config
        self._tracer = config.tracer
        # Fleet flight recorder: one shared ring for the whole fleet —
        # each inner service records through a shard-bound view, so a
        # black box interleaves every shard's timeline in arrival
        # order.  An enabled config tracer wins, exactly as unsharded.
        self._ring: Optional[RingTracer] = None
        if config.flight_recorder and not config.tracer.enabled:
            self._ring = RingTracer()
            self._tracer = self._ring
        self.plan = ShardPlan.from_database(database, n_shards, boundaries)
        self._shard_fault_plans = (
            list(shard_fault_plans) if shard_fault_plans is not None else None
        )
        self._services: List[SearchService] = []
        self._opened = False
        self._closed = False
        # Reentrant: inner futures' done-callbacks (inner pipeline
        # threads) and submit_async (caller thread) both take it, and
        # an inner future that is already done invokes its callback
        # synchronously inside submit_async.
        self._lock = threading.RLock()
        self._pending: deque[_ShardedBatch] = deque()
        self._admission = threading.Semaphore(config.max_pending)
        self._n_submitted = 0
        self._n_pending = 0
        self._n_batches = 0
        self._stats: deque[ShardedBatchStats] = deque(maxlen=_STATS_RETENTION)
        self._open_s = 0.0
        self._dispatch_total = 0
        self._skip_total = 0

    @property
    def n_shards(self) -> int:
        """Shards in the fleet."""
        return self.plan.n_shards

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ShardedSearchService":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def open(self) -> None:
        """Open every shard's inner session (spawn + spill + attach).

        Idempotent.  A shard that fails to open raises
        :class:`~repro.errors.ShardError` (chained to the underlying
        cause) after the already-opened shards are closed again.
        """
        if self._opened:
            return
        if self._closed:
            raise ServiceError("sharded service is closed; cannot reopen")
        t0 = time.perf_counter()
        for shard in self.plan.shards:
            cfg = self.config
            if self._shard_fault_plans is not None:
                cfg = replace(cfg, fault_plan=self._shard_fault_plans[shard.shard_id])
            if self._tracer.enabled:
                # Every inner-service record carries its shard id (the
                # fleet ring counts as a tracer here, so inner
                # services share it instead of installing their own
                # rings); the no-op tracer binds to itself, so this
                # replace is skipped entirely when tracing is off.
                cfg = replace(
                    cfg, tracer=self._tracer.bind(shard=shard.shard_id)
                )
            service = SearchService(shard.database, cfg)
            try:
                service.open()
            except BaseException as exc:
                service.close()
                for opened in self._services:
                    opened.close()
                self._services = []
                self._closed = True
                failure = ShardError(
                    f"shard {shard.shard_id} failed to open: {exc}",
                    shard=shard.shard_id,
                    rank=getattr(exc, "rank", None),
                    retries=getattr(exc, "retries", 0),
                )
                failure.flight_record = flight_dump(
                    self._ring, self.config.flight_dir, "shard-open-failure"
                )
                raise failure from exc
            self._services.append(service)
        self._open_s = time.perf_counter() - t0
        self._opened = True
        if self._tracer.enabled:
            self._tracer.event(
                "session.open",
                {
                    "n_workers": self.n_shards * self.config.n_workers,
                    "n_shards": self.n_shards,
                    "open_s": round(self._open_s, 6),
                    "fleet": True,
                },
            )

    def close(self) -> None:
        """Drain and shut every shard's session down; idempotent.

        Inner sessions drain their admitted batches, which completes
        every outstanding sharded future (via the done-callbacks)
        before the workers shut down.
        """
        if self._closed:
            return
        self._closed = True  # reject new submits before draining
        # No outer lock here: draining an inner session runs its
        # pipeline thread to completion, and that thread takes the
        # outer lock inside our done-callbacks.
        for service in self._services:
            service.close()
        # Defensive: a batch that somehow never resolved (all its
        # shards were skipped but close raced the drain) fails loud
        # rather than hanging its caller.
        with self._lock:
            self._drain_ready_locked()
            leftovers = list(self._pending)
            self._pending.clear()
        for batch in leftovers:
            try:
                if not batch.future.done():
                    batch.future.set_exception(
                        ServiceError("sharded service closed mid-batch")
                    )
            except InvalidStateError:  # pragma: no cover - settle race
                pass
        if self._opened and self._tracer.enabled:
            self._tracer.event(
                "session.close",
                {"n_batches": self._n_batches, "fleet": True},
            )

    # -- submission ------------------------------------------------------

    def submit(
        self, spectra: Sequence[Spectrum]
    ) -> Tuple[SearchResults, ShardedBatchStats]:
        """Blocking convenience: route, fan out, merge one batch."""
        return self.submit_async(spectra).result()

    def submit_async(
        self, spectra: Sequence[Spectrum]
    ) -> "Future[Tuple[SearchResults, ShardedBatchStats]]":
        """Admit one batch: route to intersecting shards, fan out.

        Returns a future resolving to ``(SearchResults,
        ShardedBatchStats)``; futures resolve strictly in submission
        order.  Raises :class:`~repro.errors.ServiceError` when the
        session is not open or the ``max_pending`` admission bound is
        exceeded.
        """
        if self._closed:
            raise ServiceError(
                "sharded service is closed; no further submits accepted"
            )
        if not self._opened:
            raise ServiceError("sharded service is not open; call open() first")
        spectra = list(spectra)
        if not spectra:
            raise ConfigurationError("cannot submit an empty spectra batch")
        if not self._admission.acquire(blocking=False):
            raise ServiceError(
                f"admission queue full ({self.config.max_pending} batches "
                "already pending); retry after a pending batch completes"
            )
        t_route = time.perf_counter()
        routed = self.plan.route(spectra, self.config.index)
        batch = _ShardedBatch(spectra, routed)
        batch.t_submit = time.perf_counter()
        with self._lock:
            if self._closed:
                self._admission.release()
                raise ServiceError(
                    "sharded service was closed while this submit was "
                    "being admitted"
                )
            batch.batch_index = self._n_submitted
            self._n_submitted += 1
            self._n_pending += 1
            batch.depth = self._n_pending
            self._pending.append(batch)
            dispatched = 0
            for sid, positions in enumerate(routed):
                if not positions:
                    continue
                dispatched += 1
                sub_batch = [spectra[i] for i in positions]
                try:
                    inner = self._services[sid].submit_async(sub_batch)
                except BaseException as exc:  # noqa: BLE001 - isolated per shard
                    batch.errors[sid] = exc
                    continue
                batch.futures[sid] = inner
            self._dispatch_total += dispatched
            self._skip_total += self.n_shards - dispatched
            batch.remaining = len(batch.futures)
            if batch.remaining == 0:
                batch.ready = True
            # Register after the bookkeeping: an already-done inner
            # future fires its callback synchronously on this thread —
            # the RLock makes that safe.
            for sid, inner in batch.futures.items():
                inner.add_done_callback(
                    lambda fut, b=batch: self._shard_done(b)
                )
            self._drain_ready_locked()
        if self._tracer.enabled:
            self._tracer.span(
                "route",
                t_route,
                time.perf_counter() - t_route,
                {
                    "batch": batch.batch_index,
                    "dispatched": dispatched,
                    "skipped": self.n_shards - dispatched,
                },
            )
        return batch.future

    def stream(
        self, batches: Iterable[Sequence[Spectrum]]
    ) -> Iterator[Tuple[SearchResults, ShardedBatchStats]]:
        """Drive an iterable of batches through the fleet, in order.

        Keeps up to ``max_pending`` batches admitted at once (every
        shard's inner pipeline overlaps underneath) and yields each
        batch's ``(results, stats)`` in submission order.
        """
        window: deque[Future] = deque()
        for spectra in batches:
            while len(window) >= self.config.max_pending:
                yield window.popleft().result()
            window.append(self.submit_async(spectra))
        while window:
            yield window.popleft().result()

    # -- resolution (runs on inner pipeline threads) ---------------------

    def _shard_done(self, batch: _ShardedBatch) -> None:
        with self._lock:
            batch.remaining -= 1
            if batch.remaining == 0:
                batch.ready = True
            self._drain_ready_locked()

    def _drain_ready_locked(self) -> None:
        """Resolve ready batches from the head — submission order."""
        while self._pending and self._pending[0].ready:
            batch = self._pending.popleft()
            self._n_pending -= 1
            self._admission.release()
            self._finalize(batch)

    def _finalize(self, batch: _ShardedBatch) -> None:
        shard_results: List[Optional[SearchResults]] = [None] * self.n_shards
        shard_stats: List[Optional[BatchStats]] = [None] * self.n_shards
        errors: Dict[int, BaseException] = dict(batch.errors)
        for sid, inner in batch.futures.items():
            exc = inner.exception()
            if exc is not None:
                errors[sid] = exc
            else:
                shard_results[sid], shard_stats[sid] = inner.result()
        if errors and not self.config.degraded_ok:
            sid = min(errors)
            cause = errors[sid]
            summary = str(cause).splitlines()[0] if str(cause) else repr(cause)
            failure = ShardError(
                f"shard {sid} failed batch {batch.batch_index}: {summary}",
                shard=sid,
                rank=getattr(cause, "rank", None),
                retries=getattr(cause, "retries", 0),
            )
            failure.__cause__ = cause
            # Black-box the fleet's last seconds: the shared ring holds
            # every shard's supervision timeline around the fault.
            failure.flight_record = flight_dump(
                self._ring,
                self.config.flight_dir,
                "shard-batch-error",
                batch=batch.batch_index,
            )
            self._settle(batch, error=failure)
            return
        try:
            results, stats = self._merge(batch, shard_results, shard_stats, errors)
        except BaseException as exc:  # noqa: BLE001 - routed to the future
            self._settle(batch, error=exc)
            return
        self._n_batches += 1
        self._stats.append(stats)
        self._settle(batch, value=(results, stats))

    def _settle(
        self,
        batch: _ShardedBatch,
        *,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        try:
            if batch.future.done():
                return
            if error is not None:
                batch.future.set_exception(error)
            else:
                batch.future.set_result(value)
        except InvalidStateError:  # pragma: no cover - settle race
            pass

    # -- the fleet merge -------------------------------------------------

    def _merge(
        self,
        batch: _ShardedBatch,
        shard_results: List[Optional[SearchResults]],
        shard_stats: List[Optional[BatchStats]],
        errors: Dict[int, BaseException],
    ) -> Tuple[SearchResults, ShardedBatchStats]:
        cfg = self.config
        spectra = batch.spectra
        wall = time.perf_counter
        t_merge = wall()
        n_spectra = len(spectra)
        w = cfg.n_workers
        # Gather per-spectrum contributions across shards, demuxed by
        # scan id (validated), translated to global entry ids.
        gids: List[List[int]] = [[] for _ in range(n_spectra)]
        scores: List[List[float]] = [[] for _ in range(n_spectra)]
        shared: List[List[int]] = [[] for _ in range(n_spectra)]
        counts = [0] * n_spectra
        for sid, res in enumerate(shard_results):
            if res is None:
                continue
            positions = batch.routed[sid]
            if len(res.spectra) != len(positions):
                raise ShardError(
                    f"shard {sid} returned {len(res.spectra)} results for "
                    f"{len(positions)} routed spectra",
                    shard=sid,
                )
            # Demux keyed by scan id: positions grouped per scan, FIFO
            # within a scan (inner results preserve sub-batch order).
            by_scan: Dict[int, deque] = {}
            for i in positions:
                by_scan.setdefault(spectra[i].scan_id, deque()).append(i)
            entry_ids = self.plan.shards[sid].entry_ids
            for sr in res.spectra:
                slots = by_scan.get(sr.scan_id)
                if not slots:
                    raise ShardError(
                        f"shard {sid} returned a result for scan "
                        f"{sr.scan_id}, which was not routed to it",
                        shard=sid,
                    )
                i = slots.popleft()
                counts[i] += sr.n_candidates
                for psm in sr.psms:
                    gids[i].append(int(entry_ids[psm.entry_id]))
                    scores[i].append(psm.score)
                    shared[i].append(psm.shared_peaks)
        merged: List[SpectrumResult] = []
        for i, spectrum in enumerate(spectra):
            merged.append(
                SpectrumResult(
                    scan_id=spectrum.scan_id,
                    n_candidates=counts[i],
                    psms=top_k_psms(
                        spectrum.scan_id,
                        np.asarray(gids[i], dtype=np.int64),
                        np.asarray(scores[i], dtype=np.float64),
                        np.asarray(shared[i], dtype=np.int64),
                        cfg.top_k,
                    ),
                )
            )
        # Degradation masks: partial shards flatten into the fleet rank
        # space; wholly-lost shards (every rank degraded, or the inner
        # session failed under degraded_ok) are named shard-level too.
        degraded_ranks: List[int] = []
        degraded_shards: List[int] = []
        for sid in range(self.n_shards):
            res = shard_results[sid]
            if sid in errors:
                degraded_shards.append(sid)
                degraded_ranks.extend(sid * w + r for r in range(w))
            elif res is not None and res.degraded_ranks:
                degraded_ranks.extend(sid * w + r for r in res.degraded_ranks)
                if len(res.degraded_ranks) == w:
                    degraded_shards.append(sid)
        # Fleet rank stats: shard s's rank r at position s * w + r
        # (zeroed for skipped / failed shards).
        fleet_stats: List[RankStats] = []
        for sid in range(self.n_shards):
            res = shard_results[sid]
            for r in range(w):
                if res is not None and r < len(res.rank_stats):
                    inner = res.rank_stats[r]
                    fleet_stats.append(
                        RankStats(
                            rank=sid * w + r,
                            n_entries=inner.n_entries,
                            n_ions=inner.n_ions,
                            buckets_scanned=inner.buckets_scanned,
                            ions_scanned=inner.ions_scanned,
                            candidates_scored=inner.candidates_scored,
                            residues_scored=inner.residues_scored,
                            build_time=inner.build_time,
                            query_time=inner.query_time,
                            comm_time=inner.comm_time,
                            query_cpu_time=inner.query_cpu_time,
                        )
                    )
                else:
                    fleet_stats.append(RankStats(rank=sid * w + r))
        merge_s = wall() - t_merge
        total_s = wall() - batch.t_submit
        live = [s for s in shard_stats if s is not None]

        def smax(attr: str) -> float:
            return max((getattr(s, attr) for s in live), default=0.0)

        def ssum(attr: str) -> Any:
            return sum(getattr(s, attr) for s in live)

        def pmax(key: str) -> float:
            return max(
                (
                    r.phase_times.get(key, 0.0)
                    for r in shard_results
                    if r is not None
                ),
                default=0.0,
            )

        phase_times = {
            "serial_prep": pmax("serial_prep"),
            "spill": pmax("spill"),
            "build": 0.0,
            "query": pmax("query"),
            "query_cpu": pmax("query_cpu"),
            "gather": pmax("gather"),
            "merge": sum(
                r.phase_times.get("merge", 0.0)
                for r in shard_results
                if r is not None
            )
            + merge_s,
            "parallel_wall": pmax("parallel_wall"),
            "parallel_overhead": pmax("parallel_overhead"),
            "total": total_s,
        }
        results = SearchResults(
            spectra=merged,
            rank_stats=fleet_stats,
            phase_times=phase_times,
            policy_name=cfg.policy,
            n_ranks=self.n_shards * w,
            degraded_ranks=tuple(sorted(degraded_ranks)),
            degraded_shards=tuple(sorted(degraded_shards)),
        )
        dispatched = sum(1 for positions in batch.routed if positions)
        stats = ShardedBatchStats(
            batch_index=batch.batch_index,
            n_spectra=n_spectra,
            preprocess_s=smax("preprocess_s"),
            spill_s=smax("spill_s"),
            parallel_s=smax("parallel_s"),
            merge_s=ssum("merge_s") + merge_s,
            total_s=total_s,
            query_wall_s=tuple(s.query_time for s in fleet_stats),
            query_cpu_s=tuple(s.query_cpu_time for s in fleet_stats),
            scatter_bytes=int(ssum("scatter_bytes")),
            peak_bytes=int(ssum("peak_bytes")),
            respawned=int(ssum("respawned")),
            wait_s=smax("wait_s"),
            pipeline_depth=batch.depth,
            collect_wait_s=smax("collect_wait_s"),
            overlap_s=ssum("overlap_s"),
            retries=int(ssum("retries")),
            hedged=int(ssum("hedged")),
            degraded_ranks=tuple(sorted(degraded_ranks)),
            shards_dispatched=dispatched,
            shards_skipped=self.n_shards - dispatched,
            degraded_shards=tuple(sorted(degraded_shards)),
            shard_stats=shard_stats,
        )
        m = cfg.metrics
        m.counter("fleet.batches").inc()
        m.counter("fleet.shards_dispatched").inc(dispatched)
        m.counter("fleet.shards_skipped").inc(self.n_shards - dispatched)
        m.gauge("fleet.batch_li_wall").set(stats.query_li)
        m.histogram("fleet.batch_total_s").observe(total_s)
        if self._tracer.enabled:
            tracer = self._tracer
            tracer.span(
                "demux",
                t_merge,
                merge_s,
                {"batch": batch.batch_index},
            )
            for sid in sorted(degraded_shards):
                tracer.event(
                    "degraded.shard",
                    {"shard": sid, "batch": batch.batch_index},
                )
            tracer.event(
                "batch",
                {
                    "batch": batch.batch_index,
                    "n_spectra": n_spectra,
                    "total_s": round(total_s, 9),
                    "li_wall": round(stats.query_li, 9),
                    "li_cpu": round(stats.query_li_cpu, 9),
                    "retries": stats.retries,
                    "hedged": stats.hedged,
                    "respawned": stats.respawned,
                    "fleet": True,
                    "shards_dispatched": dispatched,
                    "shards_skipped": self.n_shards - dispatched,
                },
            )
        # A degraded fleet batch is a survived fault — black-box it,
        # after the tracer block so the dump carries the degradation
        # events and this batch's fleet summary.
        if degraded_ranks or degraded_shards:
            stats.flight_record = flight_dump(
                self._ring,
                cfg.flight_dir,
                "degraded-batch",
                batch=batch.batch_index,
            )
        return results, stats

    # -- introspection ---------------------------------------------------

    @property
    def is_open(self) -> bool:
        """True between a successful ``open()`` and ``close()``."""
        return self._opened and not self._closed

    @property
    def n_batches(self) -> int:
        """Batches merged over the session's lifetime."""
        return self._n_batches

    @property
    def flight_recorder(self) -> Optional[RingTracer]:
        """The fleet-wide in-memory flight recorder, or ``None`` when
        a file tracer is active or ``flight_recorder=False``."""
        return self._ring

    @property
    def open_s(self) -> float:
        """Wall seconds ``open()`` took (all shards, sequential)."""
        return self._open_s

    @property
    def attach_s(self) -> float:
        """Summed inner attach seconds across the shards."""
        return sum(s.attach_s for s in self._services)

    @property
    def batch_stats(self) -> List[ShardedBatchStats]:
        """Per-batch stats, oldest first (bounded retention)."""
        return list(self._stats)

    @property
    def respawn_total(self) -> int:
        """Workers respawned across every shard's pool."""
        return sum(s.respawn_total for s in self._services)

    @property
    def rebalance_total(self) -> int:
        """Elastic migrations applied across the fleet: with
        ``rebalance_li`` set on the per-shard config, every shard runs
        its **own** :class:`~repro.service.rebalance.RebalancePolicy`
        over its own pool, so a slow host under one shard migrates
        that shard alone."""
        return sum(s.rebalance_total for s in self._services)

    @property
    def n_workers_total(self) -> int:
        """Live resident workers across the fleet (elastic resizes
        move this off ``n_shards × config.n_workers``)."""
        return sum(s.n_workers for s in self._services)

    @property
    def shard_dispatch_total(self) -> int:
        """Lifetime count of (batch, shard) dispatches actually sent."""
        return self._dispatch_total

    @property
    def shard_skip_total(self) -> int:
        """Lifetime count of (batch, shard) dispatches routing skipped."""
        return self._skip_total

    @property
    def services(self) -> List[SearchService]:
        """The inner per-shard sessions (read-only introspection)."""
        return list(self._services)

    def worker_pids(self) -> List[Optional[int]]:
        """Flat fleet PIDs: shard 0's ranks, then shard 1's, ..."""
        pids: List[Optional[int]] = []
        for service in self._services:
            pids.extend(service.worker_pids())
        return pids
