"""LI-triggered elastic rebalancing for live search sessions.

The LBE paper computes its load-balanced plan **once, offline**; its
stated next step — and HiCOPS's observed reality — is that on
heterogeneous or oversubscribed hosts a frozen partition drifts into
*sustained* load imbalance that no per-batch retry can fix: the slow
rank is not failing, it is just slow, every batch, forever.  This
module is the decision side of the fix:

* :class:`RebalanceConfig` — the knobs (`ServiceConfig` carries one, so
  every shard of a sharded tier gets its *own* independent policy
  instance from the same frozen config).
* :class:`RebalancePolicy` — a stateful watcher fed one
  :class:`~repro.service.service.BatchStats` worth of per-rank
  wall/CPU vectors per batch.  Over a sliding window of ``window``
  batches it recomputes the paper's Eq.-1 LI; when the window's LI
  stays at or above ``li_threshold`` (or any rank is chronically slow —
  inferred speed below ``slow_rank_speed``), it emits a
  :class:`RebalanceDecision` carrying per-rank **speed weights**
  inferred from the observed walls (see
  :func:`~repro.search.rank.observed_rank_speeds`: observed wall is
  divided by the rank's *predicted work share*, so "overloaded" and
  "slow host" separate cleanly).
* Escalation: when a *second* consecutive window still trips after a
  speeds-only migration, the decision also grows the worker pool by
  one — re-weighting cannot beat a saturated pool.  Growth requires
  ``max_workers`` to be set (and is clamped to it): an unbounded
  session never scales itself.  Shrinking is never automatic; callers
  shrink explicitly
  (:meth:`~repro.service.service.SearchService.rebalance`).

The policy only *decides*; the service migrates between rounds (drain
the in-flight round, swap plans, re-attach exactly the changed ranks)
and the pool actuates
(:meth:`~repro.parallel.persistent.PersistentPool.reconfigure`).
Because a plan changes *which rank scores what* and never *what is
scored*, results stay bit-identical to the serial engine across every
migration — the tests enforce exactly that.

Why wall/CPU vectors and not just the LI scalar?  The LI gauge
(``service.batch_li_wall``, windowed via
:meth:`~repro.obs.metrics.Gauge.read_watermarks`) is the cheap *alarm*;
the full vectors are the *diagnosis* — they say which rank is slow and
by how much, which is what the speed weights need.  The decision also
reports the per-rank CPU/wall ratios: a rank starved of CPU
(oversubscribed host) shows ``cpu/wall << 1`` while a down-clocked
host shows ``cpu/wall ≈ 1`` — both are absorbed the same way (smaller
share), but the trace event tells the operator which disease they
have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.search.metrics import load_imbalance
from repro.search.rank import observed_rank_speeds

__all__ = ["RebalanceConfig", "RebalanceDecision", "RebalancePolicy"]


@dataclass(frozen=True, slots=True)
class RebalanceConfig:
    """Trigger thresholds and elasticity bounds for one session.

    Attributes
    ----------
    li_threshold:
        Eq.-1 LI level that counts as imbalanced.  A window whose mean
        LI reaches it (or that contains a chronically slow rank) trips
        the trigger.
    window:
        Batches per decision window; the policy decides at most once
        per window, from window-mean walls (single-batch noise never
        migrates a session).
    cooldown:
        Windows to sit out after a migration, letting the new plan
        produce a full untainted window before being judged.
    min_workers / max_workers:
        Pool-size clamp for elastic scaling.  ``None`` pins the size
        (no automatic growth; explicit resizes are still clamped when
        bounds are set).
    slow_rank_speed:
        Chronic-slow-rank trip wire: any rank whose inferred relative
        speed falls below this triggers even when the aggregate LI
        does not (one slow rank of many barely moves the mean).
    """

    li_threshold: float = 0.5
    window: int = 4
    cooldown: int = 1
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    slow_rank_speed: float = 0.5

    def __post_init__(self) -> None:
        if self.li_threshold < 0:
            raise ConfigurationError(
                f"li_threshold must be >= 0, got {self.li_threshold}"
            )
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if self.cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be >= 0, got {self.cooldown}"
            )
        if self.min_workers is not None and self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if (
            self.min_workers is not None
            and self.max_workers is not None
            and self.min_workers > self.max_workers
        ):
            raise ConfigurationError(
                f"min_workers {self.min_workers} > max_workers "
                f"{self.max_workers}"
            )
        if not 0.0 <= self.slow_rank_speed < 1.0:
            raise ConfigurationError(
                f"slow_rank_speed must be in [0, 1), got {self.slow_rank_speed}"
            )

    def clamp(self, n_workers: int) -> int:
        """``n_workers`` forced inside the configured bounds."""
        if self.min_workers is not None:
            n_workers = max(n_workers, self.min_workers)
        if self.max_workers is not None:
            n_workers = min(n_workers, self.max_workers)
        return max(n_workers, 1)


@dataclass(frozen=True, slots=True)
class RebalanceDecision:
    """One tripped window: what the new plan should look like.

    ``speeds`` are relative per-rank speeds (unit mean) for the
    **current** rank space; when ``n_workers`` differs from the
    current count the service extends/truncates them (a grown rank
    starts at the mean speed 1.0 — it has no history).
    """

    speeds: Tuple[float, ...]
    n_workers: int
    window_li: float
    reason: str
    cpu_wall_ratio: Tuple[float, ...] = ()


class RebalancePolicy:
    """Sliding-window LI watcher producing :class:`RebalanceDecision`.

    Parameters
    ----------
    config:
        Thresholds and bounds.
    n_workers:
        The current rank-vector width; observations of any other width
        are discarded (they straddle a resize) and restart the window.
    work_shares:
        Per-rank predicted work under the *current* plan (see
        :meth:`~repro.core.planner.LBEPlan.rank_loads`), the
        denominator of the speed inference.  The service refreshes it
        via :meth:`rebalanced` after every migration.
    """

    def __init__(
        self,
        config: RebalanceConfig,
        n_workers: int,
        work_shares: Optional[np.ndarray] = None,
    ) -> None:
        self.config = config
        self.n_workers = int(n_workers)
        self.work_shares = (
            np.ones(self.n_workers)
            if work_shares is None
            else np.asarray(work_shares, dtype=np.float64)
        )
        self._walls: List[np.ndarray] = []
        self._cpus: List[np.ndarray] = []
        self._cooldown = 0
        self._consecutive_trips = 0
        self.trigger_total = 0

    def rebalanced(
        self, n_workers: int, work_shares: np.ndarray
    ) -> None:
        """Adopt a migrated plan: new shares, fresh window, cooldown on.

        The escalation streak deliberately survives: it counts tripped
        windows *including* the one that caused this migration, so a
        window that still trips after a speeds-only migration is the
        "second consecutive trip" that grows the pool.  Only a calm
        window (in :meth:`observe`) resets it.
        """
        self.n_workers = int(n_workers)
        self.work_shares = np.asarray(work_shares, dtype=np.float64)
        self._walls.clear()
        self._cpus.clear()
        self._cooldown = self.config.cooldown

    def observe(
        self, query_wall_s: Tuple[float, ...], query_cpu_s: Tuple[float, ...]
    ) -> Optional[RebalanceDecision]:
        """Feed one batch's per-rank vectors; maybe return a decision.

        Returns ``None`` until a full window accumulated; a completed
        window either trips (decision returned, counted in
        ``trigger_total``) or resets the escalation streak.
        """
        walls = np.asarray(query_wall_s, dtype=np.float64)
        if walls.size != self.n_workers:
            # Straddles a resize the policy has not been told about
            # yet — stale vector, not a signal.
            return None
        self._walls.append(walls)
        self._cpus.append(np.asarray(query_cpu_s, dtype=np.float64))
        if len(self._walls) < self.config.window:
            return None
        mean_walls = np.mean(self._walls, axis=0)
        mean_cpus = np.mean(self._cpus, axis=0)
        self._walls.clear()
        self._cpus.clear()
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        window_li = load_imbalance(mean_walls)
        speeds = observed_rank_speeds(self.work_shares, mean_walls)
        # The chronic-slow tripwire is gated on *residual* imbalance:
        # a correctly compensated plan keeps a slow host's inferred
        # speed low forever (that is the host, not the plan), so
        # absolute speed alone would re-migrate an already balanced
        # session every window.
        slow = (
            float(speeds.min()) < self.config.slow_rank_speed
            and window_li >= 0.5 * self.config.li_threshold
        )
        if window_li < self.config.li_threshold and not slow:
            self._consecutive_trips = 0
            return None
        self._consecutive_trips += 1
        self.trigger_total += 1
        # Escalate to pool growth only when a speeds-only migration
        # already failed to calm the same session down — and only when
        # growth was authorized by setting ``max_workers`` (an
        # unbounded session never scales itself).
        n_workers = self.n_workers
        reason = "slow_rank" if slow and window_li < self.config.li_threshold else "li"
        if self._consecutive_trips >= 2 and self.config.max_workers is not None:
            grown = self.config.clamp(self.n_workers + 1)
            if grown > self.n_workers:
                n_workers = grown
                reason = "escalate_grow"
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(mean_walls > 0, mean_cpus / mean_walls, 0.0)
        return RebalanceDecision(
            speeds=tuple(float(s) for s in speeds),
            n_workers=n_workers,
            window_li=float(window_li),
            reason=reason,
            cpu_wall_ratio=tuple(float(r) for r in ratio),
        )
