"""The persistent search service: one session, many query batches.

Session lifecycle (the amortization structure)::

    service = SearchService(database, ServiceConfig(n_workers=2))
    service.open()            # spawn pool, spill arena, ATTACH workers
    for batch in stream:
        results, stats = service.submit(batch)   # QUERY round per batch
    service.close()           # SHUTDOWN

``open()`` pays every per-run cost the one-shot engine pays per batch
— worker spawn + interpreter import, the arena spill (through the
process-wide spill cache, so an engine over the same database shares
it), and the per-rank partial-index build.  ``submit()`` then costs
only: preprocess, spill the batch to a memmap-shared
:class:`~repro.parallel.shared_spectra.SharedSpectraStore`, one
O(manifest) pickled :class:`~repro.parallel.worker.QueryTask` per
worker, the workers' query phase, and the master merge.  The pickled
scatter volume per batch is recorded in :class:`BatchStats`
(``scatter_bytes``) next to what pickling the peak arrays would have
cost (``peak_bytes``) — the communication-lower-bounds story in
numbers.

The pipelined session
---------------------
Every batch still runs the same five stages, but the session is a
**software pipeline over the batch stream** (HiCOPS overlaps its
serial master phases with parallel compute the same way): a single
master-side pipeline thread drives the stages so that the master works
on neighbouring batches while the workers query the current one::

    batch N   :  prep+spill ──▶ dispatch ═══ workers query ═══▶ collect ──▶ merge
    batch N+1 :               prep+spill ──────────────▲              dispatch ═══ ...
                              (runs while N's round          (N+1 scatters before
                               is on the pipe)                N's merge runs)

* the **prepare stage** (preprocess + spectra spill) of batch N+1 runs
  on the pipeline thread while the workers are busy with batch N's
  round (between :meth:`~repro.parallel.persistent.PersistentPool.dispatch`
  and :meth:`~repro.parallel.persistent.RoundHandle.collect`),
* the **merge** of batch N's payloads runs after batch N+1's round has
  already been dispatched, so the master's merge overlaps the workers'
  next query phase,
* the pool still serializes the pipe protocol: at most **one round is
  on the pipe at a time** (the dispatch lock inside the pool), so the
  crash/respawn/deadline contract is per-round, exactly as before,
* batch N+1's spilled spectra store lives from its prepare until its
  own collect — at most two batch directories exist at once (the
  in-flight batch's and the prepared successor's), and each is removed
  as soon as its round is collected.

``submit_async(spectra)`` returns a
:class:`concurrent.futures.Future` resolving to ``(SearchResults,
BatchStats)``; futures complete strictly in submission order, and a
batch that fails (a worker raised or died mid-round) fails **only its
own future** — later queued batches still return correct results on
the respawned workers.  ``submit()`` is a thin blocking wrapper;
``stream(batches)`` drives an iterable through the pipeline with at
most ``max_pending`` batches in flight, yielding results in order.
Results are bit-identical to the sequential path and the serial
engine: the pipeline reorders *when* stages run, never *what* they
compute.

Admission is bounded: at most ``max_pending`` batches may be admitted
(queued or in flight) at once; the next ``submit_async()`` is rejected
with :class:`~repro.errors.ServiceError` instead of growing an
unbounded queue.

Failure semantics (inherited from
:class:`~repro.parallel.persistent.PersistentPool` and test-enforced
by the chaos suite).  The matrix, with R = ``max_retries``:

=======================  ================================================
fault × stage            observed behavior
=======================  ================================================
crash before attach      ``open()`` heals for R >= 1 (the respawned
                         worker's replayed attach is the retry), else
                         raises :class:`~repro.errors.WorkerError`.
crash / raise / hang     the batch's future succeeds **bit-identically**
mid-query (any batch)    to the fault-free run for R >= 1 (only the
                         failing rank's payload is re-dispatched, with
                         exponential backoff); for R = 0 it fails with
                         :class:`WorkerError` while the session
                         survives — the next batch runs on respawned,
                         re-attached workers.  A hang is bounded by the
                         per-rank round deadline (never hangs).
crash before reply       identical to crash mid-query: computed but
                         unreported work is re-run.
slow straggler           with ``hedge_after`` set, a speculative
                         duplicate of every still-outstanding rank's
                         task races the original on a fresh attached
                         worker; first answer wins per (batch, rank),
                         the loser is terminated (a late duplicate can
                         never double-merge).
retries exhausted        default: the batch's future fails loud.  With
                         ``degraded_ok=True`` it resolves to partial
                         results whose ``degraded_ranks`` mask (on
                         :class:`SearchResults` *and* :class:`BatchStats`)
                         names the uncovered partitions explicitly.
pipeline-thread bug      every admitted future fails with
                         :class:`~repro.errors.PipelineError`; the
                         session must be closed.
rebalance migration      applied only **between rounds** (after the
(live re-plan /          in-flight round is collected, before the next
pool resize)             dispatch), so no batch ever straddles two
                         plans: every batch merges against the plan
                         stamped on it at dispatch time, and futures
                         keep resolving strictly in order.  Results
                         stay bit-identical across the migration — the
                         plan moves *which rank scores what*, never
                         what is scored.
crash during a          the pool heals it with the standard
rebalance re-attach      respawn/backoff budget; once retries exhaust
                         the rank is left dead with the **new**
                         manifest remembered, so the next round's
                         respawn completes the migration — the session
                         adopts the new plan either way and never
                         mixes manifests from two plans in one merge.
=======================  ================================================

Elastic rebalancing (the heterogeneity story)
---------------------------------------------
With ``rebalance_li`` set, the session watches its own Eq.-1 LI gauge
and per-rank wall/CPU vectors over a sliding window of batches
(:class:`~repro.service.rebalance.RebalancePolicy`).  Sustained
imbalance — or a chronically slow rank — recomputes the LBE plan with
per-rank **speed weights** inferred from the observed walls (weighted
LPT, paper §VIII), migrates between rounds by re-attaching only the
ranks whose manifests changed
(:meth:`~repro.parallel.persistent.PersistentPool.reconfigure`;
``FragmentArena.take`` makes a re-attach one sub-arena gather), and
can grow the worker pool within ``min_workers``/``max_workers``.
:meth:`SearchService.rebalance` requests the same migration
explicitly (e.g. an operator shrinking an idle session).  Every
migration emits ``rebalance.trigger`` / ``rebalance.migrate`` (and
``pool.resize``) trace events.

``close()`` drains: every already-admitted batch completes (each stage
bounded by the pool deadline) before the workers shut down, so
in-flight futures resolve deterministically — never hang, never leak.
``open()`` also sweeps stale spill/spectra stores left behind by
earlier crashed sessions (see
:func:`~repro.parallel.shared_arena.sweep_stale_stores`).
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.grouping import GroupingConfig
from repro.core.planner import LBEPlan, changed_ranks
from repro.core.predict import WorkModel
from repro.errors import (
    ConfigurationError,
    PipelineError,
    ServiceError,
    ShardError,
    WorkerError,
)
from repro.index.slm import SLMIndexSettings
from repro.obs.metrics import MetricsRegistry, global_registry, quantile
from repro.obs.ring import RingTracer, flight_dump
from repro.obs.trace import NULL_TRACER, Tracer
from repro.parallel.faults import FaultPlan
from repro.parallel.persistent import PersistentPool, PoolBatchResult
from repro.parallel.shared_arena import (
    SharedSpill,
    shared_spill_for,
    sweep_stale_stores,
    write_owner_marker,
)
from repro.parallel.shared_spectra import SharedSpectraStore
from repro.parallel.worker import (
    AttachTask,
    QueryTask,
    service_attach_worker,
    service_query_worker,
)
from repro.search.database import IndexedDatabase
from repro.search.engine import make_lbe_plan
from repro.search.metrics import load_imbalance
from repro.search.psm import RankStats, SearchResults
from repro.search.rank import (
    merge_rank_payloads,
    rank_stats_from_report,
    worker_spans_from_report,
)
from repro.service.rebalance import (
    RebalanceConfig,
    RebalanceDecision,
    RebalancePolicy,
)
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import (
    PreprocessConfig,
    preprocess_batch,
    spectra_peak_bytes,
)

__all__ = [
    "ServiceConfig",
    "BatchStats",
    "SessionStats",
    "SearchService",
    "aggregate_batch_stats",
]

#: Most recent batches whose :class:`BatchStats` a session retains —
#: enough for steady-state monitoring, O(1) for unbounded streams
#: (:attr:`SearchService.n_batches` keeps the lifetime count).
_STATS_RETENTION = 1024

#: Minimum predicted makespan gain (fractional) an automatic
#: speed-only re-plan must promise before the session migrates —
#: the churn gate that keeps noisy speed estimates from re-attaching
#: workers every window for nothing.
_MIN_MIGRATE_GAIN = 0.05

#: Idle poll period of the pipeline thread: how often it re-checks,
#: while *waiting for work*, that its service is still alive (the
#: thread holds only a weak reference, so a session dropped without
#: ``close()`` can still be garbage-collected).
_IDLE_POLL_S = 0.5


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Persistent-service configuration.

    Attributes
    ----------
    n_workers:
        Resident OS worker processes (the rank count).
    policy:
        Partition policy name: ``chunk`` / ``cyclic`` / ``random`` /
        ``lpt``.
    policy_seed:
        Seed for the Random policy's shuffles.
    grouping:
        Algorithm 1 parameters.
    index:
        SLM index/query settings (shared by every batch — the resident
        partial indexes are built against them at attach time).
    preprocess:
        Query peak-picking settings, applied per submitted batch.
    top_k:
        PSMs retained per spectrum.
    start_method:
        ``multiprocessing`` start method for the resident workers.
    timeout:
        Real-seconds deadline per pool round (attach or batch).
    max_pending:
        Bound on concurrently admitted batches (queued + in flight
        through the pipeline); further ``submit_async()`` callers are
        rejected with :class:`~repro.errors.ServiceError`.
    max_retries:
        Per-rank re-dispatch budget per batch (see the failure matrix
        above).  0 (default) keeps the historical fail-fast contract.
    retry_backoff_s:
        Base of the exponential retry backoff.
    hedge_after:
        Soft straggler deadline in seconds (``None`` disables
        hedging — the default, zero idle-path overhead).
    degraded_ok:
        Opt into partial results after retries exhaust (default:
        fail loud).
    fault_plan:
        Chaos-testing fault schedule for the workers (tests only;
        production sessions leave it ``None`` and may use the
        ``REPRO_FAULT_PLAN`` env var instead).
    transport:
        Worker bootstrap mechanism for the resident pool — a
        :mod:`repro.parallel.transport` registry name (default
        ``"pipe"``: local spawn workers on OS pipes).
    tracer:
        Observability sink (:mod:`repro.obs`): pipeline-stage spans,
        per-rank worker spans, the per-batch summary event, and every
        supervision transition flow through it.  The default
        :data:`~repro.obs.trace.NULL_TRACER` is a no-op and every
        emit site is ``tracer.enabled``-guarded, so a session without
        ``--trace`` pays one branch per site.
    metrics:
        Live :class:`~repro.obs.metrics.MetricsRegistry` fed once per
        batch (latency histograms, supervision counters, and the
        per-batch load-imbalance gauges ``service.batch_li_wall`` /
        ``service.batch_li_cpu``).  Defaults to the process-wide
        registry; tests inject a fresh one for isolation.
    flight_recorder:
        Always-on black box (default on): when no file tracer is
        configured, the service installs a
        :class:`~repro.obs.ring.RingTracer` holding the last
        ~:data:`~repro.obs.ring.DEFAULT_CAPACITY` trace records in
        memory and dumps them to a schema-valid JSONL file whenever a
        :class:`~repro.errors.WorkerError` surfaces or a batch
        degrades — the dump's path rides on ``exc.flight_record`` /
        ``BatchStats.flight_record``.  Ignored (no ring) when
        ``tracer`` is enabled: the file trace already has everything.
    flight_dir:
        Directory the black boxes are dumped into (default: the
        system temp dir).  Created on first dump.
    rebalance_li:
        Eq.-1 LI level that arms elastic rebalancing (``None``, the
        default, disables it): when a sliding window of batches
        sustains this LI (or contains a chronically slow rank), the
        session re-plans with observed speed weights and migrates
        between rounds.  See the module docstring's elastic section.
    rebalance_window:
        Batches per rebalance decision window (the trigger judges
        window means, never single batches).
    rebalance_cooldown:
        Decision windows to sit out after a migration before judging
        the new plan.
    min_workers / max_workers:
        Elastic pool-size bounds: automatic escalation grows at most
        to ``max_workers``; explicit :meth:`SearchService.rebalance`
        resizes are clamped to both.  ``None`` bounds pin the size at
        ``n_workers`` for automatic decisions.
    """

    n_workers: int = 2
    policy: str = "cyclic"
    policy_seed: int = 0
    grouping: GroupingConfig = GroupingConfig()
    index: SLMIndexSettings = field(default_factory=SLMIndexSettings)
    preprocess: PreprocessConfig = PreprocessConfig()
    top_k: int = 5
    start_method: str = "spawn"
    timeout: float = 600.0
    max_pending: int = 4
    max_retries: int = 0
    retry_backoff_s: float = 0.05
    hedge_after: Optional[float] = None
    degraded_ok: bool = False
    fault_plan: Optional[FaultPlan] = None
    transport: str = "pipe"
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=global_registry)
    flight_recorder: bool = True
    flight_dir: Optional[Path] = None
    rebalance_li: Optional[float] = None
    rebalance_window: int = 4
    rebalance_cooldown: int = 1
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None

    def rebalance_config(self) -> Optional[RebalanceConfig]:
        """The elastic-rebalancing knobs, or ``None`` when disabled."""
        if self.rebalance_li is None:
            return None
        return RebalanceConfig(
            li_threshold=self.rebalance_li,
            window=self.rebalance_window,
            cooldown=self.rebalance_cooldown,
            min_workers=self.min_workers,
            max_workers=self.max_workers,
        )

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {self.top_k}")
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ConfigurationError(
                f"hedge_after must be > 0 or None, got {self.hedge_after}"
            )
        # Worker-pool bounds apply to explicit rebalance() clamping
        # even when the automatic policy is unarmed, so validate them
        # unconditionally.
        if self.min_workers is not None and self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if (
            self.min_workers is not None
            and self.max_workers is not None
            and self.min_workers > self.max_workers
        ):
            raise ConfigurationError(
                f"min_workers {self.min_workers} > max_workers "
                f"{self.max_workers}"
            )
        # Validate the rebalance knobs eagerly (constructing the
        # RebalanceConfig runs its own __post_init__).
        self.rebalance_config()


@dataclass(slots=True)
class BatchStats:
    """Real phase seconds and scatter accounting for one batch.

    Attributes
    ----------
    batch_index:
        0-based position of this batch within the session.
    n_spectra:
        Query spectra in the batch.
    preprocess_s / spill_s / parallel_s / merge_s / total_s:
        Master-observed wall seconds per phase (``parallel_s`` spans
        dispatch → collect return; ``total_s`` spans prepare start →
        merge end, including any time the master overlapped other
        batches' stages with this batch's round).
    query_wall_s / query_cpu_s:
        The **full per-rank vectors** of query wall / process-CPU
        seconds, in rank order — what the paper's load-imbalance
        metric (Eq. 1) needs; the old scalar maxima survive as the
        derived properties :attr:`query_wall_max_s` /
        :attr:`query_cpu_max_s`, and :attr:`query_li` /
        :attr:`query_li_cpu` compute LI live.  A degraded rank
        contributes 0.0 at its slot (its coverage is already masked
        by ``degraded_ranks``).
    scatter_bytes:
        Actual command bytes written to the worker pipes for this
        batch — the shared :class:`~repro.parallel.worker.QueryTask`
        is pickled once and its buffer reused for every worker, so
        this is O(batch manifest) by construction.
    peak_bytes:
        What pickling the preprocessed peak arrays to every worker
        would have cost (``n_workers ×`` the batch's peak bytes) — the
        baseline ``scatter_bytes`` replaces.
    respawned:
        Workers respawned (and re-attached) to serve this batch.
    wait_s:
        Seconds this batch waited in the admission queue before its
        prepare stage started (0 when the pipeline was idle).
    pipeline_depth:
        Batches admitted (queued + in flight, including this one) at
        the moment this batch was accepted — 1 for a sequential
        ``submit()`` caller, up to ``max_pending`` under streaming.
    collect_wait_s:
        Seconds the master spent blocked in ``collect()`` waiting for
        the workers *after* finishing its overlapped work — the
        residual master-idle gap the pipeline could not fill.
    overlap_s:
        Master-side seconds of this batch's stages that ran while a
        worker round was on the pipe (its prepare under the previous
        batch's round + its merge under the next batch's round) — the
        wall time the pipeline hid behind worker compute.
    retries:
        Per-rank re-dispatches the supervision layer performed to
        finish this batch (0 in steady state).
    hedged:
        Speculative straggler duplicates launched for this batch (0
        without ``hedge_after`` or when no rank straggled).
    degraded_ranks:
        Ranks whose partition is missing from this batch's results —
        non-empty only in ``degraded_ok`` mode after retries exhaust.
    flight_record:
        Path of the flight-recorder black box dumped because this
        batch degraded, or ``None`` (healthy batch, or no recorder
        installed).
    """

    batch_index: int
    n_spectra: int
    preprocess_s: float
    spill_s: float
    parallel_s: float
    merge_s: float
    total_s: float
    query_wall_s: Tuple[float, ...]
    query_cpu_s: Tuple[float, ...]
    scatter_bytes: int
    peak_bytes: int
    respawned: int
    wait_s: float = 0.0
    pipeline_depth: int = 1
    collect_wait_s: float = 0.0
    overlap_s: float = 0.0
    retries: int = 0
    hedged: int = 0
    degraded_ranks: Tuple[int, ...] = ()
    flight_record: Optional[str] = None
    #: Master-observed per-rank wall / process-CPU seconds of the whole
    #: query round on the pipe (store open + query body + any straggler
    #: or injected delay) — a superset of ``query_wall_s`` that sees
    #: *everything* that makes a rank slow, which is why the elastic
    #: rebalance policy watches these vectors rather than the workers'
    #: self-reported query times.
    round_wall_s: Tuple[float, ...] = ()
    round_cpu_s: Tuple[float, ...] = ()

    @property
    def query_wall_max_s(self) -> float:
        """Slowest worker's query wall seconds (the latency floor)."""
        return max(self.query_wall_s, default=0.0)

    @property
    def query_cpu_max_s(self) -> float:
        """Slowest worker's query process-CPU seconds."""
        return max(self.query_cpu_s, default=0.0)

    @property
    def query_li(self) -> float:
        """Per-batch load imbalance (Eq. 1) over the query wall vector.

        Exactly :func:`repro.search.metrics.load_imbalance` over
        :attr:`query_wall_s`, so the live gauge and offline
        recomputations agree bit-for-bit; 0.0 when the vector is
        empty or all-zero.
        """
        if not self.query_wall_s:
            return 0.0
        return load_imbalance(self.query_wall_s)

    @property
    def query_li_cpu(self) -> float:
        """Per-batch load imbalance over the query CPU vector."""
        if not self.query_cpu_s:
            return 0.0
        return load_imbalance(self.query_cpu_s)


@dataclass(frozen=True, slots=True)
class SessionStats:
    """Session-level aggregate over a sequence of :class:`BatchStats`.

    One canonical summation (see :func:`aggregate_batch_stats`) shared
    by the CLI serve table and the throughput benchmarks, instead of
    each re-deriving steady-state figures ad hoc.

    Attributes
    ----------
    n_batches:
        Batches aggregated.
    first_batch_s / steady_batch_s / mean_batch_s:
        First batch's wall seconds, the steady-state per-batch floor
        (min over batches after the first — the first batch pays
        cold-cache costs), and the plain mean.
    p50_batch_s / p95_batch_s:
        Steady-state latency percentiles over the same population as
        ``steady_batch_s`` (batches after the first), computed with
        the metrics layer's quantile
        (:func:`repro.obs.metrics.quantile`) — the distributional
        view the min/mean pair cannot give.
    query_li_mean / query_li_max:
        Per-batch load imbalance (Eq. 1 over the per-rank query wall
        vector, :attr:`BatchStats.query_li`) averaged / worst-cased
        over the aggregated batches.
    retries / hedged / respawned:
        Supervision-layer totals over the aggregated batches (all 0 in
        a fault-free session).
    overlap_s_total:
        Master-side seconds hidden behind worker rounds by the
        pipelined session, summed over batches.
    collect_wait_s_total:
        Residual master-idle seconds in ``collect()``, summed.
    pipeline_depth_max:
        Deepest concurrent admission observed.
    scatter_bytes_max:
        Largest per-batch pickled scatter volume.
    degraded_batches:
        Batches that resolved with a non-empty degraded mask
        (``degraded_ranks`` — or ``degraded_shards`` on the sharded
        tier's stats).
    """

    n_batches: int
    first_batch_s: float
    steady_batch_s: float
    mean_batch_s: float
    p50_batch_s: float
    p95_batch_s: float
    query_li_mean: float
    query_li_max: float
    retries: int
    hedged: int
    respawned: int
    overlap_s_total: float
    collect_wait_s_total: float
    pipeline_depth_max: int
    scatter_bytes_max: int
    degraded_batches: int


def aggregate_batch_stats(stats: Sequence[BatchStats]) -> SessionStats:
    """Fold per-batch :class:`BatchStats` into one :class:`SessionStats`.

    Accepts any stats the service kinds produce (plain or sharded);
    an empty sequence aggregates to all zeros.
    """
    stats = list(stats)
    if not stats:
        return SessionStats(
            n_batches=0, first_batch_s=0.0, steady_batch_s=0.0,
            mean_batch_s=0.0, p50_batch_s=0.0, p95_batch_s=0.0,
            query_li_mean=0.0, query_li_max=0.0,
            retries=0, hedged=0, respawned=0,
            overlap_s_total=0.0, collect_wait_s_total=0.0,
            pipeline_depth_max=0, scatter_bytes_max=0, degraded_batches=0,
        )
    totals = [s.total_s for s in stats]
    # Steady-state population: batches after the first (which pays
    # cold-cache costs); a one-batch session falls back to that batch.
    steady_pop = totals[1:] if len(totals) > 1 else totals
    lis = [s.query_li for s in stats]
    degraded = sum(
        1
        for s in stats
        if s.degraded_ranks or getattr(s, "degraded_shards", ())
    )
    return SessionStats(
        n_batches=len(stats),
        first_batch_s=totals[0],
        steady_batch_s=min(steady_pop),
        mean_batch_s=sum(totals) / len(totals),
        p50_batch_s=quantile(steady_pop, 0.50),
        p95_batch_s=quantile(steady_pop, 0.95),
        query_li_mean=sum(lis) / len(lis),
        query_li_max=max(lis),
        retries=sum(s.retries for s in stats),
        hedged=sum(s.hedged for s in stats),
        respawned=sum(s.respawned for s in stats),
        overlap_s_total=sum(s.overlap_s for s in stats),
        collect_wait_s_total=sum(s.collect_wait_s for s in stats),
        pipeline_depth_max=max(s.pipeline_depth for s in stats),
        scatter_bytes_max=max(s.scatter_bytes for s in stats),
        degraded_batches=degraded,
    )


class _PendingBatch:
    """One admitted batch's mutable trip through the pipeline stages."""

    __slots__ = (
        "spectra", "future", "batch_index", "enqueued_at", "depth",
        "batch_dir", "n_processed", "peak_bytes", "handle",
        "dispatched_at", "round", "error", "t_start", "wait_s",
        "prep_s", "spill_s", "collect_wait_s", "parallel_s",
        "prepared_overlapped", "released", "plan", "attach_stats",
    )

    def __init__(
        self, spectra: List[Spectrum], future: Future, batch_index: int,
        enqueued_at: float, depth: int,
    ) -> None:
        self.spectra = spectra
        self.future = future
        self.batch_index = batch_index
        self.enqueued_at = enqueued_at
        self.depth = depth
        self.batch_dir: Optional[Path] = None
        self.n_processed = 0
        self.peak_bytes = 0
        self.handle = None
        self.dispatched_at = 0.0
        self.round: Optional[PoolBatchResult] = None
        self.error: Optional[BaseException] = None
        self.t_start = 0.0
        self.wait_s = 0.0
        self.prep_s = 0.0
        self.spill_s = 0.0
        self.collect_wait_s = 0.0
        self.parallel_s = 0.0
        self.prepared_overlapped = False
        self.released = False
        # A rebalance migration may swap the session's plan between
        # this batch's dispatch and its merge — the plan (and the
        # attach stats that describe the resident indexes it was
        # scored on) are stamped at dispatch time so the merge always
        # uses the manifests its round actually ran against.
        self.plan: Optional[LBEPlan] = None
        self.attach_stats: List[RankStats] = []


class _PipelineState:
    """The pipeline thread's shared mailbox (owned by the service).

    Kept on a separate object so the thread's target needs no strong
    reference to the service while it waits for work.
    """

    __slots__ = ("cond", "items", "stopping", "broken")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.items: deque[_PendingBatch] = deque()
        self.stopping = False
        self.broken = False

    def dequeue(self, *, block: bool):
        """Next admitted batch, or ``None`` (empty, non-blocking),
        ``_STOP`` (drained and stopping), or ``_TICK`` (idle poll)."""
        with self.cond:
            while True:
                if self.items:
                    return self.items.popleft()
                if self.stopping:
                    return _STOP
                if not block:
                    return None
                if not self.cond.wait(_IDLE_POLL_S):
                    return _TICK


_STOP = object()
_TICK = object()


def _pipeline_main(state: _PipelineState, service_ref) -> None:
    """Pipeline thread body: one cycle per batch, one overlap window.

    Holds the service only through ``service_ref`` while idle, so a
    session dropped without ``close()`` stays collectable; its
    finalizers then reap the workers and the session directory.
    """
    inflight: Optional[_PendingBatch] = None
    while True:
        item = state.dequeue(block=inflight is None)
        if item is _TICK:
            service = service_ref()
            if service is None:
                return  # orphaned session: nothing left to serve
            try:
                # An idle session has no round on the pipe, so a
                # pending rebalance (an explicit resize, say) can be
                # applied right now instead of waiting for traffic.
                service._stage_rebalance()
            finally:
                del service
            continue
        service = service_ref()
        if service is None:
            # Orphaned with work in hand: nothing can be merged any
            # more (the pool is gone with the service), but every
            # admitted future must still resolve — the dequeued batch,
            # the dispatched in-flight one, and the whole queue.  The
            # service's own finalizers reap the workers and spill dirs.
            orphans = [
                b
                for b in (inflight, item if isinstance(item, _PendingBatch) else None)
                if b is not None
            ]
            with state.cond:
                state.broken = True
                orphans += list(state.items)
                state.items.clear()
            exc = ServiceError("service was garbage-collected mid-stream")
            for batch in orphans:
                try:
                    if not batch.future.done():
                        batch.future.set_exception(exc)
                except InvalidStateError:  # pragma: no cover - cancel race
                    pass
            return
        nxt = item if isinstance(item, _PendingBatch) else None
        try:
            # Stage 1 — prepare N+1 (preprocess + spill) while N's
            # round, if any, is still on the pipe.
            if nxt is not None and not service._stage_prepare(
                nxt, overlapped=inflight is not None
            ):
                nxt = None
            # Stage 2 — gather N's worker payloads.
            if inflight is not None:
                service._stage_collect(inflight)
            # Rebalance point — the only moment in the cycle when no
            # round is on the pipe (N collected, N+1 not dispatched):
            # apply a pending migration here so no batch ever straddles
            # two plans.  Batch N merges below against the plan stamped
            # on it at dispatch time.
            service._stage_rebalance()
            # Stage 3 — scatter N+1 before merging N, so the merge
            # overlaps the workers' next query phase.
            if nxt is not None and not service._stage_dispatch(nxt):
                nxt = None
            # Stage 4 — merge N and resolve its future.
            if inflight is not None:
                service._stage_finalize(inflight, merged_overlapped=nxt is not None)
            inflight = nxt
            if item is _STOP and inflight is None:
                return
        except BaseException as exc:  # noqa: BLE001 - must never die silently
            # A stage bug must not strand futures: fail everything this
            # cycle touched (the collected batch AND the just-dispatched
            # successor) plus the whole queue, and mark the pipeline
            # broken.  _fail_batch tolerates already-settled batches.
            with state.cond:
                state.broken = True
                leftovers = list(state.items)
                state.items.clear()
            victims = [b for b in (inflight, nxt) if b is not None]
            for batch in dict.fromkeys(victims + leftovers):
                service._fail_batch(batch, PipelineError(
                    f"service pipeline thread crashed: {exc!r}"
                ))
            raise
        finally:
            del service  # drop the strong reference between cycles


class SearchService:
    """A long-lived search session over a resident worker pool.

    Parameters
    ----------
    database:
        The indexed database (the master's copy; resident workers see
        only the memmap-shared arena plus their manifests).
    config:
        Service configuration.

    Usable as a context manager (``with SearchService(db) as svc:``);
    ``open()`` is idempotent, ``close()`` is idempotent, and
    ``submit()`` after ``close()`` raises
    :class:`~repro.errors.ServiceError`.
    """

    def __init__(
        self, database: IndexedDatabase, config: ServiceConfig = ServiceConfig()
    ) -> None:
        self.database = database
        self.config = config
        self._tracer = config.tracer
        # Flight recorder: with no file tracer configured, record into
        # a bounded in-memory ring instead, dumped on failure paths.
        # An enabled config tracer wins — its file already has it all.
        self._ring: Optional[RingTracer] = None
        if config.flight_recorder and not config.tracer.enabled:
            self._ring = RingTracer()
            self._tracer = self._ring
        self._metrics = config.metrics
        self._m_cache: tuple | None = None  # instruments, bound at open()
        self._plan: LBEPlan | None = None
        self._spill: SharedSpill | None = None
        self._pool: PersistentPool | None = None
        self._session_dir: Path | None = None
        self._session_cleanup: weakref.finalize | None = None
        self._closed = False
        self._n_batches = 0
        self._n_submitted = 0
        self._n_pending = 0
        self._attach_stats: List[RankStats] = []
        self._attach_s = 0.0
        self._open_s = 0.0
        # Bounded retention: a session serves an unbounded stream, so
        # per-batch stats must not grow master memory linearly with it.
        self._stats: deque[BatchStats] = deque(maxlen=_STATS_RETENTION)
        self._dispatch_lock = threading.Lock()
        self._admission = threading.Semaphore(config.max_pending)
        self._state: _PipelineState | None = None
        self._thread: threading.Thread | None = None
        # Elastic rebalancing: the decision policy (None when
        # rebalance_li is unset), the decision waiting to be applied
        # at the next between-rounds point as (decision, future-or-None)
        # — explicit rebalance() callers block on the future, automatic
        # triggers carry None — and the lifetime migration count.
        self._rebalance_policy: Optional[RebalancePolicy] = None
        self._pending_decision: Optional[
            Tuple[RebalanceDecision, Optional[Future]]
        ] = None
        self._rebalance_total = 0
        self._work_weights: Optional[np.ndarray] = None
        self._m_rebalances = None

    # -- planning --------------------------------------------------------

    @property
    def plan(self) -> LBEPlan:
        """The LBE distribution plan (computed lazily, cached)."""
        if self._plan is None:
            cfg = self.config
            self._plan = make_lbe_plan(
                self.database,
                n_ranks=cfg.n_workers,
                policy=cfg.policy,
                policy_seed=cfg.policy_seed,
                grouping=cfg.grouping,
            )
        return self._plan

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SearchService":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def is_open(self) -> bool:
        """True between a successful :meth:`open` and :meth:`close`."""
        return self._pool is not None and not self._closed

    def open(self) -> "SearchService":
        """Spawn the pool, spill the arena, attach every worker.

        Everything here is the once-per-session cost the one-shot
        engine pays per run; :attr:`open_s` records it.  Idempotent —
        reopening an open session is a no-op; reopening a closed one
        raises.  Serialized on the dispatch lock so concurrent
        ``open()`` calls cannot double-spawn pools.
        """
        with self._dispatch_lock:
            return self._open_locked()

    def _open_locked(self) -> "SearchService":
        if self._closed:
            raise ServiceError("service is closed; sessions are not reusable")
        if self._pool is not None:
            return self
        cfg = self.config
        t_open = time.perf_counter()
        # Reap spill/spectra stores orphaned by earlier crashed
        # sessions before creating our own — best-effort, a reaper
        # hiccup must never block a session from opening.
        try:
            sweep_stale_stores()
        except OSError:
            pass
        plan = self.plan
        arena = self.database.arena_for(cfg.index.fragmentation)
        self._spill = shared_spill_for(arena, cfg.index.resolution)
        self._session_dir = Path(tempfile.mkdtemp(prefix="repro-spectra-"))
        # Finalizer registered before first use: a hard crash between
        # here and close() still removes the session dir at GC.  The
        # owner marker keeps sweep_stale_stores off the live session
        # however long it idles.
        self._session_cleanup = weakref.finalize(
            self, shutil.rmtree, str(self._session_dir), ignore_errors=True
        )
        write_owner_marker(self._session_dir)
        pool = PersistentPool(
            cfg.n_workers,
            start_method=cfg.start_method,
            timeout=cfg.timeout,
            max_retries=cfg.max_retries,
            backoff_s=cfg.retry_backoff_s,
            hedge_after=cfg.hedge_after,
            degraded_ok=cfg.degraded_ok,
            fault_plan=cfg.fault_plan,
            transport=cfg.transport,
            tracer=self._tracer,
        )
        try:
            tasks = [
                AttachTask(
                    store_dir=str(self._spill.store.directory),
                    entry_ids=np.asarray(
                        plan.rank_global_ids(r), dtype=np.int64
                    ),
                    settings=cfg.index,
                )
                for r in range(cfg.n_workers)
            ]
            t0 = time.perf_counter()
            attach = pool.attach(service_attach_worker, tasks)
            self._attach_s = time.perf_counter() - t0
        except BaseException as exc:
            pool.close()
            if isinstance(exc, WorkerError) and exc.flight_record is None:
                exc.flight_record = flight_dump(
                    self._ring, cfg.flight_dir, "attach-failure"
                )
            raise
        self._pool = pool
        self._attach_stats = [
            rank_stats_from_report(r, report)
            for r, report in enumerate(attach.results)
        ]
        self._state = _PipelineState()
        self._thread = threading.Thread(
            target=_pipeline_main,
            args=(self._state, weakref.ref(self)),
            name="repro-service-pipeline",
            daemon=True,
        )
        self._thread.start()
        self._open_s = time.perf_counter() - t_open
        # Bind the per-batch instruments once: the merge path then pays
        # attribute loads, not registry dict lookups, per batch.
        m = self._metrics
        self._m_cache = (
            m.counter("service.batches"),
            m.histogram("service.batch_total_s"),
            m.histogram("service.batch_query_wall_s"),
            m.gauge("service.batch_li_wall"),
            m.gauge("service.batch_li_cpu"),
            m.counter("service.retries"),
            m.counter("service.hedged"),
            m.counter("service.respawned"),
            m.counter("service.degraded_batches"),
        )
        self._m_rebalances = m.counter("service.rebalances")
        rb = cfg.rebalance_config()
        if rb is not None:
            self._rebalance_policy = RebalancePolicy(
                rb, cfg.n_workers, plan.rank_loads(self._structural_weights())
            )
        if self._tracer.enabled:
            self._tracer.event(
                "session.open",
                {
                    "n_workers": cfg.n_workers,
                    "open_s": round(self._open_s, 6),
                    "attach_s": round(self._attach_s, 6),
                },
            )
        return self

    def close(self) -> None:
        """Drain the pipeline, then shut the resident workers down.

        Idempotent.  New submits are rejected immediately; every
        already-admitted batch **completes** (its future resolves with
        a result or the batch's own error) before the pool shuts down
        — each stage is bounded by the pool deadline, so draining
        terminates deterministically and never hangs.
        """
        if self._closed:
            return
        self._closed = True  # reject new submits before draining
        was_open = self._pool is not None
        state, thread = self._state, self._thread
        if state is not None:
            with state.cond:
                state.stopping = True
                state.cond.notify_all()
        if thread is not None and thread is not threading.current_thread():
            thread.join()
        with self._dispatch_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            if self._session_cleanup is not None:
                self._session_cleanup()  # remove the session dir now
            self._spill = None
        if was_open and self._tracer.enabled:
            self._tracer.event("session.close", {"n_batches": self._n_batches})

    # -- submission ------------------------------------------------------

    def submit(
        self, spectra: Sequence[Spectrum]
    ) -> Tuple[SearchResults, BatchStats]:
        """Search one query batch on the resident workers (blocking).

        A thin wrapper over :meth:`submit_async` — the batch rides the
        same pipeline and the call blocks until its future resolves.
        Returns the merged :class:`SearchResults` — bit-identical to
        the serial engine over the same batch — plus this batch's
        :class:`BatchStats`.  Raises
        :class:`~repro.errors.ServiceError` when the service is not
        open or the admission bound is exceeded, and
        :class:`~repro.errors.WorkerError` when a worker fails
        mid-batch (the session itself survives).
        """
        return self.submit_async(spectra).result()

    def submit_async(
        self, spectra: Sequence[Spectrum]
    ) -> "Future[Tuple[SearchResults, BatchStats]]":
        """Admit one query batch into the pipeline; return its future.

        The future resolves to ``(SearchResults, BatchStats)`` —
        futures of one session resolve strictly in submission order,
        and a failing batch (e.g. :class:`~repro.errors.WorkerError`)
        fails only its own future.  Raises
        :class:`~repro.errors.ServiceError` synchronously when the
        service is not open or ``max_pending`` batches are already
        admitted.
        """
        state = self._state
        if self._closed or self._pool is None or state is None:
            raise ServiceError(
                "submit() on a service that is not open "
                "(call open() first; closed sessions are not reusable)"
            )
        if state.broken:
            raise ServiceError(
                "service pipeline has crashed; close() and open a new session"
            )
        spectra = list(spectra)
        if not spectra:
            raise ConfigurationError("cannot submit an empty spectra batch")
        if not self._admission.acquire(blocking=False):
            raise ServiceError(
                f"admission queue full ({self.config.max_pending} batches "
                "already pending); retry after a pending batch completes"
            )
        future: Future = Future()
        with state.cond:
            if self._closed or state.stopping:
                self._admission.release()
                raise ServiceError(
                    "service was closed while this submit was being admitted"
                )
            self._n_pending += 1
            batch = _PendingBatch(
                spectra=spectra,
                future=future,
                batch_index=self._n_submitted,
                enqueued_at=time.perf_counter(),
                depth=self._n_pending,
            )
            self._n_submitted += 1
            state.items.append(batch)
            state.cond.notify_all()
        return future

    def stream(
        self, batches: Iterable[Sequence[Spectrum]]
    ) -> Iterator[Tuple[SearchResults, BatchStats]]:
        """Drive an iterable of batches through the pipeline, in order.

        Keeps up to ``max_pending`` batches admitted at once (the
        overlap window) and yields each batch's ``(results, stats)``
        in submission order — the streaming driver for sustained
        workloads.  A failing batch raises its error from the yield
        that would have produced it; later batches are unaffected.
        """
        pending: deque[Future] = deque()
        limit = self.config.max_pending
        for spectra in batches:
            while len(pending) >= limit:
                yield pending.popleft().result()
            pending.append(self.submit_async(spectra))
        while pending:
            yield pending.popleft().result()

    # -- pipeline stages (run on the pipeline thread) --------------------

    def _stage_prepare(self, batch: _PendingBatch, *, overlapped: bool) -> bool:
        """Preprocess + spill one batch; False (and a failed future) on error."""
        if not batch.future.set_running_or_notify_cancel():
            # The caller cancelled the future while the batch was still
            # queued: honour it, skip every stage, free the slot.  Once
            # a batch is running, cancel() returns False to the caller
            # and the future always resolves — set_result/set_exception
            # can never hit a CANCELLED future.
            self._release(batch)
            return False
        wall = time.perf_counter
        batch.t_start = wall()
        batch.wait_s = batch.t_start - batch.enqueued_at
        batch.prepared_overlapped = overlapped
        try:
            processed = preprocess_batch(batch.spectra, self.config.preprocess)
            batch.prep_s = wall() - batch.t_start
            t0 = wall()
            batch.batch_dir = self._session_dir / f"batch_{batch.batch_index:06d}"
            SharedSpectraStore.spill(processed, batch.batch_dir)
            batch.spill_s = wall() - t0
            batch.n_processed = len(processed)
            batch.peak_bytes = (
                spectra_peak_bytes(processed) * self.n_workers
            )
            if self._tracer.enabled:
                self._tracer.span(
                    "prepare",
                    batch.t_start,
                    batch.prep_s,
                    {"batch": batch.batch_index, "n_spectra": batch.n_processed},
                )
                self._tracer.span(
                    "spill", t0, batch.spill_s, {"batch": batch.batch_index}
                )
            return True
        except BaseException as exc:  # noqa: BLE001 - routed to the future
            if batch.batch_dir is not None:
                shutil.rmtree(batch.batch_dir, ignore_errors=True)
            self._fail_batch(batch, exc)
            return False

    def _stage_dispatch(self, batch: _PendingBatch) -> bool:
        """Scatter one batch's round; False (and a failed future) on error."""
        cfg = self.config
        task = QueryTask(
            spectra_dir=str(batch.batch_dir),
            n_spectra=batch.n_processed,
            top_k=cfg.top_k,
            batch_index=batch.batch_index,
        )
        # The same task object for every rank: the pool pickles it once
        # and reuses the buffer (measured in the round's scatter_bytes).
        try:
            # Stamp the plan this round runs against: a rebalance
            # migration between this dispatch and the merge must not
            # change how the round's payloads are interpreted.
            batch.plan = self.plan
            batch.attach_stats = list(self._attach_stats)
            batch.dispatched_at = time.perf_counter()
            batch.handle = self._pool.dispatch(
                service_query_worker, [task] * self._pool.n_workers
            )
            if self._tracer.enabled:
                self._tracer.span(
                    "dispatch",
                    batch.dispatched_at,
                    time.perf_counter() - batch.dispatched_at,
                    {"batch": batch.batch_index},
                )
            return True
        except BaseException as exc:  # noqa: BLE001 - routed to the future
            shutil.rmtree(batch.batch_dir, ignore_errors=True)
            self._fail_batch(batch, exc)
            return False

    def _stage_collect(self, batch: _PendingBatch) -> None:
        """Gather one round's replies; errors are parked on the batch."""
        t0 = time.perf_counter()
        try:
            batch.round = batch.handle.collect()
        except BaseException as exc:  # noqa: BLE001 - surfaced in finalize
            batch.error = exc
        finally:
            now = time.perf_counter()
            batch.collect_wait_s = now - t0
            batch.parallel_s = now - batch.dispatched_at
            if self._tracer.enabled:
                self._tracer.span(
                    "collect",
                    t0,
                    batch.collect_wait_s,
                    {"batch": batch.batch_index},
                )
            # The workers hold no references to the batch store after
            # the round; drop it (best-effort — pages may still be
            # mapped briefly, which POSIX tolerates).
            shutil.rmtree(batch.batch_dir, ignore_errors=True)

    def _stage_finalize(
        self, batch: _PendingBatch, *, merged_overlapped: bool
    ) -> None:
        """Merge one collected batch and resolve its future."""
        if batch.error is not None:
            self._fail_batch(batch, batch.error)
            return
        try:
            results, stats = self._merge_batch(batch, merged_overlapped)
        except BaseException as exc:  # noqa: BLE001 - routed to the future
            self._fail_batch(batch, exc)
            return
        self._n_batches += 1
        self._stats.append(stats)
        self._release(batch)
        try:
            batch.future.set_result((results, stats))
        except InvalidStateError:  # pragma: no cover - cancel()/resolve race
            pass

    def _merge_batch(
        self, batch: _PendingBatch, merged_overlapped: bool
    ) -> Tuple[SearchResults, BatchStats]:
        cfg = self.config
        wall = time.perf_counter
        pool_round = batch.round
        # A degraded round (degraded_ok after retries exhausted) has
        # None at the failed ranks' slots; everything below skips them
        # and the coverage mask travels on the results and the stats.
        degraded = pool_round.failed_ranks
        for report in pool_round.results:
            if report is None:
                continue
            if report.get("batch_index", -1) != batch.batch_index:
                raise PipelineError(
                    f"collected a worker report for batch "
                    f"{report.get('batch_index')} while merging batch "
                    f"{batch.batch_index}; the round protocol is desynced"
                )
        t0 = wall()
        gathered = [
            (report["counts"], report["local_psms"])
            if report is not None
            else None
            for report in pool_round.results
        ]
        # Merge against the plan stamped at dispatch time — a
        # migration may already have swapped self.plan for the *next*
        # round, but this round's payloads are laid out by its own.
        plan = batch.plan if batch.plan is not None else self.plan
        merged, _n_psms = merge_rank_payloads(
            gathered, batch.spectra, plan.mapping, cfg.top_k
        )
        merge_s = wall() - t0

        all_stats = [
            rank_stats_from_report(r, report if report is not None else {})
            for r, report in enumerate(pool_round.results)
        ]
        # Attach-time build stats stay visible on every batch's result:
        # the resident index was built once, at open().  A degraded
        # rank keeps them too — its partition is known, its query
        # counters stay zero.
        attach_stats = batch.attach_stats or self._attach_stats
        for stats, attach in zip(all_stats, attach_stats):
            stats.n_entries = attach.n_entries
            stats.n_ions = attach.n_ions
            stats.build_time = attach.build_time

        total_s = wall() - batch.t_start
        worker_span = max(
            (
                report["open_s"] + report["query_s"]
                for report in pool_round.results
                if report is not None
            ),
            default=0.0,
        )
        phase_times = {
            "serial_prep": batch.prep_s,
            "spill": batch.spill_s,
            "build": 0.0,  # paid once at open(), not per batch
            "query": max(s.query_time for s in all_stats),
            "query_cpu": max(s.query_cpu_time for s in all_stats),
            "gather": 0.0,
            "merge": merge_s,
            "parallel_wall": batch.parallel_s,
            "parallel_overhead": max(0.0, batch.parallel_s - worker_span),
            "total": total_s,
        }
        results = SearchResults(
            spectra=merged,
            rank_stats=all_stats,
            phase_times=phase_times,
            policy_name=cfg.policy,
            n_ranks=plan.n_ranks,
            degraded_ranks=degraded,
        )
        overlap_s = merge_s if merged_overlapped else 0.0
        if batch.prepared_overlapped:
            overlap_s += batch.prep_s + batch.spill_s
        stats = BatchStats(
            batch_index=batch.batch_index,
            n_spectra=len(batch.spectra),
            preprocess_s=batch.prep_s,
            spill_s=batch.spill_s,
            parallel_s=batch.parallel_s,
            merge_s=merge_s,
            total_s=total_s,
            query_wall_s=tuple(s.query_time for s in all_stats),
            query_cpu_s=tuple(s.query_cpu_time for s in all_stats),
            scatter_bytes=pool_round.scatter_bytes,
            peak_bytes=batch.peak_bytes,
            respawned=pool_round.respawned,
            wait_s=batch.wait_s,
            pipeline_depth=batch.depth,
            collect_wait_s=batch.collect_wait_s,
            overlap_s=overlap_s,
            retries=pool_round.retries,
            hedged=pool_round.hedged,
            degraded_ranks=degraded,
            round_wall_s=tuple(pool_round.wall_times),
            round_cpu_s=tuple(pool_round.cpu_times),
        )
        self._observe_batch(batch, stats, pool_round, t0, merge_s)
        # A degraded batch is a survived fault: black-box it too, after
        # _observe_batch so the dump carries this batch's summary event.
        if degraded:
            stats.flight_record = flight_dump(
                self._ring,
                cfg.flight_dir,
                "degraded-batch",
                batch=batch.batch_index,
            )
        return results, stats

    def _observe_batch(
        self,
        batch: _PendingBatch,
        stats: BatchStats,
        pool_round: PoolBatchResult,
        merge_start: float,
        merge_s: float,
    ) -> None:
        """Feed the metrics registry and (when enabled) the tracer.

        The registry feed is unconditional — a handful of attribute
        writes per batch keeps the live LI gauge and latency
        histograms current even without ``--trace``.  Span/event
        emission is ``tracer.enabled``-guarded.
        """
        if self._m_cache is not None:
            (
                m_batches, m_total, m_query, m_li_wall, m_li_cpu,
                m_retries, m_hedged, m_respawned, m_degraded,
            ) = self._m_cache
            m_batches.inc()
            m_total.observe(stats.total_s)
            m_query.observe(stats.query_wall_max_s)
            m_li_wall.set(stats.query_li)
            m_li_cpu.set(stats.query_li_cpu)
            m_retries.inc(stats.retries)
            m_hedged.inc(stats.hedged)
            m_respawned.inc(stats.respawned)
            if stats.degraded_ranks:
                m_degraded.inc()
        self._feed_rebalance(stats)
        tracer = self._tracer
        if not tracer.enabled:
            return
        bi = batch.batch_index
        tracer.span("merge", merge_start, merge_s, {"batch": bi})
        # Worker spans rode back in the reply payloads as offsets
        # relative to the round's dispatch; re-anchor them here.
        for rank, report in enumerate(pool_round.results):
            if report is None:
                continue
            for name, start, dur in worker_spans_from_report(
                report, batch.dispatched_at
            ):
                attrs = {"batch": bi, "rank": rank}
                if name == "worker.query":
                    attrs["cpu_s"] = round(
                        float(report.get("query_cpu_s", 0.0)), 9
                    )
                tracer.span(name, start, dur, attrs)
        tracer.event(
            "batch",
            {
                "batch": bi,
                "n_spectra": stats.n_spectra,
                "total_s": round(stats.total_s, 9),
                "li_wall": round(stats.query_li, 9),
                "li_cpu": round(stats.query_li_cpu, 9),
                "retries": stats.retries,
                "hedged": stats.hedged,
                "respawned": stats.respawned,
                "degraded_ranks": list(stats.degraded_ranks),
            },
        )

    def _fail_batch(self, batch: _PendingBatch, exc: BaseException) -> None:
        # Black-box the failure: the ring holds the fault's whole
        # supervision timeline (retries, backoffs, respawns) — cut the
        # dump before the future resolves so the path rides the error.
        if (
            isinstance(exc, (WorkerError, ShardError))
            and exc.flight_record is None
        ):
            exc.flight_record = flight_dump(
                self._ring,
                self.config.flight_dir,
                "batch-error",
                batch=batch.batch_index,
            )
        self._release(batch)
        try:
            if not batch.future.done():
                batch.future.set_exception(exc)
        except InvalidStateError:  # pragma: no cover - cancel()/fail race
            pass

    def _release(self, batch: _PendingBatch) -> None:
        """Give the batch's admission slot back (exactly once per batch —
        the crash handler may reach a batch a stage already settled)."""
        if batch.released:
            return
        batch.released = True
        state = self._state
        if state is not None:
            with state.cond:
                self._n_pending -= 1
        self._admission.release()

    # -- elastic rebalancing ---------------------------------------------

    def _structural_weights(self) -> np.ndarray:
        """Per-base predicted work (cached): the speed-inference and
        re-planning weight vector, shared by every migration."""
        if self._work_weights is None:
            base_lengths = np.array(
                [p.length for p in self.database.base_peptides],
                dtype=np.float64,
            )
            self._work_weights = WorkModel().structural(
                self.database.entry_counts(), base_lengths
            )
        return self._work_weights

    def _feed_rebalance(self, stats: BatchStats) -> None:
        """Feed one batch's per-rank vectors to the rebalance policy
        (runs on the pipeline thread, from ``_observe_batch``)."""
        policy = self._rebalance_policy
        if (
            policy is None
            or self._pending_decision is not None
            or stats.degraded_ranks  # zero slots would read as "slow"
        ):
            return
        # The round-level vectors (pipe-observed) see every source of
        # rank slowness — body, store open, injected or real host skew
        # — so they, not the workers' self-reported query times, drive
        # the decision.
        walls = stats.round_wall_s or stats.query_wall_s
        cpus = stats.round_cpu_s or stats.query_cpu_s
        decision = policy.observe(walls, cpus)
        if decision is None:
            return
        self._pending_decision = (decision, None)
        if self._tracer.enabled:
            # Satellite: the LI gauge's windowed watermarks ride on the
            # trigger event — the peak imbalance the window actually saw,
            # not just its mean.  read-and-reset scopes them per trigger.
            li_window = {"min": 0.0, "max": 0.0, "n_updates": 0}
            if self._m_cache is not None:
                li_window = self._m_cache[3].read_watermarks(reset=True)
            self._tracer.event(
                "rebalance.trigger",
                {
                    "batch": stats.batch_index,
                    "reason": decision.reason,
                    "window_li": round(decision.window_li, 9),
                    "li_window_max": round(li_window["max"], 9),
                    "n_workers": decision.n_workers,
                    "speeds": [round(s, 6) for s in decision.speeds],
                    "cpu_wall_ratio": [
                        round(r, 6) for r in decision.cpu_wall_ratio
                    ],
                },
            )

    def _stage_rebalance(self) -> None:
        """Apply a pending migration (runs on the pipeline thread, only
        at points where no round is on the pipe).  Never raises: an
        automatic migration that fails mid-re-attach has already been
        healed or deferred by the pool (see ``_migrate``); an explicit
        one routes its error to the caller's future.
        """
        pending = self._pending_decision
        if pending is None or self._pool is None:
            return
        self._pending_decision = None
        decision, future = pending
        if future is not None and not future.set_running_or_notify_cancel():
            return  # explicit caller cancelled while queued
        try:
            report = self._migrate(decision)
        except BaseException as exc:  # noqa: BLE001 - routed, never fatal
            if future is not None:
                try:
                    future.set_exception(exc)
                except InvalidStateError:  # pragma: no cover
                    pass
            # Automatic trigger: the plan swap already happened (or
            # nothing changed); dead ranks heal on the next round's
            # respawn path.  The session itself stays serviceable.
            return
        if future is not None:
            try:
                future.set_result(report)
            except InvalidStateError:  # pragma: no cover
                pass

    def _migrate(self, decision: RebalanceDecision) -> dict:
        """Re-plan with the decision's speeds and migrate the session.

        Returns a summary dict (the explicit :meth:`rebalance` result).
        The plan swap is committed **even when the pool raises**
        mid-re-attach: ``reconfigure`` guarantees every changed rank is
        either re-attached to its new manifest or dead with the new
        attach payload remembered, so adopting the new plan is the only
        consistent choice on every path.
        """
        cfg = self.config
        old_plan = self.plan
        old_n = self._pool.n_workers
        new_n = decision.n_workers
        # Extend/truncate the observed speeds to the target width —
        # a grown rank has no history, so it starts at the mean (1.0).
        speeds = np.ones(new_n, dtype=np.float64)
        take = min(len(decision.speeds), new_n)
        speeds[:take] = decision.speeds[:take]
        new_plan = make_lbe_plan(
            self.database,
            n_ranks=new_n,
            policy="lpt",
            policy_seed=cfg.policy_seed,
            grouping=cfg.grouping,
            rank_speeds=speeds,
        )
        changed = changed_ranks(old_plan, new_plan)
        if new_n == old_n and changed and decision.reason in ("li", "slow_rank"):
            # Churn gate for automatic speed-only migrations: noisy
            # speed estimates re-plan to a *slightly* different layout
            # every window; re-attaching for a negligible predicted
            # gain costs more than it saves.  Predicted makespan =
            # max(load / speed) under the inferred speeds.
            weights = self._structural_weights()
            old_ms = float(np.max(old_plan.rank_loads(weights) / speeds))
            new_ms = float(np.max(new_plan.rank_loads(weights) / speeds))
            if new_ms >= (1.0 - _MIN_MIGRATE_GAIN) * old_ms:
                changed = []
        if not changed and new_n == old_n:
            # The observed speeds round to the same plan: nothing to
            # migrate.  Tell the policy anyway so its cooldown arms —
            # otherwise the same window re-triggers forever.
            if self._rebalance_policy is not None:
                self._rebalance_policy.rebalanced(
                    new_n, new_plan.rank_loads(self._structural_weights())
                )
            return {
                "migrated": False,
                "n_workers": new_n,
                "changed_ranks": [],
                "reason": decision.reason,
            }
        tasks = [
            AttachTask(
                store_dir=str(self._spill.store.directory),
                entry_ids=np.asarray(
                    new_plan.rank_global_ids(r), dtype=np.int64
                ),
                settings=cfg.index,
            )
            for r in range(new_n)
        ]
        t0 = time.perf_counter()
        error: Optional[BaseException] = None
        try:
            reports = self._pool.reconfigure(
                service_attach_worker, tasks, changed=changed
            )
        except WorkerError as exc:
            reports = {}
            error = exc
        migrate_s = time.perf_counter() - t0
        # Commit the new plan unconditionally (see docstring).  Rebuild
        # the attach-stats vector: re-attached ranks from their fresh
        # reports, untouched ranks keep their open()-time stats, ranks
        # whose re-attach died get empty stats until their respawn.
        self._plan = new_plan
        new_attach: List[RankStats] = []
        for r in range(new_n):
            if r in reports:
                report, _wall, _cpu = reports[r]
                new_attach.append(rank_stats_from_report(r, report))
            elif r < old_n and r not in changed:
                new_attach.append(self._attach_stats[r])
            else:
                new_attach.append(rank_stats_from_report(r, {}))
        self._attach_stats = new_attach
        if self._rebalance_policy is not None:
            self._rebalance_policy.rebalanced(
                new_n, new_plan.rank_loads(self._structural_weights())
            )
        self._rebalance_total += 1
        if self._m_rebalances is not None:
            self._m_rebalances.inc()
        if self._tracer.enabled:
            self._tracer.event(
                "rebalance.migrate",
                {
                    "reason": decision.reason,
                    "n_from": old_n,
                    "n_to": new_n,
                    "changed_ranks": list(changed),
                    "migrate_s": round(migrate_s, 6),
                    "healed": error is None,
                },
            )
        if error is not None:
            raise error
        return {
            "migrated": True,
            "n_workers": new_n,
            "changed_ranks": list(changed),
            "reason": decision.reason,
            "migrate_s": migrate_s,
        }

    def rebalance(
        self,
        *,
        n_workers: Optional[int] = None,
        speeds: Optional[Sequence[float]] = None,
        reason: str = "manual",
        timeout: Optional[float] = None,
    ) -> dict:
        """Request a live re-plan / pool resize and wait for it.

        The migration itself runs on the pipeline thread at the next
        between-rounds point (at most one idle-poll period away on a
        quiet session), exactly like an automatic trigger — this call
        only *requests* it and blocks on the outcome.  ``speeds``
        defaults to equal speeds over the target width (a plain
        weighted-LPT re-plan); ``n_workers`` defaults to the current
        pool size and is clamped to ``min_workers``/``max_workers``
        when bounds are configured.  Returns the migration summary
        dict; raises :class:`~repro.errors.WorkerError` when a changed
        rank's re-attach exhausted its retries (the session still
        adopts the new plan — the dead rank heals on its next respawn).
        """
        if self._closed or self._pool is None or self._state is None:
            raise ServiceError("rebalance() on a service that is not open")
        target = self._pool.n_workers if n_workers is None else int(n_workers)
        if target < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {target}"
            )
        # Clamp to the configured bounds whether or not the automatic
        # policy is armed — bounds are a property of the pool, not of
        # the trigger.
        if self.config.min_workers is not None:
            target = max(target, self.config.min_workers)
        if self.config.max_workers is not None:
            target = min(target, self.config.max_workers)
        if speeds is None:
            speed_vec = tuple(1.0 for _ in range(target))
        else:
            speed_vec = tuple(float(s) for s in speeds)
            if len(speed_vec) != target or any(s <= 0 for s in speed_vec):
                raise ConfigurationError(
                    f"speeds must be {target} positive values, got {speeds!r}"
                )
        decision = RebalanceDecision(
            speeds=speed_vec,
            n_workers=target,
            window_li=0.0,
            reason=reason,
        )
        future: Future = Future()
        state = self._state
        with state.cond:
            if self._pending_decision is not None:
                raise ServiceError(
                    "a rebalance is already pending; retry after it applies"
                )
            self._pending_decision = (decision, future)
            state.cond.notify_all()
        return future.result(timeout if timeout is not None else self.config.timeout)

    # -- introspection ---------------------------------------------------

    @property
    def n_batches(self) -> int:
        """Batches served so far this session."""
        return self._n_batches

    @property
    def flight_recorder(self) -> Optional[RingTracer]:
        """The installed in-memory flight recorder, or ``None`` when a
        file tracer is active or ``flight_recorder=False``."""
        return self._ring

    @property
    def open_s(self) -> float:
        """Wall seconds :meth:`open` took (the amortized session cost)."""
        return self._open_s

    @property
    def attach_s(self) -> float:
        """Wall seconds of the ATTACH round inside :meth:`open`."""
        return self._attach_s

    @property
    def batch_stats(self) -> List[BatchStats]:
        """Stats of the most recent batches (bounded retention), in
        order; ``batch_index`` ties each entry to its lifetime position."""
        return list(self._stats)

    @property
    def n_workers(self) -> int:
        """The **live** worker count — ``config.n_workers`` until a
        rebalance resizes the pool, the pool's current size after."""
        return (
            self._pool.n_workers
            if self._pool is not None
            else self.config.n_workers
        )

    @property
    def rebalance_total(self) -> int:
        """Migrations (plan swaps / resizes) applied this session."""
        return self._rebalance_total

    @property
    def respawn_total(self) -> int:
        """Workers respawned over the session's lifetime."""
        return self._pool.respawn_total if self._pool is not None else 0

    def worker_pids(self) -> List[int | None]:
        """Current resident worker PIDs (for residency assertions)."""
        if self._pool is None:
            return []
        return self._pool.worker_pids()
