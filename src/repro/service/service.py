"""The persistent search service: one session, many query batches.

Session lifecycle (the amortization structure)::

    service = SearchService(database, ServiceConfig(n_workers=2))
    service.open()            # spawn pool, spill arena, ATTACH workers
    for batch in stream:
        results, stats = service.submit(batch)   # QUERY round per batch
    service.close()           # SHUTDOWN

``open()`` pays every per-run cost the one-shot engine pays per batch
— worker spawn + interpreter import, the arena spill (through the
process-wide spill cache, so an engine over the same database shares
it), and the per-rank partial-index build.  ``submit()`` then costs
only: preprocess, spill the batch to a memmap-shared
:class:`~repro.parallel.shared_spectra.SharedSpectraStore`, one
O(manifest) pickled :class:`~repro.parallel.worker.QueryTask` per
worker, the workers' query phase, and the master merge.  The pickled
scatter volume per batch is recorded in :class:`BatchStats`
(``scatter_bytes``) next to what pickling the peak arrays would have
cost (``peak_bytes``) — the communication-lower-bounds story in
numbers.

Admission is bounded: at most ``max_pending`` ``submit()`` calls may
be in flight (one dispatching, the rest queued on the dispatch lock);
the next caller is rejected with
:class:`~repro.errors.ServiceError` instead of growing an unbounded
queue.

Failure contract (inherited from
:class:`~repro.parallel.persistent.PersistentPool` and test-enforced):
a worker that raises or dies mid-batch fails *that* ``submit()`` with
:class:`~repro.errors.WorkerError`; the pool respawns and re-attaches
the rank automatically, so the session survives and the next
``submit()`` returns correct results on the fresh worker.
"""

from __future__ import annotations

import pickle
import shutil
import tempfile
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.grouping import GroupingConfig
from repro.core.planner import LBEPlan
from repro.errors import ConfigurationError, ServiceError
from repro.index.slm import SLMIndexSettings
from repro.parallel.persistent import PersistentPool
from repro.parallel.shared_arena import (
    SharedSpill,
    shared_spill_for,
    write_owner_marker,
)
from repro.parallel.shared_spectra import SharedSpectraStore
from repro.parallel.worker import (
    AttachTask,
    QueryTask,
    service_attach_worker,
    service_query_worker,
)
from repro.search.database import IndexedDatabase
from repro.search.engine import make_lbe_plan
from repro.search.psm import RankStats, SearchResults
from repro.search.rank import merge_rank_payloads, rank_stats_from_report
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import (
    PreprocessConfig,
    preprocess_batch,
    spectra_peak_bytes,
)

__all__ = ["ServiceConfig", "BatchStats", "SearchService"]

#: Most recent batches whose :class:`BatchStats` a session retains —
#: enough for steady-state monitoring, O(1) for unbounded streams
#: (:attr:`SearchService.n_batches` keeps the lifetime count).
_STATS_RETENTION = 1024


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Persistent-service configuration.

    Attributes
    ----------
    n_workers:
        Resident OS worker processes (the rank count).
    policy:
        Partition policy name: ``chunk`` / ``cyclic`` / ``random`` /
        ``lpt``.
    policy_seed:
        Seed for the Random policy's shuffles.
    grouping:
        Algorithm 1 parameters.
    index:
        SLM index/query settings (shared by every batch — the resident
        partial indexes are built against them at attach time).
    preprocess:
        Query peak-picking settings, applied per submitted batch.
    top_k:
        PSMs retained per spectrum.
    start_method:
        ``multiprocessing`` start method for the resident workers.
    timeout:
        Real-seconds deadline per pool round (attach or batch).
    max_pending:
        Bound on concurrently admitted ``submit()`` calls (one
        dispatching + the rest waiting); further callers are rejected
        with :class:`~repro.errors.ServiceError`.
    """

    n_workers: int = 2
    policy: str = "cyclic"
    policy_seed: int = 0
    grouping: GroupingConfig = GroupingConfig()
    index: SLMIndexSettings = field(default_factory=SLMIndexSettings)
    preprocess: PreprocessConfig = PreprocessConfig()
    top_k: int = 5
    start_method: str = "spawn"
    timeout: float = 600.0
    max_pending: int = 4

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {self.top_k}")
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )


@dataclass(slots=True)
class BatchStats:
    """Real phase seconds and scatter accounting for one ``submit()``.

    Attributes
    ----------
    batch_index:
        0-based position of this batch within the session.
    n_spectra:
        Query spectra in the batch.
    preprocess_s / spill_s / parallel_s / merge_s / total_s:
        Master-observed wall seconds per phase (``parallel_s`` spans
        dispatch → last worker report).
    query_wall_max_s / query_cpu_max_s:
        Slowest worker's query wall / process-CPU seconds (the
        steady-state latency floor; CPU is the dedicated-core figure).
    scatter_bytes:
        Actual pickled command payload bytes summed over workers —
        O(batch manifest) by construction.
    peak_bytes:
        What pickling the preprocessed peak arrays to every worker
        would have cost (``n_workers ×`` the batch's peak bytes) — the
        baseline ``scatter_bytes`` replaces.
    respawned:
        Workers respawned (and re-attached) to serve this batch.
    """

    batch_index: int
    n_spectra: int
    preprocess_s: float
    spill_s: float
    parallel_s: float
    merge_s: float
    total_s: float
    query_wall_max_s: float
    query_cpu_max_s: float
    scatter_bytes: int
    peak_bytes: int
    respawned: int


class SearchService:
    """A long-lived search session over a resident worker pool.

    Parameters
    ----------
    database:
        The indexed database (the master's copy; resident workers see
        only the memmap-shared arena plus their manifests).
    config:
        Service configuration.

    Usable as a context manager (``with SearchService(db) as svc:``);
    ``open()`` is idempotent, ``close()`` is idempotent, and
    ``submit()`` after ``close()`` raises
    :class:`~repro.errors.ServiceError`.
    """

    def __init__(
        self, database: IndexedDatabase, config: ServiceConfig = ServiceConfig()
    ) -> None:
        self.database = database
        self.config = config
        self._plan: LBEPlan | None = None
        self._spill: SharedSpill | None = None
        self._pool: PersistentPool | None = None
        self._session_dir: Path | None = None
        self._session_cleanup: weakref.finalize | None = None
        self._closed = False
        self._n_batches = 0
        self._attach_stats: List[RankStats] = []
        self._attach_s = 0.0
        self._open_s = 0.0
        # Bounded retention: a session serves an unbounded stream, so
        # per-batch stats must not grow master memory linearly with it.
        self._stats: deque[BatchStats] = deque(maxlen=_STATS_RETENTION)
        self._dispatch_lock = threading.Lock()
        self._admission = threading.Semaphore(config.max_pending)

    # -- planning --------------------------------------------------------

    @property
    def plan(self) -> LBEPlan:
        """The LBE distribution plan (computed lazily, cached)."""
        if self._plan is None:
            cfg = self.config
            self._plan = make_lbe_plan(
                self.database,
                n_ranks=cfg.n_workers,
                policy=cfg.policy,
                policy_seed=cfg.policy_seed,
                grouping=cfg.grouping,
            )
        return self._plan

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SearchService":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def is_open(self) -> bool:
        """True between a successful :meth:`open` and :meth:`close`."""
        return self._pool is not None and not self._closed

    def open(self) -> "SearchService":
        """Spawn the pool, spill the arena, attach every worker.

        Everything here is the once-per-session cost the one-shot
        engine pays per run; :attr:`open_s` records it.  Idempotent —
        reopening an open session is a no-op; reopening a closed one
        raises.  Serialized on the dispatch lock so concurrent
        ``open()`` calls cannot double-spawn pools.
        """
        with self._dispatch_lock:
            return self._open_locked()

    def _open_locked(self) -> "SearchService":
        if self._closed:
            raise ServiceError("service is closed; sessions are not reusable")
        if self._pool is not None:
            return self
        cfg = self.config
        t_open = time.perf_counter()
        plan = self.plan
        arena = self.database.arena_for(cfg.index.fragmentation)
        self._spill = shared_spill_for(arena, cfg.index.resolution)
        self._session_dir = Path(tempfile.mkdtemp(prefix="repro-spectra-"))
        # Finalizer registered before first use: a hard crash between
        # here and close() still removes the session dir at GC.  The
        # owner marker keeps sweep_stale_stores off the live session
        # however long it idles.
        self._session_cleanup = weakref.finalize(
            self, shutil.rmtree, str(self._session_dir), ignore_errors=True
        )
        write_owner_marker(self._session_dir)
        pool = PersistentPool(
            cfg.n_workers,
            start_method=cfg.start_method,
            timeout=cfg.timeout,
        )
        try:
            tasks = [
                AttachTask(
                    store_dir=str(self._spill.store.directory),
                    entry_ids=np.asarray(
                        plan.rank_global_ids(r), dtype=np.int64
                    ),
                    settings=cfg.index,
                )
                for r in range(cfg.n_workers)
            ]
            t0 = time.perf_counter()
            attach = pool.attach(service_attach_worker, tasks)
            self._attach_s = time.perf_counter() - t0
        except BaseException:
            pool.close()
            raise
        self._pool = pool
        self._attach_stats = [
            rank_stats_from_report(r, report)
            for r, report in enumerate(attach.results)
        ]
        self._open_s = time.perf_counter() - t_open
        return self

    def close(self) -> None:
        """Shut the resident workers down; idempotent.

        New submits are rejected immediately; an in-flight submit is
        waited for (the dispatch lock), so its caller gets a clean
        result or error instead of torn worker pipes.
        """
        if self._closed:
            return
        self._closed = True  # reject new submits before taking the lock
        with self._dispatch_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            if self._session_cleanup is not None:
                self._session_cleanup()  # remove the session dir now
            self._spill = None

    # -- submission ------------------------------------------------------

    def submit(
        self, spectra: Sequence[Spectrum]
    ) -> Tuple[SearchResults, BatchStats]:
        """Search one query batch on the resident workers.

        Returns the merged :class:`SearchResults` — bit-identical to
        the serial engine over the same batch — plus this batch's
        :class:`BatchStats`.  Raises
        :class:`~repro.errors.ServiceError` when the service is not
        open or the admission bound is exceeded, and
        :class:`~repro.errors.WorkerError` when a worker fails
        mid-batch (the session itself survives).
        """
        if self._closed or self._pool is None:
            raise ServiceError(
                "submit() on a service that is not open "
                "(call open() first; closed sessions are not reusable)"
            )
        spectra = list(spectra)
        if not spectra:
            raise ConfigurationError("cannot submit an empty spectra batch")
        if not self._admission.acquire(blocking=False):
            raise ServiceError(
                f"admission queue full ({self.config.max_pending} batches "
                "already pending); retry after a pending submit returns"
            )
        try:
            with self._dispatch_lock:
                return self._submit_locked(spectra)
        finally:
            self._admission.release()

    def _submit_locked(
        self, spectra: List[Spectrum]
    ) -> Tuple[SearchResults, BatchStats]:
        # Re-check under the lock: a concurrent close() that won the
        # lock first has already shut the pool down.
        if self._closed or self._pool is None:
            raise ServiceError(
                "service was closed while this submit was waiting for "
                "dispatch"
            )
        cfg = self.config
        wall = time.perf_counter
        t_start = wall()
        batch_index = self._n_batches

        processed = preprocess_batch(spectra, cfg.preprocess)
        prep_s = wall() - t_start

        t0 = wall()
        batch_dir = self._session_dir / f"batch_{batch_index:06d}"
        SharedSpectraStore.spill(processed, batch_dir)
        spill_s = wall() - t0

        task = QueryTask(
            spectra_dir=str(batch_dir),
            n_spectra=len(processed),
            top_k=cfg.top_k,
        )
        tasks = [task] * cfg.n_workers
        scatter_bytes = len(pickle.dumps(task)) * cfg.n_workers
        peak_bytes = spectra_peak_bytes(processed) * cfg.n_workers

        t0 = wall()
        try:
            batch = self._pool.run_batch(service_query_worker, tasks)
        finally:
            # The workers hold no references to the batch store after
            # the round; drop it (best-effort — pages may still be
            # mapped briefly, which POSIX tolerates).
            shutil.rmtree(batch_dir, ignore_errors=True)
        parallel_s = wall() - t0

        t0 = wall()
        gathered = [
            (report["counts"], report["local_psms"])
            for report in batch.results
        ]
        merged, _n_psms = merge_rank_payloads(
            gathered, spectra, self.plan.mapping, cfg.top_k
        )
        merge_s = wall() - t0

        all_stats = [
            rank_stats_from_report(r, report)
            for r, report in enumerate(batch.results)
        ]
        # Attach-time build stats stay visible on every batch's result:
        # the resident index was built once, at open().
        for stats, attach in zip(all_stats, self._attach_stats):
            stats.n_entries = attach.n_entries
            stats.n_ions = attach.n_ions
            stats.build_time = attach.build_time

        total_s = wall() - t_start
        worker_span = max(
            report["open_s"] + report["query_s"] for report in batch.results
        )
        phase_times = {
            "serial_prep": prep_s,
            "spill": spill_s,
            "build": 0.0,  # paid once at open(), not per batch
            "query": max(s.query_time for s in all_stats),
            "query_cpu": max(s.query_cpu_time for s in all_stats),
            "gather": 0.0,
            "merge": merge_s,
            "parallel_wall": parallel_s,
            "parallel_overhead": max(0.0, parallel_s - worker_span),
            "total": total_s,
        }
        results = SearchResults(
            spectra=merged,
            rank_stats=all_stats,
            phase_times=phase_times,
            policy_name=cfg.policy,
            n_ranks=cfg.n_workers,
        )
        stats = BatchStats(
            batch_index=batch_index,
            n_spectra=len(spectra),
            preprocess_s=prep_s,
            spill_s=spill_s,
            parallel_s=parallel_s,
            merge_s=merge_s,
            total_s=total_s,
            query_wall_max_s=max(s.query_time for s in all_stats),
            query_cpu_max_s=max(s.query_cpu_time for s in all_stats),
            scatter_bytes=scatter_bytes,
            peak_bytes=peak_bytes,
            respawned=batch.respawned,
        )
        self._n_batches += 1
        self._stats.append(stats)
        return results, stats

    # -- introspection ---------------------------------------------------

    @property
    def n_batches(self) -> int:
        """Batches served so far this session."""
        return self._n_batches

    @property
    def open_s(self) -> float:
        """Wall seconds :meth:`open` took (the amortized session cost)."""
        return self._open_s

    @property
    def attach_s(self) -> float:
        """Wall seconds of the ATTACH round inside :meth:`open`."""
        return self._attach_s

    @property
    def batch_stats(self) -> List[BatchStats]:
        """Stats of the most recent batches (bounded retention), in
        order; ``batch_index`` ties each entry to its lifetime position."""
        return list(self._stats)

    @property
    def respawn_total(self) -> int:
        """Workers respawned over the session's lifetime."""
        return self._pool.respawn_total if self._pool is not None else 0

    def worker_pids(self) -> List[int | None]:
        """Current resident worker PIDs (for residency assertions)."""
        if self._pool is None:
            return []
        return self._pool.worker_pids()
