"""Persistent search service: resident workers, streaming query batches.

The one-shot :class:`~repro.parallel.ParallelSearchEngine` pays spawn +
import + arena attach on every ``run()`` and pickles the query peak
arrays to every worker — fine for a single batch, fatal for serving
sustained traffic.  This package amortizes all of it across a session:

* :class:`~repro.service.service.SearchService` — the session API:
  ``open()`` spawns a :class:`~repro.parallel.persistent.PersistentPool`,
  spills the arena once (through the process-wide spill cache) and
  attaches every worker; ``submit(spectra)`` preprocesses a batch,
  spills it to a :class:`~repro.parallel.shared_spectra.SharedSpectraStore`
  and dispatches an O(manifest) command to the resident workers;
  ``close()`` drains the pipeline and shuts the pool down.  The
  session is a **software pipeline** over the batch stream:
  ``submit_async(spectra)`` returns a future, ``stream(batches)``
  drives an iterable with up to ``max_pending`` batches in flight, and
  the master preprocesses/spills batch N+1 and merges batch N while
  the workers query — ``submit()`` is the blocking wrapper.  Results
  are bit-identical to the serial engine for every policy × worker
  count — the workers run the same :mod:`repro.search.rank` body as
  every other backend, and the pipeline reorders when stages run,
  never what they compute.
* Per-batch :class:`~repro.service.service.BatchStats` record real
  wall/CPU phase seconds and the actual pickled scatter bytes, so the
  amortization claim is measurable, not aspirational
  (``benchmarks/bench_service_throughput.py`` records it).

* :class:`~repro.service.sharding.ShardedSearchService` — the tier
  above a single session: :class:`~repro.service.sharding.ShardPlan`
  cuts the database into contiguous precursor-mass shards, each shard
  runs its own inner session (own pool + arena spill), and the router
  fans each batch out only to the shards whose mass range intersects
  its spectra's precursor windows, merging per-spectrum top-K across
  shards bit-identical to the unsharded engine.  A dead shard degrades
  coverage (``degraded_shards``) instead of killing the session.

* :class:`~repro.service.rebalance.RebalancePolicy` — elastic
  self-rebalancing: with ``rebalance_li`` set, a session watches its
  live Eq.-1 LI over a sliding window of batches, re-plans with
  per-rank speed weights inferred from observed walls, migrates
  between rounds (re-attaching only the changed ranks) and can grow
  the pool within ``min_workers``/``max_workers`` — results stay
  bit-identical across every migration.
  :meth:`~repro.service.service.SearchService.rebalance` requests the
  same migration explicitly.

``repro serve`` on the CLI drives a session over MS2 batch files or a
stdin manifest of paths (``--shards N`` selects the sharded tier;
``--rebalance-li`` arms elastic rebalancing).
"""

from repro.service.rebalance import (
    RebalanceConfig,
    RebalanceDecision,
    RebalancePolicy,
)
from repro.service.service import (
    BatchStats,
    SearchService,
    ServiceConfig,
    SessionStats,
    aggregate_batch_stats,
)
from repro.service.sharding import (
    DatabaseShard,
    ShardedBatchStats,
    ShardedSearchService,
    ShardPlan,
)

__all__ = [
    "BatchStats",
    "DatabaseShard",
    "RebalanceConfig",
    "RebalanceDecision",
    "RebalancePolicy",
    "SearchService",
    "ServiceConfig",
    "SessionStats",
    "ShardedBatchStats",
    "ShardedSearchService",
    "ShardPlan",
    "aggregate_batch_stats",
]
