"""Spill a fragment arena to disk; reopen it memmap-shared anywhere.

The communication-lower-bounds argument for parallel database search
(arXiv:2009.14123) says the database should stay *resident and shared*
rather than be copied per worker; HiCOPS realizes that on flat arrays.
:class:`SharedArenaStore` is our equivalent for the
:class:`~repro.index.arena.FragmentArena`:

* :meth:`SharedArenaStore.spill` writes each flat array — ``mzs``,
  ``offsets``, optional ``lengths``/``masses``, plus every cached
  per-resolution bucket quantization and bucket-major sort order — as
  its own **uncompressed** ``.npy`` file under one directory, with a
  small JSON manifest binding them together (resolutions are keyed by
  ``float.hex`` so keys round-trip exactly),
* :meth:`SharedArenaStore.load` reopens every array with
  ``np.load(..., mmap_mode="r")`` and rebuilds a read-only
  :class:`~repro.index.arena.FragmentArena` around the maps — O(metadata)
  per process, no data copied.

Memory model: however many worker processes ``load()`` the same store,
the OS page cache holds **one** physical copy of the fragment data;
each worker's private (unique) footprint is only what it materializes
itself — its :meth:`~repro.index.arena.FragmentArena.take` sub-arena,
O(arena / n_workers).  Pages of the shared copy fault in lazily, so a
worker that only touches its partition's slices never pages in the
rest.  This is exactly the ROADMAP's "memory-map the arena to share
across processes" item.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.errors import ConfigurationError, FormatError
from repro.index.arena import FragmentArena

__all__ = ["SharedArenaStore"]

_MANIFEST_NAME = "arena_manifest.json"
_FORMAT_VERSION = 1


class SharedArenaStore:
    """A directory of ``.npy`` files holding one spilled arena.

    Construct through :meth:`spill` (write) or :meth:`open` (attach to
    an existing store); :meth:`load` materializes the memmap-backed
    arena.  Instances are cheap handles — all state is on disk.
    """

    def __init__(self, directory: Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # -- writing --------------------------------------------------------

    @classmethod
    def spill(
        cls, arena: FragmentArena, directory: Union[str, Path]
    ) -> "SharedArenaStore":
        """Write ``arena`` (flat arrays + caches) under ``directory``.

        The directory is created if needed; an existing manifest is
        overwritten (stores are immutable once written — spill to a
        fresh directory for a different arena).  Quantization caches
        present on the arena travel along, so workers that
        :meth:`load` the store never re-quantize or re-argsort; spill
        *after* ``buckets_for``/``sort_order_for`` on the master.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "mzs.npy", arena.mzs)
        np.save(directory / "offsets.npy", arena.offsets)
        manifest: dict = {
            "version": _FORMAT_VERSION,
            "n_entries": int(arena.n_entries),
            "n_ions": int(arena.n_ions),
            "lengths": arena.lengths is not None,
            "masses": arena.masses is not None,
            "resolutions": [],
        }
        if arena.lengths is not None:
            np.save(directory / "lengths.npy", arena.lengths)
        if arena.masses is not None:
            np.save(directory / "masses.npy", arena.masses)
        resolutions = sorted(
            set(arena._bucket_cache) | set(arena._order_cache)
        )
        for i, resolution in enumerate(resolutions):
            entry = {
                "hex": float(resolution).hex(),
                "buckets": None,
                "order": None,
            }
            buckets = arena._bucket_cache.get(resolution)
            if buckets is not None:
                entry["buckets"] = f"buckets_{i}.npy"
                np.save(directory / entry["buckets"], buckets)
            order = arena._order_cache.get(resolution)
            if order is not None:
                entry["order"] = f"order_{i}.npy"
                np.save(directory / entry["order"], order)
            manifest["resolutions"].append(entry)
        (directory / _MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="ascii"
        )
        return cls(directory, manifest)

    # -- reading --------------------------------------------------------

    @classmethod
    def exists(cls, directory: Union[str, Path]) -> bool:
        """True when ``directory`` holds a spilled store (a manifest)."""
        return (Path(directory) / _MANIFEST_NAME).is_file()

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "SharedArenaStore":
        """Attach to a store written by :meth:`spill`."""
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise FormatError(f"no arena store at {directory} (missing manifest)")
        manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        if manifest.get("version") != _FORMAT_VERSION:
            raise FormatError(
                f"unsupported arena store version {manifest.get('version')!r}"
            )
        return cls(directory, manifest)

    def load(self, *, mmap_mode: str = "r") -> FragmentArena:
        """Rebuild the arena with every array memory-mapped.

        ``mmap_mode="r"`` (default) yields read-only views: any
        attempted write raises, which is what guarantees N workers can
        share one physical copy safely.  ``"c"`` (copy-on-write) is
        accepted for callers that must scribble on private pages.
        """
        if mmap_mode not in ("r", "c"):
            raise ConfigurationError(
                f"mmap_mode must be 'r' or 'c', got {mmap_mode!r}"
            )
        d = self.directory
        try:
            mzs = np.load(d / "mzs.npy", mmap_mode=mmap_mode)
            offsets = np.load(d / "offsets.npy", mmap_mode=mmap_mode)
            lengths = (
                np.load(d / "lengths.npy", mmap_mode=mmap_mode)
                if self.manifest["lengths"]
                else None
            )
            masses = (
                np.load(d / "masses.npy", mmap_mode=mmap_mode)
                if self.manifest["masses"]
                else None
            )
            arena = FragmentArena(mzs, offsets, lengths=lengths, masses=masses)
            for entry in self.manifest["resolutions"]:
                resolution = float.fromhex(entry["hex"])
                if entry["buckets"] is not None:
                    arena._bucket_cache[resolution] = np.load(
                        d / entry["buckets"], mmap_mode=mmap_mode
                    )
                if entry["order"] is not None:
                    arena._order_cache[resolution] = np.load(
                        d / entry["order"], mmap_mode=mmap_mode
                    )
        except FileNotFoundError as missing:
            raise FormatError(
                f"arena store {d} is missing {missing.filename!r}"
            ) from None
        return arena

    # -- introspection --------------------------------------------------

    @property
    def n_entries(self) -> int:
        """Entries in the spilled arena."""
        return int(self.manifest["n_entries"])

    @property
    def n_ions(self) -> int:
        """Fragments in the spilled arena."""
        return int(self.manifest["n_ions"])

    def file_bytes(self) -> Dict[str, int]:
        """On-disk bytes per store file (the shared-copy footprint)."""
        return {
            p.name: p.stat().st_size
            for p in sorted(self.directory.glob("*.npy"))
        }

    def nbytes(self) -> int:
        """Total on-disk bytes — the one physical copy all workers share."""
        return sum(self.file_bytes().values())
