"""Spill a fragment arena to disk; reopen it memmap-shared anywhere.

The communication-lower-bounds argument for parallel database search
(arXiv:2009.14123) says the database should stay *resident and shared*
rather than be copied per worker; HiCOPS realizes that on flat arrays.
:class:`SharedArenaStore` is our equivalent for the
:class:`~repro.index.arena.FragmentArena`:

* :meth:`SharedArenaStore.spill` writes each flat array — ``mzs``,
  ``offsets``, optional ``lengths``/``masses``, plus every cached
  per-resolution bucket quantization and bucket-major sort order — as
  its own **uncompressed** ``.npy`` file under one directory, with a
  small JSON manifest binding them together (resolutions are keyed by
  ``float.hex`` so keys round-trip exactly),
* :meth:`SharedArenaStore.load` reopens every array with
  ``np.load(..., mmap_mode="r")`` and rebuilds a read-only
  :class:`~repro.index.arena.FragmentArena` around the maps — O(metadata)
  per process, no data copied.

Memory model: however many worker processes ``load()`` the same store,
the OS page cache holds **one** physical copy of the fragment data;
each worker's private (unique) footprint is only what it materializes
itself — its :meth:`~repro.index.arena.FragmentArena.take` sub-arena,
O(arena / n_workers).  Pages of the shared copy fault in lazily, so a
worker that only touches its partition's slices never pages in the
rest.  This is exactly the ROADMAP's "memory-map the arena to share
across processes" item.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
import weakref
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, FormatError
from repro.index.arena import FragmentArena

__all__ = [
    "SharedArenaStore",
    "SharedSpill",
    "shared_spill_for",
    "sweep_stale_stores",
    "write_owner_marker",
]

_MANIFEST_NAME = "arena_manifest.json"
_FORMAT_VERSION = 1

#: Temp-dir prefixes owned by this package (arena spills and
#: per-session spectra stores); :func:`sweep_stale_stores` only ever
#: touches directories matching these.
_STORE_PREFIXES = ("repro-arena-", "repro-spectra-")

#: Liveness marker: the PID of the process that owns a store tmpdir.
#: :func:`sweep_stale_stores` never touches a directory whose owner
#: is still alive — age heuristics only apply to orphans.
_OWNER_MARKER = "owner.pid"


def write_owner_marker(directory: Union[str, Path]) -> None:
    """Mark ``directory`` as owned by this process (best-effort).

    Long-lived sessions can idle past any age threshold; the marker is
    what keeps :func:`sweep_stale_stores` off their directories while
    the owning process lives, and what lets it reap them confidently
    once it is gone.
    """
    try:
        (Path(directory) / _OWNER_MARKER).write_text(
            f"{os.getpid()}\n", encoding="ascii"
        )
    except OSError:
        pass


def _owner_alive(directory: Path) -> bool:
    """True when the directory's recorded owner process still exists."""
    try:
        pid = int((directory / _OWNER_MARKER).read_text(encoding="ascii"))
    except (OSError, ValueError):
        return False
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class SharedArenaStore:
    """A directory of ``.npy`` files holding one spilled arena.

    Construct through :meth:`spill` (write) or :meth:`open` (attach to
    an existing store); :meth:`load` materializes the memmap-backed
    arena.  Instances are cheap handles — all state is on disk.
    """

    def __init__(self, directory: Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # -- writing --------------------------------------------------------

    @classmethod
    def spill(
        cls, arena: FragmentArena, directory: Union[str, Path]
    ) -> "SharedArenaStore":
        """Write ``arena`` (flat arrays + caches) under ``directory``.

        The directory is created if needed; an existing manifest is
        overwritten (stores are immutable once written — spill to a
        fresh directory for a different arena).  Quantization caches
        present on the arena travel along, so workers that
        :meth:`load` the store never re-quantize or re-argsort; spill
        *after* ``buckets_for``/``sort_order_for`` on the master.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "mzs.npy", arena.mzs)
        np.save(directory / "offsets.npy", arena.offsets)
        manifest: dict = {
            "version": _FORMAT_VERSION,
            "n_entries": int(arena.n_entries),
            "n_ions": int(arena.n_ions),
            "lengths": arena.lengths is not None,
            "masses": arena.masses is not None,
            "resolutions": [],
        }
        if arena.lengths is not None:
            np.save(directory / "lengths.npy", arena.lengths)
        if arena.masses is not None:
            np.save(directory / "masses.npy", arena.masses)
        resolutions = sorted(
            set(arena._bucket_cache) | set(arena._order_cache)
        )
        for i, resolution in enumerate(resolutions):
            entry = {
                "hex": float(resolution).hex(),
                "buckets": None,
                "order": None,
            }
            buckets = arena._bucket_cache.get(resolution)
            if buckets is not None:
                entry["buckets"] = f"buckets_{i}.npy"
                np.save(directory / entry["buckets"], buckets)
            order = arena._order_cache.get(resolution)
            if order is not None:
                entry["order"] = f"order_{i}.npy"
                np.save(directory / entry["order"], order)
            manifest["resolutions"].append(entry)
        (directory / _MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="ascii"
        )
        return cls(directory, manifest)

    # -- reading --------------------------------------------------------

    @classmethod
    def exists(cls, directory: Union[str, Path]) -> bool:
        """True when ``directory`` holds a spilled store (a manifest)."""
        return (Path(directory) / _MANIFEST_NAME).is_file()

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "SharedArenaStore":
        """Attach to a store written by :meth:`spill`."""
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise FormatError(f"no arena store at {directory} (missing manifest)")
        manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        if manifest.get("version") != _FORMAT_VERSION:
            raise FormatError(
                f"unsupported arena store version {manifest.get('version')!r}"
            )
        return cls(directory, manifest)

    def load(self, *, mmap_mode: str = "r") -> FragmentArena:
        """Rebuild the arena with every array memory-mapped.

        ``mmap_mode="r"`` (default) yields read-only views: any
        attempted write raises, which is what guarantees N workers can
        share one physical copy safely.  ``"c"`` (copy-on-write) is
        accepted for callers that must scribble on private pages.
        """
        if mmap_mode not in ("r", "c"):
            raise ConfigurationError(
                f"mmap_mode must be 'r' or 'c', got {mmap_mode!r}"
            )
        d = self.directory
        try:
            mzs = np.load(d / "mzs.npy", mmap_mode=mmap_mode)
            offsets = np.load(d / "offsets.npy", mmap_mode=mmap_mode)
            lengths = (
                np.load(d / "lengths.npy", mmap_mode=mmap_mode)
                if self.manifest["lengths"]
                else None
            )
            masses = (
                np.load(d / "masses.npy", mmap_mode=mmap_mode)
                if self.manifest["masses"]
                else None
            )
            arena = FragmentArena(mzs, offsets, lengths=lengths, masses=masses)
            for entry in self.manifest["resolutions"]:
                resolution = float.fromhex(entry["hex"])
                if entry["buckets"] is not None:
                    arena._bucket_cache[resolution] = np.load(
                        d / entry["buckets"], mmap_mode=mmap_mode
                    )
                if entry["order"] is not None:
                    arena._order_cache[resolution] = np.load(
                        d / entry["order"], mmap_mode=mmap_mode
                    )
        except FileNotFoundError as missing:
            raise FormatError(
                f"arena store {d} is missing {missing.filename!r}"
            ) from None
        return arena

    # -- introspection --------------------------------------------------

    @property
    def n_entries(self) -> int:
        """Entries in the spilled arena."""
        return int(self.manifest["n_entries"])

    @property
    def n_ions(self) -> int:
        """Fragments in the spilled arena."""
        return int(self.manifest["n_ions"])

    def file_bytes(self) -> Dict[str, int]:
        """On-disk bytes per store file (the shared-copy footprint)."""
        return {
            p.name: p.stat().st_size
            for p in sorted(self.directory.glob("*.npy"))
        }

    def nbytes(self) -> int:
        """Total on-disk bytes — the one physical copy all workers share."""
        return sum(self.file_bytes().values())


# -- shared spill cache (one tmpdir spill per arena, refcounted) --------


def sweep_stale_stores(
    root: Union[str, Path, None] = None,
    *,
    incomplete_age_s: float = 3600.0,
    complete_age_s: float = 3 * 86400.0,
) -> int:
    """Best-effort removal of stale ``repro-arena-*``/``repro-spectra-*`` dirs.

    The normal cleanup path is a ``weakref.finalize`` on the spill
    handle, but a process that exits hard (kill -9, OOM) never runs
    finalizers, and a crash between ``mkdtemp`` and the spill leaves a
    manifest-less husk.  This sweep closes both leak windows while
    staying off live data: directories under ``root`` (default: the
    system temp dir) matching the package's store prefixes are

    * **never touched** while their recorded owner process
      (``owner.pid``, written at creation) is still alive — an idle
      long-running session outlasts any age threshold,
    * otherwise removed when *incomplete* (no ``*_manifest.json`` — a
      torn spill) and older than ``incomplete_age_s``, or complete but
      older than ``complete_age_s`` (an orphan whose owner died before
      its finalizers ran).

    Every error is swallowed — this must never break the caller.
    Returns the number of directories removed.
    """
    base = Path(root) if root is not None else Path(tempfile.gettempdir())
    removed = 0
    now = time.time()
    try:
        candidates = [
            p
            for p in base.iterdir()
            if p.is_dir() and p.name.startswith(_STORE_PREFIXES)
        ]
    except OSError:
        return 0
    for path in candidates:
        try:
            if _owner_alive(path):
                continue
            age = now - path.stat().st_mtime
            complete = any(path.glob("*_manifest.json"))
            limit = complete_age_s if complete else incomplete_age_s
            if age > limit:
                shutil.rmtree(path, ignore_errors=True)
                removed += 1
        except OSError:
            continue
    return removed


class SharedSpill:
    """A refcounted temporary-directory spill of one arena.

    The handle owns its tmpdir: a ``weakref.finalize`` registered
    **before** any file is written removes the directory when the last
    holder drops the handle (or at interpreter exit), so a crash
    mid-spill cannot leak it.  Engines and services that share one
    database hold the *same* handle (via :func:`shared_spill_for`), so
    the directory lives exactly as long as anyone is mapping it —
    plain Python refcounting is the refcount.
    """

    __slots__ = ("arena", "resolution", "directory", "store", "_finalizer", "__weakref__")

    def __init__(self, arena: FragmentArena, resolution: float) -> None:
        sweep_stale_stores()
        self.arena = arena
        self.resolution = float(resolution)
        self.directory = Path(tempfile.mkdtemp(prefix="repro-arena-"))
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self.directory), ignore_errors=True
        )
        write_owner_marker(self.directory)
        # Quantize and bucket-sort before spilling so workers that
        # load the store never re-run floor() or argsort().
        arena.buckets_for(self.resolution)
        arena.sort_order_for(self.resolution)
        self.store = SharedArenaStore.spill(arena, self.directory)

    @property
    def alive(self) -> bool:
        """True while the tmpdir has not been finalized away."""
        return self._finalizer.alive


#: Live spills keyed by (arena identity, quantization resolution).
#: Values are weak: the cache never keeps a spill alive — holders do.
#: The key stays valid while the spill lives because the spill holds
#: the arena strongly (so ``id(arena)`` cannot be recycled under it).
_SPILL_CACHE: Dict[Tuple[int, str], "weakref.ref[SharedSpill]"] = {}
_SPILL_LOCK = threading.Lock()


def shared_spill_for(arena: FragmentArena, resolution: float) -> SharedSpill:
    """The one shared tmpdir spill of ``arena`` at ``resolution``.

    Two engines (or a service and an engine) over the same
    :class:`~repro.search.database.IndexedDatabase` receive the same
    :class:`SharedSpill` handle instead of spilling twice; the tmpdir
    is removed only when the *last* holder dies, so one engine's death
    never tears the memmaps out from under another.  Callers must keep
    the returned handle referenced for as long as they (or their
    workers) map the store.
    """
    key = (id(arena), float(resolution).hex())
    with _SPILL_LOCK:
        ref = _SPILL_CACHE.get(key)
        spill = ref() if ref is not None else None
        if spill is not None and spill.arena is arena and spill.alive:
            return spill
        spill = SharedSpill(arena, resolution)
        _SPILL_CACHE[key] = weakref.ref(
            spill, lambda _ref, _key=key: _SPILL_CACHE.pop(_key, None)
        )
        return spill
