"""Real multi-process execution backend with a memmap-shared arena.

The simulated cluster (:mod:`repro.mpi`) runs ranks as threads over
virtual clocks — ideal for deterministic load-imbalance experiments,
useless for measuring the paper's actual claim: wall-clock speedup
from load-balanced parallel peptide search.  This package executes the
same rank program (:mod:`repro.search.rank`) on real OS processes:

* :mod:`repro.parallel.shared_arena` — spill a
  :class:`~repro.index.arena.FragmentArena` to a directory of raw
  ``.npy`` files and reopen it read-only with ``np.memmap`` in any
  process: N workers share **one** physical copy of the fragment data
  through the OS page cache instead of N pickled clones,
* :mod:`repro.parallel.pool` — a :class:`~repro.parallel.pool.ProcessBackend`
  mirroring :func:`~repro.mpi.launcher.run_spmd`'s contract (per-rank
  callable, rank/size, gathered results and real timings) on
  ``multiprocessing`` spawn workers, with crash → clean exception,
* :mod:`repro.parallel.engine` — a
  :class:`~repro.parallel.engine.ParallelSearchEngine` that is
  bit-identical to the serial and simulated-distributed engines for
  every partition policy and worker count, but whose phase times are
  real seconds,
* :mod:`repro.parallel.persistent` — a
  :class:`~repro.parallel.persistent.PersistentPool` of *resident*
  spawn workers looping on a command pipe (ATTACH once, QUERY per
  batch, SHUTDOWN), with automatic respawn + re-attach on worker
  death — the substrate of :mod:`repro.service`.  Its blocking
  ``run_batch`` splits into non-blocking
  :meth:`~repro.parallel.persistent.PersistentPool.dispatch` →
  :class:`~repro.parallel.persistent.RoundHandle` ``.collect()``
  halves, the primitive the service's pipelined session overlaps
  master-side work with,
* :mod:`repro.parallel.faults` — deterministic fault injection
  (crash / raise / hang / slow at any worker stage, once-only across
  respawns via an on-disk ledger), the substrate of the chaos suite
  that proves the supervision layer heals every fault class
  bit-identically,
* :mod:`repro.parallel.shared_spectra` — the
  :class:`~repro.parallel.shared_spectra.SharedSpectraStore` giving
  preprocessed query batches the same memmap-shared treatment, so the
  per-batch scatter payload is O(manifest), never pickled peak arrays,
* :mod:`repro.parallel.transport` — the pluggable
  :class:`~repro.parallel.transport.Transport` registry behind both
  pools' worker bootstrap: the pools speak only the
  :class:`~repro.parallel.transport.WorkerChannel` API, so swapping
  local spawn pipes for a socket transport never touches supervision.
"""

from repro.parallel.engine import ParallelEngineConfig, ParallelSearchEngine
from repro.parallel.faults import FaultInjected, FaultPlan, FaultSpec, maybe_inject
from repro.parallel.persistent import PersistentPool, PoolBatchResult, RoundHandle
from repro.parallel.pool import ProcessBackend, ProcessResult
from repro.parallel.transport import (
    TRANSPORTS,
    PipeTransport,
    Transport,
    WorkerChannel,
    make_transport,
    register_transport,
)
from repro.parallel.shared_arena import (
    SharedArenaStore,
    SharedSpill,
    shared_spill_for,
    sweep_stale_stores,
    write_owner_marker,
)
from repro.parallel.shared_spectra import SharedSpectraStore

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "maybe_inject",
    "ParallelEngineConfig",
    "ParallelSearchEngine",
    "PersistentPool",
    "PipeTransport",
    "PoolBatchResult",
    "ProcessBackend",
    "RoundHandle",
    "ProcessResult",
    "Transport",
    "TRANSPORTS",
    "WorkerChannel",
    "make_transport",
    "register_transport",
    "SharedArenaStore",
    "SharedSpectraStore",
    "SharedSpill",
    "shared_spill_for",
    "sweep_stale_stores",
    "write_owner_marker",
]
