"""Long-lived spawn workers looping on a command pipe.

:class:`~repro.parallel.pool.ProcessBackend` pays the full spawn +
import + attach cost on every ``run()`` — fine for one batch, fatal
for serving a stream of them.  :class:`PersistentPool` keeps the
workers *resident*: each worker is spawned once, receives one
``ATTACH`` command that builds its long-lived state (for the search
service: open the memmap-shared arena store and build the rank's
partial index), then answers any number of ``QUERY`` commands against
that state until ``SHUTDOWN``.  HiCOPS keeps its parallel machinery
resident across query batches for exactly this amortization.

The crash/deadline contract mirrors ``ProcessBackend`` — no failure
mode may hang, every failure surfaces as
:class:`~repro.errors.WorkerError` — but with session survival on top:

* a worker that *raises* during a batch reports the remote traceback
  and **keeps looping**; the batch fails with :class:`WorkerError`,
  the session does not,
* a worker that *dies* (segfault, ``os._exit``, kill) fails the
  in-flight batch with :class:`WorkerError` carrying its exit code;
  the pool **respawns and re-attaches** the rank automatically before
  the next batch, so the service survives,
* a batch that exceeds the deadline terminates the stragglers (a
  stuck worker cannot be resynchronized) and raises; the stragglers
  are respawned + re-attached on the next batch.

Command callables must be module-level (picklable by reference).  The
attach callable runs ``fn(rank, size, payload) -> (state, report)``;
the worker keeps ``state`` and returns ``report``.  Batch callables
run ``fn(rank, size, state, payload) -> result``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError, WorkerError

__all__ = ["PersistentPool", "PoolBatchResult"]

_ATTACH = "attach"
_QUERY = "query"
_SHUTDOWN = "shutdown"


@dataclass(frozen=True, slots=True)
class PoolBatchResult:
    """Outcome of one resident-pool command round.

    Attributes
    ----------
    results:
        Per-rank return values of the command callable.
    wall_times / cpu_times:
        Per-rank real elapsed / process-CPU seconds inside the
        callable (excludes pipe transfer).
    respawned:
        Workers that had to be respawned (and re-attached) before this
        round could run — 0 in steady state.
    """

    results: List[Any]
    wall_times: List[float]
    cpu_times: List[float]
    respawned: int = 0

    @property
    def n_workers(self) -> int:
        """Number of workers that answered."""
        return len(self.results)

    @property
    def makespan(self) -> float:
        """The slowest worker's elapsed seconds."""
        return max(self.wall_times) if self.wall_times else 0.0


def _persistent_worker_entry(conn, rank: int, size: int) -> None:
    """Worker-side command loop: ATTACH once, QUERY forever, SHUTDOWN."""
    state: Any = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # master is gone; daemon exit
        command = message[0]
        if command == _SHUTDOWN:
            try:
                conn.send(("ok", None, 0.0, 0.0))
            except (BrokenPipeError, OSError):
                pass
            break
        fn, payload = message[1], message[2]
        try:
            t0 = time.perf_counter()
            c0 = time.process_time()
            if command == _ATTACH:
                state, result = fn(rank, size, payload)
            else:
                result = fn(rank, size, state, payload)
            wall = time.perf_counter() - t0
            cpu = time.process_time() - c0
        except BaseException as exc:  # noqa: BLE001 - reported to the master
            try:
                conn.send(
                    ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
                )
            except BaseException:  # noqa: BLE001 - pipe itself is broken
                break
            continue  # a failing batch must not kill the session
        try:
            conn.send(("ok", result, wall, cpu))
        except BaseException as exc:  # noqa: BLE001 - e.g. unpicklable result
            try:
                conn.send(
                    (
                        "error",
                        f"{type(exc).__name__}: {exc} (while sending the result)",
                        traceback.format_exc(),
                    )
                )
            except BaseException:  # noqa: BLE001
                break
    conn.close()


def _terminate_quietly(proc) -> None:
    """Terminate and reap one worker process, swallowing races."""
    try:
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
    except (OSError, ValueError):
        pass


class PersistentPool:
    """``n_workers`` resident OS processes answering command rounds.

    Parameters
    ----------
    n_workers:
        Worker count (the rank space is ``0 .. n_workers - 1``).
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) for a
        fresh interpreter per worker on every platform.
    timeout:
        Real-seconds deadline per command round (attach or batch).

    Use as a context manager, or call :meth:`close` explicitly; a
    dropped pool terminates its workers through a finalizer.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str = "spawn",
        timeout: float = 600.0,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if start_method not in mp.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available "
                f"(have {mp.get_all_start_methods()})"
            )
        self.n_workers = n_workers
        self.start_method = start_method
        self.timeout = timeout
        self._ctx = mp.get_context(start_method)
        self._procs: List[Optional[Any]] = [None] * n_workers
        self._pipes: List[Optional[Any]] = [None] * n_workers
        self._attach: Optional[Tuple[Callable, List[Any]]] = None
        self._closed = False
        self._respawn_total = 0
        # Serializes command rounds against each other and against
        # close(): a concurrent close waits for the in-flight round
        # (bounded by the deadline) instead of tearing its pipes away.
        self._round_lock = threading.Lock()
        for rank in range(n_workers):
            self._spawn(rank)
        # Safety net: a pool dropped without close() must not leave
        # orphan processes.  The finalizer captures the lists, not
        # self, so it cannot keep the pool alive.
        self._reaper = weakref.finalize(
            self, _reap_pool, self._procs, self._pipes
        )

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; idempotent (double-close is a no-op).

        New rounds are rejected immediately; an in-flight round is
        waited for (it ends by its own deadline at the latest) so its
        caller sees a clean result or :class:`WorkerError`, never torn
        pipes.
        """
        if self._closed:
            return
        self._closed = True  # reject new rounds before taking the lock
        with self._round_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        deadline = time.monotonic() + min(self.timeout, 10.0)
        for rank in range(self.n_workers):
            pipe, proc = self._pipes[rank], self._procs[rank]
            if pipe is None or proc is None or not proc.is_alive():
                continue
            try:
                pipe.send((_SHUTDOWN,))
            except (BrokenPipeError, OSError):
                continue
        for rank in range(self.n_workers):
            proc = self._procs[rank]
            if proc is None:
                continue
            try:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            except (OSError, ValueError):
                pass
            _terminate_quietly(proc)
        for pipe in self._pipes:
            if pipe is not None:
                pipe.close()
        self._procs = [None] * self.n_workers
        self._pipes = [None] * self.n_workers

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def respawn_total(self) -> int:
        """Workers respawned over the pool's lifetime."""
        return self._respawn_total

    def worker_pids(self) -> List[Optional[int]]:
        """Current per-rank worker PIDs (None for a dead slot)."""
        return [
            proc.pid if proc is not None else None for proc in self._procs
        ]

    # -- spawning --------------------------------------------------------

    def _spawn(self, rank: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_persistent_worker_entry,
            args=(child_conn, rank, self.n_workers),
            name=f"repro-resident-{rank}",
            daemon=True,
        )
        proc.start()
        # Drop the master's copy of the child end so a dead worker
        # reads as EOF/sentinel, never as an open idle pipe.
        child_conn.close()
        self._procs[rank] = proc
        self._pipes[rank] = parent_conn

    def _respawn(self, rank: int, deadline: float) -> None:
        """Replace a dead worker and replay its ATTACH."""
        proc = self._procs[rank]
        if proc is not None:
            _terminate_quietly(proc)
        pipe = self._pipes[rank]
        if pipe is not None:
            pipe.close()
        self._spawn(rank)
        self._respawn_total += 1
        if self._attach is not None:
            fn, payloads = self._attach
            self._pipes[rank].send((_ATTACH, fn, payloads[rank]))
            self._receive(rank, deadline)

    def _ensure_alive(self, deadline: float) -> int:
        """Respawn (and re-attach) any rank that died between rounds."""
        respawned = 0
        for rank in range(self.n_workers):
            proc = self._procs[rank]
            if proc is None or not proc.is_alive():
                self._respawn(rank, deadline)
                respawned += 1
        return respawned

    # -- command rounds --------------------------------------------------

    def attach(
        self, fn: Callable[[int, int, Any], Any], payloads: Sequence[Any]
    ) -> PoolBatchResult:
        """Build per-worker resident state: ``fn(rank, size, payload)``.

        ``fn`` must return ``(state, report)``; the worker keeps
        ``state`` for subsequent :meth:`run_batch` calls and this
        method gathers the reports.  The attach round is remembered
        and **replayed automatically** whenever a dead worker is
        respawned.
        """
        self._check_open()
        if len(payloads) != self.n_workers:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {self.n_workers} workers"
            )
        self._attach = (fn, list(payloads))
        return self._round(_ATTACH, fn, self._attach[1])

    def run_batch(
        self, fn: Callable[[int, int, Any, Any], Any], payloads: Sequence[Any]
    ) -> PoolBatchResult:
        """One batch round: ``fn(rank, size, state, payload)`` per rank."""
        self._check_open()
        if len(payloads) != self.n_workers:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {self.n_workers} workers"
            )
        return self._round(_QUERY, fn, list(payloads))

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("pool is closed; no further commands accepted")

    def _round(self, command: str, fn: Callable, payloads: List[Any]) -> PoolBatchResult:
        with self._round_lock:
            return self._round_locked(command, fn, payloads)

    def _round_locked(
        self, command: str, fn: Callable, payloads: List[Any]
    ) -> PoolBatchResult:
        # Re-check under the lock: a concurrent close() that won the
        # lock first has already torn the pipes down.
        self._check_open()
        deadline = time.monotonic() + self.timeout
        respawned = self._ensure_alive(deadline)
        dispatched: List[int] = []
        for rank in range(self.n_workers):
            try:
                self._pipes[rank].send((command, fn, payloads[rank]))
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send: one
                # respawn attempt, then give up on the round.
                try:
                    self._respawn(rank, deadline)
                    respawned += 1
                    self._pipes[rank].send((command, fn, payloads[rank]))
                except (WorkerError, BrokenPipeError, OSError) as exc:
                    # Aborting mid-scatter would leave the ranks already
                    # dispatched with undrained replies — stale messages
                    # that a later round would misread as its own
                    # results.  Kill them instead; the next round
                    # respawns everything with clean pipes.
                    self._abort_dispatched(dispatched)
                    raise WorkerError(
                        f"worker {rank} died immediately after respawn: {exc}"
                    ) from None
                except BaseException:
                    self._abort_dispatched(dispatched)
                    raise
            except BaseException:
                # Any other send failure (e.g. an unpicklable payload
                # raising TypeError) aborts the scatter the same way —
                # dispatched ranks must never be left with undrained
                # replies.
                self._abort_dispatched(dispatched)
                raise
            dispatched.append(rank)
        results: List[Any] = [None] * self.n_workers
        walls = [0.0] * self.n_workers
        cpus = [0.0] * self.n_workers
        pending = set(range(self.n_workers))
        failures: dict[int, WorkerError] = {}
        deadline_failure: Optional[WorkerError] = None
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Stuck workers cannot be resynchronized — kill them;
                # the next round respawns and re-attaches.
                for rank in sorted(pending):
                    _terminate_quietly(self._procs[rank])
                stuck = sorted(pending)
                pending.clear()
                deadline_failure = WorkerError(
                    f"resident pool deadline ({self.timeout:.0f}s) expired "
                    f"with workers {stuck} still running"
                )
                break
            waitees = [self._pipes[r] for r in pending] + [
                self._procs[r].sentinel for r in pending
            ]
            connection.wait(waitees, timeout=remaining)
            for rank in sorted(pending):
                if self._pipes[rank].poll():
                    failure = self._consume(rank, results, walls, cpus)
                    pending.discard(rank)
                    if failure is not None:
                        failures[rank] = failure
                elif not self._procs[rank].is_alive():
                    self._procs[rank].join()
                    if self._pipes[rank].poll():
                        failure = self._consume(rank, results, walls, cpus)
                        pending.discard(rank)
                        if failure is not None:
                            failures[rank] = failure
                    else:
                        pending.discard(rank)
                        failures[rank] = WorkerError(
                            f"worker {rank} died mid-batch without reporting "
                            f"(exit code {self._procs[rank].exitcode})"
                        )
        if failures:
            # Healthy workers have been drained, so the pipes stay in
            # request/response sync; dead ones respawn next round.  The
            # lowest failing rank is surfaced deterministically, not
            # whichever reply happened to arrive first.
            raise failures[min(failures)]
        if deadline_failure is not None:
            raise deadline_failure
        return PoolBatchResult(
            results=results, wall_times=walls, cpu_times=cpus, respawned=respawned
        )

    def _abort_dispatched(self, dispatched: List[int]) -> None:
        """Kill ranks whose command was already sent in an aborted
        scatter — their replies would desync the next round."""
        for rank in dispatched:
            _terminate_quietly(self._procs[rank])

    def _consume(
        self, rank: int, results, walls, cpus
    ) -> Optional[WorkerError]:
        """Read one reply; return (not raise) a failure so the round
        can keep draining the other workers before surfacing it."""
        try:
            message = self._pipes[rank].recv()
        except (EOFError, OSError):
            proc = self._procs[rank]
            proc.join()
            return WorkerError(
                f"worker {rank} died mid-batch without reporting "
                f"(exit code {proc.exitcode})"
            )
        if message[0] == "error":
            _, summary, remote_tb = message
            return WorkerError(
                f"worker {rank} raised {summary}\n"
                f"--- remote traceback ---\n{remote_tb}"
            )
        _, result, wall, cpu = message
        results[rank] = result
        walls[rank] = wall
        cpus[rank] = cpu
        return None

    def _receive(self, rank: int, deadline: float) -> Any:
        """Await one rank's reply (used for replayed ATTACH rounds)."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                _terminate_quietly(self._procs[rank])
                raise WorkerError(
                    f"worker {rank} exceeded the deadline while re-attaching"
                )
            connection.wait(
                [self._pipes[rank], self._procs[rank].sentinel], timeout=remaining
            )
            if self._pipes[rank].poll():
                results = [None] * self.n_workers
                walls = [0.0] * self.n_workers
                cpus = [0.0] * self.n_workers
                failure = self._consume(rank, results, walls, cpus)
                if failure is not None:
                    raise failure
                return results[rank]
            if not self._procs[rank].is_alive():
                self._procs[rank].join()
                if self._pipes[rank].poll():
                    continue
                raise WorkerError(
                    f"worker {rank} died while re-attaching "
                    f"(exit code {self._procs[rank].exitcode})"
                )


def _reap_pool(procs, pipes) -> None:
    """Finalizer body: terminate whatever is still running."""
    for proc in procs:
        if proc is not None:
            _terminate_quietly(proc)
    for pipe in pipes:
        if pipe is not None:
            try:
                pipe.close()
            except OSError:
                pass
