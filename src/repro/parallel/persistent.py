"""Long-lived spawn workers looping on a command pipe.

:class:`~repro.parallel.pool.ProcessBackend` pays the full spawn +
import + attach cost on every ``run()`` — fine for one batch, fatal
for serving a stream of them.  :class:`PersistentPool` keeps the
workers *resident*: each worker is spawned once, receives one
``ATTACH`` command that builds its long-lived state (for the search
service: open the memmap-shared arena store and build the rank's
partial index), then answers any number of ``QUERY`` commands against
that state until ``SHUTDOWN``.  HiCOPS keeps its parallel machinery
resident across query batches for exactly this amortization.

Failure semantics
-----------------
The contract is "never hangs, heals fast": no failure mode may block
forever, and with ``max_retries > 0`` a round *survives* its workers —
the failing rank's payload is replayed on a respawned worker and the
round completes bit-identically to the fault-free run.  The matrix
(fault × stage → observed behavior, with R = ``max_retries``):

=====================  ==================================================
fault at stage         observed behavior
=====================  ==================================================
crash before attach    ATTACH round fails for the rank; supervision
(spawn / attach)       respawns it, the replayed attach IS the retry —
                       heals for R >= 1, else :class:`WorkerError` with
                       the exit code.
raise during attach    error reply, worker stays resident; retry
                       re-sends the attach payload — heals for R >= 1.
crash mid-query        death detected via the process sentinel; retry
                       respawns + re-attaches the rank and re-dispatches
                       **only its payload** with exponential backoff —
                       heals for R >= 1, else fails the batch (session
                       survives either way, next round respawns).
crash before reply     same as crash mid-query (work computed but never
                       reported is indistinguishable from never run).
raise mid-query        error reply carrying the remote traceback; the
                       worker keeps looping (pipe stays synchronized);
                       retry re-sends the payload to the same worker.
hang                   the per-rank round deadline expires, the stuck
                       worker is terminated (it cannot be
                       resynchronized) and the rank retried as a death.
slow (straggler)       not a failure: with ``hedge_after`` set, the
                       soft deadline launches a speculative duplicate
                       of each still-outstanding rank's task on a
                       fresh attached worker; first answer wins, keyed
                       per (round, rank), the loser is terminated so a
                       late duplicate can never double-merge.
retries exhausted      default: the round raises the lowest failing
                       rank's :class:`WorkerError` (structured with
                       ``rank`` / ``exit_code`` / ``retries``).  With
                       ``degraded_ok=True`` a QUERY round instead
                       returns a partial :class:`PoolBatchResult` whose
                       ``failed_ranks`` mask names the missing ranks
                       (their ``results`` entries are ``None``).
crash during a live    the re-attach retries like any rank failure:
re-attach              respawn + replay with exponential backoff —
(:meth:`reconfigure`)  heals for R >= 1 even when the death happens
                       *during the replayed attach itself* (the
                       retry-of-retry path: each replay consumes one
                       more attempt from the same per-rank budget).
crash in a worker      surviving ranks are untouched; the dead new
added by a resize      slot retries exactly like a re-attach above.
                       A resize never destabilizes ranks it did not
                       touch.
=====================  ==================================================

Live reconfiguration (the rebalance actuator)
---------------------------------------------
:meth:`PersistentPool.reconfigure` is the elastic-rebalancing
primitive: **between rounds** (it refuses while a round is on the
pipe) it atomically replaces the remembered ATTACH payloads, re-sends
the ATTACH command to exactly the ranks whose payload changed (a live
worker accepts a new ATTACH — its old state is simply dropped), and
grows or shrinks the worker count: surplus ranks are shut down,
fresh ranks are spawned and attached.  Respawn replay always uses the
*new* payloads, so a worker that dies mid-reconfigure (or any time
after) heals into the new plan, never the old one.  Untouched ranks
keep their resident state — the whole point: migrating a plan that
moved 10 % of the entries re-attaches only the ranks holding that
10 %.  Note that surviving workers keep the ``size`` their entry loop
was spawned with; command callables must not depend on it (the
service's do not).

Fault injection for the chaos suite lives in
:mod:`repro.parallel.faults`; the plan reaches every worker (and every
hedge) as a spawn argument, or via the ``REPRO_FAULT_PLAN`` env var.

Transports and the sharded fleet
--------------------------------
Worker bootstrap goes through the pluggable
:class:`~repro.parallel.transport.Transport` registry: the pool asks
its transport for one :class:`~repro.parallel.transport.WorkerChannel`
per rank (and per hedge) and speaks only the channel API — in-process
``multiprocessing`` pipes today (``transport="pipe"``), a socket
transport tomorrow, with the supervision loop unchanged.  The sharded
serving tier (:mod:`repro.service.sharding`) composes one pool per
database shard; the failure matrix above stays strictly per-pool — a
whole shard lost after retries degrades fleet *coverage* at the
sharded layer (``degraded_shards``), never this pool's contract.

Split rounds (the pipelining substrate)
---------------------------------------
:meth:`PersistentPool.run_batch` is the blocking convenience; the
primitive underneath is the **non-blocking half-pair**
:meth:`PersistentPool.dispatch` → :class:`RoundHandle` →
:meth:`RoundHandle.collect`.  ``dispatch`` scatters the command (the
workers start computing immediately) and returns; the master is free
to do other work — preprocess the next batch, merge the previous one —
until ``collect`` gathers the replies.  At most **one round may be on
the pipe at a time** (a second ``dispatch`` before ``collect`` raises
:class:`~repro.errors.PipelineError`): the pipe protocol is strict
request/response per worker, and a single in-flight round is exactly
what keeps the crash/respawn/deadline contract per round unchanged.
The round's deadline starts at ``dispatch`` time; a retry resets the
retried rank's deadline only.

The scatter pickles each **distinct payload object once** — when every
rank receives the same task object (the service's per-batch command),
one pickle serves all workers, and the actual bytes written to the
pipes are reported on the result (``scatter_bytes``).

Command callables must be module-level (picklable by reference).  The
attach callable runs ``fn(rank, size, payload) -> (state, report)``;
the worker keeps ``state`` and returns ``report``.  Batch callables
run ``fn(rank, size, state, payload) -> result``.
"""

from __future__ import annotations

import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import connection
from multiprocessing.reduction import ForkingPickler
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, PipelineError, ServiceError, WorkerError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.parallel.faults import FaultPlan, maybe_inject
from repro.parallel.transport import Transport, WorkerChannel, make_transport

__all__ = ["PersistentPool", "PoolBatchResult", "RoundHandle"]

_ATTACH = "attach"
_QUERY = "query"
_SHUTDOWN = "shutdown"


@dataclass(frozen=True, slots=True)
class PoolBatchResult:
    """Outcome of one resident-pool command round.

    Attributes
    ----------
    results:
        Per-rank return values of the command callable (``None`` at
        the positions named by ``failed_ranks`` in a degraded round).
    wall_times / cpu_times:
        Per-rank real elapsed / process-CPU seconds inside the
        callable (excludes pipe transfer).
    respawned:
        Workers that had to be respawned (and re-attached) for this
        round — before it (death between rounds) or during it (retry
        after a mid-round death).  0 in steady state.
    scatter_bytes:
        Actual command bytes written to the worker pipes for this
        round (each distinct payload object pickled once, its buffer
        reused for every rank that receives it).
    retries:
        Per-rank re-dispatches the supervision layer performed to
        finish this round (0 in steady state).
    hedged:
        Speculative straggler duplicates launched by the soft
        ``hedge_after`` deadline (0 in steady state).
    failed_ranks:
        Ranks with no result after retries exhausted — non-empty only
        in ``degraded_ok`` mode, where it is the per-rank coverage
        mask's complement.
    """

    results: List[Any]
    wall_times: List[float]
    cpu_times: List[float]
    respawned: int = 0
    scatter_bytes: int = 0
    retries: int = 0
    hedged: int = 0
    failed_ranks: Tuple[int, ...] = ()

    @property
    def n_workers(self) -> int:
        """Number of worker slots in the round (including failed ones)."""
        return len(self.results)

    @property
    def makespan(self) -> float:
        """The slowest worker's elapsed seconds."""
        return max(self.wall_times) if self.wall_times else 0.0


class RoundHandle:
    """One dispatched command round awaiting :meth:`collect`.

    Returned by :meth:`PersistentPool.dispatch` after the command was
    scattered — the workers are already computing.  ``collect`` blocks
    until every worker replied (or retries/hedges resolved it, or the
    per-rank deadlines expired) and returns the same
    :class:`PoolBatchResult` the blocking :meth:`~PersistentPool.run_batch`
    would have.  A handle is single-use: collecting twice, collecting
    a stale handle, or dispatching again while this round is still on
    the pipe raises :class:`~repro.errors.PipelineError`.

    Attributes
    ----------
    command:
        The pipe command that was scattered (attach or query).
    deadline:
        ``time.monotonic()`` instant the round (initially) must finish
        by; a retried rank gets a fresh deadline of its own.
    respawned:
        Workers respawned (and re-attached) to scatter this round.
    scatter_bytes:
        Actual pickled command bytes written to the pipes.
    """

    __slots__ = ("_pool", "command", "deadline", "respawned", "scatter_bytes",
                 "fn", "payloads", "dispatched_at", "_collected", "_aborted")

    def __init__(
        self,
        pool: "PersistentPool",
        command: str,
        deadline: float,
        respawned: int,
        scatter_bytes: int,
        fn: Callable,
        payloads: List[Any],
        dispatched_at: float,
    ) -> None:
        self._pool = pool
        self.command = command
        self.deadline = deadline
        self.respawned = respawned
        self.scatter_bytes = scatter_bytes
        self.fn = fn
        self.payloads = payloads
        self.dispatched_at = dispatched_at
        self._collected = False
        self._aborted = False

    @property
    def pending(self) -> bool:
        """True while the round is on the pipe (dispatched, not collected)."""
        return not self._collected and not self._aborted

    def collect(self) -> PoolBatchResult:
        """Await every worker's reply; see :class:`RoundHandle`."""
        return self._pool._collect(self)


def _persistent_worker_entry(
    conn, rank: int, size: int, fault_plan: Optional[FaultPlan] = None
) -> None:
    """Worker-side command loop: ATTACH once, QUERY forever, SHUTDOWN.

    ``fault_plan`` is the chaos harness's injection schedule (see
    :mod:`repro.parallel.faults`); ``None`` — the production case — is
    a single no-op check per command.
    """
    maybe_inject(fault_plan, rank, "spawn")
    state: Any = None
    query_ordinal = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # master is gone; daemon exit
        command = message[0]
        if command == _SHUTDOWN:
            try:
                conn.send(("ok", None, 0.0, 0.0))
            except (BrokenPipeError, OSError):
                pass
            break
        fn, payload = message[1], message[2]
        if command == _ATTACH:
            stage, batch = "attach", None
        else:
            # Batch coordinate for fault scheduling: the payload's own
            # batch_index when it carries one (the service's QueryTask
            # echoes it), else this worker's query ordinal.
            stage = "query"
            batch = getattr(payload, "batch_index", None)
            if not isinstance(batch, int) or batch < 0:
                batch = query_ordinal
            query_ordinal += 1
        try:
            maybe_inject(fault_plan, rank, stage, batch)
            t0 = time.perf_counter()
            c0 = time.process_time()
            if command == _ATTACH:
                state, result = fn(rank, size, payload)
            else:
                result = fn(rank, size, state, payload)
            wall = time.perf_counter() - t0
            cpu = time.process_time() - c0
            # The reply stage knows the body's wall time — scale-bearing
            # slow faults stretch it multiplicatively (a chronically
            # slow host runs *everything* slower, not a fixed sleep).
            # Re-measure afterwards so the *reported* wall includes the
            # injected slowdown: the LI gauge is computed from reported
            # walls, and a skew the gauge cannot see cannot be healed.
            maybe_inject(fault_plan, rank, "reply", batch, work_s=wall)
            wall = time.perf_counter() - t0
            cpu = time.process_time() - c0
        except BaseException as exc:  # noqa: BLE001 - reported to the master
            try:
                conn.send(
                    ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
                )
            except BaseException:  # noqa: BLE001 - pipe itself is broken
                break
            continue  # a failing batch must not kill the session
        try:
            conn.send(("ok", result, wall, cpu))
        except BaseException as exc:  # noqa: BLE001 - e.g. unpicklable result
            try:
                conn.send(
                    (
                        "error",
                        f"{type(exc).__name__}: {exc} (while sending the result)",
                        traceback.format_exc(),
                    )
                )
            except BaseException:  # noqa: BLE001
                break
    conn.close()


def _payload_batch(payload) -> Optional[int]:
    """Batch coordinate of a round payload for trace events, if any.

    The service's :class:`~repro.parallel.worker.QueryTask` echoes its
    ``batch_index``; diagnostic payloads carry none and events simply
    omit the ``batch`` attribute.
    """
    batch = getattr(payload, "batch_index", None)
    return batch if isinstance(batch, int) and batch >= 0 else None


class _Hedge:
    """One speculative straggler duplicate: a fresh attached worker
    racing the original rank, first answer wins."""

    __slots__ = ("channel", "attach_done", "deadline", "query_anchor")

    def __init__(self, channel: WorkerChannel, deadline: float) -> None:
        self.channel = channel
        self.attach_done = False
        self.deadline = deadline
        # Master clock at the hedge's attach reply — the moment its
        # query actually starts.  Reply spans are offsets from that
        # moment, not from the round's dispatch; promote_hedge uses
        # this to re-base them into the round's timeline.
        self.query_anchor: Optional[float] = None


class PersistentPool:
    """``n_workers`` resident OS processes answering command rounds.

    Parameters
    ----------
    n_workers:
        Worker count (the rank space is ``0 .. n_workers - 1``).
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) for a
        fresh interpreter per worker on every platform.
    timeout:
        Real-seconds deadline per command round (attach or batch);
        per-rank, reset by a retry.
    max_retries:
        Per-rank re-dispatch budget per round.  0 (default) keeps the
        historical fail-fast contract; >= 1 makes a round survive
        crashes, raises, and deadline kills of its workers.
    backoff_s:
        Base of the exponential retry backoff: attempt *k* sleeps
        ``backoff_s * 2**(k-1)`` before re-dispatching.
    hedge_after:
        Soft per-round deadline in seconds; when a QUERY round is
        still incomplete this long after dispatch, every outstanding
        rank's task is speculatively duplicated on a fresh attached
        worker (at most one hedge per rank per round; first answer
        wins).  ``None`` (default) disables hedging — the idle path
        then adds no syscalls beyond the plain deadline wait.
    degraded_ok:
        When True, a QUERY round whose retries are exhausted returns a
        partial :class:`PoolBatchResult` (``failed_ranks`` mask,
        ``None`` results) instead of raising.  Attach rounds always
        fail loud.
    fault_plan:
        Chaos-testing injection schedule handed to every spawned
        worker; defaults to :meth:`FaultPlan.from_env` so a plan in
        ``REPRO_FAULT_PLAN`` reaches a whole CLI session.
    transport:
        Worker bootstrap mechanism: a registry name (``"pipe"`` —
        local spawn workers on OS pipes — is the default and currently
        the only built-in) or a ready
        :class:`~repro.parallel.transport.Transport` instance.  The
        pool only ever speaks the
        :class:`~repro.parallel.transport.WorkerChannel` API, so a
        socket transport drops in without touching supervision.
    tracer:
        Observability sink (:mod:`repro.obs`): every supervision
        transition — retry, backoff, respawn, hedge launch/win/loss,
        degraded rank — emits a structured event.  The default
        :data:`~repro.obs.trace.NULL_TRACER` is a no-op; every emit
        site is guarded by ``tracer.enabled`` so the disabled path
        costs one branch.

    Use as a context manager, or call :meth:`close` explicitly; a
    dropped pool terminates its workers through a finalizer.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str = "spawn",
        timeout: float = 600.0,
        max_retries: int = 0,
        backoff_s: float = 0.05,
        hedge_after: Optional[float] = None,
        degraded_ok: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        transport: "str | Transport" = "pipe",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        # Resolves the registry name and validates start_method.
        transport_obj = make_transport(transport, start_method=start_method)
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if backoff_s < 0:
            raise ConfigurationError(f"backoff_s must be >= 0, got {backoff_s}")
        if hedge_after is not None and hedge_after <= 0:
            raise ConfigurationError(
                f"hedge_after must be > 0 or None, got {hedge_after}"
            )
        self.n_workers = n_workers
        self.start_method = start_method
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.hedge_after = hedge_after
        self.degraded_ok = degraded_ok
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self._transport = transport_obj
        self._tracer = tracer
        self._channels: List[Optional[WorkerChannel]] = [None] * n_workers
        self._attach: Optional[Tuple[Callable, List[Any]]] = None
        self._closed = False
        self._respawn_total = 0
        self._inflight: Optional[RoundHandle] = None
        # Serializes the scatter and gather halves of a round against
        # each other and against close(): a close() racing a collect()
        # waits for it (bounded by the round deadline) instead of
        # tearing its pipes away.  The lock is *not* held between
        # dispatch and collect — that window is what the pipelined
        # service overlaps with master-side work.
        self._round_lock = threading.Lock()
        for rank in range(n_workers):
            self._spawn(rank)
        # Safety net: a pool dropped without close() must not leave
        # orphan processes.  The finalizer captures the channel list,
        # not self, so it cannot keep the pool alive (the list is
        # mutated in place so the finalizer always sees live slots).
        self._reaper = weakref.finalize(self, _reap_pool, self._channels)

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; idempotent (double-close is a no-op).

        New rounds are rejected immediately.  A round whose
        :meth:`RoundHandle.collect` is executing is waited for (it ends
        by its own deadline at the latest) so its caller sees a clean
        result or :class:`WorkerError`, never torn pipes.  A round that
        was dispatched but whose collect has not started is **aborted**:
        its workers are terminated (their replies can never be drained
        once the pipes close) and a later ``collect`` raises
        :class:`~repro.errors.PipelineError` instead of hanging.
        """
        if self._closed:
            return
        self._closed = True  # reject new rounds before taking the lock
        with self._round_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._inflight is not None and self._inflight.pending:
            # Dispatched but nobody is collecting: kill the workers so
            # teardown cannot block on their unread replies.
            for channel in self._channels:
                if channel is not None:
                    channel.terminate_quietly()
            self._inflight._aborted = True
            self._inflight = None
        deadline = time.monotonic() + min(self.timeout, 10.0)
        for rank in range(self.n_workers):
            channel = self._channels[rank]
            if channel is None or not channel.alive:
                continue
            try:
                channel.send((_SHUTDOWN,))
            except (BrokenPipeError, OSError):
                continue
        for rank in range(self.n_workers):
            channel = self._channels[rank]
            if channel is None:
                continue
            channel.join(timeout=max(0.0, deadline - time.monotonic()))
            channel.terminate_quietly()
        for rank in range(self.n_workers):
            channel = self._channels[rank]
            if channel is not None:
                channel.close()
            self._channels[rank] = None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def respawn_total(self) -> int:
        """Workers respawned over the pool's lifetime."""
        return self._respawn_total

    def worker_pids(self) -> List[Optional[int]]:
        """Current per-rank worker PIDs (None for a dead slot)."""
        return [
            channel.pid if channel is not None else None
            for channel in self._channels
        ]

    # -- spawning --------------------------------------------------------

    def _spawn(self, rank: int) -> None:
        self._channels[rank] = self._transport.spawn(
            _persistent_worker_entry,
            (rank, self.n_workers, self._fault_plan),
            name=f"repro-resident-{rank}",
        )

    def _respawn(self, rank: int, deadline: float) -> Optional[Tuple[Any, float, float]]:
        """Replace a dead worker and replay its ATTACH.

        Returns the replayed attach's ``(report, wall, cpu)`` — an
        ATTACH-round retry uses it directly as the rank's result — or
        ``None`` when no attach has been recorded yet.
        """
        channel = self._channels[rank]
        if channel is not None:
            channel.stop()
        self._spawn(rank)
        self._respawn_total += 1
        if self._tracer.enabled:
            self._tracer.event("respawn", {"rank": rank})
        if self._attach is not None:
            fn, payloads = self._attach
            self._channels[rank].send((_ATTACH, fn, payloads[rank]))
            return self._receive(rank, deadline)
        return None

    def _ensure_alive(self, deadline: float) -> int:
        """Respawn (and re-attach) any rank that died between rounds."""
        respawned = 0
        for rank in range(self.n_workers):
            channel = self._channels[rank]
            if channel is None or not channel.alive:
                self._respawn(rank, deadline)
                respawned += 1
        return respawned

    # -- command rounds --------------------------------------------------

    def attach(
        self, fn: Callable[[int, int, Any], Any], payloads: Sequence[Any]
    ) -> PoolBatchResult:
        """Build per-worker resident state: ``fn(rank, size, payload)``.

        ``fn`` must return ``(state, report)``; the worker keeps
        ``state`` for subsequent :meth:`run_batch` calls and this
        method gathers the reports.  The attach round is remembered
        and **replayed automatically** whenever a dead worker is
        respawned.
        """
        self._check_open()
        if len(payloads) != self.n_workers:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {self.n_workers} workers"
            )
        self._attach = (fn, list(payloads))
        return self._dispatch(_ATTACH, fn, self._attach[1]).collect()

    def reconfigure(
        self,
        fn: Callable[[int, int, Any], Any],
        payloads: Sequence[Any],
        changed: Optional[Sequence[int]] = None,
    ) -> dict:
        """Swap the pool's attach payloads (and size) between rounds.

        ``len(payloads)`` becomes the new worker count: surplus ranks
        are shut down, fresh ranks are spawned.  ``changed`` names the
        surviving ranks whose payload differs and must be re-attached
        (``None`` re-attaches every surviving rank); ranks added by
        growth always attach.  Ranks in neither set keep their
        resident state untouched.  The remembered attach is replaced
        *first*, so any respawn — including one healing a death during
        this very reconfigure — replays the new payloads.

        Refuses (:class:`~repro.errors.PipelineError`) while a round
        is on the pipe: the caller drains the in-flight round first —
        that is the pipeline-safe migration barrier.

        Returns ``{rank: (report, wall_s, cpu_s)}`` for every rank
        that was (re-)attached.  Failures retry with the pool's
        standard respawn/backoff budget; a rank that exhausts it is
        **terminated** (so its next respawn replays the new payloads)
        and the remaining ranks still re-attach — only then does the
        first failure raise as :class:`~repro.errors.WorkerError`.
        The invariant on every exit path, raising or not: each changed
        rank either holds its new resident state or is dead pending a
        respawn into it — no rank is ever left alive with the old
        state, so the caller can (must) adopt the new configuration
        even on failure.
        """
        self._check_open()
        payloads = list(payloads)
        new_n = len(payloads)
        if new_n < 1:
            raise ConfigurationError(
                f"reconfigure needs >= 1 payloads, got {new_n}"
            )
        with self._round_lock:
            self._check_open()
            if self._inflight is not None and self._inflight.pending:
                raise PipelineError(
                    "cannot reconfigure while a round is on the pipe; "
                    "collect() the pending handle first"
                )
            old_n = self.n_workers
            if changed is None:
                ranks = set(range(min(old_n, new_n)))
            else:
                ranks = {int(r) for r in changed}
                bad = sorted(r for r in ranks if not 0 <= r < new_n)
                if bad:
                    raise ConfigurationError(
                        f"changed ranks {bad} outside the new rank "
                        f"space [0, {new_n})"
                    )
            # Shrink: retire surplus ranks (graceful SHUTDOWN, then the
            # hammer) and drop their slots.  The channel list is mutated
            # in place — the leak finalizer holds the list object.
            shutdown_deadline = time.monotonic() + min(self.timeout, 5.0)
            for rank in range(new_n, old_n):
                channel = self._channels[rank]
                if channel is None:
                    continue
                if channel.alive:
                    try:
                        channel.send((_SHUTDOWN,))
                    except (BrokenPipeError, OSError):
                        pass
            for rank in range(new_n, old_n):
                channel = self._channels[rank]
                if channel is None:
                    continue
                channel.join(
                    timeout=max(0.0, shutdown_deadline - time.monotonic())
                )
                channel.terminate_quietly()
                channel.close()
            del self._channels[new_n:]
            # Grow: open empty slots; _reattach_rank spawns into them.
            self._channels.extend(None for _ in range(old_n, new_n))
            self.n_workers = new_n
            self._attach = (fn, payloads)
            if new_n != old_n and self._tracer.enabled:
                self._tracer.event(
                    "pool.resize", {"n_from": old_n, "n_to": new_n}
                )
            ranks |= set(range(old_n, new_n))
            reports: dict = {}
            failures: dict = {}
            for rank in sorted(ranks):
                try:
                    reports[rank] = self._reattach_rank(rank)
                except WorkerError as exc:
                    # _reattach_rank already terminated the rank, so it
                    # is dead pending a respawn into the NEW payloads —
                    # keep going: the other changed ranks must not be
                    # stranded on their old state.
                    failures[rank] = exc
            if failures:
                raise failures[min(failures)]
            return reports

    def _reattach_rank(self, rank: int) -> Tuple[Any, float, float]:
        """Send the remembered ATTACH to one rank (spawning it first
        when the slot is empty), with the standard retry budget."""
        attempts = 0
        while True:
            deadline = time.monotonic() + self.timeout
            try:
                channel = self._channels[rank]
                if channel is not None and not channel.alive:
                    # Dead slot: _respawn replays the (new) attach itself.
                    report = self._respawn(rank, deadline)
                    if report is None:  # unreachable: _attach is set
                        raise WorkerError(
                            f"no attach recorded for rank {rank}", rank=rank
                        )
                    return report
                if channel is None:
                    # Fresh slot from pool growth: plain spawn, no
                    # respawn accounting — nothing died here.
                    self._spawn(rank)
                fn, payloads = self._attach
                self._channels[rank].send((_ATTACH, fn, payloads[rank]))
                return self._receive(rank, deadline)
            except WorkerError as exc:
                failure = exc
            except (BrokenPipeError, OSError) as exc:
                failure = WorkerError(
                    f"worker {rank} died during re-attach: {exc}", rank=rank
                )
            attempts += 1
            if attempts > self.max_retries:
                failure.rank = rank
                failure.retries = attempts - 1
                # A failed attach may leave the worker alive but
                # holding its OLD resident state; kill it so the next
                # respawn replays the new payload instead.
                channel = self._channels[rank]
                if channel is not None:
                    channel.terminate_quietly()
                raise failure
            delay = self.backoff_s * (2 ** (attempts - 1))
            if self._tracer.enabled:
                self._tracer.event(
                    "retry",
                    {
                        "rank": rank,
                        "attempt": attempts,
                        "command": _ATTACH,
                        "dead": True,
                    },
                )
                self._tracer.event("backoff", {"rank": rank, "delay_s": delay})
            if delay > 0:
                time.sleep(delay)
            # The failed worker cannot be resynchronized: kill it so the
            # next attempt takes the respawn path.
            channel = self._channels[rank]
            if channel is not None:
                channel.terminate_quietly()

    def run_batch(
        self, fn: Callable[[int, int, Any, Any], Any], payloads: Sequence[Any]
    ) -> PoolBatchResult:
        """One blocking batch round: ``fn(rank, size, state, payload)``
        per rank — :meth:`dispatch` and :meth:`RoundHandle.collect`
        back to back."""
        return self.dispatch(fn, payloads).collect()

    def dispatch(
        self, fn: Callable[[int, int, Any, Any], Any], payloads: Sequence[Any]
    ) -> RoundHandle:
        """Scatter one batch command and return without waiting.

        The workers start computing as soon as their pipe delivers the
        command; the caller overlaps master-side work with the round
        and gathers the replies with :meth:`RoundHandle.collect`.  At
        most one round may be on the pipe — dispatching while a
        previous handle is still pending raises
        :class:`~repro.errors.PipelineError`.
        """
        return self._dispatch(_QUERY, fn, list(payloads))

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("pool is closed; no further commands accepted")

    def _dispatch(
        self, command: str, fn: Callable, payloads: Sequence[Any]
    ) -> RoundHandle:
        self._check_open()
        if len(payloads) != self.n_workers:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {self.n_workers} workers"
            )
        payloads = list(payloads)
        with self._round_lock:
            return self._dispatch_locked(command, fn, payloads)

    def _dispatch_locked(
        self, command: str, fn: Callable, payloads: List[Any]
    ) -> RoundHandle:
        # Re-check under the lock: a concurrent close() that won the
        # lock first has already torn the pipes down.
        self._check_open()
        if self._inflight is not None and self._inflight.pending:
            raise PipelineError(
                "a round is already on the pipe; collect() its handle "
                "before dispatching the next one"
            )
        dispatched_at = time.monotonic()
        deadline = dispatched_at + self.timeout
        respawned = self._ensure_alive(deadline)
        dispatched: List[int] = []
        # Each distinct payload object is pickled once and its buffer
        # reused for every rank that receives it — for the service's
        # shared per-batch command that is one pickle for the whole
        # scatter, and the measured bytes are the actual pipe traffic.
        buffers: dict[int, bytes] = {}
        scatter_bytes = 0
        for rank in range(self.n_workers):
            try:
                payload = payloads[rank]
                buf = buffers.get(id(payload))
                if buf is None:
                    buf = bytes(ForkingPickler.dumps((command, fn, payload)))
                    buffers[id(payload)] = buf
                self._channels[rank].send_bytes(buf)
                scatter_bytes += len(buf)
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send: one
                # respawn attempt, then give up on the round.
                try:
                    self._respawn(rank, deadline)
                    respawned += 1
                    self._channels[rank].send_bytes(buf)
                    scatter_bytes += len(buf)
                except (WorkerError, BrokenPipeError, OSError) as exc:
                    # Aborting mid-scatter would leave the ranks already
                    # dispatched with undrained replies — stale messages
                    # that a later round would misread as its own
                    # results.  Kill them instead; the next round
                    # respawns everything with clean pipes.
                    self._abort_dispatched(dispatched)
                    raise WorkerError(
                        f"worker {rank} died immediately after respawn: {exc}",
                        rank=rank,
                    ) from None
                except BaseException:
                    self._abort_dispatched(dispatched)
                    raise
            except BaseException:
                # Any other scatter failure (e.g. an unpicklable payload
                # raising TypeError in ForkingPickler.dumps) aborts the
                # scatter the same way — dispatched ranks must never be
                # left with undrained replies.
                self._abort_dispatched(dispatched)
                raise
            dispatched.append(rank)
        handle = RoundHandle(
            self, command, deadline, respawned, scatter_bytes,
            fn, payloads, dispatched_at,
        )
        self._inflight = handle
        return handle

    def _collect(self, handle: RoundHandle) -> PoolBatchResult:
        with self._round_lock:
            if handle._collected:
                raise PipelineError("this round was already collected")
            if handle._aborted:
                raise PipelineError(
                    "the pool was closed while this round was on the pipe; "
                    "its workers were terminated and the replies are gone"
                )
            if self._inflight is not handle:
                raise PipelineError(
                    "stale round handle: a newer round has been dispatched"
                )
            try:
                return self._collect_locked(handle)
            finally:
                # Success or WorkerError, the round is off the pipe:
                # healthy workers were drained, dead ones respawn on
                # the next dispatch.
                handle._collected = True
                self._inflight = None

    def _collect_locked(self, handle: RoundHandle) -> PoolBatchResult:
        """Supervised gather: drain replies, retry failed ranks, hedge
        stragglers, and finish the round one way — full result, partial
        (degraded) result, or the lowest failing rank's error."""
        results: List[Any] = [None] * self.n_workers
        walls = [0.0] * self.n_workers
        cpus = [0.0] * self.n_workers
        pending = set(range(self.n_workers))
        deadlines = {rank: handle.deadline for rank in pending}
        attempts = {rank: 0 for rank in pending}
        failures: dict[int, WorkerError] = {}
        provisional: dict[int, WorkerError] = {}  # awaiting an outstanding hedge
        resolved: set[int] = set()
        hedges: dict[int, _Hedge] = {}
        counters = {"retries": 0, "respawns": 0, "hedged": 0}
        tracer = self._tracer

        def trace_event(kind: str, rank: int, **attrs) -> None:
            """Emit one supervision event (call only when tracer.enabled)."""
            batch = _payload_batch(handle.payloads[rank])
            if batch is not None:
                attrs["batch"] = batch
            attrs["rank"] = rank
            tracer.event(kind, attrs)
        # The soft straggler deadline arms once per round, QUERY only,
        # and needs attach state to clone (a hedge must re-attach).
        hedge_at: Optional[float] = None
        if (
            self.hedge_after is not None
            and handle.command == _QUERY
            and self._attach is not None
        ):
            hedge_at = handle.dispatched_at + self.hedge_after

        def rank_resolved(rank: int) -> None:
            """The original worker answered: first answer wins — a
            still-racing hedge is terminated so its late duplicate can
            never merge."""
            resolved.add(rank)
            hedge = hedges.pop(rank, None)
            if hedge is not None:
                hedge.channel.stop()
                if tracer.enabled:
                    trace_event("hedge.loss", rank, winner="original")

        def promote_hedge(rank: int, hedge: _Hedge, message) -> None:
            """The hedge answered first: take its result and install it
            as the rank's resident worker (it holds full attach state);
            the superseded original is terminated."""
            _, result, wall, cpu = message
            # The winner's reply spans are offsets from *its* query
            # start (after its own attach), not from the round's
            # dispatch — shift them so merge-time re-anchoring (which
            # adds the round's dispatch time) lands them where the
            # hedge really ran.  Without this, a hedged rank's
            # worker.query span would overlap the straggler's stall.
            if hedge.query_anchor is not None and isinstance(result, dict):
                spans = result.get("spans")
                if spans:
                    shift = hedge.query_anchor - handle.dispatched_at
                    result["spans"] = tuple(
                        (name, rel + shift, dur) for name, rel, dur in spans
                    )
            original = self._channels[rank]
            if original is not None:
                original.stop()
            self._channels[rank] = hedge.channel
            self._respawn_total += 1
            counters["respawns"] += 1
            results[rank], walls[rank], cpus[rank] = result, wall, cpu
            resolved.add(rank)
            pending.discard(rank)
            provisional.pop(rank, None)
            failures.pop(rank, None)
            del hedges[rank]
            if tracer.enabled:
                trace_event("hedge.win", rank)

        def launch_hedge(rank: int) -> None:
            fn_attach, attach_payloads = self._attach
            channel = self._transport.spawn(
                _persistent_worker_entry,
                (rank, self.n_workers, self._fault_plan),
                name=f"repro-hedge-{rank}",
            )
            try:
                # Attach and query back-to-back; the worker answers the
                # attach report first, then the query result.
                channel.send((_ATTACH, fn_attach, attach_payloads[rank]))
                channel.send_bytes(
                    bytes(
                        ForkingPickler.dumps(
                            (handle.command, handle.fn, handle.payloads[rank])
                        )
                    )
                )
            except (BrokenPipeError, OSError):
                channel.stop()
                return
            hedges[rank] = _Hedge(channel, time.monotonic() + self.timeout)
            counters["hedged"] += 1
            if tracer.enabled:
                trace_event("hedge.launch", rank)

        def hedge_failed(rank: int) -> None:
            """A hedge crashed, raised, or timed out: discard it; the
            rank keeps riding its original worker unless that already
            failed permanently, in which case the failure lands now."""
            hedge = hedges.pop(rank)
            hedge.channel.stop()
            if tracer.enabled:
                trace_event("hedge.loss", rank, winner="none")
            if rank in provisional:
                failures[rank] = provisional.pop(rank)

        def fail_rank(rank: int, exc: WorkerError, dead: bool) -> None:
            """Retry the rank with exponential backoff, or record its
            permanent failure (deferred while a hedge still races)."""
            while True:
                # Trust liveness over the caller's flag: a dead worker's
                # pipe polls readable (EOF), so its failure arrives via
                # _consume like a raise — re-sending to it would burn a
                # retry on a broken pipe.
                channel = self._channels[rank]
                if channel is None or not channel.alive:
                    dead = True
                attempts[rank] += 1
                if attempts[rank] > self.max_retries:
                    exc.rank = rank
                    exc.retries = attempts[rank] - 1
                    if rank in hedges:
                        provisional[rank] = exc
                    else:
                        failures[rank] = exc
                    return
                counters["retries"] += 1
                delay = self.backoff_s * (2 ** (attempts[rank] - 1))
                if tracer.enabled:
                    trace_event(
                        "retry",
                        rank,
                        attempt=attempts[rank],
                        command=handle.command,
                        dead=dead,
                    )
                    trace_event("backoff", rank, delay_s=delay)
                if delay > 0:
                    time.sleep(delay)
                try:
                    if dead:
                        report = self._respawn(
                            rank, time.monotonic() + self.timeout
                        )
                        counters["respawns"] += 1
                        if handle.command == _ATTACH and report is not None:
                            # The replayed attach IS the retried work.
                            results[rank], walls[rank], cpus[rank] = report
                            rank_resolved(rank)
                            return
                    self._channels[rank].send_bytes(
                        bytes(
                            ForkingPickler.dumps(
                                (handle.command, handle.fn, handle.payloads[rank])
                            )
                        )
                    )
                    deadlines[rank] = time.monotonic() + self.timeout
                    pending.add(rank)
                    return
                except WorkerError as retry_exc:
                    exc, dead = retry_exc, True
                except (BrokenPipeError, OSError) as pipe_exc:
                    exc = WorkerError(
                        f"worker {rank} died during retry re-dispatch: "
                        f"{pipe_exc}",
                        rank=rank,
                    )
                    dead = True

        try:
            while pending or hedges:
                now = time.monotonic()
                # Hard per-rank deadlines: a stuck worker cannot be
                # resynchronized — kill it, then retry as a death.
                for rank in sorted(pending):
                    if now >= deadlines[rank]:
                        self._channels[rank].terminate_quietly()
                        pending.discard(rank)
                        fail_rank(
                            rank,
                            WorkerError(
                                f"worker {rank} exceeded the resident round "
                                f"deadline ({self.timeout:.0f}s) and was "
                                f"terminated",
                                rank=rank,
                            ),
                            dead=True,
                        )
                for rank in sorted(hedges):
                    if now >= hedges[rank].deadline:
                        hedge_failed(rank)
                # Soft straggler deadline: one speculative duplicate
                # per still-outstanding rank, once per round.
                if hedge_at is not None and now >= hedge_at:
                    for rank in sorted(pending - set(hedges)):
                        launch_hedge(rank)
                    hedge_at = None
                if not pending and not hedges:
                    break
                wakeups = [deadlines[rank] for rank in pending]
                wakeups.extend(hedge.deadline for hedge in hedges.values())
                if hedge_at is not None:
                    wakeups.append(hedge_at)
                waitees: List[Any] = []
                for rank in pending:
                    waitees.extend(self._channels[rank].wait_objects())
                for hedge in hedges.values():
                    waitees.extend(hedge.channel.wait_objects())
                connection.wait(
                    waitees, timeout=max(0.0, min(wakeups) - time.monotonic())
                )
                for rank in sorted(pending):
                    channel = self._channels[rank]
                    if channel.poll():
                        failure = self._consume(rank, results, walls, cpus)
                        pending.discard(rank)
                        if failure is None:
                            rank_resolved(rank)
                        else:
                            fail_rank(rank, failure, dead=False)
                    elif not channel.alive:
                        channel.join()
                        if channel.poll():
                            failure = self._consume(rank, results, walls, cpus)
                            pending.discard(rank)
                            if failure is None:
                                rank_resolved(rank)
                            else:
                                fail_rank(rank, failure, dead=False)
                        else:
                            pending.discard(rank)
                            fail_rank(
                                rank,
                                WorkerError(
                                    f"worker {rank} died mid-batch without "
                                    f"reporting (exit code "
                                    f"{channel.exitcode})",
                                    rank=rank,
                                    exit_code=channel.exitcode,
                                ),
                                dead=True,
                            )
                for rank in sorted(hedges):
                    hedge = hedges.get(rank)
                    while hedge is not None and rank in hedges:
                        if hedge.channel.poll():
                            try:
                                message = hedge.channel.recv()
                            except (EOFError, OSError):
                                hedge_failed(rank)
                                break
                            if message[0] == "error":
                                hedge_failed(rank)
                                break
                            if not hedge.attach_done:
                                hedge.attach_done = True
                                hedge.query_anchor = time.monotonic()
                                continue  # the query reply may follow
                            if rank in resolved:
                                # First answer already won; the hedge's
                                # late duplicate must never merge.
                                hedge_failed(rank)
                                break
                            promote_hedge(rank, hedge, message)
                            break
                        if not hedge.channel.alive:
                            hedge.channel.join()
                            if hedge.channel.poll():
                                continue
                            hedge_failed(rank)
                            break
                        break
        finally:
            # No hedge may outlive its round, whatever path exits it.
            for rank in list(hedges):
                hedges.pop(rank).channel.stop()
        failures.update(provisional)
        respawned = handle.respawned + counters["respawns"]
        if failures:
            if self.degraded_ok and handle.command == _QUERY:
                if tracer.enabled:
                    for rank in sorted(failures):
                        trace_event(
                            "degraded.rank",
                            rank,
                            retries=failures[rank].retries,
                        )
                return PoolBatchResult(
                    results=results,
                    wall_times=walls,
                    cpu_times=cpus,
                    respawned=respawned,
                    scatter_bytes=handle.scatter_bytes,
                    retries=counters["retries"],
                    hedged=counters["hedged"],
                    failed_ranks=tuple(sorted(failures)),
                )
            # Healthy workers have been drained, so the pipes stay in
            # request/response sync; dead ones respawn next round.  The
            # lowest failing rank is surfaced deterministically, not
            # whichever reply happened to arrive first.
            raise failures[min(failures)]
        return PoolBatchResult(
            results=results,
            wall_times=walls,
            cpu_times=cpus,
            respawned=respawned,
            scatter_bytes=handle.scatter_bytes,
            retries=counters["retries"],
            hedged=counters["hedged"],
        )

    def _abort_dispatched(self, dispatched: List[int]) -> None:
        """Kill ranks whose command was already sent in an aborted
        scatter — their replies would desync the next round."""
        for rank in dispatched:
            self._channels[rank].terminate_quietly()

    def _consume(
        self, rank: int, results, walls, cpus
    ) -> Optional[WorkerError]:
        """Read one reply; return (not raise) a failure so the round
        can keep draining the other workers before surfacing it."""
        channel = self._channels[rank]
        try:
            message = channel.recv()
        except (EOFError, OSError):
            channel.join()
            return WorkerError(
                f"worker {rank} died mid-batch without reporting "
                f"(exit code {channel.exitcode})",
                rank=rank,
                exit_code=channel.exitcode,
            )
        if message[0] == "error":
            _, summary, remote_tb = message
            return WorkerError(
                f"worker {rank} raised {summary}\n"
                f"--- remote traceback ---\n{remote_tb}",
                rank=rank,
            )
        _, result, wall, cpu = message
        results[rank] = result
        walls[rank] = wall
        cpus[rank] = cpu
        return None

    def _receive(self, rank: int, deadline: float) -> Tuple[Any, float, float]:
        """Await one rank's reply (used for replayed ATTACH rounds);
        returns ``(result, wall, cpu)``."""
        channel = self._channels[rank]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                channel.terminate_quietly()
                raise WorkerError(
                    f"worker {rank} exceeded the deadline while re-attaching",
                    rank=rank,
                )
            connection.wait(channel.wait_objects(), timeout=remaining)
            if channel.poll():
                results = [None] * self.n_workers
                walls = [0.0] * self.n_workers
                cpus = [0.0] * self.n_workers
                failure = self._consume(rank, results, walls, cpus)
                if failure is not None:
                    raise failure
                return results[rank], walls[rank], cpus[rank]
            if not channel.alive:
                channel.join()
                if channel.poll():
                    continue
                raise WorkerError(
                    f"worker {rank} died while re-attaching "
                    f"(exit code {channel.exitcode})",
                    rank=rank,
                    exit_code=channel.exitcode,
                )


def _reap_pool(channels) -> None:
    """Finalizer body: terminate whatever is still running."""
    for channel in channels:
        if channel is not None:
            channel.stop()
