"""Long-lived spawn workers looping on a command pipe.

:class:`~repro.parallel.pool.ProcessBackend` pays the full spawn +
import + attach cost on every ``run()`` — fine for one batch, fatal
for serving a stream of them.  :class:`PersistentPool` keeps the
workers *resident*: each worker is spawned once, receives one
``ATTACH`` command that builds its long-lived state (for the search
service: open the memmap-shared arena store and build the rank's
partial index), then answers any number of ``QUERY`` commands against
that state until ``SHUTDOWN``.  HiCOPS keeps its parallel machinery
resident across query batches for exactly this amortization.

The crash/deadline contract mirrors ``ProcessBackend`` — no failure
mode may hang, every failure surfaces as
:class:`~repro.errors.WorkerError` — but with session survival on top:

* a worker that *raises* during a batch reports the remote traceback
  and **keeps looping**; the batch fails with :class:`WorkerError`,
  the session does not,
* a worker that *dies* (segfault, ``os._exit``, kill) fails the
  in-flight batch with :class:`WorkerError` carrying its exit code;
  the pool **respawns and re-attaches** the rank automatically before
  the next batch, so the service survives,
* a batch that exceeds the deadline terminates the stragglers (a
  stuck worker cannot be resynchronized) and raises; the stragglers
  are respawned + re-attached on the next batch.

Split rounds (the pipelining substrate)
---------------------------------------
:meth:`PersistentPool.run_batch` is the blocking convenience; the
primitive underneath is the **non-blocking half-pair**
:meth:`PersistentPool.dispatch` → :class:`RoundHandle` →
:meth:`RoundHandle.collect`.  ``dispatch`` scatters the command (the
workers start computing immediately) and returns; the master is free
to do other work — preprocess the next batch, merge the previous one —
until ``collect`` gathers the replies.  At most **one round may be on
the pipe at a time** (a second ``dispatch`` before ``collect`` raises
:class:`~repro.errors.PipelineError`): the pipe protocol is strict
request/response per worker, and a single in-flight round is exactly
what keeps the crash/respawn/deadline contract per round unchanged.
The round's deadline starts at ``dispatch`` time.

The scatter pickles each **distinct payload object once** — when every
rank receives the same task object (the service's per-batch command),
one pickle serves all workers, and the actual bytes written to the
pipes are reported on the result (``scatter_bytes``).

Command callables must be module-level (picklable by reference).  The
attach callable runs ``fn(rank, size, payload) -> (state, report)``;
the worker keeps ``state`` and returns ``report``.  Batch callables
run ``fn(rank, size, state, payload) -> result``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import connection
from multiprocessing.reduction import ForkingPickler
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, PipelineError, ServiceError, WorkerError

__all__ = ["PersistentPool", "PoolBatchResult", "RoundHandle"]

_ATTACH = "attach"
_QUERY = "query"
_SHUTDOWN = "shutdown"


@dataclass(frozen=True, slots=True)
class PoolBatchResult:
    """Outcome of one resident-pool command round.

    Attributes
    ----------
    results:
        Per-rank return values of the command callable.
    wall_times / cpu_times:
        Per-rank real elapsed / process-CPU seconds inside the
        callable (excludes pipe transfer).
    respawned:
        Workers that had to be respawned (and re-attached) before this
        round could run — 0 in steady state.
    scatter_bytes:
        Actual command bytes written to the worker pipes for this
        round (each distinct payload object pickled once, its buffer
        reused for every rank that receives it).
    """

    results: List[Any]
    wall_times: List[float]
    cpu_times: List[float]
    respawned: int = 0
    scatter_bytes: int = 0

    @property
    def n_workers(self) -> int:
        """Number of workers that answered."""
        return len(self.results)

    @property
    def makespan(self) -> float:
        """The slowest worker's elapsed seconds."""
        return max(self.wall_times) if self.wall_times else 0.0


class RoundHandle:
    """One dispatched command round awaiting :meth:`collect`.

    Returned by :meth:`PersistentPool.dispatch` after the command was
    scattered — the workers are already computing.  ``collect`` blocks
    until every worker replied (or the round's deadline, which started
    at dispatch time, expires) and returns the same
    :class:`PoolBatchResult` the blocking :meth:`~PersistentPool.run_batch`
    would have.  A handle is single-use: collecting twice, collecting
    a stale handle, or dispatching again while this round is still on
    the pipe raises :class:`~repro.errors.PipelineError`.

    Attributes
    ----------
    command:
        The pipe command that was scattered (attach or query).
    deadline:
        ``time.monotonic()`` instant the round must finish by.
    respawned:
        Workers respawned (and re-attached) to scatter this round.
    scatter_bytes:
        Actual pickled command bytes written to the pipes.
    """

    __slots__ = ("_pool", "command", "deadline", "respawned", "scatter_bytes",
                 "_collected", "_aborted")

    def __init__(
        self,
        pool: "PersistentPool",
        command: str,
        deadline: float,
        respawned: int,
        scatter_bytes: int,
    ) -> None:
        self._pool = pool
        self.command = command
        self.deadline = deadline
        self.respawned = respawned
        self.scatter_bytes = scatter_bytes
        self._collected = False
        self._aborted = False

    @property
    def pending(self) -> bool:
        """True while the round is on the pipe (dispatched, not collected)."""
        return not self._collected and not self._aborted

    def collect(self) -> PoolBatchResult:
        """Await every worker's reply; see :class:`RoundHandle`."""
        return self._pool._collect(self)


def _persistent_worker_entry(conn, rank: int, size: int) -> None:
    """Worker-side command loop: ATTACH once, QUERY forever, SHUTDOWN."""
    state: Any = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # master is gone; daemon exit
        command = message[0]
        if command == _SHUTDOWN:
            try:
                conn.send(("ok", None, 0.0, 0.0))
            except (BrokenPipeError, OSError):
                pass
            break
        fn, payload = message[1], message[2]
        try:
            t0 = time.perf_counter()
            c0 = time.process_time()
            if command == _ATTACH:
                state, result = fn(rank, size, payload)
            else:
                result = fn(rank, size, state, payload)
            wall = time.perf_counter() - t0
            cpu = time.process_time() - c0
        except BaseException as exc:  # noqa: BLE001 - reported to the master
            try:
                conn.send(
                    ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
                )
            except BaseException:  # noqa: BLE001 - pipe itself is broken
                break
            continue  # a failing batch must not kill the session
        try:
            conn.send(("ok", result, wall, cpu))
        except BaseException as exc:  # noqa: BLE001 - e.g. unpicklable result
            try:
                conn.send(
                    (
                        "error",
                        f"{type(exc).__name__}: {exc} (while sending the result)",
                        traceback.format_exc(),
                    )
                )
            except BaseException:  # noqa: BLE001
                break
    conn.close()


def _terminate_quietly(proc) -> None:
    """Terminate and reap one worker process, swallowing races."""
    try:
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
    except (OSError, ValueError):
        pass


class PersistentPool:
    """``n_workers`` resident OS processes answering command rounds.

    Parameters
    ----------
    n_workers:
        Worker count (the rank space is ``0 .. n_workers - 1``).
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) for a
        fresh interpreter per worker on every platform.
    timeout:
        Real-seconds deadline per command round (attach or batch).

    Use as a context manager, or call :meth:`close` explicitly; a
    dropped pool terminates its workers through a finalizer.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str = "spawn",
        timeout: float = 600.0,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if start_method not in mp.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available "
                f"(have {mp.get_all_start_methods()})"
            )
        self.n_workers = n_workers
        self.start_method = start_method
        self.timeout = timeout
        self._ctx = mp.get_context(start_method)
        self._procs: List[Optional[Any]] = [None] * n_workers
        self._pipes: List[Optional[Any]] = [None] * n_workers
        self._attach: Optional[Tuple[Callable, List[Any]]] = None
        self._closed = False
        self._respawn_total = 0
        self._inflight: Optional[RoundHandle] = None
        # Serializes the scatter and gather halves of a round against
        # each other and against close(): a close() racing a collect()
        # waits for it (bounded by the round deadline) instead of
        # tearing its pipes away.  The lock is *not* held between
        # dispatch and collect — that window is what the pipelined
        # service overlaps with master-side work.
        self._round_lock = threading.Lock()
        for rank in range(n_workers):
            self._spawn(rank)
        # Safety net: a pool dropped without close() must not leave
        # orphan processes.  The finalizer captures the lists, not
        # self, so it cannot keep the pool alive.
        self._reaper = weakref.finalize(
            self, _reap_pool, self._procs, self._pipes
        )

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; idempotent (double-close is a no-op).

        New rounds are rejected immediately.  A round whose
        :meth:`RoundHandle.collect` is executing is waited for (it ends
        by its own deadline at the latest) so its caller sees a clean
        result or :class:`WorkerError`, never torn pipes.  A round that
        was dispatched but whose collect has not started is **aborted**:
        its workers are terminated (their replies can never be drained
        once the pipes close) and a later ``collect`` raises
        :class:`~repro.errors.PipelineError` instead of hanging.
        """
        if self._closed:
            return
        self._closed = True  # reject new rounds before taking the lock
        with self._round_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._inflight is not None and self._inflight.pending:
            # Dispatched but nobody is collecting: kill the workers so
            # teardown cannot block on their unread replies.
            for proc in self._procs:
                if proc is not None:
                    _terminate_quietly(proc)
            self._inflight._aborted = True
            self._inflight = None
        deadline = time.monotonic() + min(self.timeout, 10.0)
        for rank in range(self.n_workers):
            pipe, proc = self._pipes[rank], self._procs[rank]
            if pipe is None or proc is None or not proc.is_alive():
                continue
            try:
                pipe.send((_SHUTDOWN,))
            except (BrokenPipeError, OSError):
                continue
        for rank in range(self.n_workers):
            proc = self._procs[rank]
            if proc is None:
                continue
            try:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            except (OSError, ValueError):
                pass
            _terminate_quietly(proc)
        for pipe in self._pipes:
            if pipe is not None:
                pipe.close()
        self._procs = [None] * self.n_workers
        self._pipes = [None] * self.n_workers

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def respawn_total(self) -> int:
        """Workers respawned over the pool's lifetime."""
        return self._respawn_total

    def worker_pids(self) -> List[Optional[int]]:
        """Current per-rank worker PIDs (None for a dead slot)."""
        return [
            proc.pid if proc is not None else None for proc in self._procs
        ]

    # -- spawning --------------------------------------------------------

    def _spawn(self, rank: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_persistent_worker_entry,
            args=(child_conn, rank, self.n_workers),
            name=f"repro-resident-{rank}",
            daemon=True,
        )
        proc.start()
        # Drop the master's copy of the child end so a dead worker
        # reads as EOF/sentinel, never as an open idle pipe.
        child_conn.close()
        self._procs[rank] = proc
        self._pipes[rank] = parent_conn

    def _respawn(self, rank: int, deadline: float) -> None:
        """Replace a dead worker and replay its ATTACH."""
        proc = self._procs[rank]
        if proc is not None:
            _terminate_quietly(proc)
        pipe = self._pipes[rank]
        if pipe is not None:
            pipe.close()
        self._spawn(rank)
        self._respawn_total += 1
        if self._attach is not None:
            fn, payloads = self._attach
            self._pipes[rank].send((_ATTACH, fn, payloads[rank]))
            self._receive(rank, deadline)

    def _ensure_alive(self, deadline: float) -> int:
        """Respawn (and re-attach) any rank that died between rounds."""
        respawned = 0
        for rank in range(self.n_workers):
            proc = self._procs[rank]
            if proc is None or not proc.is_alive():
                self._respawn(rank, deadline)
                respawned += 1
        return respawned

    # -- command rounds --------------------------------------------------

    def attach(
        self, fn: Callable[[int, int, Any], Any], payloads: Sequence[Any]
    ) -> PoolBatchResult:
        """Build per-worker resident state: ``fn(rank, size, payload)``.

        ``fn`` must return ``(state, report)``; the worker keeps
        ``state`` for subsequent :meth:`run_batch` calls and this
        method gathers the reports.  The attach round is remembered
        and **replayed automatically** whenever a dead worker is
        respawned.
        """
        self._check_open()
        if len(payloads) != self.n_workers:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {self.n_workers} workers"
            )
        self._attach = (fn, list(payloads))
        return self._dispatch(_ATTACH, fn, self._attach[1]).collect()

    def run_batch(
        self, fn: Callable[[int, int, Any, Any], Any], payloads: Sequence[Any]
    ) -> PoolBatchResult:
        """One blocking batch round: ``fn(rank, size, state, payload)``
        per rank — :meth:`dispatch` and :meth:`RoundHandle.collect`
        back to back."""
        return self.dispatch(fn, payloads).collect()

    def dispatch(
        self, fn: Callable[[int, int, Any, Any], Any], payloads: Sequence[Any]
    ) -> RoundHandle:
        """Scatter one batch command and return without waiting.

        The workers start computing as soon as their pipe delivers the
        command; the caller overlaps master-side work with the round
        and gathers the replies with :meth:`RoundHandle.collect`.  At
        most one round may be on the pipe — dispatching while a
        previous handle is still pending raises
        :class:`~repro.errors.PipelineError`.
        """
        return self._dispatch(_QUERY, fn, list(payloads))

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("pool is closed; no further commands accepted")

    def _dispatch(
        self, command: str, fn: Callable, payloads: Sequence[Any]
    ) -> RoundHandle:
        self._check_open()
        if len(payloads) != self.n_workers:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {self.n_workers} workers"
            )
        payloads = list(payloads)
        with self._round_lock:
            return self._dispatch_locked(command, fn, payloads)

    def _dispatch_locked(
        self, command: str, fn: Callable, payloads: List[Any]
    ) -> RoundHandle:
        # Re-check under the lock: a concurrent close() that won the
        # lock first has already torn the pipes down.
        self._check_open()
        if self._inflight is not None and self._inflight.pending:
            raise PipelineError(
                "a round is already on the pipe; collect() its handle "
                "before dispatching the next one"
            )
        deadline = time.monotonic() + self.timeout
        respawned = self._ensure_alive(deadline)
        dispatched: List[int] = []
        # Each distinct payload object is pickled once and its buffer
        # reused for every rank that receives it — for the service's
        # shared per-batch command that is one pickle for the whole
        # scatter, and the measured bytes are the actual pipe traffic.
        buffers: dict[int, bytes] = {}
        scatter_bytes = 0
        for rank in range(self.n_workers):
            try:
                payload = payloads[rank]
                buf = buffers.get(id(payload))
                if buf is None:
                    buf = bytes(ForkingPickler.dumps((command, fn, payload)))
                    buffers[id(payload)] = buf
                self._pipes[rank].send_bytes(buf)
                scatter_bytes += len(buf)
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send: one
                # respawn attempt, then give up on the round.
                try:
                    self._respawn(rank, deadline)
                    respawned += 1
                    self._pipes[rank].send_bytes(buf)
                    scatter_bytes += len(buf)
                except (WorkerError, BrokenPipeError, OSError) as exc:
                    # Aborting mid-scatter would leave the ranks already
                    # dispatched with undrained replies — stale messages
                    # that a later round would misread as its own
                    # results.  Kill them instead; the next round
                    # respawns everything with clean pipes.
                    self._abort_dispatched(dispatched)
                    raise WorkerError(
                        f"worker {rank} died immediately after respawn: {exc}"
                    ) from None
                except BaseException:
                    self._abort_dispatched(dispatched)
                    raise
            except BaseException:
                # Any other scatter failure (e.g. an unpicklable payload
                # raising TypeError in ForkingPickler.dumps) aborts the
                # scatter the same way — dispatched ranks must never be
                # left with undrained replies.
                self._abort_dispatched(dispatched)
                raise
            dispatched.append(rank)
        handle = RoundHandle(self, command, deadline, respawned, scatter_bytes)
        self._inflight = handle
        return handle

    def _collect(self, handle: RoundHandle) -> PoolBatchResult:
        with self._round_lock:
            if handle._collected:
                raise PipelineError("this round was already collected")
            if handle._aborted:
                raise PipelineError(
                    "the pool was closed while this round was on the pipe; "
                    "its workers were terminated and the replies are gone"
                )
            if self._inflight is not handle:
                raise PipelineError(
                    "stale round handle: a newer round has been dispatched"
                )
            try:
                return self._collect_locked(handle)
            finally:
                # Success or WorkerError, the round is off the pipe:
                # healthy workers were drained, dead ones respawn on
                # the next dispatch.
                handle._collected = True
                self._inflight = None

    def _collect_locked(self, handle: RoundHandle) -> PoolBatchResult:
        deadline = handle.deadline
        results: List[Any] = [None] * self.n_workers
        walls = [0.0] * self.n_workers
        cpus = [0.0] * self.n_workers
        pending = set(range(self.n_workers))
        failures: dict[int, WorkerError] = {}
        deadline_failure: Optional[WorkerError] = None
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Stuck workers cannot be resynchronized — kill them;
                # the next round respawns and re-attaches.
                for rank in sorted(pending):
                    _terminate_quietly(self._procs[rank])
                stuck = sorted(pending)
                pending.clear()
                deadline_failure = WorkerError(
                    f"resident pool deadline ({self.timeout:.0f}s) expired "
                    f"with workers {stuck} still running"
                )
                break
            waitees = [self._pipes[r] for r in pending] + [
                self._procs[r].sentinel for r in pending
            ]
            connection.wait(waitees, timeout=remaining)
            for rank in sorted(pending):
                if self._pipes[rank].poll():
                    failure = self._consume(rank, results, walls, cpus)
                    pending.discard(rank)
                    if failure is not None:
                        failures[rank] = failure
                elif not self._procs[rank].is_alive():
                    self._procs[rank].join()
                    if self._pipes[rank].poll():
                        failure = self._consume(rank, results, walls, cpus)
                        pending.discard(rank)
                        if failure is not None:
                            failures[rank] = failure
                    else:
                        pending.discard(rank)
                        failures[rank] = WorkerError(
                            f"worker {rank} died mid-batch without reporting "
                            f"(exit code {self._procs[rank].exitcode})"
                        )
        if failures:
            # Healthy workers have been drained, so the pipes stay in
            # request/response sync; dead ones respawn next round.  The
            # lowest failing rank is surfaced deterministically, not
            # whichever reply happened to arrive first.
            raise failures[min(failures)]
        if deadline_failure is not None:
            raise deadline_failure
        return PoolBatchResult(
            results=results,
            wall_times=walls,
            cpu_times=cpus,
            respawned=handle.respawned,
            scatter_bytes=handle.scatter_bytes,
        )

    def _abort_dispatched(self, dispatched: List[int]) -> None:
        """Kill ranks whose command was already sent in an aborted
        scatter — their replies would desync the next round."""
        for rank in dispatched:
            _terminate_quietly(self._procs[rank])

    def _consume(
        self, rank: int, results, walls, cpus
    ) -> Optional[WorkerError]:
        """Read one reply; return (not raise) a failure so the round
        can keep draining the other workers before surfacing it."""
        try:
            message = self._pipes[rank].recv()
        except (EOFError, OSError):
            proc = self._procs[rank]
            proc.join()
            return WorkerError(
                f"worker {rank} died mid-batch without reporting "
                f"(exit code {proc.exitcode})"
            )
        if message[0] == "error":
            _, summary, remote_tb = message
            return WorkerError(
                f"worker {rank} raised {summary}\n"
                f"--- remote traceback ---\n{remote_tb}"
            )
        _, result, wall, cpu = message
        results[rank] = result
        walls[rank] = wall
        cpus[rank] = cpu
        return None

    def _receive(self, rank: int, deadline: float) -> Any:
        """Await one rank's reply (used for replayed ATTACH rounds)."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                _terminate_quietly(self._procs[rank])
                raise WorkerError(
                    f"worker {rank} exceeded the deadline while re-attaching"
                )
            connection.wait(
                [self._pipes[rank], self._procs[rank].sentinel], timeout=remaining
            )
            if self._pipes[rank].poll():
                results = [None] * self.n_workers
                walls = [0.0] * self.n_workers
                cpus = [0.0] * self.n_workers
                failure = self._consume(rank, results, walls, cpus)
                if failure is not None:
                    raise failure
                return results[rank]
            if not self._procs[rank].is_alive():
                self._procs[rank].join()
                if self._pipes[rank].poll():
                    continue
                raise WorkerError(
                    f"worker {rank} died while re-attaching "
                    f"(exit code {self._procs[rank].exitcode})"
                )


def _reap_pool(procs, pipes) -> None:
    """Finalizer body: terminate whatever is still running."""
    for proc in procs:
        if proc is not None:
            _terminate_quietly(proc)
    for pipe in pipes:
        if pipe is not None:
            try:
                pipe.close()
            except OSError:
                pass
