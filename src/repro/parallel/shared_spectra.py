"""Spill a preprocessed query batch to disk; reopen it memmap-shared.

The scatter side of the communication-lower-bounds argument
(arXiv:2009.14123): once the index is resident and shared, the query
*spectra* become the per-batch communication volume.  Pickling the
peak arrays to every worker makes that volume O(n_workers × peaks);
:class:`SharedSpectraStore` makes it O(1) the same way
:class:`~repro.parallel.shared_arena.SharedArenaStore` does for the
fragment arena:

* :meth:`SharedSpectraStore.spill` flattens a batch of (already
  preprocessed) :class:`~repro.spectra.model.Spectrum` objects into
  raw uncompressed ``.npy`` files — one flat peak m/z array, one flat
  intensity array, int64 CSR peak offsets, and per-spectrum scan ids,
  precursor m/z values and charges — bound by a small JSON manifest,
* :meth:`SharedSpectraStore.load` reopens every array with
  ``np.load(..., mmap_mode="r")`` and rebuilds the ``Spectrum`` list
  as zero-copy slices of the maps.

However many workers ``load()`` one batch, the OS page cache holds one
physical copy of the peak data; the worker-side *pickled* payload per
batch is only the store path plus scalars — O(batch manifest), never
O(peaks).  ``true_peptide`` ground-truth labels travel as an int64
column (−1 encodes ``None``) so synthetic-data round-trips stay exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, FormatError
from repro.spectra.model import Spectrum

__all__ = ["SharedSpectraStore"]

_MANIFEST_NAME = "spectra_manifest.json"
_FORMAT_VERSION = 1


class SharedSpectraStore:
    """A directory of ``.npy`` files holding one spilled query batch.

    Construct through :meth:`spill` (write) or :meth:`open` (attach);
    :meth:`load` materializes the memmap-backed spectrum list.
    Instances are cheap handles — all state is on disk.
    """

    def __init__(self, directory: Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # -- writing --------------------------------------------------------

    @classmethod
    def spill(
        cls, spectra: Sequence[Spectrum], directory: Union[str, Path]
    ) -> "SharedSpectraStore":
        """Write ``spectra`` as flat CSR arrays under ``directory``.

        The directory is created if needed.  Stores are immutable once
        written — spill each batch to a fresh directory (rewriting in
        place could tear the memmaps of workers still reading).
        """
        spectra = list(spectra)
        if not spectra:
            raise ConfigurationError("cannot spill an empty spectra batch")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        n = len(spectra)
        offsets = np.zeros(n + 1, dtype=np.int64)
        for i, s in enumerate(spectra):
            offsets[i + 1] = offsets[i] + s.n_peaks
        mzs = np.concatenate([s.mzs for s in spectra]) if offsets[-1] else np.empty(0)
        intensities = (
            np.concatenate([s.intensities for s in spectra])
            if offsets[-1]
            else np.empty(0)
        )
        scan_ids = np.array([s.scan_id for s in spectra], dtype=np.int64)
        precursor_mzs = np.array([s.precursor_mz for s in spectra], dtype=np.float64)
        charges = np.array([s.charge for s in spectra], dtype=np.int64)
        true_peptides = np.array(
            [-1 if s.true_peptide is None else s.true_peptide for s in spectra],
            dtype=np.int64,
        )
        np.save(directory / "peak_mzs.npy", np.ascontiguousarray(mzs, dtype=np.float64))
        np.save(
            directory / "peak_intensities.npy",
            np.ascontiguousarray(intensities, dtype=np.float64),
        )
        np.save(directory / "peak_offsets.npy", offsets)
        np.save(directory / "scan_ids.npy", scan_ids)
        np.save(directory / "precursor_mzs.npy", precursor_mzs)
        np.save(directory / "charges.npy", charges)
        np.save(directory / "true_peptides.npy", true_peptides)
        manifest = {
            "version": _FORMAT_VERSION,
            "n_spectra": n,
            "n_peaks": int(offsets[-1]),
        }
        (directory / _MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="ascii"
        )
        return cls(directory, manifest)

    # -- reading --------------------------------------------------------

    @classmethod
    def exists(cls, directory: Union[str, Path]) -> bool:
        """True when ``directory`` holds a spilled batch (a manifest)."""
        return (Path(directory) / _MANIFEST_NAME).is_file()

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "SharedSpectraStore":
        """Attach to a store written by :meth:`spill`."""
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise FormatError(
                f"no spectra store at {directory} (missing manifest)"
            )
        manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        if manifest.get("version") != _FORMAT_VERSION:
            raise FormatError(
                f"unsupported spectra store version {manifest.get('version')!r}"
            )
        return cls(directory, manifest)

    def load(self, *, mmap_mode: str = "r") -> List[Spectrum]:
        """Rebuild the spectrum list over memory-mapped peak arrays.

        Each spectrum's ``mzs``/``intensities`` are zero-copy slices of
        the shared maps — read-only under the default ``mmap_mode="r"``,
        which is what lets N workers share one physical copy of the
        batch.  ``"c"`` (copy-on-write) is accepted for callers that
        must scribble on private pages.
        """
        if mmap_mode not in ("r", "c"):
            raise ConfigurationError(
                f"mmap_mode must be 'r' or 'c', got {mmap_mode!r}"
            )
        d = self.directory
        try:
            mzs = np.load(d / "peak_mzs.npy", mmap_mode=mmap_mode)
            intensities = np.load(d / "peak_intensities.npy", mmap_mode=mmap_mode)
            offsets = np.load(d / "peak_offsets.npy")
            scan_ids = np.load(d / "scan_ids.npy")
            precursor_mzs = np.load(d / "precursor_mzs.npy")
            charges = np.load(d / "charges.npy")
            true_peptides = np.load(d / "true_peptides.npy")
        except FileNotFoundError as missing:
            raise FormatError(
                f"spectra store {d} is missing {missing.filename!r}"
            ) from None
        spectra: List[Spectrum] = []
        for i in range(self.n_spectra):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            true = int(true_peptides[i])
            spectra.append(
                Spectrum(
                    scan_id=int(scan_ids[i]),
                    precursor_mz=float(precursor_mzs[i]),
                    charge=int(charges[i]),
                    mzs=mzs[lo:hi],
                    intensities=intensities[lo:hi],
                    true_peptide=None if true < 0 else true,
                )
            )
        return spectra

    # -- introspection --------------------------------------------------

    @property
    def n_spectra(self) -> int:
        """Spectra in the spilled batch."""
        return int(self.manifest["n_spectra"])

    @property
    def n_peaks(self) -> int:
        """Total peaks across the batch."""
        return int(self.manifest["n_peaks"])

    def file_bytes(self) -> Dict[str, int]:
        """On-disk bytes per store file (the shared-copy footprint)."""
        return {
            p.name: p.stat().st_size
            for p in sorted(self.directory.glob("*.npy"))
        }

    def nbytes(self) -> int:
        """Total on-disk bytes — the one physical copy all workers share."""
        return sum(self.file_bytes().values())
