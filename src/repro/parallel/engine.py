"""The real-process search engine: LBE on actual hardware.

Execution mirrors the simulated engine's Fig. 3/4 flow exactly — the
two engines share the planning code
(:func:`~repro.search.engine.make_lbe_plan`), the rank body
(:mod:`repro.search.rank`), and the master merge — but phases here
are real OS work:

1. **Serial prep (master).**  Group, partition, build the mapping
   table; preprocess every query spectrum once (deterministic and
   rank-independent, so replicating it per worker would only burn real
   CPU).
2. **Arena spill (master, once per engine).**  The fragment arena —
   with its bucket quantizations and sort orders already cached — is
   spilled to a :class:`~repro.parallel.shared_arena.SharedArenaStore`;
   workers reopen it read-only via ``np.memmap``, so the system holds
   one physical copy of the fragment data regardless of worker count.
3. **Scatter.**  Each worker's pickled task is only its entry-id
   manifest + the spectra + settings (O(entries/worker + spectra)).
4. **Parallel build + query (workers).**  Real processes run the
   shared rank body and report real wall/CPU seconds per phase.
5. **Gather & merge (master).**  Identical to the simulated engine's
   merge — same mapping table, same tie-breaking.

Results are **bit-identical** to the serial and simulated engines for
every partition policy and worker count (enforced by the equivalence
tests); ``phase_times`` and per-rank ``RankStats`` times are real
seconds rather than virtual ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence

import numpy as np

from repro.core.grouping import GroupingConfig
from repro.core.planner import LBEPlan
from repro.errors import ConfigurationError
from repro.index.slm import SLMIndexSettings
from repro.parallel.pool import ProcessBackend
from repro.parallel.shared_arena import (
    SharedArenaStore,
    SharedSpill,
    shared_spill_for,
)
from repro.parallel.worker import RankTask, search_rank_worker
from repro.search.database import IndexedDatabase
from repro.search.engine import make_lbe_plan
from repro.search.psm import RankStats, SearchResults
from repro.search.rank import merge_rank_payloads, rank_stats_from_report
from repro.spectra.model import Spectrum
from repro.spectra.preprocess import PreprocessConfig, preprocess_batch

__all__ = ["ParallelEngineConfig", "ParallelSearchEngine"]


@dataclass(frozen=True, slots=True)
class ParallelEngineConfig:
    """Process-backend engine configuration.

    Attributes
    ----------
    n_workers:
        Real OS worker processes (the rank count).
    policy:
        Partition policy name: ``chunk`` / ``cyclic`` / ``random`` /
        ``lpt`` (``lpt`` assumes homogeneous workers here).
    policy_seed:
        Seed for the Random policy's shuffles.
    grouping:
        Algorithm 1 parameters.
    index:
        SLM index/query settings.
    preprocess:
        Query peak-picking settings.
    top_k:
        PSMs retained per spectrum.
    start_method:
        ``multiprocessing`` start method for the workers.
    timeout:
        Real-seconds deadline for the parallel phase.
    store_dir:
        Where to spill the shared arena.  ``None`` (default) uses the
        process-wide spill cache: engines over the same database share
        one temporary-directory spill, removed when the last holder is
        garbage-collected.  Pass a path to pin the spill somewhere
        explicit (it is then the caller's to clean up).
    """

    n_workers: int = 2
    policy: str = "cyclic"
    policy_seed: int = 0
    grouping: GroupingConfig = GroupingConfig()
    index: SLMIndexSettings = field(default_factory=SLMIndexSettings)
    preprocess: PreprocessConfig = PreprocessConfig()
    top_k: int = 5
    start_method: str = "spawn"
    timeout: float = 600.0
    store_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {self.top_k}")
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")


class ParallelSearchEngine:
    """Distributed peptide search on real processes over a shared arena.

    Parameters
    ----------
    database:
        The indexed database (the master's copy; workers see only the
        memmap-shared arena plus their manifests).
    config:
        Engine configuration.
    """

    def __init__(
        self, database: IndexedDatabase, config: ParallelEngineConfig
    ) -> None:
        self.database = database
        self.config = config
        self._plan: LBEPlan | None = None
        self._store: SharedArenaStore | None = None
        self._spill: SharedSpill | None = None

    # -- planning --------------------------------------------------------

    @property
    def plan(self) -> LBEPlan:
        """The LBE distribution plan (computed lazily, cached)."""
        if self._plan is None:
            cfg = self.config
            self._plan = make_lbe_plan(
                self.database,
                n_ranks=cfg.n_workers,
                policy=cfg.policy,
                policy_seed=cfg.policy_seed,
                grouping=cfg.grouping,
            )
        return self._plan

    # -- arena spill -----------------------------------------------------

    def _ensure_store(self) -> SharedArenaStore:
        """Spill the (fully quantized) arena once; reuse across engines.

        With the default ``store_dir=None``, the spill comes from the
        process-wide :func:`~repro.parallel.shared_arena.shared_spill_for`
        cache keyed by arena identity: every engine (and service) over
        the same :class:`IndexedDatabase` shares **one** tmpdir spill,
        held alive by plain refcounting on the
        :class:`~repro.parallel.shared_arena.SharedSpill` handle — the
        first engine's death cannot yank the memmaps out from under
        the second, and the last holder's death removes the tmpdir.

        A caller-supplied ``store_dir`` that already holds a store is
        **attached to, not re-spilled** — rewriting the files in place
        could tear the memmaps of workers still reading them.  A store
        whose shape doesn't match this database is rejected.
        """
        if self._store is None:
            cfg = self.config
            db = self.database
            if cfg.store_dir is not None:
                directory = Path(cfg.store_dir)
                if SharedArenaStore.exists(directory):
                    store = SharedArenaStore.open(directory)
                    if store.n_entries != db.n_entries:
                        raise ConfigurationError(
                            f"store at {directory} holds {store.n_entries} "
                            f"entries but the database has {db.n_entries}; "
                            "refusing to reuse it"
                        )
                    self._store = store
                    return self._store
                arena = db.arena_for(cfg.index.fragmentation)
                arena.buckets_for(cfg.index.resolution)
                arena.sort_order_for(cfg.index.resolution)
                self._store = SharedArenaStore.spill(arena, directory)
            else:
                arena = db.arena_for(cfg.index.fragmentation)
                self._spill = shared_spill_for(arena, cfg.index.resolution)
                self._store = self._spill.store
        return self._store

    # -- execution -------------------------------------------------------

    def run(self, spectra: Sequence[Spectrum]) -> SearchResults:
        """Search ``spectra``; returns merged results with real phase times."""
        cfg = self.config
        spectra = list(spectra)
        wall = time.perf_counter

        t_start = wall()
        plan = self.plan
        processed = preprocess_batch(spectra, cfg.preprocess)
        manifests = [
            np.asarray(plan.rank_global_ids(r), dtype=np.int64)
            for r in range(cfg.n_workers)
        ]
        prep_wall = wall() - t_start

        t0 = wall()
        store = self._ensure_store()
        spill_wall = wall() - t0

        tasks = [
            RankTask(
                store_dir=str(store.directory),
                entry_ids=manifests[r],
                settings=cfg.index,
                spectra=processed,
                top_k=cfg.top_k,
            )
            for r in range(cfg.n_workers)
        ]
        backend = ProcessBackend(
            cfg.n_workers,
            start_method=cfg.start_method,
            timeout=cfg.timeout,
        )
        t0 = wall()
        pres = backend.run(search_rank_worker, tasks)
        parallel_wall = wall() - t0

        t0 = wall()
        gathered = [(r["counts"], r["local_psms"]) for r in pres.results]
        merged, _n_psms = merge_rank_payloads(
            gathered, spectra, plan.mapping, cfg.top_k
        )
        merge_wall = wall() - t0

        all_stats: List[RankStats] = [
            rank_stats_from_report(r, report)
            for r, report in enumerate(pres.results)
        ]

        # Worker-side phases account for compute; the spawn/IPC cost of
        # the parallel section is everything the workers didn't see.
        worker_span = max(
            report["open_s"] + report["build_s"] + report["query_s"]
            for report in pres.results
        )
        phase_times = {
            "serial_prep": prep_wall,
            "spill": spill_wall,
            "build": max(s.build_time for s in all_stats),
            "query": max(s.query_time for s in all_stats),
            "query_cpu": max(s.query_cpu_time for s in all_stats),
            "gather": 0.0,  # folded into parallel_overhead (pipes drain as workers finish)
            "merge": merge_wall,
            "parallel_wall": parallel_wall,
            "parallel_overhead": max(0.0, parallel_wall - worker_span),
            "total": wall() - t_start,
        }

        return SearchResults(
            spectra=merged,
            rank_stats=all_stats,
            phase_times=phase_times,
            policy_name=cfg.policy,
            n_ranks=cfg.n_workers,
        )
