"""Real-OS-process SPMD backend (the ``mpiexec`` analogue, for real).

:class:`ProcessBackend` mirrors :func:`~repro.mpi.launcher.run_spmd`'s
contract — run one callable per rank, gather per-rank return values
and per-rank timings — but the ranks are ``multiprocessing`` workers
(``spawn`` by default: no inherited interpreter state, the same code
path on every platform) and the timings are **real seconds**, wall and
CPU.

Failure semantics, mirroring the simulated launcher's "a failing rank
can never leave the suite hanging":

* a worker that *raises* reports the exception through its pipe; the
  master terminates the remaining workers and re-raises as
  :class:`~repro.errors.WorkerError` carrying the remote traceback,
* a worker that *dies* without reporting (segfault, ``os._exit``,
  OOM-kill) is detected through its process sentinel and surfaces as
  :class:`~repro.errors.WorkerError` with the exit code,
* a pool that exceeds its deadline is terminated and raises — the
  master waits on pipes and sentinels together, so no failure mode
  blocks forever.

Worker callables must be module-level (picklable by reference) and
take ``(rank, size, payload)``; payloads are pickled per worker — keep
them small and put bulk data behind a
:class:`~repro.parallel.shared_arena.SharedArenaStore`.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, List, Sequence

from repro.errors import ConfigurationError, WorkerError
from repro.parallel.faults import FaultPlan, maybe_inject
from repro.parallel.transport import Transport, WorkerChannel, make_transport

__all__ = ["ProcessBackend", "ProcessResult"]


@dataclass(frozen=True, slots=True)
class ProcessResult:
    """Outcome of one process-pool run.

    Attributes
    ----------
    results:
        Per-rank return values of the worker callable.
    wall_times:
        Per-rank real elapsed seconds inside the worker callable
        (excludes interpreter start-up and result pickling).
    cpu_times:
        Per-rank process CPU seconds over the same span.  On a
        machine with one core per worker, wall ≈ CPU; on an
        oversubscribed machine CPU is the dedicated-core-equivalent
        time (what the wall-clock would be with a core per worker).
    """

    results: List[Any]
    wall_times: List[float]
    cpu_times: List[float]

    @property
    def n_workers(self) -> int:
        """Number of workers that ran."""
        return len(self.results)

    @property
    def makespan(self) -> float:
        """The slowest worker's elapsed seconds."""
        return max(self.wall_times) if self.wall_times else 0.0


def _worker_entry(conn, fn, rank: int, size: int, payload, fault_plan=None) -> None:
    """Worker-side wrapper: run ``fn``, report result or traceback."""
    try:
        maybe_inject(fault_plan, rank, "spawn")
        maybe_inject(fault_plan, rank, "query", 0)
        t0 = time.perf_counter()
        c0 = time.process_time()
        result = fn(rank, size, payload)
        wall = time.perf_counter() - t0
        cpu = time.process_time() - c0
        maybe_inject(fault_plan, rank, "reply", 0)
    except BaseException as exc:  # noqa: BLE001 - reported to the master
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result, wall, cpu))
    except BaseException as exc:  # noqa: BLE001 - e.g. unpicklable result
        # Pickling happens before any bytes hit the pipe, so a failed
        # ok-send leaves it clean for an error report — without this,
        # an unpicklable return value would surface as "died without
        # reporting" with the real cause lost.
        try:
            conn.send(
                (
                    "error",
                    f"{type(exc).__name__}: {exc} (while sending the result)",
                    traceback.format_exc(),
                )
            )
        except BaseException:  # noqa: BLE001 - pipe itself is broken
            pass
    finally:
        conn.close()


class ProcessBackend:
    """Run a rank program on ``n_workers`` real OS processes.

    Parameters
    ----------
    n_workers:
        Process count (the rank space is ``0 .. n_workers - 1``).
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) imports
        a fresh interpreter per worker — slower to start but immune to
        inherited locks/threads, and identical across platforms.
    timeout:
        Real-seconds deadline for the whole pool; exceeding it
        terminates every worker and raises :class:`WorkerError`.
    fault_plan:
        Chaos-testing injection schedule (see
        :mod:`repro.parallel.faults`) handed to every worker; defaults
        to :meth:`FaultPlan.from_env`, i.e. production runs with the
        env var unset get a no-op.
    transport:
        Worker bootstrap mechanism — a
        :mod:`repro.parallel.transport` registry name (default
        ``"pipe"``) or a ready
        :class:`~repro.parallel.transport.Transport` instance.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        start_method: str = "spawn",
        timeout: float = 600.0,
        fault_plan: FaultPlan | None = None,
        transport: "str | Transport" = "pipe",
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        # Resolves the registry name and validates start_method.
        self._transport = make_transport(transport, start_method=start_method)
        self.n_workers = n_workers
        self.start_method = start_method
        self.timeout = timeout
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )

    def run(
        self,
        fn: Callable[[int, int, Any], Any],
        payloads: Sequence[Any] | None = None,
    ) -> ProcessResult:
        """Execute ``fn(rank, n_workers, payloads[rank])`` per rank.

        Returns once every worker has reported; raises
        :class:`WorkerError` on the first worker failure (remaining
        workers are terminated) or on deadline expiry.
        """
        size = self.n_workers
        if payloads is None:
            payloads = [None] * size
        if len(payloads) != size:
            raise ConfigurationError(
                f"{len(payloads)} payloads for {size} workers"
            )
        results: List[Any] = [None] * size
        walls = [0.0] * size
        cpus = [0.0] * size
        deadline = time.monotonic() + self.timeout
        pending = set(range(size))
        # Only channels whose worker actually spawned can be torn down
        # — a spawn failure (e.g. an unpicklable payload) must re-raise
        # its own error while the earlier workers are cleaned up.
        channels: List[WorkerChannel] = []
        try:
            for rank in range(size):
                channels.append(
                    self._transport.spawn(
                        _worker_entry,
                        (fn, rank, size, payloads[rank], self._fault_plan),
                        name=f"repro-worker-{rank}",
                        duplex=False,
                    )
                )
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerError(
                        f"process pool deadline ({self.timeout:.0f}s) expired "
                        f"with workers {sorted(pending)} still running"
                    )
                waitees: List[Any] = []
                for rank in pending:
                    waitees.extend(channels[rank].wait_objects())
                connection.wait(waitees, timeout=remaining)
                for rank in sorted(pending):
                    if channels[rank].poll():
                        self._receive(rank, channels[rank], results, walls, cpus)
                        pending.discard(rank)
                    elif not channels[rank].alive:
                        # Died without reporting — but close the race
                        # where the message landed between poll() and
                        # the liveness check.
                        channels[rank].join()
                        if channels[rank].poll():
                            self._receive(
                                rank, channels[rank], results, walls, cpus
                            )
                            pending.discard(rank)
                        else:
                            raise WorkerError(
                                f"worker {rank} died without reporting "
                                f"(exit code {channels[rank].exitcode})"
                            )
        finally:
            for channel in channels:
                channel.stop()
        return ProcessResult(results=results, wall_times=walls, cpu_times=cpus)

    @staticmethod
    def _receive(rank, channel, results, walls, cpus) -> None:
        """Consume one worker's report; raise on a reported error."""
        try:
            message = channel.recv()
        except EOFError:
            # The pipe reached EOF before any report: the worker died
            # (hard exit, kill, segfault).  Join so the exit code is
            # available for the diagnosis.
            channel.join()
            raise WorkerError(
                f"worker {rank} died without reporting "
                f"(exit code {channel.exitcode})"
            ) from None
        if message[0] == "error":
            _, summary, remote_tb = message
            raise WorkerError(
                f"worker {rank} raised {summary}\n"
                f"--- remote traceback ---\n{remote_tb}"
            )
        _, result, wall, cpu = message
        results[rank] = result
        walls[rank] = wall
        cpus[rank] = cpu
