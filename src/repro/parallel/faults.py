"""Deterministic fault injection for the parallel backends.

Chaos testing a crash/respawn/retry contract needs faults that are
**schedulable** (fire at an exact ``(rank, batch, stage)`` coordinate),
**deterministic** (the same plan produces the same failure sequence on
every run), and **respawn-aware** (a fault that killed a worker must
not re-kill its replacement, or retries could never heal).  This
module is that harness:

* :class:`FaultSpec` — one scheduled fault: a *kind* (``crash`` /
  ``raise`` / ``hang`` / ``slow``) at a worker *stage* (``spawn`` /
  ``attach`` / ``query`` / ``reply``), optionally pinned to a rank and
  a batch index,
* :class:`FaultPlan` — an ordered set of specs plus a filesystem
  **ledger**: a once-only spec claims a marker file with
  ``O_CREAT | O_EXCL`` before firing, so it fires exactly once across
  the whole machine — including in the respawned replacement of the
  worker it just killed.  That is what makes "crash once, retry heals"
  a deterministic scenario instead of a race,
* env plumbing — :meth:`FaultPlan.to_env_value` /
  :meth:`FaultPlan.from_env` serialize a plan through the
  ``REPRO_FAULT_PLAN`` environment variable, which ``spawn`` workers
  inherit; the CLI chaos smoke drives a real ``repro serve`` session
  through it without any code hook.

Worker stages (where :func:`maybe_inject` is called):

========  ==============================================================
stage     fires
========  ==============================================================
spawn     at worker-process entry, before any command is read
          (``crash`` here = the classic crash-before-attach)
attach    after the ATTACH command was read, before its body runs
query     after a QUERY command was read, before the rank body runs
          (``crash`` here = crash-mid-query: state built, work lost)
reply     after the command body computed its result, **before** the
          result is sent (``crash`` here = computed-but-unreported)
========  ==============================================================

Fault kinds:

========  ==============================================================
kind      effect at the injection point
========  ==============================================================
crash     ``os._exit(exit_code)`` — death without a report
raise     raise :class:`FaultInjected` — travels the error-reply path,
          the worker stays alive and pipe-synchronized
hang      sleep ``seconds`` (default far beyond any deadline) — the
          round's deadline must kill the worker
slow      sleep ``seconds`` (plus ``scale`` × the command body's own
          wall time at the ``reply`` stage) then continue normally — a
          straggler, not a failure (hedging bait)
========  ==============================================================

A one-shot ``slow`` fault models a transient straggler; a
*chronically* slow worker (an oversubscribed or down-clocked host) is
a ``slow`` spec with ``every_batch=True``: it re-fires on **every**
matching batch, bypassing the once-ledger entirely, and with
``scale=k`` at the ``reply`` stage it stretches each batch to
``(1 + k)`` × the rank's real work time — exactly the multiplicative
skew a heterogeneity-aware rebalancer must detect and absorb.

Everything here is plain stdlib so the module imports in a bare spawn
worker before any heavy package machinery.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FAULT_KINDS",
    "FAULT_STAGES",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "maybe_inject",
]

FAULT_KINDS = ("crash", "raise", "hang", "slow")
FAULT_STAGES = ("spawn", "attach", "query", "reply")

#: Environment variable carrying a JSON-serialized :class:`FaultPlan`
#: into spawned workers (and whole CLI sessions, for chaos smokes).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Default hang duration: far beyond any sane round deadline, so a
#: ``hang`` fault is always resolved by the deadline, never by luck.
_HANG_DEFAULT_S = 3600.0


class FaultInjected(ReproError, RuntimeError):
    """The error a ``raise``-kind injected fault throws inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    stage:
        One of :data:`FAULT_STAGES` — where in the worker loop the
        fault fires.
    rank:
        Rank to fault, or ``None`` for any rank.
    batch:
        Batch index to fault (matched against the payload's
        ``batch_index`` when it has one, else the worker's own QUERY
        ordinal), or ``None`` for any batch.  ``spawn``/``attach``
        stages have no batch; a batch-pinned spec never matches them.
    seconds:
        Sleep duration for ``slow`` (default 0.05) and ``hang``
        (default one hour — deadlines must resolve hangs).
    exit_code:
        The ``crash`` kind's ``os._exit`` code.
    once:
        Fire at most once machine-wide (via the plan's ledger) — the
        default, so a crashed worker's respawned replacement survives
        and retries can heal.  ``False`` re-fires on every match (a
        persistent fault: retries exhaust, degradation kicks in).
    every_batch:
        Recurring straggler mode for ``slow`` faults: re-fire on every
        matching batch, never consulting the once-ledger (``once`` is
        ignored).  Requires a batch-bearing stage (``query`` or
        ``reply``).  This is how a *chronically* slow rank is modeled.
    scale:
        Multiplicative slowdown for ``slow`` faults: at the ``reply``
        stage (where the command body's wall time is known) the sleep
        is ``seconds + scale × work_s``, so ``scale=2.0`` makes the
        rank run at 1/3 speed regardless of how much work it holds.
        Ignored at stages with no measured work.
    """

    kind: str
    stage: str
    rank: Optional[int] = None
    batch: Optional[int] = None
    seconds: float = 0.0
    exit_code: int = 17
    once: bool = True
    every_batch: bool = False
    scale: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (have {FAULT_KINDS})"
            )
        if self.stage not in FAULT_STAGES:
            raise ConfigurationError(
                f"unknown fault stage {self.stage!r} (have {FAULT_STAGES})"
            )
        if self.seconds < 0:
            raise ConfigurationError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )
        if self.scale < 0:
            raise ConfigurationError(
                f"fault scale must be >= 0, got {self.scale}"
            )
        if (self.every_batch or self.scale) and self.kind != "slow":
            raise ConfigurationError(
                "every_batch/scale only apply to 'slow' faults, "
                f"got kind {self.kind!r}"
            )
        if self.every_batch and self.stage not in ("query", "reply"):
            raise ConfigurationError(
                "every_batch requires a batch-bearing stage "
                f"('query'/'reply'), got {self.stage!r}"
            )

    def matches(self, rank: int, stage: str, batch: Optional[int]) -> bool:
        """True when this spec fires at ``(rank, stage, batch)``."""
        if self.stage != stage:
            return False
        if self.rank is not None and self.rank != rank:
            return False
        if self.batch is not None and (batch is None or self.batch != batch):
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` plus a once-only ledger.

    The ledger directory makes ``once=True`` hold machine-wide and
    across respawns: before firing, a once-only spec atomically claims
    ``<ledger_dir>/spec<i>.fired`` — whichever process creates the
    marker first fires the fault; everyone else (including the
    respawned replacement of the worker the fault killed) skips it.
    Without a ledger, ``once`` is only per-process (a respawned worker
    starts fresh) — use :meth:`scoped` in tests.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    ledger_dir: Optional[str] = None

    @classmethod
    def scoped(cls, *specs: FaultSpec) -> "FaultPlan":
        """A plan with a fresh private ledger tmpdir (test harness)."""
        return cls(tuple(specs), tempfile.mkdtemp(prefix="repro-faults-"))

    # -- firing ----------------------------------------------------------

    def fire(
        self,
        rank: int,
        stage: str,
        batch: Optional[int] = None,
        *,
        work_s: float = 0.0,
    ) -> None:
        """Execute every matching spec (in order) at this coordinate.

        ``work_s`` is the command body's measured wall time, known only
        at the ``reply`` stage — ``scale``-bearing slow specs stretch it.
        """
        for index, spec in enumerate(self.specs):
            if not spec.matches(rank, stage, batch):
                continue
            # Recurring stragglers bypass the ledger: they fire on every
            # matching batch, in this worker and any respawned successor.
            if not spec.every_batch and spec.once and not self._claim(index):
                continue
            self._execute(spec, rank, stage, batch, work_s=work_s)

    def _claim(self, index: int) -> bool:
        """Atomically claim once-only spec ``index``; True = we fire."""
        if self.ledger_dir is None:
            # No ledger: per-process only.  A module-level set keeps
            # once-semantics within one interpreter.
            key = (id(self), index)
            if key in _LOCAL_FIRED:
                return False
            _LOCAL_FIRED.add(key)
            return True
        try:
            os.makedirs(self.ledger_dir, exist_ok=True)
            fd = os.open(
                os.path.join(self.ledger_dir, f"spec{index}.fired"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        except OSError:
            return True  # unclaimable ledger: fail open (fire)
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        os.close(fd)
        return True

    @staticmethod
    def _execute(
        spec: FaultSpec,
        rank: int,
        stage: str,
        batch: Optional[int],
        *,
        work_s: float = 0.0,
    ) -> None:
        where = f"rank {rank} stage {stage!r}" + (
            f" batch {batch}" if batch is not None else ""
        )
        if spec.kind == "slow":
            delay = spec.seconds + spec.scale * max(work_s, 0.0)
            time.sleep(delay if delay > 0 else 0.05)
        elif spec.kind == "hang":
            time.sleep(spec.seconds or _HANG_DEFAULT_S)
        elif spec.kind == "raise":
            raise FaultInjected(f"injected fault at {where}")
        elif spec.kind == "crash":
            os._exit(spec.exit_code)

    # -- serialization (env plumbing through worker spawn) ---------------

    def to_json(self) -> str:
        """JSON form (what :data:`FAULT_PLAN_ENV` carries)."""
        return json.dumps(
            {
                "specs": [asdict(spec) for spec in self.specs],
                "ledger_dir": self.ledger_dir,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output; absent spec keys take defaults."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed fault plan JSON: {exc}"
            ) from None
        specs = tuple(
            FaultSpec(**entry) for entry in data.get("specs", ())
        )
        return cls(specs, data.get("ledger_dir"))

    to_env_value = to_json

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan in :data:`FAULT_PLAN_ENV`, or ``None`` when unset."""
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not text:
            return None
        return cls.from_json(text)


#: Per-process once-only memory for ledgerless plans.
_LOCAL_FIRED: set = set()


def maybe_inject(
    plan: Optional[FaultPlan],
    rank: int,
    stage: str,
    batch: Optional[int] = None,
    *,
    work_s: float = 0.0,
) -> None:
    """Fire ``plan``'s matching faults, or do nothing for ``plan=None``.

    The single call sites in the worker loops stay one line; the
    fault-free fast path is one ``is None`` check.  ``work_s`` carries
    the command body's wall time into ``scale``-bearing slow faults
    (only the ``reply`` call site knows it).
    """
    if plan is not None:
        plan.fire(rank, stage, batch, work_s=work_s)
