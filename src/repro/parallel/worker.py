"""Worker-side rank programs (module-level, picklable by reference).

``spawn`` workers import the function they run by qualified name, so
everything a :class:`~repro.parallel.pool.ProcessBackend` executes
must live at module scope in an importable module.  This module holds

* :func:`search_rank_worker` — the one-shot rank program: open the
  memmap-shared arena store, carve this rank's sub-arena, build the
  partial index, query every spectrum (all through the same
  :mod:`repro.search.rank` body the simulated engine runs), and
  report the payload plus real wall/CPU phase timings,
* :func:`service_attach_worker` / :func:`service_query_worker` — the
  same body split at the attach/query boundary for the persistent
  pool: attach opens the arena store and builds the partial index
  **once**, then every query round reopens only that batch's
  memmap-shared spectra store — the per-batch pickled payload is a
  :class:`QueryTask` (a path plus scalars), never peak arrays,
* tiny diagnostic programs (:func:`echo_worker`, :func:`crash_worker`,
  :func:`exit_worker`, :func:`sleep_worker`, and the ``resident_*`` /
  ``query_*`` family for the persistent pool) used by the backends'
  tests and for smoke-checking a deployment.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ServiceError
from repro.index.slm import SLMIndexSettings
from repro.parallel.shared_arena import SharedArenaStore
from repro.parallel.shared_spectra import SharedSpectraStore
from repro.search.rank import (
    build_rank_index,
    run_rank_queries,
    summarize_rank_output,
)
from repro.spectra.model import Spectrum

__all__ = [
    "RankTask",
    "search_rank_worker",
    "AttachTask",
    "QueryTask",
    "service_attach_worker",
    "service_query_worker",
]


@dataclass(frozen=True)
class RankTask:
    """Everything one search worker needs, in picklable form.

    The bulk data (the fragment arena) is *not* here — workers reach
    it zero-copy through ``store_dir``.  What does get pickled is the
    rank's entry-id manifest, the (already preprocessed) query
    spectra, and the settings: O(entries/worker + spectra), not
    O(arena).
    """

    store_dir: str
    entry_ids: np.ndarray
    settings: SLMIndexSettings
    spectra: Sequence[Spectrum]
    top_k: int


def search_rank_worker(rank: int, size: int, task: RankTask) -> dict:
    """The process-backend rank program.

    Returns a plain dict (picklable) with the merge payload, the
    partial-index statistics, aggregate work counters, and real
    wall/CPU seconds per phase.  Bit-identity with the other engines
    is inherited from :mod:`repro.search.rank` — this function adds
    only I/O and timing around the shared body.
    """
    t0 = time.perf_counter()
    store = SharedArenaStore.open(task.store_dir)
    arena = store.load(mmap_mode="r")
    open_wall = time.perf_counter() - t0

    t0, c0 = time.perf_counter(), time.process_time()
    sub_arena, index = build_rank_index(arena, task.entry_ids, task.settings)
    build_wall = time.perf_counter() - t0
    build_cpu = time.process_time() - c0

    t0, c0 = time.perf_counter(), time.process_time()
    out = run_rank_queries(
        index,
        sub_arena,
        task.entry_ids,
        task.spectra,
        top_k=task.top_k,
    )
    query_wall = time.perf_counter() - t0
    query_cpu = time.process_time() - c0

    report = summarize_rank_output(out)
    report.update(
        rank=rank,
        n_entries=len(index),
        n_ions=index.n_ions,
        open_s=open_wall,
        build_s=build_wall,
        build_cpu_s=build_cpu,
        query_s=query_wall,
        query_cpu_s=query_cpu,
    )
    return report


# -- persistent-service rank programs ----------------------------------


@dataclass(frozen=True)
class AttachTask:
    """One resident worker's session-scoped state recipe (picklable).

    Pickled **once per session** (and again only on a respawn): the
    arena-store path, the rank's entry-id manifest, and the index
    settings.  The bulk fragment data stays behind ``store_dir``.
    """

    store_dir: str
    entry_ids: np.ndarray
    settings: SLMIndexSettings


@dataclass(frozen=True)
class QueryTask:
    """One resident worker's per-batch command (picklable).

    This is the whole per-batch scatter payload: the batch's
    spectra-store path plus scalars — O(batch manifest).  The peak
    arrays are never pickled; workers reach them zero-copy through
    ``spectra_dir``.  The payload-accounting assertions in the service
    suite pin this down.  ``batch_index`` is echoed back in the report
    so the pipelined session can assert that the replies it collects
    belong to the batch it dispatched (a torn round could otherwise be
    merged silently into the wrong future).
    """

    spectra_dir: str
    n_spectra: int
    top_k: int
    batch_index: int = -1


def service_attach_worker(rank: int, size: int, task: AttachTask) -> tuple:
    """ATTACH body: build this rank's resident index state, once.

    Returns ``(state, report)`` per the persistent-pool attach
    contract — the worker keeps ``state`` (sub-arena, partial index,
    manifest) across batches; the report carries partial-index stats
    and real attach-phase seconds back to the master.
    """
    t0 = time.perf_counter()
    store = SharedArenaStore.open(task.store_dir)
    arena = store.load(mmap_mode="r")
    open_wall = time.perf_counter() - t0

    t0, c0 = time.perf_counter(), time.process_time()
    entry_ids = np.asarray(task.entry_ids, dtype=np.int64)
    sub_arena, index = build_rank_index(arena, entry_ids, task.settings)
    build_wall = time.perf_counter() - t0
    build_cpu = time.process_time() - c0

    state = {
        "index": index,
        "sub_arena": sub_arena,
        "entry_ids": entry_ids,
    }
    report = {
        "rank": rank,
        "n_entries": len(index),
        "n_ions": index.n_ions,
        "open_s": open_wall,
        "build_s": build_wall,
        "build_cpu_s": build_cpu,
    }
    return state, report


def service_query_worker(rank: int, size: int, state: dict, task: QueryTask) -> dict:
    """QUERY body: run one batch against the resident index state.

    Reopens the batch's memmap-shared spectra store (O(metadata) —
    peak pages fault in lazily while filtering) and runs the exact
    rank body every other backend runs, so session results are
    bit-identical to the serial engine by construction.
    """
    if state is None:
        raise ServiceError(
            f"worker {rank} received a query before any attach"
        )
    t0 = time.perf_counter()
    store = SharedSpectraStore.open(task.spectra_dir)
    if store.n_spectra != task.n_spectra:
        raise ServiceError(
            f"batch store at {task.spectra_dir} holds {store.n_spectra} "
            f"spectra but the command says {task.n_spectra}; refusing a "
            "torn batch"
        )
    spectra = store.load(mmap_mode="r")
    open_wall = time.perf_counter() - t0

    t0, c0 = time.perf_counter(), time.process_time()
    out = run_rank_queries(
        state["index"],
        state["sub_arena"],
        state["entry_ids"],
        spectra,
        top_k=task.top_k,
    )
    query_wall = time.perf_counter() - t0
    query_cpu = time.process_time() - c0

    report = summarize_rank_output(out)
    report.update(
        rank=rank,
        batch_index=task.batch_index,
        n_entries=len(state["index"]),
        n_ions=state["index"].n_ions,
        open_s=open_wall,
        query_s=query_wall,
        query_cpu_s=query_cpu,
        # Worker-side spans as (name, start, dur) seconds *relative to
        # this round's dispatch*; a ``perf_counter`` reading is not
        # comparable across processes, so the master re-anchors these
        # on its own clock (see ``worker_spans_from_report``).  Riding
        # the existing reply payload keeps the pipe protocol at one
        # round per batch.
        spans=(
            ("worker.open", 0.0, open_wall),
            ("worker.query", open_wall, query_wall),
        ),
    )
    return report


# -- diagnostic programs (backend tests / deployment smoke checks) -----


def echo_worker(rank: int, size: int, payload) -> tuple:
    """Return ``(rank, size, payload)`` — the minimal liveness check."""
    return rank, size, payload


def crash_worker(rank: int, size: int, payload) -> None:
    """Raise on the rank given in ``payload`` (others echo)."""
    if rank == payload:
        raise ValueError(f"deliberate crash on rank {rank}")


def exit_worker(rank: int, size: int, payload) -> None:
    """Hard-exit (no report) on the rank given in ``payload``."""
    if rank == payload:
        os._exit(13)


def sleep_worker(rank: int, size: int, payload) -> float:
    """Sleep ``payload`` seconds — deadline/timeout testing."""
    time.sleep(float(payload))
    return float(payload)


def unpicklable_result_worker(rank: int, size: int, payload):
    """Return something the result pipe cannot pickle."""
    return lambda: rank


# -- persistent-pool diagnostic programs -------------------------------


def resident_attach(rank: int, size: int, payload) -> tuple:
    """Minimal ATTACH body: state remembers the payload and this PID."""
    return {"payload": payload, "pid": os.getpid()}, {
        "rank": rank,
        "attached": payload,
        "pid": os.getpid(),
    }


def resident_echo(rank: int, size: int, state, payload) -> tuple:
    """QUERY body proving state survives batches: echo state + payload."""
    return rank, state["payload"], payload, state["pid"], os.getpid()


def resident_crash(rank: int, size: int, state, payload) -> tuple:
    """Raise on the rank given in ``payload`` (others echo)."""
    if rank == payload:
        raise ValueError(f"deliberate resident crash on rank {rank}")
    return rank, state["payload"]


def resident_exit(rank: int, size: int, state, payload) -> None:
    """Hard-exit mid-batch (no report) on the rank given in ``payload``."""
    if rank == payload:
        os._exit(21)


def resident_sleep(rank: int, size: int, state, payload) -> float:
    """Sleep ``payload`` seconds — per-batch deadline testing."""
    time.sleep(float(payload))
    return float(payload)
