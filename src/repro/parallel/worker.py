"""Worker-side rank programs (module-level, picklable by reference).

``spawn`` workers import the function they run by qualified name, so
everything a :class:`~repro.parallel.pool.ProcessBackend` executes
must live at module scope in an importable module.  This module holds

* :func:`search_rank_worker` — the real rank program: open the
  memmap-shared arena store, carve this rank's sub-arena, build the
  partial index, query every spectrum (all through the same
  :mod:`repro.search.rank` body the simulated engine runs), and
  report the payload plus real wall/CPU phase timings,
* tiny diagnostic programs (:func:`echo_worker`, :func:`crash_worker`,
  :func:`exit_worker`, :func:`sleep_worker`) used by the backend's
  tests and for smoke-checking a deployment.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.index.slm import SLMIndexSettings
from repro.parallel.shared_arena import SharedArenaStore
from repro.search.rank import build_rank_index, run_rank_queries
from repro.spectra.model import Spectrum

__all__ = ["RankTask", "search_rank_worker"]


@dataclass(frozen=True)
class RankTask:
    """Everything one search worker needs, in picklable form.

    The bulk data (the fragment arena) is *not* here — workers reach
    it zero-copy through ``store_dir``.  What does get pickled is the
    rank's entry-id manifest, the (already preprocessed) query
    spectra, and the settings: O(entries/worker + spectra), not
    O(arena).
    """

    store_dir: str
    entry_ids: np.ndarray
    settings: SLMIndexSettings
    spectra: Sequence[Spectrum]
    top_k: int


def search_rank_worker(rank: int, size: int, task: RankTask) -> dict:
    """The process-backend rank program.

    Returns a plain dict (picklable) with the merge payload, the
    partial-index statistics, aggregate work counters, and real
    wall/CPU seconds per phase.  Bit-identity with the other engines
    is inherited from :mod:`repro.search.rank` — this function adds
    only I/O and timing around the shared body.
    """
    t0 = time.perf_counter()
    store = SharedArenaStore.open(task.store_dir)
    arena = store.load(mmap_mode="r")
    open_wall = time.perf_counter() - t0

    t0, c0 = time.perf_counter(), time.process_time()
    sub_arena, index = build_rank_index(arena, task.entry_ids, task.settings)
    build_wall = time.perf_counter() - t0
    build_cpu = time.process_time() - c0

    t0, c0 = time.perf_counter(), time.process_time()
    out = run_rank_queries(
        index,
        sub_arena,
        task.entry_ids,
        task.spectra,
        top_k=task.top_k,
    )
    query_wall = time.perf_counter() - t0
    query_cpu = time.process_time() - c0

    return {
        "rank": rank,
        "counts": out.counts,
        "local_psms": out.local_psms,
        "n_entries": len(index),
        "n_ions": index.n_ions,
        "buckets_scanned": int(out.buckets_scanned.sum()),
        "ions_scanned": int(out.ions_scanned.sum()),
        "candidates_scored": int(out.candidates_scored.sum()),
        "residues_scored": int(out.residues_scored.sum()),
        "open_s": open_wall,
        "build_s": build_wall,
        "build_cpu_s": build_cpu,
        "query_s": query_wall,
        "query_cpu_s": query_cpu,
    }


# -- diagnostic programs (backend tests / deployment smoke checks) -----


def echo_worker(rank: int, size: int, payload) -> tuple:
    """Return ``(rank, size, payload)`` — the minimal liveness check."""
    return rank, size, payload


def crash_worker(rank: int, size: int, payload) -> None:
    """Raise on the rank given in ``payload`` (others echo)."""
    if rank == payload:
        raise ValueError(f"deliberate crash on rank {rank}")


def exit_worker(rank: int, size: int, payload) -> None:
    """Hard-exit (no report) on the rank given in ``payload``."""
    if rank == payload:
        os._exit(13)


def sleep_worker(rank: int, size: int, payload) -> float:
    """Sleep ``payload`` seconds — deadline/timeout testing."""
    time.sleep(float(payload))
    return float(payload)


def unpicklable_result_worker(rank: int, size: int, payload):
    """Return something the result pipe cannot pickle."""
    return lambda: rank
